"""Ablation: the variance-optimal weight choice of paper Sec. 3.5.

DESIGN.md calls out the weight function as the design choice to ablate:
GPS with `W = 9·|△̂(k)| + 1` (paper) vs uniform weights vs wedge weights,
all at the same capacity, measuring post-stream triangle-estimate spread
over repeated runs.  The paper's cost-model prediction — the
triangle-targeted weight minimises triangle-count variance — must hold.

Writes ``benchmarks/results/ablation_weights.txt``.
"""

from __future__ import annotations

import pytest

from repro.core.adaptive import AdaptiveTriangleWeight
from repro.core.post_stream import PostStreamEstimator
from repro.core.priority_sampler import GraphPrioritySampler
from repro.core.weights import TriangleWeight, UniformWeight, WedgeWeight
from repro.experiments.reporting import format_table
from repro.graph.exact import compute_statistics
from repro.graph.generators import powerlaw_cluster
from repro.stats.running import RunningMoments
from repro.streams.stream import EdgeStream

CAPACITY = 400
RUNS = 120

WEIGHTS = {
    "uniform": UniformWeight,
    "wedge (1·deg + 1)": WedgeWeight,
    "triangle (9·tri + 1)": TriangleWeight,
    "adaptive triangle": AdaptiveTriangleWeight,
}


@pytest.fixture(scope="module")
def ablation_graph():
    return powerlaw_cluster(1_000, 4, 0.6, seed=77)


@pytest.fixture(scope="module")
def ablation_results(ablation_graph):
    stats = compute_statistics(ablation_graph)
    results = {}
    for name, factory in WEIGHTS.items():
        tri = RunningMoments()
        wedge = RunningMoments()
        for seed in range(RUNS):
            sampler = GraphPrioritySampler(CAPACITY, weight_fn=factory(), seed=seed)
            sampler.process_stream(EdgeStream.from_graph(ablation_graph, seed=seed))
            estimates = PostStreamEstimator(sampler).estimate()
            tri.add(estimates.triangles.value)
            wedge.add(estimates.wedges.value)
        results[name] = {
            "tri_rel_std": tri.std / stats.triangles,
            "tri_bias": abs(tri.mean - stats.triangles) / stats.triangles,
            "wedge_rel_std": wedge.std / stats.wedges,
        }
    return results


def test_ablation_weight_functions(benchmark, ablation_graph, ablation_results,
                                   results_dir):
    def one_run():
        sampler = GraphPrioritySampler(CAPACITY, seed=0)
        sampler.process_stream(EdgeStream.from_graph(ablation_graph, seed=0))
        return PostStreamEstimator(sampler).estimate()

    benchmark.pedantic(one_run, rounds=3, iterations=1)
    rows = [
        [
            name,
            f"{metrics['tri_rel_std']:.3f}",
            f"{metrics['tri_bias']:.3f}",
            f"{metrics['wedge_rel_std']:.3f}",
        ]
        for name, metrics in ablation_results.items()
    ]
    report = format_table(
        headers=["weight function", "tri rel σ", "tri bias", "wedge rel σ"],
        rows=rows,
        title=f"Weight-function ablation (m={CAPACITY}, {RUNS} runs, post-stream)",
    )
    (results_dir / "ablation_weights.txt").write_text(report + "\n", encoding="utf-8")
    test_triangle_weight_minimises_triangle_variance(ablation_results)
    test_all_weightings_remain_unbiased(ablation_results)


def test_triangle_weight_minimises_triangle_variance(ablation_results):
    tri = ablation_results["triangle (9·tri + 1)"]["tri_rel_std"]
    uni = ablation_results["uniform"]["tri_rel_std"]
    wed = ablation_results["wedge (1·deg + 1)"]["tri_rel_std"]
    assert tri < uni
    assert tri < wed


def test_all_weightings_remain_unbiased(ablation_results):
    for name, metrics in ablation_results.items():
        # The mean over RUNS runs has standard error rel_std/sqrt(RUNS);
        # unbiasedness means the bias sits inside a ~4-sigma envelope.
        envelope = 4.0 * metrics["tri_rel_std"] / (RUNS ** 0.5)
        assert metrics["tri_bias"] < max(0.05, envelope), (name, metrics)
