"""Bench: the generalised motif census (the paper's "arbitrary subsets").

Not a paper table — this extends the evaluation to the framework's claim
that one GPS sample supports arbitrary subgraph queries.  Measures the
census cost at experiment scale and asserts estimate quality (mean over
runs within 15% for every motif on a clustered graph).

Writes ``benchmarks/results/motif_census.txt``.
"""

from __future__ import annotations

import pytest

from repro.core.motifs import MotifCensusEstimator
from repro.core.priority_sampler import GraphPrioritySampler
from repro.experiments.reporting import format_table
from repro.graph.generators import powerlaw_cluster
from repro.graph.motifs import MOTIF_NAMES, count_motifs
from repro.stats.running import RunningMoments
from repro.streams.stream import EdgeStream

CAPACITY = 2_500
RUNS = 8


@pytest.fixture(scope="module")
def census_graph():
    return powerlaw_cluster(2_000, 5, 0.6, seed=55)


@pytest.fixture(scope="module")
def census_results(census_graph):
    exact = count_motifs(census_graph)
    moments = {name: RunningMoments() for name in MOTIF_NAMES}
    for seed in range(RUNS):
        sampler = GraphPrioritySampler(CAPACITY, seed=500 + seed)
        sampler.process_stream(EdgeStream.from_graph(census_graph, seed=seed))
        census = MotifCensusEstimator(sampler).estimate()
        for name in MOTIF_NAMES:
            moments[name].add(census[name].value)
    return exact, moments


def test_motif_census_cost_and_quality(benchmark, census_graph, census_results,
                                       results_dir):
    sampler = GraphPrioritySampler(CAPACITY, seed=1)
    sampler.process_stream(EdgeStream.from_graph(census_graph, seed=1))
    benchmark(lambda: MotifCensusEstimator(sampler).estimate())

    exact, moments = census_results
    rows = []
    for name in MOTIF_NAMES:
        actual = getattr(exact, name)
        mean = moments[name].mean
        are = abs(mean - actual) / actual if actual else 0.0
        rows.append([name, f"{mean:.1f}", actual, f"{are:.3f}"])
    report = format_table(
        headers=["motif", "mean estimate", "actual", "ARE of mean"],
        rows=rows,
        title=f"4-node motif census (m={CAPACITY}, {RUNS} runs)",
    )
    (results_dir / "motif_census.txt").write_text(report + "\n", encoding="utf-8")
    test_census_mean_accuracy(census_results)


def test_census_mean_accuracy(census_results):
    exact, moments = census_results
    for name in MOTIF_NAMES:
        actual = getattr(exact, name)
        if actual == 0:
            continue
        are = abs(moments[name].mean - actual) / actual
        assert are < 0.15, (name, moments[name].mean, actual)
