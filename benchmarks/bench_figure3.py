"""Regenerates paper Figure 3: real-time tracking of triangles + clustering.

Writes ``benchmarks/results/figure3.txt`` and asserts the panels' claims:
the in-stream estimate tracks the exact curve throughout the stream, and
the 95% band contains the truth at (almost) every checkpoint.
"""

from __future__ import annotations

import pytest

from repro.experiments.datasets import FIGURE3_DATASETS
from repro.experiments.figure3 import build_figure3, format_figure3
from repro.experiments.reporting import save_report

CAPACITY = 4_000
CHECKPOINTS = 20


@pytest.fixture(scope="module")
def figure3_series():
    return build_figure3(
        datasets=FIGURE3_DATASETS, capacity=CAPACITY, num_checkpoints=CHECKPOINTS
    )


def test_regenerate_figure3(benchmark, figure3_series, results_dir):
    def one_dataset():
        return build_figure3(
            datasets=["tech-as-skitter"], capacity=CAPACITY, num_checkpoints=5
        )

    benchmark.pedantic(one_dataset, rounds=1, iterations=1)
    save_report(format_figure3(figure3_series), results_dir / "figure3.txt")
    assert len(figure3_series) == len(FIGURE3_DATASETS)
    test_estimates_track_actuals(figure3_series)
    test_confidence_band_coverage(figure3_series)
    test_clustering_tracks_actual(figure3_series)


def test_estimates_track_actuals(figure3_series):
    for entry in figure3_series:
        series = entry.series
        for idx in range(len(series.checkpoints)):
            actual = series.exact_triangles[idx]
            if actual < 1000:
                continue  # ignore the noisy head of the stream
            estimate = series.in_stream[idx].triangles.value
            assert estimate == pytest.approx(actual, rel=0.30), (
                entry.dataset,
                series.checkpoints[idx],
            )


def test_confidence_band_coverage(figure3_series):
    for entry in figure3_series:
        series = entry.series
        covered = 0
        considered = 0
        for idx in range(len(series.checkpoints)):
            actual = series.exact_triangles[idx]
            if actual < 1000:
                continue
            considered += 1
            lb, ub = series.in_stream[idx].triangles.confidence_bounds()
            if lb <= actual <= ub:
                covered += 1
        assert considered > 0
        assert covered >= 0.7 * considered, entry.dataset


def test_clustering_tracks_actual(figure3_series):
    for entry in figure3_series:
        series = entry.series
        final = series.in_stream[-1].clustering.value
        actual = series.exact_clustering[-1]
        assert final == pytest.approx(actual, rel=0.25), entry.dataset
