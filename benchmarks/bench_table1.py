"""Regenerates paper Table 1: GPS in-stream vs post-stream at fixed capacity.

Writes the full table to ``benchmarks/results/table1.txt`` and asserts the
paper's qualitative shape:

* both estimation flavours land within a few percent of the truth;
* in-stream confidence intervals are (on average) no wider than
  post-stream intervals computed from the same sample.
"""

from __future__ import annotations

import pytest

from repro.experiments.datasets import TABLE1_DATASETS
from repro.experiments.reporting import save_report
from repro.experiments.table1 import build_table1, format_table1

CAPACITY = 8_000
RUNS = 2


@pytest.fixture(scope="module")
def table1_rows():
    return build_table1(datasets=TABLE1_DATASETS, capacity=CAPACITY, runs=RUNS)


def test_regenerate_table1(benchmark, table1_rows, results_dir):
    # The timed unit: one full shared-sample GPS run on one dataset.
    def one_dataset():
        return build_table1(
            datasets=["socfb-Penn94"], capacity=CAPACITY, runs=1
        )

    benchmark.pedantic(one_dataset, rounds=1, iterations=1)
    report = format_table1(table1_rows)
    save_report(report, results_dir / "table1.txt")
    assert len(table1_rows) == 3 * len(TABLE1_DATASETS)
    # Shape assertions also run here so `--benchmark-only` enforces them.
    test_table1_error_shape(table1_rows)
    test_table1_in_stream_bounds_tighter(table1_rows)


def test_table1_error_shape(table1_rows):
    triangle_rows = [r for r in table1_rows if r.statistic == "triangles"]
    wedge_rows = [r for r in table1_rows if r.statistic == "wedges"]
    # Paper: in-stream ~<1%, post-stream ~<=2% on average (their scale);
    # at our reduced scale allow a wider but still tight envelope.
    mean_in = sum(r.are_in_stream for r in triangle_rows) / len(triangle_rows)
    mean_post = sum(r.are_post for r in triangle_rows) / len(triangle_rows)
    assert mean_in < 0.10, f"mean in-stream triangle ARE too high: {mean_in:.3f}"
    assert mean_post < 0.15, f"mean post-stream triangle ARE too high: {mean_post:.3f}"
    for row in wedge_rows:
        assert row.are_in_stream < 0.10
        assert row.are_post < 0.15


def test_table1_in_stream_bounds_tighter(table1_rows):
    """The paper's Table 1 observation: in-stream LB/UB are narrower."""
    def width(estimate):
        lb, ub = estimate.confidence_bounds()
        return ub - lb

    tighter = 0
    total = 0
    for row in table1_rows:
        if row.statistic != "triangles":
            continue
        total += 1
        if width(row.in_stream) <= width(row.post_stream):
            tighter += 1
    assert tighter >= 0.7 * total, f"in-stream tighter on only {tighter}/{total}"
