"""Edges/sec micro-benchmark: fused GPS update vs the pre-fix path.

The pre-fix ``GPSUpdate`` paid two O(log m) heap operations (push, then
pop) plus a full adjacency add/remove round-trip on *every* overflow
arrival — even for edges that bounce straight out.  The fused update does
one ``pushpop`` and only touches the adjacency structure when the sample
actually changes.  This script measures both implementations driving the
same streams under uniform and triangle weights and writes the results to
``BENCH_engine.json`` at the repo root, so later PRs have a throughput
trajectory to compare against.

Run standalone (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

from repro.core.priority_sampler import GraphPrioritySampler
from repro.core.records import EdgeRecord
from repro.core.weights import TriangleWeight, UniformWeight
from repro.graph.generators import chung_lu
from repro.streams.stream import EdgeStream

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


class ReferencePrioritySampler(GraphPrioritySampler):
    """The pre-fix update loop, kept as the benchmark baseline.

    Identical sampling distribution (shared seeds select the same sample)
    but pays push + pop and an adjacency insert/remove for every overflow
    arrival.
    """

    def process(self, u, v):
        if u == v:
            self._self_loops += 1
            return None
        if self._sample.has_edge(u, v):
            self._duplicates += 1
            return None
        self._arrivals += 1
        weight = self._weight_fn(u, v, self._sample)
        if not weight > 0.0:
            raise ValueError(f"weight function returned non-positive {weight!r}")
        uniform = 1.0 - self._rng.random()
        record = EdgeRecord(
            u, v, weight=weight, priority=weight / uniform, arrival=self._arrivals
        )
        self._sample.add(record)
        self._heap.push(record)
        if len(self._heap) > self._capacity:
            evicted = self._heap.pop()
            if evicted.priority > self._threshold:
                self._threshold = evicted.priority
            self._sample.remove(evicted)
        return None

    def process_many(self, edges) -> int:
        consumed = 0
        for u, v in edges:
            consumed += 1
            self.process(u, v)
        return consumed


def _best_rate(
    make_sampler: Callable[[], GraphPrioritySampler],
    edges: List[Tuple[int, int]],
    repeats: int,
) -> float:
    """Best-of-``repeats`` throughput in edges/sec."""
    best = 0.0
    for _ in range(repeats):
        sampler = make_sampler()
        started = time.perf_counter()
        sampler.process_many(edges)
        elapsed = time.perf_counter() - started
        best = max(best, len(edges) / elapsed)
    return best


def run_benchmark(smoke: bool, repeats: int) -> Dict:
    if smoke:
        graph = chung_lu(2_000, 10_000, exponent=2.3, seed=42)
        capacity = 1_000
    else:
        graph = chung_lu(10_000, 50_000, exponent=2.3, seed=42)
        capacity = 4_000
    edges = list(EdgeStream.from_graph(graph, seed=0))

    weights = {
        "uniform": UniformWeight,
        "triangle": TriangleWeight,
    }
    results: Dict[str, Dict[str, float]] = {}
    for name, weight_cls in weights.items():
        fused = _best_rate(
            lambda: GraphPrioritySampler(capacity, weight_fn=weight_cls(), seed=7),
            edges, repeats,
        )
        reference = _best_rate(
            lambda: ReferencePrioritySampler(capacity, weight_fn=weight_cls(), seed=7),
            edges, repeats,
        )
        results[name] = {
            "fused_edges_per_sec": round(fused, 1),
            "reference_edges_per_sec": round(reference, 1),
            "speedup": round(fused / reference, 3),
        }
        print(
            f"{name:<9} fused {fused:>12,.0f} e/s   "
            f"reference {reference:>12,.0f} e/s   "
            f"speedup {fused / reference:.2f}x"
        )

    # Shared-seed identity: the two implementations must pick the same
    # sample (the benchmark would be meaningless otherwise).
    a = GraphPrioritySampler(capacity, weight_fn=UniformWeight(), seed=11)
    b = ReferencePrioritySampler(capacity, weight_fn=UniformWeight(), seed=11)
    a.process_many(edges)
    b.process_many(edges)
    assert a.threshold == b.threshold
    assert sorted(r.key for r in a.records()) == sorted(r.key for r in b.records())

    return {
        "benchmark": "engine_throughput",
        "mode": "smoke" if smoke else "full",
        "stream_edges": len(edges),
        "capacity": capacity,
        "repeats": repeats,
        "python": platform.python_version(),
        "results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small stream, single repeat (CI)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repetitions per configuration")
    parser.add_argument("-o", "--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    repeats = args.repeats if args.repeats is not None else (1 if args.smoke else 3)
    if repeats < 1:
        parser.error("--repeats must be at least 1")
    payload = run_benchmark(smoke=args.smoke, repeats=repeats)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
