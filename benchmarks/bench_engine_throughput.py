"""Shim: the engine benchmark now lives in ``python -m repro bench engine``.

Kept so existing invocations (CI, docs, muscle memory) keep working::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [--smoke]

is equivalent to::

    PYTHONPATH=src python -m repro bench engine [--quick]

and writes the same ``BENCH_engine.json`` (compact core vs the object
reference core, uniform + triangle weights, shared-seed identity
asserted before timing).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.bench import DEFAULT_OUTPUTS, run_target

#: The historical default: the repo root, regardless of cwd.
DEFAULT_OUTPUT = (
    Path(__file__).resolve().parent.parent / DEFAULT_OUTPUTS["engine"]
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small stream, single repeat (CI)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repetitions per configuration")
    parser.add_argument("-o", "--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    if args.repeats is not None and args.repeats < 1:
        parser.error("--repeats must be at least 1")
    run_target("engine", quick=args.smoke, repeats=args.repeats,
               output=args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
