"""Micro-benchmarks: the per-edge cost claims of paper Sec. 3.2 (S4).

The paper reports "average update times of a few microseconds per edge"
(C++).  Pure Python pays an interpreter constant, but the asymptotic
shape — O(log m) heap work plus an O(min sampled degree) weight
computation — is what these benches pin down.
"""

from __future__ import annotations

import random

import pytest

from repro.core.priority_sampler import GraphPrioritySampler
from repro.core.records import EdgeRecord
from repro.core.weights import TriangleWeight, UniformWeight
from repro.graph.exact import triangle_count
from repro.graph.generators import chung_lu
from repro.heap.binary_heap import IndexedMinHeap
from repro.streams.stream import EdgeStream


@pytest.fixture(scope="module")
def bench_graph():
    return chung_lu(10_000, 50_000, exponent=2.3, seed=42)


@pytest.fixture(scope="module")
def bench_stream(bench_graph):
    return list(EdgeStream.from_graph(bench_graph, seed=0))


def test_heap_push_pop(benchmark):
    rng = random.Random(0)
    priorities = [rng.random() for _ in range(10_000)]

    def run():
        heap = IndexedMinHeap()
        for priority in priorities:
            heap.push(EdgeRecord(0, 1, weight=1.0, priority=priority))
        while heap:
            heap.pop()

    benchmark(run)


def test_heap_pushpop_steady_state(benchmark):
    rng = random.Random(1)
    heap = IndexedMinHeap()
    for _ in range(4096):
        heap.push(EdgeRecord(0, 1, weight=1.0, priority=rng.random()))
    incoming = [rng.random() for _ in range(10_000)]

    def run():
        for priority in incoming:
            record = EdgeRecord(0, 1, weight=1.0, priority=priority)
            evicted = heap.pushpop(record)
            evicted.heap_pos = -1

    benchmark(run)


@pytest.mark.parametrize("capacity", [1_000, 10_000])
def test_gps_update_throughput_triangle_weight(benchmark, bench_stream, capacity):
    def run():
        sampler = GraphPrioritySampler(capacity, seed=7)
        sampler.process_stream(bench_stream)
        return sampler

    sampler = benchmark(run)
    assert sampler.sample_size == capacity


def test_gps_update_throughput_uniform_weight(benchmark, bench_stream):
    def run():
        sampler = GraphPrioritySampler(4_000, weight_fn=UniformWeight(), seed=7)
        sampler.process_stream(bench_stream)
        return sampler

    benchmark(run)


def test_weight_function_cost(benchmark, bench_stream):
    """The O(min sampled degree) common-neighbour computation in isolation."""
    sampler = GraphPrioritySampler(8_000, seed=3)
    sampler.process_stream(bench_stream)
    sample = sampler.sample
    weight = TriangleWeight()
    probe_edges = bench_stream[:20_000]

    def run():
        total = 0.0
        for u, v in probe_edges:
            total += weight(u, v, sample)
        return total

    benchmark(run)


def test_exact_triangle_count(benchmark, bench_graph):
    result = benchmark(triangle_count, bench_graph)
    assert result > 0
