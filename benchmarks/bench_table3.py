"""Regenerates paper Table 3: triangle tracking error over time.

Writes ``benchmarks/results/table3.txt`` and asserts the paper's method
ordering on every dataset:

    TRIEST  >  TRIEST-IMPR  ≳  GPS POST  ≳  GPS IN-STREAM   (MARE)

with the strict outer inequality (TRIEST worst, GPS in-stream best)
required, and the inner ones allowed small slack since single tracked
runs are noisy.
"""

from __future__ import annotations

import pytest

from repro.experiments.datasets import TABLE3_DATASETS
from repro.experiments.reporting import save_report
from repro.experiments.table3 import build_table3, format_table3

CAPACITY = 4_000
CHECKPOINTS = 16


@pytest.fixture(scope="module")
def table3_rows():
    return build_table3(
        datasets=TABLE3_DATASETS,
        capacity=CAPACITY,
        num_checkpoints=CHECKPOINTS,
    )


def test_regenerate_table3(benchmark, table3_rows, results_dir):
    def one_dataset():
        return build_table3(
            datasets=["soc-youtube-snap"], capacity=CAPACITY, num_checkpoints=6
        )

    benchmark.pedantic(one_dataset, rounds=1, iterations=1)
    save_report(format_table3(table3_rows), results_dir / "table3.txt")
    assert len(table3_rows) == 4 * len(TABLE3_DATASETS)
    test_gps_in_stream_beats_triest_everywhere(table3_rows)
    test_improved_estimators_beat_base_triest(table3_rows)
    test_in_stream_is_best_or_near_best(table3_rows)


def test_gps_in_stream_beats_triest_everywhere(table3_rows):
    for dataset in TABLE3_DATASETS:
        rows = {r.method: r for r in table3_rows if r.dataset == dataset}
        assert rows["gps-in-stream"].mare < rows["triest"].mare, dataset


def test_improved_estimators_beat_base_triest(table3_rows):
    for dataset in TABLE3_DATASETS:
        rows = {r.method: r for r in table3_rows if r.dataset == dataset}
        assert rows["triest-impr"].mare < rows["triest"].mare, dataset
        assert rows["gps-post"].mare < rows["triest"].mare, dataset


def test_in_stream_is_best_or_near_best(table3_rows):
    for dataset in TABLE3_DATASETS:
        rows = {r.method: r for r in table3_rows if r.dataset == dataset}
        best = min(r.mare for r in rows.values())
        assert rows["gps-in-stream"].mare <= 1.5 * best + 1e-9, dataset
