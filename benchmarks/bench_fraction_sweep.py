"""Budget sweep: where the GPS-vs-baseline crossover falls.

The paper's Table 2 operates at sub-1% sampling fractions where GPS
dominates; our stand-ins run at a few percent where MASCOT narrows the gap
(EXPERIMENTS.md).  This bench maps the transition explicitly: the relative RMSE
(sqrt(E[(X̂−X)²])/X, capturing both spread and collapse-to-zero bias) of
GPS in-stream, MASCOT and TRIEST as the memory budget shrinks from ~18%
to ~1% of the stream.

Assertions encode the claimed shape: at the *smallest* budget GPS
in-stream has the lowest spread of the three, and TRIEST degrades fastest
as budgets shrink.

Writes ``benchmarks/results/fraction_sweep.txt``.
"""

from __future__ import annotations

import pytest

from repro.experiments.datasets import get_statistics, make_graph
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_baseline
from repro.stats.metrics import normalized_rmse

DATASET = "higgs-social-network"
BUDGETS = (500, 1_000, 2_000, 4_000, 8_000)
METHODS = ("gps-in-stream", "mascot", "triest")
RUNS = 6


@pytest.fixture(scope="module")
def sweep_results():
    graph = make_graph(DATASET)
    exact = get_statistics(DATASET)
    table = {}
    for budget in BUDGETS:
        for method in METHODS:
            estimates = []
            for run in range(RUNS):
                result = run_baseline(
                    method,
                    graph,
                    exact,
                    budget=budget,
                    stream_seed=run,
                    seed=700 + run,
                )
                estimates.append(result.estimate)
            table[(budget, method)] = normalized_rmse(estimates, exact.triangles)
    return table


def test_fraction_sweep(benchmark, sweep_results, results_dir):
    graph = make_graph(DATASET)
    exact = get_statistics(DATASET)
    benchmark.pedantic(
        lambda: run_baseline(
            "gps-in-stream", graph, exact, budget=2_000, stream_seed=0, seed=1
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    for budget in BUDGETS:
        rows.append(
            [
                budget,
                f"{budget / exact.num_edges:.3f}",
                *(f"{sweep_results[(budget, m)]:.3f}" for m in METHODS),
            ]
        )
    report = format_table(
        headers=["budget", "fraction", *METHODS],
        rows=rows,
        title=f"Relative RMSE vs budget — {DATASET}, {RUNS} runs",
    )
    (results_dir / "fraction_sweep.txt").write_text(report + "\n", encoding="utf-8")
    test_gps_wins_at_small_fractions(sweep_results)
    test_triest_degrades_fastest(sweep_results)
    test_spread_shrinks_with_budget(sweep_results)


def test_gps_wins_at_small_fractions(sweep_results):
    smallest = BUDGETS[0]
    gps = sweep_results[(smallest, "gps-in-stream")]
    assert gps <= sweep_results[(smallest, "mascot")]
    assert gps <= sweep_results[(smallest, "triest")]


def test_triest_degrades_fastest(sweep_results):
    """TRIEST's error grows faster than GPS's as the budget shrinks."""
    small, large = BUDGETS[0], BUDGETS[-1]
    triest_blowup = sweep_results[(small, "triest")] / max(
        1e-12, sweep_results[(large, "triest")]
    )
    gps_blowup = sweep_results[(small, "gps-in-stream")] / max(
        1e-12, sweep_results[(large, "gps-in-stream")]
    )
    assert triest_blowup > gps_blowup


def test_spread_shrinks_with_budget(sweep_results):
    for method in METHODS:
        small = sweep_results[(BUDGETS[0], method)]
        large = sweep_results[(BUDGETS[-1], method)]
        assert large < small, method
