"""Regenerates paper Figure 1: x̂/x scatter for triangles and wedges.

Writes ``benchmarks/results/figure1.txt`` and asserts the figure's visual
content: every dataset's (triangle ratio, wedge ratio) point sits close to
(1, 1).  The paper reports ±0.6% at 100K samples on graphs with millions
of triangles; our reduced-scale envelope is ±10% for triangles and ±5%
for wedges, averaged tighter.
"""

from __future__ import annotations

import pytest

from repro.experiments.datasets import FIGURE1_DATASETS
from repro.experiments.figure1 import build_figure1, format_figure1
from repro.experiments.reporting import save_report

CAPACITY = 8_000


@pytest.fixture(scope="module")
def figure1_points():
    return build_figure1(datasets=FIGURE1_DATASETS, capacity=CAPACITY)


def test_regenerate_figure1(benchmark, figure1_points, results_dir):
    def one_dataset():
        return build_figure1(datasets=["web-google"], capacity=CAPACITY)

    benchmark.pedantic(one_dataset, rounds=1, iterations=1)
    save_report(format_figure1(figure1_points), results_dir / "figure1.txt")
    assert len(figure1_points) == len(FIGURE1_DATASETS)
    test_points_cluster_at_unity(figure1_points)


def test_points_cluster_at_unity(figure1_points):
    for point in figure1_points:
        assert abs(point.triangle_ratio - 1.0) < 0.10, point
        assert abs(point.wedge_ratio - 1.0) < 0.05, point
    mean_tri_dev = sum(
        abs(p.triangle_ratio - 1.0) for p in figure1_points
    ) / len(figure1_points)
    assert mean_tri_dev < 0.05
