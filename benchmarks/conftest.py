"""Benchmark-suite configuration.

Every bench writes its paper-artefact table to ``benchmarks/results/`` so
the regenerated Tables 1-3 and Figures 1-3 are inspectable after a run
(`pytest benchmarks/ --benchmark-only`), independent of pytest's stdout
capture.  The pytest-benchmark timing table printed at the end covers the
performance side (µs/edge claims).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
