"""Shim: the sweep benchmark now lives in ``python -m repro bench sweep``.

Kept so existing invocations (CI, docs) keep working::

    PYTHONPATH=src python benchmarks/bench_sweep_cache.py [--smoke]

is equivalent to::

    PYTHONPATH=src python -m repro bench sweep [--quick]

and writes the same ``BENCH_sweep.json`` (cold grid vs cache-resumed
grid, bit-identical replay asserted).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.bench import DEFAULT_OUTPUTS, run_target

#: The historical default: the repo root, regardless of cwd.
DEFAULT_OUTPUT = (
    Path(__file__).resolve().parent.parent / DEFAULT_OUTPUTS["sweep"]
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small stream (CI)")
    parser.add_argument("-o", "--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    run_target("sweep", quick=args.smoke, output=args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
