"""Sweep-throughput benchmark: cold grid vs cache-resumed grid.

The sweep subsystem's pitch is that grid evaluation stops paying for
redundancy: exact ground truth is computed once per source (not once
per cell), and a resumed sweep replays finished cells from the
content-addressed cache instead of re-streaming them.  This script
measures both effects on one grid — a cold run into a fresh cache
directory, then the same sweep with ``--resume`` semantics — verifies
the resumed estimates are bit-identical, and writes the trajectory to
``BENCH_sweep.json`` at the repo root.

Run standalone (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_sweep_cache.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import platform
import tempfile
import time
from pathlib import Path

from repro.api.sweep import SweepSpec, run_sweep
from repro.graph.generators import chung_lu
from repro.graph.io import write_edge_list

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


def build_spec(source: str, smoke: bool) -> SweepSpec:
    if smoke:
        return SweepSpec(
            sources=(source,),
            methods=("gps-post", "triest"),
            budgets=(500, 1000),
            runs=2,
            workers=0,
        )
    return SweepSpec(
        sources=(source,),
        methods=("gps-post", "gps-in-stream", "triest", "triest-impr"),
        budgets=(1000, 2000, 4000),
        runs=4,
        workers=0,
    )


def run_benchmark(smoke: bool) -> dict:
    graph = (
        chung_lu(2_000, 10_000, exponent=2.3, seed=42)
        if smoke
        else chung_lu(10_000, 50_000, exponent=2.3, seed=42)
    )
    with tempfile.TemporaryDirectory() as tmp:
        source = str(Path(tmp) / "bench_graph.txt")
        write_edge_list(graph, source)
        spec = build_spec(source, smoke)
        cache = Path(tmp) / "cache"

        started = time.perf_counter()
        cold = run_sweep(spec, cache_dir=cache)
        cold_seconds = time.perf_counter() - started

        started = time.perf_counter()
        warm = run_sweep(spec, cache_dir=cache, resume=True)
        warm_seconds = time.perf_counter() - started

    # Identity check: a resumed sweep must replay the very same numbers
    # (the benchmark would be meaningless otherwise).
    assert warm.cell_cache_hits == sum(c.runs for c in warm.cells)
    assert warm.ground_truth_misses == 0
    for a, b in zip(cold.cells, warm.cells):
        assert a.triangles.mean == b.triangles.mean
        assert a.relative_error == b.relative_error

    replications = sum(c.runs for c in cold.cells)
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    print(
        f"{len(cold.cells)} cells / {replications} replications: "
        f"cold {cold_seconds:.3f}s, resumed {warm_seconds:.3f}s "
        f"({speedup:.1f}x)"
    )
    return {
        "benchmark": "sweep_cache",
        "mode": "smoke" if smoke else "full",
        "stream_edges": graph.num_edges,
        "cells": len(cold.cells),
        "replications": replications,
        "python": platform.python_version(),
        "results": {
            "cold_seconds": round(cold_seconds, 4),
            "resumed_seconds": round(warm_seconds, 4),
            "speedup": round(speedup, 2),
            "ground_truth_recounts_cold": cold.ground_truth_misses,
            "ground_truth_recounts_resumed": warm.ground_truth_misses,
            "cells_replayed_resumed": warm.cell_cache_hits,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small stream (CI)")
    parser.add_argument("-o", "--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    payload = run_benchmark(smoke=args.smoke)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
