"""Regenerates paper Figure 2: convergence of x̂/x with bounds vs capacity.

Writes ``benchmarks/results/figure2.txt`` and asserts the panels' shape:
confidence intervals tighten as the capacity grows, and the largest
capacity's ratio is close to 1 on every dataset.
"""

from __future__ import annotations

import pytest

from repro.experiments.datasets import FIGURE2_DATASETS
from repro.experiments.figure2 import build_figure2, format_figure2
from repro.experiments.reporting import save_report

CAPACITIES = (1_000, 4_000, 16_000)


@pytest.fixture(scope="module")
def figure2_points():
    return build_figure2(datasets=FIGURE2_DATASETS, capacities=CAPACITIES)


def test_regenerate_figure2(benchmark, figure2_points, results_dir):
    def one_point():
        return build_figure2(datasets=["web-google"], capacities=(4_000,))

    benchmark.pedantic(one_point, rounds=1, iterations=1)
    save_report(format_figure2(figure2_points), results_dir / "figure2.txt")
    assert len(figure2_points) == len(FIGURE2_DATASETS) * len(CAPACITIES)
    test_intervals_tighten_with_capacity(figure2_points)
    test_largest_capacity_is_accurate(figure2_points)
    test_bounds_always_bracket_ratio(figure2_points)


def test_intervals_tighten_with_capacity(figure2_points):
    for dataset in FIGURE2_DATASETS:
        widths = [
            p.interval_width
            for p in figure2_points
            if p.dataset == dataset
        ]
        assert widths[-1] < widths[0], dataset


def test_largest_capacity_is_accurate(figure2_points):
    for dataset in FIGURE2_DATASETS:
        best = [p for p in figure2_points if p.dataset == dataset][-1]
        assert abs(best.ratio - 1.0) < 0.08, (dataset, best.ratio)


def test_bounds_always_bracket_ratio(figure2_points):
    for point in figure2_points:
        assert point.lower_ratio <= point.ratio <= point.upper_ratio
