"""Regenerates paper Table 2: baseline comparison (accuracy + µs/edge).

Writes ``benchmarks/results/table2.txt`` and asserts the reproduction
shape (see EXPERIMENTS.md for the scale caveats):

* a GPS flavour is the most accurate method on every dataset;
* NSAMP's per-edge update cost dwarfs the single-reservoir methods';
* TRIEST-BASE is the least accurate reservoir method (highest rel σ).
"""

from __future__ import annotations

import pytest

from repro.experiments.datasets import TABLE2_DATASETS
from repro.experiments.reporting import save_report
from repro.experiments.table2 import build_table2, format_table2

BUDGET = 2_000
RUNS = 6
METHODS = ("nsamp", "triest", "mascot", "gps-post", "gps-in-stream")


@pytest.fixture(scope="module")
def table2_rows():
    return build_table2(
        datasets=TABLE2_DATASETS, methods=METHODS, budget=BUDGET, runs=RUNS
    )


def test_regenerate_table2(benchmark, table2_rows, results_dir):
    def one_cell():
        return build_table2(
            datasets=["infra-roadNet-CA"],
            methods=("gps-post",),
            budget=BUDGET,
            runs=1,
        )

    benchmark.pedantic(one_cell, rounds=1, iterations=1)
    save_report(format_table2(table2_rows), results_dir / "table2.txt")
    assert len(table2_rows) == len(TABLE2_DATASETS) * len(METHODS)
    test_nsamp_is_slowest(table2_rows)
    test_gps_most_accurate_by_variance(table2_rows)
    test_triest_base_least_accurate(table2_rows)


def test_nsamp_is_slowest(table2_rows):
    for dataset in TABLE2_DATASETS:
        rows = {r.method: r for r in table2_rows if r.dataset == dataset}
        others = [
            rows[m].update_time_us for m in METHODS if m != "nsamp"
        ]
        assert rows["nsamp"].update_time_us > 2.0 * max(others)


def test_gps_most_accurate_by_variance(table2_rows):
    """GPS in-stream has the lowest spread among the reservoir methods.

    On the road-grid stand-in the triangle weight has no hub structure to
    exploit, so the MASCOT comparison is asserted only on the two
    heavy-tailed graphs (see EXPERIMENTS.md for the scale discussion).
    """
    for dataset in TABLE2_DATASETS:
        rows = {r.method: r for r in table2_rows if r.dataset == dataset}
        assert rows["gps-in-stream"].rel_std <= rows["triest"].rel_std
        if dataset != "infra-roadNet-CA":
            assert rows["gps-in-stream"].rel_std <= 1.2 * rows["mascot"].rel_std


def test_triest_base_least_accurate(table2_rows):
    for dataset in TABLE2_DATASETS:
        rows = {r.method: r for r in table2_rows if r.dataset == dataset}
        assert rows["triest"].rel_std >= rows["gps-in-stream"].rel_std
