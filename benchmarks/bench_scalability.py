"""Scalability bench: per-edge update cost vs reservoir capacity (S4).

The paper analyses GPS updates as O(log m) heap work plus the weight
computation.  Doubling the capacity several times over should therefore
change per-edge cost only mildly (logarithmically), not linearly — this
bench makes the claim measurable and regression-guarded.
"""

from __future__ import annotations

import time

import pytest

from repro.core.priority_sampler import GraphPrioritySampler
from repro.graph.generators import chung_lu
from repro.streams.stream import EdgeStream


@pytest.fixture(scope="module")
def scalability_stream():
    graph = chung_lu(12_000, 60_000, exponent=2.3, seed=11)
    return list(EdgeStream.from_graph(graph, seed=1))


@pytest.mark.parametrize("capacity", [500, 2_000, 8_000, 32_000])
def test_update_cost_vs_capacity(benchmark, scalability_stream, capacity):
    def run():
        sampler = GraphPrioritySampler(capacity, seed=5)
        sampler.process_stream(scalability_stream)
        return sampler

    benchmark(run)


def test_update_cost_grows_sublinearly(benchmark, scalability_stream, results_dir):
    """64x more capacity must cost far less than 64x more time per edge."""
    timings = {}
    for capacity in (500, 32_000):
        started = time.perf_counter()
        sampler = GraphPrioritySampler(capacity, seed=5)
        sampler.process_stream(scalability_stream)
        timings[capacity] = time.perf_counter() - started
    benchmark.pedantic(
        lambda: GraphPrioritySampler(32_000, seed=5).process_stream(
            scalability_stream
        ),
        rounds=1,
        iterations=1,
    )
    ratio = timings[32_000] / timings[500]
    (results_dir / "scalability.txt").write_text(
        "GPS per-edge update cost vs capacity (same 60K-edge stream)\n"
        + "\n".join(
            f"m={capacity:>6}: {elapsed / len(scalability_stream) * 1e6:.2f} µs/edge"
            for capacity, elapsed in sorted(timings.items())
        )
        + f"\nratio (m=32000 / m=500): {ratio:.2f}x\n",
        encoding="utf-8",
    )
    assert ratio < 8.0, f"update cost scaled {ratio:.1f}x for 64x capacity"
