"""Tests for exact triangle/wedge/clustering counting (the ground truth).

Cross-validated against networkx (test dependency only) and against
hand-computable closed forms on structured graphs.
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.exact import (
    ExactStreamCounter,
    compute_statistics,
    global_clustering,
    local_clustering,
    per_edge_triangles,
    per_node_triangles,
    triangle_count,
    wedge_count,
)
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)


def comb2(n: int) -> int:
    return n * (n - 1) // 2


def comb3(n: int) -> int:
    return n * (n - 1) * (n - 2) // 6


class TestClosedForms:
    @pytest.mark.parametrize("n", [3, 4, 5, 8, 12])
    def test_complete_graph_counts(self, n):
        graph = complete_graph(n)
        assert triangle_count(graph) == comb3(n)
        assert wedge_count(graph) == 3 * comb3(n)
        assert global_clustering(graph) == pytest.approx(1.0)

    @pytest.mark.parametrize("leaves", [1, 2, 5, 10])
    def test_star_counts(self, leaves):
        graph = star_graph(leaves)
        assert triangle_count(graph) == 0
        assert wedge_count(graph) == comb2(leaves)

    @pytest.mark.parametrize("n", [3, 4, 5, 10])
    def test_cycle_counts(self, n):
        graph = cycle_graph(n)
        assert triangle_count(graph) == (1 if n == 3 else 0)
        assert wedge_count(graph) == n

    @pytest.mark.parametrize("n", [1, 2, 3, 7])
    def test_path_counts(self, n):
        graph = path_graph(n)
        assert triangle_count(graph) == 0
        assert wedge_count(graph) == max(0, n - 2)

    def test_empty_graph(self):
        graph = AdjacencyGraph()
        assert triangle_count(graph) == 0
        assert wedge_count(graph) == 0
        assert global_clustering(graph) == 0.0

    def test_diamond(self, diamond_graph):
        assert triangle_count(diamond_graph) == 2
        assert wedge_count(diamond_graph) == 8
        assert global_clustering(diamond_graph) == pytest.approx(6 / 8)


class TestPerElementCounts:
    def test_per_edge_triangles_diamond(self, diamond_graph):
        counts = per_edge_triangles(diamond_graph)
        assert counts[(1, 2)] == 2
        assert counts[(0, 1)] == 1
        assert counts[(1, 3)] == 1

    def test_per_node_triangles_k4(self, k4_graph):
        counts = per_node_triangles(k4_graph)
        assert all(count == 3 for count in counts.values())

    def test_per_node_sums_to_three_triangles(self, diamond_graph):
        counts = per_node_triangles(diamond_graph)
        assert sum(counts.values()) == 3 * triangle_count(diamond_graph)

    def test_local_clustering(self, diamond_graph):
        assert local_clustering(diamond_graph, 0) == pytest.approx(1.0)
        assert local_clustering(diamond_graph, 1) == pytest.approx(2 / 3)

    def test_local_clustering_degree_below_two(self):
        graph = AdjacencyGraph([(0, 1)])
        assert local_clustering(graph, 0) == 0.0


class TestStatisticsBundle:
    def test_compute_statistics(self, diamond_graph):
        stats = compute_statistics(diamond_graph)
        assert stats.num_nodes == 4
        assert stats.num_edges == 5
        assert stats.triangles == 2
        assert stats.wedges == 8
        assert stats.clustering == pytest.approx(0.75)

    def test_as_dict_round_trip(self, diamond_graph):
        stats = compute_statistics(diamond_graph)
        data = stats.as_dict()
        assert data["triangles"] == 2
        assert set(data) == {
            "num_nodes", "num_edges", "triangles", "wedges", "clustering",
        }


edge_lists = st.lists(
    st.tuples(st.integers(0, 25), st.integers(0, 25)), min_size=0, max_size=150
)


@settings(max_examples=100, deadline=None)
@given(edge_lists)
def test_triangles_match_networkx(pairs):
    graph = AdjacencyGraph(pairs)
    reference = nx.Graph()
    reference.add_nodes_from(graph.nodes())
    reference.add_edges_from(graph.edges())
    expected = sum(nx.triangles(reference).values()) // 3
    assert triangle_count(graph) == expected


@settings(max_examples=100, deadline=None)
@given(edge_lists)
def test_clustering_matches_networkx(pairs):
    graph = AdjacencyGraph(pairs)
    reference = nx.Graph()
    reference.add_nodes_from(graph.nodes())
    reference.add_edges_from(graph.edges())
    assert global_clustering(graph) == pytest.approx(
        nx.transitivity(reference), abs=1e-12
    )


class TestExactStreamCounter:
    def test_matches_batch_counts_on_stream(self, medium_graph):
        counter = ExactStreamCounter()
        for u, v in medium_graph.edges():
            counter.process(u, v)
        assert counter.triangles == triangle_count(medium_graph)
        assert counter.wedges == wedge_count(medium_graph)
        assert counter.clustering == pytest.approx(global_clustering(medium_graph))

    def test_prefix_counts_match_batch(self, social_graph):
        edges = social_graph.edge_list()
        counter = ExactStreamCounter()
        checkpoints = [len(edges) // 4, len(edges) // 2, len(edges)]
        prefix = AdjacencyGraph()
        next_mark = 0
        for idx, (u, v) in enumerate(edges, start=1):
            counter.process(u, v)
            prefix.add_edge(u, v)
            if next_mark < len(checkpoints) and idx == checkpoints[next_mark]:
                assert counter.triangles == triangle_count(prefix)
                assert counter.wedges == wedge_count(prefix)
                next_mark += 1

    def test_ignores_duplicates_and_loops(self):
        counter = ExactStreamCounter()
        assert counter.process(0, 1)
        assert not counter.process(1, 0)
        assert not counter.process(2, 2)
        assert counter.edges_seen == 1

    def test_process_many(self, k4_graph):
        counter = ExactStreamCounter()
        counter.process_many(k4_graph.edges())
        assert counter.triangles == 4
        assert counter.wedges == 12

    def test_graph_view_tracks_prefix(self):
        counter = ExactStreamCounter()
        counter.process(0, 1)
        counter.process(1, 2)
        assert counter.graph.num_edges == 2
        assert counter.graph.has_edge(0, 1)

    def test_empty_clustering_is_zero(self):
        assert ExactStreamCounter().clustering == 0.0
