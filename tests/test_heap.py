"""Unit and property tests for the indexed binary min-heap."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import EdgeRecord
from repro.heap.binary_heap import IndexedMinHeap


def record(priority: float) -> EdgeRecord:
    return EdgeRecord(0, 1, weight=1.0, priority=priority)


def heap_of(priorities) -> IndexedMinHeap:
    heap = IndexedMinHeap()
    for p in priorities:
        heap.push(record(p))
    return heap


class TestBasics:
    def test_empty_heap(self):
        heap = IndexedMinHeap()
        assert len(heap) == 0
        assert not heap
        assert heap.min_priority() is None

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedMinHeap().peek()

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedMinHeap().pop()

    def test_push_and_peek(self):
        heap = heap_of([5.0, 1.0, 3.0])
        assert heap.peek().priority == 1.0
        assert len(heap) == 3

    def test_pop_returns_sorted_order(self):
        heap = heap_of([5.0, 1.0, 3.0, 2.0, 4.0])
        assert [heap.pop().priority for _ in range(5)] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_push_duplicate_item_rejected(self):
        heap = IndexedMinHeap()
        item = record(1.0)
        heap.push(item)
        with pytest.raises(ValueError):
            heap.push(item)

    def test_contains(self):
        heap = IndexedMinHeap()
        inside = record(1.0)
        outside = record(2.0)
        heap.push(inside)
        assert inside in heap
        assert outside not in heap

    def test_popped_item_not_contained(self):
        heap = IndexedMinHeap()
        item = record(1.0)
        heap.push(item)
        heap.pop()
        assert item not in heap
        assert item.heap_pos == -1

    def test_iteration_covers_all_items(self):
        heap = heap_of([3.0, 1.0, 2.0])
        assert sorted(item.priority for item in heap) == [1.0, 2.0, 3.0]

    def test_clear(self):
        heap = heap_of([1.0, 2.0])
        heap.clear()
        assert len(heap) == 0
        assert heap.is_valid()

    def test_ties_are_handled(self):
        heap = heap_of([2.0, 2.0, 2.0, 1.0])
        assert heap.pop().priority == 1.0
        assert all(heap.pop().priority == 2.0 for _ in range(3))


class TestRemoveAndUpdate:
    def test_remove_arbitrary_item(self):
        heap = IndexedMinHeap()
        items = [record(p) for p in (4.0, 2.0, 6.0, 1.0, 5.0)]
        for item in items:
            heap.push(item)
        heap.remove(items[0])
        assert items[0] not in heap
        assert heap.is_valid()
        assert [heap.pop().priority for _ in range(4)] == [1.0, 2.0, 5.0, 6.0]

    def test_remove_missing_raises(self):
        heap = heap_of([1.0])
        with pytest.raises(ValueError):
            heap.remove(record(1.0))

    def test_update_priority_down(self):
        heap = IndexedMinHeap()
        items = [record(p) for p in (5.0, 3.0, 4.0)]
        for item in items:
            heap.push(item)
        heap.update_priority(items[0], 0.5)
        assert heap.peek() is items[0]
        assert heap.is_valid()

    def test_update_priority_up(self):
        heap = IndexedMinHeap()
        items = [record(p) for p in (1.0, 3.0, 4.0)]
        for item in items:
            heap.push(item)
        heap.update_priority(items[0], 10.0)
        assert heap.peek() is items[1]
        assert heap.is_valid()

    def test_update_missing_raises(self):
        heap = heap_of([1.0])
        with pytest.raises(ValueError):
            heap.update_priority(record(2.0), 5.0)


class TestPushPop:
    def test_pushpop_on_empty_returns_item(self):
        heap = IndexedMinHeap()
        item = record(3.0)
        assert heap.pushpop(item) is item
        assert len(heap) == 0

    def test_pushpop_smaller_than_min_bounces(self):
        heap = heap_of([5.0])
        item = record(1.0)
        assert heap.pushpop(item) is item
        assert len(heap) == 1
        assert heap.peek().priority == 5.0

    def test_pushpop_larger_than_min_swaps(self):
        heap = IndexedMinHeap()
        low = record(1.0)
        heap.push(low)
        high = record(9.0)
        assert heap.pushpop(high) is low
        assert heap.peek() is high
        assert low.heap_pos == -1

    def test_pushpop_equals_push_then_pop(self):
        rng = random.Random(0)
        for _trial in range(50):
            priorities = [rng.random() for _ in range(rng.randrange(1, 20))]
            incoming = rng.random()
            reference = heap_of(priorities)
            reference.push(record(incoming))
            expected = reference.pop().priority
            subject = heap_of(priorities)
            assert subject.pushpop(record(incoming)).priority == expected
            assert subject.is_valid()


@settings(max_examples=200, deadline=None)
@given(st.lists(st.floats(min_value=0.001, max_value=1e9), max_size=64))
def test_heap_sorts_any_input(priorities):
    heap = heap_of(priorities)
    assert heap.is_valid()
    drained = [heap.pop().priority for _ in range(len(priorities))]
    assert drained == sorted(priorities)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["push", "pop", "remove"]), st.floats(0.001, 1e6)),
        max_size=80,
    )
)
def test_random_operation_sequences_keep_invariant(operations):
    heap = IndexedMinHeap()
    rng = random.Random(42)
    live = []
    for op, priority in operations:
        if op == "push":
            item = record(priority)
            heap.push(item)
            live.append(item)
        elif op == "pop" and live:
            popped = heap.pop()
            assert popped.priority == min(i.priority for i in live)
            live.remove(popped)
        elif op == "remove" and live:
            victim = live.pop(rng.randrange(len(live)))
            heap.remove(victim)
        assert heap.is_valid()
    assert len(heap) == len(live)


def test_large_random_workload_matches_sorted_reference():
    rng = random.Random(7)
    priorities = [rng.random() for _ in range(5000)]
    heap = heap_of(priorities)
    assert heap.is_valid()
    out = [heap.pop().priority for _ in range(len(priorities))]
    assert out == sorted(priorities)
