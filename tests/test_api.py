"""Tests for the declarative repro.api facade (registry, specs, run)."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    RunSpec,
    baseline_method_names,
    get_method,
    get_weight,
    method_names,
    register_method,
    register_weight,
    replicate,
    run,
    weight_names,
)
from repro.api.registry import _METHODS, _WEIGHTS
from repro.baselines.triest import TriestBase, TriestImpr
from repro.core.in_stream import InStreamEstimator
from repro.core.weights import TriangleWeight, UniformWeight
from repro.graph.exact import compute_statistics
from repro.graph.generators import powerlaw_cluster
from repro.streams.stream import EdgeStream


@pytest.fixture(scope="module")
def api_graph():
    return powerlaw_cluster(300, 3, 0.5, seed=13)


@pytest.fixture(scope="module")
def api_stats(api_graph):
    return compute_statistics(api_graph)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_methods_registered(self):
        names = set(method_names())
        assert {
            "gps", "gps-post", "gps-in-stream", "triest", "triest-impr",
            "mascot", "mascot-c", "nsamp", "jsp", "gsh", "buriol",
        } <= names
        assert set(baseline_method_names()) == names - {"gps"}

    def test_builtin_weights_registered(self):
        assert {"triangle", "uniform", "wedge"} <= set(weight_names())
        assert isinstance(get_weight("uniform").factory(), UniformWeight)
        assert isinstance(get_weight("triangle").factory(), TriangleWeight)

    def test_unknown_method_lists_known_names(self):
        with pytest.raises(ValueError, match="unknown method 'nope'.*triest"):
            get_method("nope")

    def test_unknown_weight_lists_known_names(self):
        with pytest.raises(ValueError, match="unknown weight 'nope'.*uniform"):
            get_weight("nope")

    def test_register_and_lookup_custom_method(self):
        try:
            @register_method("test-custom", description="custom for tests")
            def make_custom(budget, stream_length, seed):
                return TriestBase(budget, seed=seed)

            spec = get_method("test-custom")
            counter = spec.make(10, 100, 0)
            assert isinstance(counter, TriestBase)
            assert spec.extract(counter) == {"triangles": 0.0}
        finally:
            _METHODS.pop("test-custom", None)

    def test_duplicate_method_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_method("triest")(lambda budget, n, seed: None)

    def test_duplicate_weight_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_weight("uniform")(UniformWeight)

    def test_custom_weight_round_trip(self):
        try:
            register_weight("test-uniform2")(lambda: UniformWeight(2.0))
            weight = get_weight("test-uniform2").factory()
            assert weight.constant == 2.0
        finally:
            _WEIGHTS.pop("test-uniform2", None)

    def test_budget_interpretation_validates(self):
        with pytest.raises(ValueError, match="budget"):
            get_method("triest").make(0, 100, 0)


# ----------------------------------------------------------------------
# RunSpec
# ----------------------------------------------------------------------
class TestRunSpec:
    def test_json_round_trip(self):
        replicated = RunSpec(
            source="infra-roadNet-CA", method="triest-impr", budget=400,
            weight="uniform", stream_seed=3, sampler_seed=9,
            replications=4, workers=2,
        )
        tracking = replicated.replace(replications=1, workers=None,
                                      checkpoints=5)
        for spec in (replicated, tracking):
            assert RunSpec.from_json(spec.to_json()) == spec
            assert RunSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_defaults_round_trip(self):
        spec = RunSpec(source="x")
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown RunSpec fields"):
            RunSpec.from_dict({"source": "x", "frobnicate": 1})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"source": ""},
            {"source": "x", "budget": 0},
            {"source": "x", "checkpoints": -1},
            {"source": "x", "replications": 0},
            {"source": "x", "workers": -1},
            {"source": "x", "replications": 2, "stream_seed": None},
            {"source": "x", "replications": 2, "checkpoints": 3},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RunSpec(**kwargs)

    def test_replace(self):
        spec = RunSpec(source="x", budget=10)
        other = spec.replace(budget=20, method="triest")
        assert other.budget == 20 and other.method == "triest"
        assert spec.budget == 10  # original untouched


# ----------------------------------------------------------------------
# run(spec): equivalence with the legacy hand-rolled paths
# ----------------------------------------------------------------------
class TestRunEquivalence:
    def test_gps_matches_direct_estimator_pass(self, api_graph):
        """run(spec) is bit-identical to the hand-rolled GPS protocol."""
        report = run(
            RunSpec(source="<g>", method="gps", budget=150,
                    stream_seed=2, sampler_seed=5),
            graph=api_graph,
        )
        direct = InStreamEstimator(150, seed=5)
        direct.process_stream(EdgeStream.from_graph(api_graph, seed=2))
        assert report.estimates["in_stream_triangles"] == direct.triangle_estimate
        assert report.estimates["in_stream_wedges"] == direct.wedge_estimate
        assert report.in_stream.triangles.value == direct.triangle_estimate
        assert report.threshold == direct.sampler.threshold
        assert report.sample_size == direct.sampler.sample_size

    def test_baseline_matches_direct_counter_pass(self, api_graph):
        report = run(
            RunSpec(source="<g>", method="triest-impr", budget=120,
                    stream_seed=1, sampler_seed=7),
            graph=api_graph,
        )
        direct = TriestImpr(120, seed=7)
        for u, v in EdgeStream.from_graph(api_graph, seed=1):
            direct.process(u, v)
        assert report.estimates["triangles"] == direct.triangle_estimate

    def test_run_matches_legacy_run_gps_shim(self, api_graph, api_stats):
        from repro.experiments.runner import run_gps

        legacy = run_gps(api_graph, api_stats, capacity=130, stream_seed=4,
                         sampler_seed=6)
        report = run(
            RunSpec(source="<g>", method="gps", budget=130,
                    stream_seed=4, sampler_seed=6),
            graph=api_graph,
        )
        assert report.in_stream.triangles.value == legacy.in_stream.triangles.value
        assert report.post_stream.triangles.value == (
            legacy.post_stream.triangles.value
        )

    def test_run_matches_legacy_run_baseline_shim(self, api_graph, api_stats):
        from repro.experiments.runner import run_baseline

        for method in ("triest", "mascot", "gps-post"):
            legacy = run_baseline(method, api_graph, api_stats, budget=100,
                                  stream_seed=0, seed=3)
            report = run(
                RunSpec(source="<g>", method=method, budget=100,
                        stream_seed=0, sampler_seed=3),
                graph=api_graph,
            )
            assert report.estimates["triangles"] == legacy.estimate

    def test_unknown_method_raises(self, api_graph):
        with pytest.raises(ValueError, match="unknown method"):
            run(RunSpec(source="<g>", method="nope"), graph=api_graph)

    def test_weight_on_weight_free_method_rejected(self, api_graph):
        with pytest.raises(ValueError, match="does not use a weight"):
            run(RunSpec(source="<g>", method="triest", budget=50,
                        weight="wedge"), graph=api_graph)

    def test_lazy_file_pass_matches_materialised_pass(self, api_graph, tmp_path):
        """sample-style runs stream files lazily with identical results."""
        from repro.graph.io import write_edge_list

        path = str(tmp_path / "lazy.txt")
        write_edge_list(api_graph, path)
        lazy = run(RunSpec(source=path, method="gps", budget=90,
                           stream_seed=None, sampler_seed=4))
        # Dataset-style resolution materialises; same file via a permuted
        # seedless EdgeStream equivalent: drive the estimator directly.
        from repro.graph.io import iter_edge_list
        from repro.streams.transforms import simplify_edges

        direct = InStreamEstimator(90, seed=4)
        direct.process_stream(simplify_edges(iter_edge_list(path)))
        assert lazy.estimates["in_stream_triangles"] == direct.triangle_estimate
        assert lazy.threshold == direct.sampler.threshold

    def test_unresolvable_source_raises(self):
        with pytest.raises(ValueError, match="cannot resolve source"):
            run(RunSpec(source="no-such-dataset-or-file"))


# ----------------------------------------------------------------------
# run(spec): tracking and replicated modes
# ----------------------------------------------------------------------
class TestRunModes:
    def test_tracking_pass_records_checkpoints(self, api_graph):
        report = run(
            RunSpec(source="<g>", method="gps", budget=100, checkpoints=5),
            graph=api_graph, include_post=True,
        )
        assert report.mode == "track"
        positions = [p.position for p in report.tracking]
        stream = EdgeStream.from_graph(api_graph, seed=0)
        assert positions == stream.checkpoints(5)
        last = report.tracking[-1]
        exact = compute_statistics(api_graph)
        assert last.exact_triangles == exact.triangles
        assert last.in_stream is not None and last.post_stream is not None

    def test_tracking_pass_for_baseline(self, api_graph):
        report = run(
            RunSpec(source="<g>", method="triest", budget=100, checkpoints=4),
            graph=api_graph,
        )
        assert len(report.tracking) == 4
        assert all(p.in_stream is None for p in report.tracking)
        assert report.tracking[-1].estimate == report.estimates["triangles"]

    def test_replicated_baseline_mean_ci_sanity(self, api_graph, api_stats):
        report = run(
            RunSpec(source="<g>", method="triest", budget=200,
                    replications=6, workers=0),
            graph=api_graph,
        )
        assert report.mode == "replicate"
        summary = report.metrics["triangles"]
        assert summary.count == 6
        assert summary.ci_low <= summary.mean <= summary.ci_high
        assert summary.variance >= 0.0
        # Reservoir TRIEST is unbiased; the 6-seed mean should land in the
        # right ballpark of the truth (generous Monte-Carlo tolerance).
        assert summary.mean == pytest.approx(api_stats.triangles, rel=0.8)
        assert report.estimates["triangles"] == summary.mean

    def test_replicated_pool_matches_inline(self, api_graph):
        kwargs = dict(method="triest-impr", budget=150, replications=4)
        inline = run(RunSpec(source="<g>", workers=0, **kwargs), graph=api_graph)
        pooled = run(RunSpec(source="<g>", workers=2, **kwargs), graph=api_graph)
        assert pooled.workers == 2 and inline.workers == 0
        assert pooled.metrics["triangles"].mean == inline.metrics["triangles"].mean
        assert pooled.metrics["triangles"].variance == (
            inline.metrics["triangles"].variance
        )

    def test_replicate_entry_point_honours_single_replication(self, api_graph):
        """replicate() with R=1 still yields a replicate-shaped report."""
        report = replicate(
            RunSpec(source="<g>", method="gps", budget=100, replications=1,
                    workers=0),
            graph=api_graph,
        )
        assert report.mode == "replicate"
        summary = report.metrics["in_stream_triangles"]
        assert summary.count == 1
        assert summary.ci_low == summary.mean == summary.ci_high

    def test_replicate_entry_point_rejects_checkpoints(self, api_graph):
        with pytest.raises(ValueError, match="mutually exclusive"):
            replicate(
                RunSpec(source="<g>", budget=50, checkpoints=4,
                        replications=1, workers=0),
                graph=api_graph,
            )

    def test_gps_bundle_metrics_match_extractor(self, api_graph):
        """from_bundles report values == the worker extractor's values."""
        spec = RunSpec(source="<g>", method="gps", budget=110,
                       stream_seed=3, sampler_seed=8)
        single = run(spec, graph=api_graph)  # metrics via from_bundles
        pooled = replicate(spec.replace(workers=0), graph=api_graph)  # extract
        assert single.estimates == {
            name: s.mean for name, s in pooled.metrics.items()
        }

    def test_triangle_estimate_accessor(self, api_graph):
        gps = run(RunSpec(source="<g>", method="gps", budget=80),
                  graph=api_graph)
        assert gps.triangle_estimate == gps.estimates["in_stream_triangles"]
        base = run(RunSpec(source="<g>", method="triest", budget=80),
                   graph=api_graph)
        assert base.triangle_estimate == base.estimates["triangles"]
        from dataclasses import replace

        with pytest.raises(KeyError, match="no triangle metric"):
            _ = replace(base, estimates={"weird_metric": 1.0}).triangle_estimate

    def test_replicated_gps_keeps_shared_sample_metrics(self, api_graph):
        report = run(
            RunSpec(source="<g>", method="gps", budget=100,
                    replications=3, workers=0),
            graph=api_graph,
        )
        assert set(report.metrics) == {
            "in_stream_triangles", "post_stream_triangles",
            "in_stream_wedges", "in_stream_clustering",
        }


# ----------------------------------------------------------------------
# RunReport serialisation
# ----------------------------------------------------------------------
class TestRunReport:
    def test_json_parses_and_round_trips_spec(self, api_graph):
        spec = RunSpec(source="<g>", method="gps", budget=80,
                       replications=3, workers=0)
        report = run(spec, graph=api_graph)
        payload = json.loads(report.to_json())
        assert RunSpec.from_dict(payload["spec"]) == spec
        assert payload["mode"] == "replicate"
        assert payload["metrics"]["in_stream_triangles"]["count"] == 3

    def test_single_pass_json_carries_estimate_bundles(self, api_graph):
        report = run(RunSpec(source="<g>", method="gps", budget=80),
                     graph=api_graph)
        payload = json.loads(report.to_json())
        for flavour in ("in_stream", "post_stream"):
            assert {"triangles", "wedges", "clustering"} <= set(payload[flavour])
            tri = payload[flavour]["triangles"]
            assert tri["ci_low"] <= tri["value"] <= tri["ci_high"]

    def test_tracking_json(self, api_graph):
        report = run(RunSpec(source="<g>", method="triest", budget=100,
                             checkpoints=3), graph=api_graph)
        payload = json.loads(report.to_json())
        assert len(payload["tracking"]) == 3
        assert payload["tracking"][-1]["position"] == api_graph.num_edges
