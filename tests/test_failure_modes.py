"""Failure injection and edge-case hardening tests.

A production sampler must fail loudly on invalid inputs and stay
consistent when a user-supplied component (weight function) raises
mid-stream.
"""

from __future__ import annotations

import math

import pytest

from repro.core.in_stream import InStreamEstimator
from repro.core.post_stream import PostStreamEstimator
from repro.core.priority_sampler import GraphPrioritySampler
from repro.core.weights import AttributeWeight


class FlakyWeight:
    """Weight function that raises on a chosen arrival."""

    def __init__(self, explode_at: int) -> None:
        self.calls = 0
        self.explode_at = explode_at

    def __call__(self, u, v, sample) -> float:
        self.calls += 1
        if self.calls == self.explode_at:
            raise RuntimeError("weight service unavailable")
        return 1.0


class TestWeightFunctionFailures:
    def test_nan_weight_rejected(self):
        sampler = GraphPrioritySampler(
            5, weight_fn=lambda u, v, s: float("nan"), seed=0
        )
        with pytest.raises(ValueError, match="non-positive"):
            sampler.process(0, 1)

    def test_negative_weight_rejected(self):
        sampler = GraphPrioritySampler(5, weight_fn=lambda u, v, s: -2.0, seed=0)
        with pytest.raises(ValueError):
            sampler.process(0, 1)

    def test_exception_propagates_and_state_survives(self):
        weight = FlakyWeight(explode_at=3)
        sampler = GraphPrioritySampler(5, weight_fn=weight, seed=0)
        sampler.process(0, 1)
        sampler.process(1, 2)
        with pytest.raises(RuntimeError):
            sampler.process(2, 3)
        # The failed arrival must not be half-admitted...
        assert sampler.sample_size == 2
        assert not sampler.contains_edge(2, 3)
        # ... and processing can continue afterwards.
        sampler.process(3, 4)
        assert sampler.sample_size == 3

    def test_attribute_weight_zero_rejected(self):
        sampler = GraphPrioritySampler(
            5, weight_fn=AttributeWeight(lambda u, v: 0.0), seed=0
        )
        with pytest.raises(ValueError):
            sampler.process(0, 1)


class TestExtremeInputs:
    def test_huge_weights_do_not_overflow_probabilities(self):
        sampler = GraphPrioritySampler(
            2, weight_fn=lambda u, v, s: 1e300, seed=0
        )
        for i in range(10):
            sampler.process(i, i + 1)
        for prob in sampler.normalized_probabilities().values():
            assert 0.0 < prob <= 1.0
            assert math.isfinite(prob)

    def test_tiny_weights(self):
        sampler = GraphPrioritySampler(
            2, weight_fn=lambda u, v, s: 1e-300, seed=0
        )
        for i in range(10):
            sampler.process(i, i + 1)
        estimates = PostStreamEstimator(sampler).estimate()
        assert math.isfinite(estimates.wedges.value)

    def test_duplicate_only_stream(self):
        estimator = InStreamEstimator(capacity=4, seed=0)
        for _ in range(50):
            estimator.process(0, 1)
        assert estimator.sampler.sample_size == 1
        assert estimator.sampler.duplicates_skipped == 49
        assert estimator.wedge_estimate == 0.0

    def test_self_loop_only_stream(self):
        estimator = InStreamEstimator(capacity=4, seed=0)
        for i in range(20):
            estimator.process(i, i)
        assert estimator.sampler.sample_size == 0
        assert estimator.estimates().triangles.value == 0.0

    def test_string_labels_full_pipeline(self):
        # Two triangles: (a, b, c) and (a, c, d).
        edges = [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d"), ("d", "a")]
        estimator = InStreamEstimator(capacity=10, seed=0)
        estimator.process_stream(edges)
        estimates = estimator.estimates()
        assert estimates.triangles.value == pytest.approx(2.0)
        post = PostStreamEstimator(estimator.sampler).estimate()
        assert post.triangles.value == pytest.approx(2.0)

    def test_mixed_label_types(self):
        # Ints and strings in one stream: canonicalisation falls back to
        # repr ordering and everything keeps working.
        estimator = InStreamEstimator(capacity=10, seed=0)
        estimator.process_stream([(1, "x"), ("x", 2), (2, 1)])
        assert estimator.triangle_estimate == pytest.approx(1.0)

    def test_capacity_one(self):
        estimator = InStreamEstimator(capacity=1, seed=3)
        for i in range(30):
            estimator.process(i, i + 1)
        assert estimator.sampler.sample_size == 1
        assert estimator.estimates().triangles.value >= 0.0

    def test_single_edge_stream(self):
        estimator = InStreamEstimator(capacity=5, seed=0)
        estimator.process(7, 9)
        estimates = estimator.estimates()
        assert estimates.triangles.value == 0.0
        assert estimates.wedges.value == 0.0
        assert estimates.clustering.value == 0.0
