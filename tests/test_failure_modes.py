"""Failure injection and edge-case hardening tests.

A production sampler must fail loudly on invalid inputs and stay
consistent when a user-supplied component (weight function) raises
mid-stream.  The fault-injection classes (process-pool death,
mid-stream source disconnect, corrupted cache entries) get their
fast deterministic coverage here; the end-to-end bit-identity
acceptance runs live in the ``chaos`` suite.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.api.ground_truth import ContentAddressedStore, GroundTruthCache
from repro.core.in_stream import InStreamEstimator
from repro.core.post_stream import PostStreamEstimator
from repro.core.priority_sampler import GraphPrioritySampler
from repro.core.weights import AttributeWeight
from repro.engine.replication import ReplicatedRunner
from repro.faults import FaultPlan, FaultSpec, corrupt_entry
from repro.graph.generators import erdos_renyi_gnm
from repro.serve import SamplingService, ServeSpec


class FlakyWeight:
    """Weight function that raises on a chosen arrival."""

    def __init__(self, explode_at: int) -> None:
        self.calls = 0
        self.explode_at = explode_at

    def __call__(self, u, v, sample) -> float:
        self.calls += 1
        if self.calls == self.explode_at:
            raise RuntimeError("weight service unavailable")
        return 1.0


class TestWeightFunctionFailures:
    def test_nan_weight_rejected(self):
        sampler = GraphPrioritySampler(
            5, weight_fn=lambda u, v, s: float("nan"), seed=0
        )
        with pytest.raises(ValueError, match="non-positive"):
            sampler.process(0, 1)

    def test_negative_weight_rejected(self):
        sampler = GraphPrioritySampler(5, weight_fn=lambda u, v, s: -2.0, seed=0)
        with pytest.raises(ValueError):
            sampler.process(0, 1)

    def test_exception_propagates_and_state_survives(self):
        weight = FlakyWeight(explode_at=3)
        sampler = GraphPrioritySampler(5, weight_fn=weight, seed=0)
        sampler.process(0, 1)
        sampler.process(1, 2)
        with pytest.raises(RuntimeError):
            sampler.process(2, 3)
        # The failed arrival must not be half-admitted...
        assert sampler.sample_size == 2
        assert not sampler.contains_edge(2, 3)
        # ... and processing can continue afterwards.
        sampler.process(3, 4)
        assert sampler.sample_size == 3

    def test_attribute_weight_zero_rejected(self):
        sampler = GraphPrioritySampler(
            5, weight_fn=AttributeWeight(lambda u, v: 0.0), seed=0
        )
        with pytest.raises(ValueError):
            sampler.process(0, 1)


class TestExtremeInputs:
    def test_huge_weights_do_not_overflow_probabilities(self):
        sampler = GraphPrioritySampler(
            2, weight_fn=lambda u, v, s: 1e300, seed=0
        )
        for i in range(10):
            sampler.process(i, i + 1)
        for prob in sampler.normalized_probabilities().values():
            assert 0.0 < prob <= 1.0
            assert math.isfinite(prob)

    def test_tiny_weights(self):
        sampler = GraphPrioritySampler(
            2, weight_fn=lambda u, v, s: 1e-300, seed=0
        )
        for i in range(10):
            sampler.process(i, i + 1)
        estimates = PostStreamEstimator(sampler).estimate()
        assert math.isfinite(estimates.wedges.value)

    def test_duplicate_only_stream(self):
        estimator = InStreamEstimator(capacity=4, seed=0)
        for _ in range(50):
            estimator.process(0, 1)
        assert estimator.sampler.sample_size == 1
        assert estimator.sampler.duplicates_skipped == 49
        assert estimator.wedge_estimate == 0.0

    def test_self_loop_only_stream(self):
        estimator = InStreamEstimator(capacity=4, seed=0)
        for i in range(20):
            estimator.process(i, i)
        assert estimator.sampler.sample_size == 0
        assert estimator.estimates().triangles.value == 0.0

    def test_string_labels_full_pipeline(self):
        # Two triangles: (a, b, c) and (a, c, d).
        edges = [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d"), ("d", "a")]
        estimator = InStreamEstimator(capacity=10, seed=0)
        estimator.process_stream(edges)
        estimates = estimator.estimates()
        assert estimates.triangles.value == pytest.approx(2.0)
        post = PostStreamEstimator(estimator.sampler).estimate()
        assert post.triangles.value == pytest.approx(2.0)

    def test_mixed_label_types(self):
        # Ints and strings in one stream: canonicalisation falls back to
        # repr ordering and everything keeps working.
        estimator = InStreamEstimator(capacity=10, seed=0)
        estimator.process_stream([(1, "x"), ("x", 2), (2, 1)])
        assert estimator.triangle_estimate == pytest.approx(1.0)

    def test_capacity_one(self):
        estimator = InStreamEstimator(capacity=1, seed=3)
        for i in range(30):
            estimator.process(i, i + 1)
        assert estimator.sampler.sample_size == 1
        assert estimator.estimates().triangles.value >= 0.0

    def test_single_edge_stream(self):
        estimator = InStreamEstimator(capacity=5, seed=0)
        estimator.process(7, 9)
        estimates = estimator.estimates()
        assert estimates.triangles.value == 0.0
        assert estimates.wedges.value == 0.0
        assert estimates.clustering.value == 0.0


class TestProcessPoolDeath:
    """A killed pool worker is retried, not propagated."""

    @pytest.fixture(scope="class")
    def graph(self):
        return erdos_renyi_gnm(60, 120, seed=1)

    def test_worker_crash_is_retried_bit_identically(self, graph):
        kwargs = dict(
            capacity=30, replications=3, base_stream_seed=2,
            base_sampler_seed=20,
        )
        oracle = ReplicatedRunner(graph, max_workers=0, **kwargs).run()
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="crash-worker", site="replication", at=1),
            )
        )
        crashed = ReplicatedRunner(
            graph, max_workers=2, faults=plan, **kwargs
        ).run()
        assert crashed.task_retries > 0
        assert crashed.pool_rebuilds > 0
        for name in ("in_stream_triangles", "in_stream_wedges"):
            assert (
                crashed.metrics[name].mean == oracle.metrics[name].mean
            )

    def test_retry_budget_exhaustion_raises(self, graph):
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    kind="raise-task", site="replication", at=0, times=5
                ),
            )
        )
        runner = ReplicatedRunner(
            graph, capacity=30, replications=2, max_workers=2,
            faults=plan, retry_budget=1,
        )
        with pytest.raises(Exception):
            runner.run()


class TestMidStreamDisconnect:
    """A dropped source mid-ingestion resumes from the recorded position."""

    SPEC = ServeSpec(
        source="synthetic", budget=150, chunk_size=256, max_edges=2048,
        sampler_seed=5, nodes=400,
    )
    PLAN = FaultPlan(
        faults=(
            FaultSpec(kind="disconnect-source", site="serve-source", at=3),
        )
    )

    def _final(self, spec, faults=None):
        from repro.faults import FaultInjector

        service = SamplingService(
            spec, faults=None if faults is None else FaultInjector(faults)
        )
        service.start()
        service.stop(drain=True)
        return service, service.latest()

    def test_disconnect_resumes_and_stays_bit_identical(self):
        _, oracle = self._final(self.SPEC)
        retried = self.SPEC.replace(
            source_retries=2, retry_backoff=0.01, retry_backoff_cap=0.05
        )
        service, snap = self._final(retried, faults=self.PLAN)
        resilience = service.status()["resilience"]
        assert resilience["pump_restarts"] >= 1
        assert resilience["degraded"] is False
        assert snap.estimates() == oracle.estimates()
        assert snap.stream_position == oracle.stream_position

    def test_disconnect_without_budget_surfaces(self):
        from repro.faults import FaultInjector

        service = SamplingService(
            self.SPEC, faults=FaultInjector(self.PLAN)
        )
        service.start()
        with pytest.raises(RuntimeError, match="pump"):
            service.stop(drain=True)
        assert service.status()["resilience"]["degraded"] is True


class TestCorruptedCacheEntries:
    """Corrupt disk entries quarantine and recount, never raise."""

    def test_truncated_entry_quarantined_and_recounted(self, tmp_path):
        store = ContentAddressedStore(tmp_path)
        key = "a" * 64
        store.write(key, {"value": 7})
        path = store.path_for(key)
        corrupt_entry(path, mode="truncate")
        assert store.read(key) is None
        assert store.quarantined == 1
        quarantined = path.with_name(
            path.name + ContentAddressedStore.QUARANTINE_SUFFIX
        )
        assert quarantined.exists()
        # The recount overwrites cleanly and reads back.
        store.write(key, {"value": 7})
        assert store.read(key) == {"value": 7}

    def test_garbage_entry_quarantined(self, tmp_path):
        store = ContentAddressedStore(tmp_path)
        key = "b" * 64
        store.write(key, {"value": 1})
        corrupt_entry(store.path_for(key), mode="garbage", seed=3)
        assert store.read(key) is None
        assert store.quarantined == 1

    def test_stale_version_is_a_plain_miss(self, tmp_path):
        store = ContentAddressedStore(tmp_path)
        key = "c" * 64
        store.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(key).write_text(
            json.dumps({"version": -1, "data": {"value": 2}})
        )
        assert store.read(key) is None
        assert store.quarantined == 0  # intact, just old: nothing set aside

    def test_ground_truth_recount_matches_original(self, tmp_path):
        from repro.graph.io import write_edge_list

        graph = erdos_renyi_gnm(40, 80, seed=4)
        source = tmp_path / "graph.txt"
        write_edge_list(graph, source)
        first = GroundTruthCache(tmp_path)
        original = first.statistics(str(source))
        entries = list((tmp_path / "ground_truth").glob("*.json"))
        assert len(entries) == 1
        corrupt_entry(entries[0], mode="truncate")
        fresh = GroundTruthCache(tmp_path)
        recounted = fresh.statistics(str(source))
        assert fresh.quarantined == 1
        assert fresh.misses == 1
        assert recounted == original
