"""The shipped tree must lint clean — the analyzer dogfoods itself.

`python -m repro lint src` exiting 0 is a CI gate; this test is the
same gate inside the tier-1 suite, with the finding list in the
assertion message so a regression names its own violation.  The strict
mypy islands (`repro.analysis` and `repro.api.spec`, configured in
``pyproject.toml``) are checked when mypy is available — the CI lint
job installs it, minimal local environments may not have it.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


def test_shipped_tree_lints_clean():
    result = lint_paths([SRC])
    details = "\n".join(
        f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}"
        for f in result.findings
    )
    assert result.clean, f"shipped tree has lint findings:\n{details}"
    assert result.files_checked > 80


def test_shipped_suppressions_are_exactly_the_documented_ones():
    # Four deliberate violations ride in the tree: compact.py
    # transplants MT19937 state into a construction-time-unseeded bit
    # generator, shard/runner.py reads perf_counter twice for the
    # throughput report (wall time never feeds an estimate), and
    # replication.py's pipeline probe falls back through a broad except
    # where the except IS the answer (no failure is swallowed).  All
    # are justified inline; new suppressions must be accounted for here.
    result = lint_paths([SRC])
    assert result.suppressed == 4


def test_analysis_package_lints_itself():
    result = lint_paths([SRC / "analysis"])
    assert result.clean
    assert result.suppressed == 0


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None, reason="mypy not installed"
)
def test_typed_islands_pass_strict_mypy():
    # pyproject.toml pins the islands via [tool.mypy] files=...; a bare
    # `python -m mypy` from the repo root checks exactly those.
    proc = subprocess.run(
        [sys.executable, "-m", "mypy"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_py_typed_marker_ships():
    assert (SRC / "py.typed").is_file()
