"""Tests for ASCII reporting helpers."""

from __future__ import annotations

from repro.experiments.reporting import (
    format_fraction,
    format_table,
    human_count,
    save_report,
)


class TestHumanCount:
    def test_paper_style_magnitudes(self):
        assert human_count(4.9e9) == "4.9B"
        assert human_count(667.1e3) == "667.1K"
        assert human_count(83e6) == "83M"
        assert human_count(1.8e12) == "1.8T"

    def test_small_numbers(self):
        assert human_count(12) == "12"
        assert human_count(0.205) == "0.205"
        assert human_count(999) == "999"

    def test_none(self):
        assert human_count(None) == "-"

    def test_negative(self):
        assert human_count(-2.5e6) == "-2.5M"

    def test_trailing_zeros_stripped(self):
        assert human_count(3.0e6) == "3M"


class TestFormatFraction:
    def test_default_digits(self):
        assert format_fraction(0.12345) == "0.1235"

    def test_none(self):
        assert format_fraction(None) == "-"


class TestFormatTable:
    def test_header_and_rows_aligned(self):
        text = format_table(
            headers=["name", "value"],
            rows=[["a", 1], ["bbbb", 22]],
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        widths = {len(line) for line in lines if line.strip()}
        # all rendered rows padded to consistent column widths
        assert lines[2].startswith("a")
        assert "22" in lines[3]

    def test_title_rendered(self):
        text = format_table(["h"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "========"

    def test_none_cells(self):
        text = format_table(["a"], [[None]])
        assert "-" in text.splitlines()[-1]

    def test_float_formatting(self):
        text = format_table(["a"], [[0.123456]])
        assert "0.1235" in text

    def test_numeric_right_alignment(self):
        text = format_table(["name", "v"], [["x", 1], ["y", 100]])
        lines = text.splitlines()
        assert lines[-1].endswith("100")
        assert lines[-2].endswith("  1")


class TestSaveReport:
    def test_writes_file(self, tmp_path):
        path = save_report("hello", tmp_path / "sub" / "report.txt")
        assert path.read_text() == "hello\n"

    def test_creates_directories(self, tmp_path):
        path = save_report("x", tmp_path / "a" / "b" / "c.txt")
        assert path.exists()
