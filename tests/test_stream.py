"""Tests for the edge-stream model."""

from __future__ import annotations

from repro.graph.adjacency import AdjacencyGraph
from repro.streams.stream import EdgeStream


class TestConstruction:
    def test_from_graph_contains_all_edges(self, k5_graph):
        stream = EdgeStream.from_graph(k5_graph, seed=0)
        assert len(stream) == 10
        assert sorted(stream) == sorted(k5_graph.edges())

    def test_permutation_deterministic_by_seed(self, k5_graph):
        s1 = EdgeStream.from_graph(k5_graph, seed=42)
        s2 = EdgeStream.from_graph(k5_graph, seed=42)
        assert list(s1) == list(s2)

    def test_different_seeds_differ(self, medium_graph):
        s1 = EdgeStream.from_graph(medium_graph, seed=1)
        s2 = EdgeStream.from_graph(medium_graph, seed=2)
        assert list(s1) != list(s2)

    def test_replayable(self, k4_graph):
        stream = EdgeStream.from_graph(k4_graph, seed=0)
        assert list(stream) == list(stream)

    def test_from_edges_preserves_order(self):
        edges = [(3, 4), (1, 2), (2, 3)]
        assert list(EdgeStream.from_edges(edges)) == edges


class TestSlicing:
    def test_prefix(self):
        stream = EdgeStream.from_edges([(0, 1), (1, 2), (2, 3)])
        assert list(stream.prefix(2)) == [(0, 1), (1, 2)]

    def test_getitem_index_and_slice(self):
        stream = EdgeStream.from_edges([(0, 1), (1, 2), (2, 3)])
        assert stream[0] == (0, 1)
        assert list(stream[1:]) == [(1, 2), (2, 3)]
        assert isinstance(stream[1:], EdgeStream)

    def test_prefix_graph(self):
        stream = EdgeStream.from_edges([(0, 1), (1, 2), (2, 0), (3, 4)])
        prefix = stream.prefix_graph(3)
        assert prefix.num_edges == 3
        assert prefix.has_edge(2, 0)
        full = stream.prefix_graph()
        assert full.num_edges == 4

    def test_enumerate_is_one_based(self):
        stream = EdgeStream.from_edges([(0, 1), (1, 2)])
        assert list(stream.enumerate()) == [(1, (0, 1)), (2, (1, 2))]


class TestCheckpoints:
    def test_checkpoints_end_at_stream_length(self):
        stream = EdgeStream.from_edges([(i, i + 1) for i in range(100)])
        marks = stream.checkpoints(4)
        assert marks == [25, 50, 75, 100]

    def test_checkpoints_more_than_length(self):
        stream = EdgeStream.from_edges([(0, 1), (1, 2), (2, 3)])
        assert stream.checkpoints(10) == [1, 2, 3]

    def test_checkpoints_zero(self):
        stream = EdgeStream.from_edges([(0, 1)])
        assert stream.checkpoints(0) == []

    def test_checkpoints_sorted_unique(self, medium_graph):
        stream = EdgeStream.from_graph(medium_graph, seed=0)
        marks = stream.checkpoints(17)
        assert marks == sorted(set(marks))
        assert marks[-1] == len(stream)

    def test_stream_node_labels_preserved(self):
        graph = AdjacencyGraph([("a", "b"), ("b", "c")])
        stream = EdgeStream.from_graph(graph, seed=0)
        assert sorted(stream) == [("a", "b"), ("b", "c")]


class TestCheckpointExactCount:
    """Regression: rounding collisions must not shrink the checkpoint list
    below ``min(count, n)`` (small streams used to lose marks)."""

    def test_exact_count_for_all_small_streams(self):
        for n in range(1, 60):
            stream = EdgeStream.from_edges([(i, i + 1) for i in range(n)])
            for count in range(1, 70):
                marks = stream.checkpoints(count)
                assert len(marks) == min(count, n), (n, count, marks)
                assert marks == sorted(set(marks)), (n, count, marks)
                assert marks[0] >= 1
                assert marks[-1] == n

    def test_strictly_increasing_no_collisions(self):
        stream = EdgeStream.from_edges([(i, i + 1) for i in range(7)])
        marks = stream.checkpoints(5)
        assert len(marks) == 5
        assert all(b > a for a, b in zip(marks, marks[1:]))
        assert marks[-1] == 7

    def test_empty_stream(self):
        assert EdgeStream.from_edges([]).checkpoints(4) == []
