"""Tests for Algorithm 2 (post-stream estimation).

The exactness invariant is load-bearing: while the reservoir never
overflows, every inclusion probability is 1 and Algorithm 2 must return
*exactly* the prefix graph's triangle/wedge counts with zero variance.
Unbiasedness and variance calibration are checked by Monte Carlo with
pinned seeds.
"""

from __future__ import annotations

import pytest

from repro.core.post_stream import PostStreamEstimator
from repro.core.priority_sampler import GraphPrioritySampler
from repro.graph.exact import compute_statistics
from repro.stats.running import RunningMoments
from repro.streams.stream import EdgeStream


def estimate_after(graph, capacity, stream_seed=0, sampler_seed=1):
    sampler = GraphPrioritySampler(capacity=capacity, seed=sampler_seed)
    sampler.process_stream(EdgeStream.from_graph(graph, seed=stream_seed))
    return PostStreamEstimator(sampler).estimate()


class TestExactnessWithoutOverflow:
    def test_triangle_graph(self, triangle_graph):
        est = estimate_after(triangle_graph, capacity=10)
        assert est.triangles.value == pytest.approx(1.0)
        assert est.wedges.value == pytest.approx(3.0)
        assert est.clustering.value == pytest.approx(1.0)
        assert est.triangles.variance == 0.0
        assert est.wedges.variance == 0.0

    def test_diamond_graph(self, diamond_graph):
        est = estimate_after(diamond_graph, capacity=10)
        assert est.triangles.value == pytest.approx(2.0)
        assert est.wedges.value == pytest.approx(8.0)

    def test_k5(self, k5_graph):
        est = estimate_after(k5_graph, capacity=100)
        assert est.triangles.value == pytest.approx(10.0)
        assert est.wedges.value == pytest.approx(30.0)
        assert est.clustering.value == pytest.approx(1.0)

    def test_medium_graph_exact(self, medium_graph, medium_stats):
        est = estimate_after(medium_graph, capacity=medium_graph.num_edges + 1)
        assert est.triangles.value == pytest.approx(medium_stats.triangles)
        assert est.wedges.value == pytest.approx(medium_stats.wedges)
        assert est.clustering.value == pytest.approx(medium_stats.clustering)
        assert est.triangles.variance == 0.0
        assert est.tri_wedge_covariance == 0.0

    def test_empty_sampler(self):
        sampler = GraphPrioritySampler(capacity=5, seed=0)
        est = PostStreamEstimator(sampler).estimate()
        assert est.triangles.value == 0.0
        assert est.wedges.value == 0.0
        assert est.clustering.value == 0.0


class TestUnbiasedness:
    def test_triangle_and_wedge_means(self, social_graph, social_stats):
        runs = 250
        capacity = 150
        tri = RunningMoments()
        wedge = RunningMoments()
        for seed in range(runs):
            est = estimate_after(
                social_graph, capacity, stream_seed=seed, sampler_seed=10_000 + seed
            )
            tri.add(est.triangles.value)
            wedge.add(est.wedges.value)
        # 4.5-sigma Monte-Carlo tolerance around the exact counts.
        assert abs(tri.mean - social_stats.triangles) < 4.5 * tri.std_error
        assert abs(wedge.mean - social_stats.wedges) < 4.5 * wedge.std_error

    def test_variance_estimator_calibrated(self, social_graph, social_stats):
        runs = 250
        capacity = 150
        estimates = RunningMoments()
        variance_estimates = RunningMoments()
        for seed in range(runs):
            est = estimate_after(
                social_graph, capacity, stream_seed=seed, sampler_seed=20_000 + seed
            )
            estimates.add(est.triangles.value)
            variance_estimates.add(est.triangles.variance)
        empirical = estimates.variance
        # Mean estimated variance tracks the empirical variance within 40%.
        assert variance_estimates.mean == pytest.approx(empirical, rel=0.4)


class TestVarianceProperties:
    def test_variances_non_negative(self, medium_graph):
        est = estimate_after(medium_graph, capacity=400)
        assert est.triangles.variance >= 0.0
        assert est.wedges.variance >= 0.0
        assert est.clustering.variance >= 0.0
        assert est.tri_wedge_covariance >= 0.0

    def test_confidence_bounds_bracket_estimate(self, medium_graph):
        est = estimate_after(medium_graph, capacity=400)
        lb, ub = est.triangles.confidence_bounds()
        assert lb <= est.triangles.value <= ub

    def test_estimates_non_negative(self, medium_graph):
        est = estimate_after(medium_graph, capacity=300, sampler_seed=7)
        assert est.triangles.value >= 0.0
        assert est.wedges.value >= 0.0
        assert est.clustering.value >= 0.0


class TestAgainstBruteForce:
    def test_matches_direct_ht_sums(self, social_graph):
        """Algorithm 2's localized sums equal the global HT definitions."""
        sampler = GraphPrioritySampler(capacity=120, seed=3)
        sampler.process_stream(EdgeStream.from_graph(social_graph, seed=3))
        est = PostStreamEstimator(sampler).estimate()

        threshold = sampler.threshold
        sample = sampler.sample
        probs = {r.key: r.inclusion_probability(threshold) for r in sample.records()}
        # Brute force: enumerate sampled triangles and wedges globally.
        keys = sorted(probs)
        nodes = {}
        for u, v in keys:
            nodes.setdefault(u, set()).add(v)
            nodes.setdefault(v, set()).add(u)
        tri_total = 0.0
        seen = set()
        for u, v in keys:
            for w in nodes[u] & nodes[v]:
                tri = frozenset((u, v, w))
                if tri in seen:
                    continue
                seen.add(tri)
                import itertools

                inv = 1.0
                for a, b in itertools.combinations(sorted(tri, key=repr), 2):
                    key = (a, b) if (a, b) in probs else (b, a)
                    inv /= probs[key]
                tri_total += inv
        wedge_total = 0.0
        for center, nbrs in nodes.items():
            nbr_list = sorted(nbrs, key=repr)
            for i in range(len(nbr_list)):
                for j in range(i + 1, len(nbr_list)):
                    a, b = nbr_list[i], nbr_list[j]
                    ka = (a, center) if (a, center) in probs else (center, a)
                    kb = (b, center) if (b, center) in probs else (center, b)
                    wedge_total += 1.0 / (probs[ka] * probs[kb])
        assert est.triangles.value == pytest.approx(tri_total)
        assert est.wedges.value == pytest.approx(wedge_total)
