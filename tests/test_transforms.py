"""Tests for stream transforms."""

from __future__ import annotations

from repro.streams.transforms import (
    map_nodes,
    relabel_streaming,
    simplify_edges,
    skip,
    take,
    with_timestamps,
)


class TestSimplify:
    def test_drops_self_loops(self):
        assert list(simplify_edges([(1, 1), (1, 2)])) == [(1, 2)]

    def test_drops_duplicates_both_orientations(self):
        edges = [(1, 2), (2, 1), (1, 2), (2, 3)]
        assert list(simplify_edges(edges)) == [(1, 2), (2, 3)]

    def test_keeps_first_orientation(self):
        assert list(simplify_edges([(5, 2), (2, 5)])) == [(5, 2)]

    def test_empty(self):
        assert list(simplify_edges([])) == []

    def test_lazy(self):
        def generator():
            yield (0, 1)
            raise AssertionError("must not be consumed eagerly")

        iterator = simplify_edges(generator())
        assert next(iterator) == (0, 1)


class TestTakeSkip:
    def test_take(self):
        edges = [(0, 1), (1, 2), (2, 3)]
        assert list(take(edges, 2)) == [(0, 1), (1, 2)]

    def test_take_more_than_available(self):
        assert list(take([(0, 1)], 5)) == [(0, 1)]

    def test_skip(self):
        edges = [(0, 1), (1, 2), (2, 3)]
        assert list(skip(edges, 1)) == [(1, 2), (2, 3)]

    def test_skip_all(self):
        assert list(skip([(0, 1)], 5)) == []

    def test_take_then_skip_compose(self):
        edges = [(i, i + 1) for i in range(10)]
        assert list(take(skip(edges, 3), 2)) == [(3, 4), (4, 5)]


class TestMapAndRelabel:
    def test_map_nodes(self):
        edges = [(1, 2), (2, 3)]
        assert list(map_nodes(edges, lambda v: v * 10)) == [(10, 20), (20, 30)]

    def test_relabel_streaming_first_appearance_order(self):
        edges = [("c", "a"), ("a", "b")]
        assert list(relabel_streaming(edges)) == [(0, 1), (1, 2)]

    def test_relabel_streaming_is_consistent(self):
        edges = [("x", "y"), ("y", "x"), ("x", "z")]
        out = list(relabel_streaming(edges))
        assert out == [(0, 1), (1, 0), (0, 2)]


class TestTimestamps:
    def test_default_spacing(self):
        out = list(with_timestamps([(0, 1), (1, 2)]))
        assert out == [(0.0, 0, 1), (1.0, 1, 2)]

    def test_custom_start_and_interval(self):
        out = list(with_timestamps([(0, 1), (1, 2)], start=100.0, interval=0.5))
        assert out == [(100.0, 0, 1), (100.5, 1, 2)]
