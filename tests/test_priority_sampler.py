"""Tests for Algorithm 1: the GPS(m) priority sampler."""

from __future__ import annotations

import math
import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.priority_sampler import GraphPrioritySampler, priority_of
from repro.core.weights import UniformWeight
from repro.graph.adjacency import AdjacencyGraph
from repro.streams.stream import EdgeStream


def feed(sampler, edges):
    for u, v in edges:
        sampler.process(u, v)


class TestBasicBehaviour:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            GraphPrioritySampler(0)

    def test_sample_grows_until_capacity(self):
        sampler = GraphPrioritySampler(capacity=3, seed=0)
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]
        sizes = []
        for u, v in edges:
            sampler.process(u, v)
            sizes.append(sampler.sample_size)
        assert sizes == [1, 2, 3, 3, 3]

    def test_threshold_zero_until_overflow(self):
        sampler = GraphPrioritySampler(capacity=3, seed=0)
        feed(sampler, [(0, 1), (1, 2), (2, 3)])
        assert sampler.threshold == 0.0
        sampler.process(3, 4)
        assert sampler.threshold > 0.0

    def test_threshold_is_monotone(self, medium_graph):
        sampler = GraphPrioritySampler(capacity=50, seed=1)
        last = 0.0
        for u, v in EdgeStream.from_graph(medium_graph, seed=0).prefix(500):
            sampler.process(u, v)
            assert sampler.threshold >= last
            last = sampler.threshold

    def test_self_loops_skipped(self):
        sampler = GraphPrioritySampler(capacity=3, seed=0)
        result = sampler.process(1, 1)
        assert result.skipped
        assert sampler.self_loops_skipped == 1
        assert sampler.stream_position == 0

    def test_duplicate_of_sampled_edge_skipped(self):
        sampler = GraphPrioritySampler(capacity=3, seed=0)
        sampler.process(0, 1)
        result = sampler.process(1, 0)
        assert result.skipped
        assert sampler.duplicates_skipped == 1
        assert sampler.sample_size == 1

    def test_update_result_reports_eviction(self):
        sampler = GraphPrioritySampler(capacity=1, seed=0)
        first = sampler.process(0, 1)
        assert first.kept and first.evicted is None
        second = sampler.process(1, 2)
        assert second.evicted is not None
        assert second.changed_sample or not second.kept

    def test_eviction_can_reject_the_arrival(self):
        # With capacity 1 some arrivals must bounce; find one.
        sampler = GraphPrioritySampler(capacity=1, seed=3)
        bounced = False
        for i in range(1, 50):
            result = sampler.process(i, i + 1)
            if result.evicted is result.record:
                assert not result.kept
                bounced = True
        assert bounced

    def test_deterministic_by_seed(self, medium_graph):
        stream = EdgeStream.from_graph(medium_graph, seed=0)
        s1 = GraphPrioritySampler(capacity=100, seed=9)
        s2 = GraphPrioritySampler(capacity=100, seed=9)
        s1.process_stream(stream)
        s2.process_stream(stream)
        assert sorted(s1.sampled_edges()) == sorted(s2.sampled_edges())
        assert s1.threshold == s2.threshold

    def test_different_seeds_differ(self, medium_graph):
        stream = EdgeStream.from_graph(medium_graph, seed=0)
        s1 = GraphPrioritySampler(capacity=100, seed=1)
        s2 = GraphPrioritySampler(capacity=100, seed=2)
        s1.process_stream(stream)
        s2.process_stream(stream)
        assert sorted(s1.sampled_edges()) != sorted(s2.sampled_edges())


class TestProbabilities:
    def test_probabilities_before_overflow_are_one(self):
        sampler = GraphPrioritySampler(capacity=10, seed=0)
        feed(sampler, [(0, 1), (1, 2)])
        probs = sampler.normalized_probabilities()
        assert probs == {(0, 1): 1.0, (1, 2): 1.0}

    def test_probabilities_in_unit_interval(self, medium_graph):
        sampler = GraphPrioritySampler(capacity=200, seed=4)
        sampler.process_stream(EdgeStream.from_graph(medium_graph, seed=0))
        for prob in sampler.normalized_probabilities().values():
            assert 0.0 < prob <= 1.0

    def test_edge_probability_of_missing_edge(self):
        sampler = GraphPrioritySampler(capacity=5, seed=0)
        sampler.process(0, 1)
        assert sampler.edge_probability(5, 6) == 0.0
        assert sampler.edge_probability(0, 1) == 1.0

    def test_sampled_records_survive_priority_rule(self, medium_graph):
        # Every retained record's priority must exceed the threshold.
        sampler = GraphPrioritySampler(capacity=100, seed=5)
        sampler.process_stream(EdgeStream.from_graph(medium_graph, seed=0))
        for record in sampler.records():
            assert record.priority >= sampler.threshold

    def test_weight_validation(self):
        sampler = GraphPrioritySampler(
            capacity=2, weight_fn=lambda u, v, s: 0.0, seed=0
        )
        with pytest.raises(ValueError):
            sampler.process(0, 1)


class TestUniformDegenerate:
    def test_uniform_weight_gives_uniform_marginals(self):
        # With W ≡ 1 GPS is a uniform without-replacement sampler (paper
        # remark after Algorithm 1): empirically every edge should be
        # retained at about the same rate m/t.
        edges = [(i, i + 1) for i in range(40)]
        counts: Counter = Counter()
        runs = 3000
        m = 10
        for seed in range(runs):
            sampler = GraphPrioritySampler(capacity=m, weight_fn=UniformWeight(), seed=seed)
            feed(sampler, edges)
            counts.update(sampler.sampled_edges())
        expected = m / len(edges)
        for edge in AdjacencyGraph(edges).edges():
            rate = counts[edge] / runs
            # 3000 runs: 4.5 sigma tolerance on a Bernoulli(0.25) rate.
            sigma = math.sqrt(expected * (1 - expected) / runs)
            assert abs(rate - expected) < 4.5 * sigma, (edge, rate, expected)


class TestPriorityOf:
    def test_formula(self):
        assert priority_of(2.0, 0.5) == 4.0

    def test_invalid_uniform(self):
        with pytest.raises(ValueError):
            priority_of(1.0, 0.0)
        with pytest.raises(ValueError):
            priority_of(1.0, 1.5)

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            priority_of(0.0, 0.5)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=80),
    st.integers(1, 20),
    st.integers(0, 10_000),
)
def test_invariants_hold_for_any_stream(pairs, capacity, seed):
    sampler = GraphPrioritySampler(capacity=capacity, seed=seed)
    simple = set()
    for u, v in pairs:
        sampler.process(u, v)
        if u != v:
            simple.add(frozenset((u, v)))
    # S1: fixed-size sample.
    assert sampler.sample_size == min(len(simple), capacity) or (
        # duplicates *outside* the reservoir cannot be detected, so the
        # arrival count may exceed the number of distinct edges; the sample
        # can therefore be smaller than min(distinct, capacity).
        sampler.sample_size <= min(sampler.stream_position, capacity)
    )
    assert sampler.sample_size <= capacity
    # Threshold and probabilities are consistent.
    for record in sampler.records():
        prob = sampler.inclusion_probability(record)
        assert 0.0 < prob <= 1.0
        assert record.priority >= sampler.threshold
