"""Tests for Algorithm 1: the GPS(m) priority sampler."""

from __future__ import annotations

import math
import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.priority_sampler import (
    GraphPrioritySampler,
    UpdateResult,
    priority_of,
)
from repro.core.weights import UniformWeight
from repro.graph.adjacency import AdjacencyGraph
from repro.streams.stream import EdgeStream


def feed(sampler, edges):
    for u, v in edges:
        sampler.process(u, v)


class TestBasicBehaviour:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            GraphPrioritySampler(0)

    def test_sample_grows_until_capacity(self):
        sampler = GraphPrioritySampler(capacity=3, seed=0)
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]
        sizes = []
        for u, v in edges:
            sampler.process(u, v)
            sizes.append(sampler.sample_size)
        assert sizes == [1, 2, 3, 3, 3]

    def test_threshold_zero_until_overflow(self):
        sampler = GraphPrioritySampler(capacity=3, seed=0)
        feed(sampler, [(0, 1), (1, 2), (2, 3)])
        assert sampler.threshold == 0.0
        sampler.process(3, 4)
        assert sampler.threshold > 0.0

    def test_threshold_is_monotone(self, medium_graph):
        sampler = GraphPrioritySampler(capacity=50, seed=1)
        last = 0.0
        for u, v in EdgeStream.from_graph(medium_graph, seed=0).prefix(500):
            sampler.process(u, v)
            assert sampler.threshold >= last
            last = sampler.threshold

    def test_self_loops_skipped(self):
        sampler = GraphPrioritySampler(capacity=3, seed=0)
        result = sampler.process(1, 1)
        assert result.skipped
        assert sampler.self_loops_skipped == 1
        assert sampler.stream_position == 0

    def test_duplicate_of_sampled_edge_skipped(self):
        sampler = GraphPrioritySampler(capacity=3, seed=0)
        sampler.process(0, 1)
        result = sampler.process(1, 0)
        assert result.skipped
        assert sampler.duplicates_skipped == 1
        assert sampler.sample_size == 1

    def test_update_result_reports_eviction(self):
        sampler = GraphPrioritySampler(capacity=1, seed=0)
        first = sampler.process(0, 1)
        assert first.kept and first.evicted is None
        second = sampler.process(1, 2)
        assert second.evicted is not None
        assert second.changed_sample or not second.kept

    def test_eviction_can_reject_the_arrival(self):
        # With capacity 1 some arrivals must bounce; find one.
        sampler = GraphPrioritySampler(capacity=1, seed=3)
        bounced = False
        for i in range(1, 50):
            result = sampler.process(i, i + 1)
            if result.evicted is result.record:
                assert not result.kept
                bounced = True
        assert bounced

    def test_deterministic_by_seed(self, medium_graph):
        stream = EdgeStream.from_graph(medium_graph, seed=0)
        s1 = GraphPrioritySampler(capacity=100, seed=9)
        s2 = GraphPrioritySampler(capacity=100, seed=9)
        s1.process_stream(stream)
        s2.process_stream(stream)
        assert sorted(s1.sampled_edges()) == sorted(s2.sampled_edges())
        assert s1.threshold == s2.threshold

    def test_different_seeds_differ(self, medium_graph):
        stream = EdgeStream.from_graph(medium_graph, seed=0)
        s1 = GraphPrioritySampler(capacity=100, seed=1)
        s2 = GraphPrioritySampler(capacity=100, seed=2)
        s1.process_stream(stream)
        s2.process_stream(stream)
        assert sorted(s1.sampled_edges()) != sorted(s2.sampled_edges())


class TestProbabilities:
    def test_probabilities_before_overflow_are_one(self):
        sampler = GraphPrioritySampler(capacity=10, seed=0)
        feed(sampler, [(0, 1), (1, 2)])
        probs = sampler.normalized_probabilities()
        assert probs == {(0, 1): 1.0, (1, 2): 1.0}

    def test_probabilities_in_unit_interval(self, medium_graph):
        sampler = GraphPrioritySampler(capacity=200, seed=4)
        sampler.process_stream(EdgeStream.from_graph(medium_graph, seed=0))
        for prob in sampler.normalized_probabilities().values():
            assert 0.0 < prob <= 1.0

    def test_edge_probability_of_missing_edge(self):
        sampler = GraphPrioritySampler(capacity=5, seed=0)
        sampler.process(0, 1)
        assert sampler.edge_probability(5, 6) == 0.0
        assert sampler.edge_probability(0, 1) == 1.0

    def test_sampled_records_survive_priority_rule(self, medium_graph):
        # Every retained record's priority must exceed the threshold.
        sampler = GraphPrioritySampler(capacity=100, seed=5)
        sampler.process_stream(EdgeStream.from_graph(medium_graph, seed=0))
        for record in sampler.records():
            assert record.priority >= sampler.threshold

    def test_weight_validation(self):
        sampler = GraphPrioritySampler(
            capacity=2, weight_fn=lambda u, v, s: 0.0, seed=0
        )
        with pytest.raises(ValueError):
            sampler.process(0, 1)


class TestUniformDegenerate:
    def test_uniform_weight_gives_uniform_marginals(self):
        # With W ≡ 1 GPS is a uniform without-replacement sampler (paper
        # remark after Algorithm 1): empirically every edge should be
        # retained at about the same rate m/t.
        edges = [(i, i + 1) for i in range(40)]
        counts: Counter = Counter()
        runs = 3000
        m = 10
        for seed in range(runs):
            sampler = GraphPrioritySampler(capacity=m, weight_fn=UniformWeight(), seed=seed)
            feed(sampler, edges)
            counts.update(sampler.sampled_edges())
        expected = m / len(edges)
        for edge in AdjacencyGraph(edges).edges():
            rate = counts[edge] / runs
            # 3000 runs: 4.5 sigma tolerance on a Bernoulli(0.25) rate.
            sigma = math.sqrt(expected * (1 - expected) / runs)
            assert abs(rate - expected) < 4.5 * sigma, (edge, rate, expected)


class TestPriorityOf:
    def test_formula(self):
        assert priority_of(2.0, 0.5) == 4.0

    def test_invalid_uniform(self):
        with pytest.raises(ValueError):
            priority_of(1.0, 0.0)
        with pytest.raises(ValueError):
            priority_of(1.0, 1.5)

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            priority_of(0.0, 0.5)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=80),
    st.integers(1, 20),
    st.integers(0, 10_000),
)
def test_invariants_hold_for_any_stream(pairs, capacity, seed):
    sampler = GraphPrioritySampler(capacity=capacity, seed=seed)
    simple = set()
    for u, v in pairs:
        sampler.process(u, v)
        if u != v:
            simple.add(frozenset((u, v)))
    # S1: fixed-size sample.
    assert sampler.sample_size == min(len(simple), capacity) or (
        # duplicates *outside* the reservoir cannot be detected, so the
        # arrival count may exceed the number of distinct edges; the sample
        # can therefore be smaller than min(distinct, capacity).
        sampler.sample_size <= min(sampler.stream_position, capacity)
    )
    assert sampler.sample_size <= capacity
    # Threshold and probabilities are consistent.
    for record in sampler.records():
        prob = sampler.inclusion_probability(record)
        assert 0.0 < prob <= 1.0
        assert record.priority >= sampler.threshold


# ----------------------------------------------------------------------
# Fused-update equivalence (the pushpop hot-path fix)
# ----------------------------------------------------------------------
class _ReferencePushPopSampler(GraphPrioritySampler):
    """The pre-fix GPSUpdate: separate push + pop and unconditional
    adjacency insert/remove on every overflow arrival.  Used as an
    independent oracle for the fused update."""

    def process(self, u, v):
        from repro.core.records import EdgeRecord

        if u == v:
            self._self_loops += 1
            return UpdateResult(record=None, kept=False, evicted=None, skipped=True)
        if self._sample.has_edge(u, v):
            self._duplicates += 1
            return UpdateResult(record=None, kept=False, evicted=None, skipped=True)
        self._arrivals += 1
        weight = self._weight_fn(u, v, self._sample)
        if not weight > 0.0:
            raise ValueError(f"weight function returned non-positive {weight!r}")
        uniform = 1.0 - self._rng.random()
        record = EdgeRecord(
            u, v, weight=weight, priority=weight / uniform, arrival=self._arrivals
        )
        self._sample.add(record)
        self._heap.push(record)
        evicted = None
        if len(self._heap) > self._capacity:
            evicted = self._heap.pop()
            if evicted.priority > self._threshold:
                self._threshold = evicted.priority
            self._sample.remove(evicted)
        return UpdateResult(
            record=record, kept=evicted is not record, evicted=evicted
        )

    def process_many(self, edges):
        consumed = 0
        for u, v in edges:
            consumed += 1
            self.process(u, v)
        return consumed


def _random_stream(rng, length, num_nodes):
    """Random arrivals including self-loops and repeated edges."""
    return [
        (rng.randrange(num_nodes), rng.randrange(num_nodes))
        for _ in range(length)
    ]


class TestFusedEquivalence:
    """The fused admit-or-evict step is shared-seed identical to the
    reference push-then-pop implementation (bit-for-bit samples)."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("weight_fn", [None, UniformWeight()])
    def test_stepwise_update_results_match(self, seed, weight_fn):
        rng = random.Random(100 + seed)
        stream = _random_stream(rng, length=600, num_nodes=40)
        fused = GraphPrioritySampler(capacity=25, weight_fn=weight_fn, seed=seed)
        reference = _ReferencePushPopSampler(
            capacity=25, weight_fn=weight_fn, seed=seed
        )
        for u, v in stream:
            got = fused.process(u, v)
            want = reference.process(u, v)
            assert got.skipped == want.skipped
            assert got.kept == want.kept
            if want.record is None:
                assert got.record is None
            else:
                assert got.record.key == want.record.key
                assert got.record.weight == want.record.weight
                assert got.record.priority == want.record.priority
            if want.evicted is None:
                assert got.evicted is None
            else:
                assert got.evicted.key == want.evicted.key
                assert got.evicted.priority == want.evicted.priority
            assert fused.threshold == reference.threshold

    @pytest.mark.parametrize("seed", [7, 8, 9])
    def test_final_samples_identical(self, medium_graph, seed):
        stream = EdgeStream.from_graph(medium_graph, seed=seed)
        fused = GraphPrioritySampler(capacity=150, seed=seed)
        reference = _ReferencePushPopSampler(capacity=150, seed=seed)
        fused.process_stream(stream)
        reference.process_stream(stream)
        assert fused.threshold == reference.threshold
        assert fused.stream_position == reference.stream_position
        assert sorted(r.key for r in fused.records()) == sorted(
            r.key for r in reference.records()
        )
        assert fused.normalized_probabilities() == (
            reference.normalized_probabilities()
        )

    def test_process_many_matches_per_edge_process(self):
        rng = random.Random(99)
        stream = _random_stream(rng, length=800, num_nodes=60)
        batched = GraphPrioritySampler(capacity=40, seed=5)
        stepped = GraphPrioritySampler(capacity=40, seed=5)
        consumed = batched.process_many(stream)
        for u, v in stream:
            stepped.process(u, v)
        assert consumed == len(stream)
        assert batched.threshold == stepped.threshold
        assert batched.stream_position == stepped.stream_position
        assert batched.duplicates_skipped == stepped.duplicates_skipped
        assert batched.self_loops_skipped == stepped.self_loops_skipped
        assert sorted(r.key for r in batched.records()) == sorted(
            r.key for r in stepped.records()
        )

    def test_bounced_arrival_leaves_adjacency_untouched(self):
        """An arrival that bounces out must not churn the adjacency; its
        endpoints never become sample nodes."""
        sampler = GraphPrioritySampler(capacity=3, weight_fn=UniformWeight(),
                                       seed=0)
        feed(sampler, [(0, 1), (2, 3), (4, 5)])
        bounced = None
        for n in range(6, 200, 2):
            result = sampler.process(n, n + 1)
            if not result.kept:
                bounced = (n, n + 1)
                break
        assert bounced is not None, "expected at least one bounce"
        nodes = {node for r in sampler.records() for node in (r.u, r.v)}
        assert bounced[0] not in nodes and bounced[1] not in nodes

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 12), st.integers(0, 12)), max_size=60),
        st.integers(1, 10),
        st.integers(0, 1_000),
    )
    def test_equivalence_for_any_stream(self, pairs, capacity, seed):
        fused = GraphPrioritySampler(capacity=capacity, seed=seed)
        reference = _ReferencePushPopSampler(capacity=capacity, seed=seed)
        for u, v in pairs:
            fused.process(u, v)
            reference.process(u, v)
        assert fused.threshold == reference.threshold
        assert sorted(r.key for r in fused.records()) == sorted(
            r.key for r in reference.records()
        )
