"""Fixture-driven tests for the invariant analyzer (``repro lint``).

Every rule's catalog example (the snippet shipped in
``docs/invariants.md``) is written to its declared ``example_path``
under a tmp directory and must fire exactly that rule — the catalog
never documents a non-firing example.  Conforming counterparts must
lint clean under the *full* rule set.  The CLI contract (exit codes,
``--select``/``--ignore``, ``--format json``, ``--markdown``) and the
suppression mechanics are exercised end to end through
:func:`repro.cli.main`.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    SYNTAX_ERROR_RULE,
    Finding,
    lint_paths,
    rule_names,
    rule_specs,
    rules_markdown,
)
from repro.cli import main


def _write(tmp_path: Path, relpath: str, source: str) -> Path:
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return target


def _rules(result):
    return {finding.rule for finding in result.findings}


# ----------------------------------------------------------------------
# Catalog examples: each must fire its own rule at its example_path.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", rule_specs(), ids=lambda s: s.name)
def test_catalog_example_fires_its_rule(spec, tmp_path):
    _write(tmp_path, spec.example_path, spec.example)
    result = lint_paths([tmp_path], select=[spec.name])
    assert result.findings, f"catalog example for {spec.name} never fires"
    assert _rules(result) == {spec.name}
    assert all(f.severity == spec.severity for f in result.findings)
    assert all(f.path.endswith(spec.example_path) for f in result.findings)


@pytest.mark.parametrize("spec", rule_specs(), ids=lambda s: s.name)
def test_cli_exits_nonzero_on_each_example(spec, tmp_path, capsys):
    _write(tmp_path, spec.example_path, spec.example)
    # Full rule set: a finding of ANY severity makes the run fail
    # (severity is reporting metadata, not an exit-code switch).
    assert main(["lint", str(tmp_path)]) == 1
    assert spec.name in capsys.readouterr().out


# ----------------------------------------------------------------------
# Conforming counterparts: clean under the FULL rule set.
# ----------------------------------------------------------------------
CONFORMING = {
    "rng-discipline": (
        "core/sampler.py",
        "import random\n"
        "\n"
        "\n"
        "class Sampler:\n"
        "    def __init__(self, seed):\n"
        "        self._rng = random.Random(seed)\n"
        "\n"
        "    def reset(self, seed):\n"
        "        self._rng.seed(seed)\n"
        "\n"
        "    def admit(self):\n"
        "        return self._rng.random()\n"
        "\n"
        "\n"
        "def permute(edges, seed):\n"
        "    rng = random.Random(seed)\n"
        "    rng.shuffle(edges)\n"
        "    return edges\n",
    ),
    "dtype-explicit": (
        "streams/columns.py",
        "import numpy as np\n"
        "\n"
        "\n"
        "def columns(pairs):\n"
        "    u = np.array([p[0] for p in pairs], dtype=np.int32)\n"
        "    caps = np.zeros(len(u), dtype=np.float64)\n"
        "    view = np.asarray(u)\n"
        "    return u, caps, view\n",
    ),
    "shm-lifecycle": (
        "engine/arena.py",
        "from multiprocessing import shared_memory\n"
        "\n"
        "\n"
        "class EdgeArena:\n"
        "    def __init__(self, nbytes):\n"
        "        self._shm = shared_memory.SharedMemory(\n"
        "            create=True, size=nbytes\n"
        "        )\n"
        "\n"
        "    def close(self):\n"
        "        self._shm.close()\n"
        "\n"
        "    def unlink(self):\n"
        "        self._shm.unlink()\n"
        "\n"
        "\n"
        "def one_shot(payload):\n"
        "    try:\n"
        "        shm = shared_memory.SharedMemory(\n"
        "            create=True, size=len(payload)\n"
        "        )\n"
        "        shm.buf[: len(payload)] = payload\n"
        "        return shm.name\n"
        "    finally:\n"
        "        shm.close()\n"
        "        shm.unlink()\n",
    ),
    "nondet-ban": (
        "core/covariance.py",
        "def covariance(first, second):\n"
        "    shared = first.keys() & second.keys()\n"
        "    if not shared:\n"
        "        return 0.0\n"
        "    value = 1.0\n"
        "    for key, p in first.items():\n"
        "        if key in second:\n"
        "            value *= 1.0 / p\n"
        "    return value\n"
        "\n"
        "\n"
        "def ordered_nodes(records):\n"
        "    nodes = {r.u for r in records} | {r.v for r in records}\n"
        "    return sorted(nodes, key=repr)\n",
    ),
    "frozen-spec": (
        "api/spec.py",
        "from dataclasses import dataclass\n"
        "\n"
        "\n"
        "@dataclass(frozen=True)\n"
        "class DemoSpec:\n"
        "    budget: int\n"
        "\n"
        "    def to_dict(self):\n"
        "        return {'budget': self.budget}\n"
        "\n"
        "    @classmethod\n"
        "    def from_dict(cls, data):\n"
        "        return cls(**data)\n",
    ),
    "registry-flags": (
        "plugins/demo.py",
        "from repro.api.registry import register_method\n"
        "\n"
        "\n"
        "@register_method(\n"
        "    'demo',\n"
        "    summary='demo method',\n"
        "    reads_labels=False,\n"
        ")\n"
        "def build_demo(spec):\n"
        "    return None\n",
    ),
    "exception-discipline": (
        "serve/pump.py",
        "class Pump:\n"
        "    def __init__(self):\n"
        "        self._errors = []\n"
        "\n"
        "    def run(self, source, sink):\n"
        "        try:\n"
        "            for block in source:\n"
        "                sink.append(block)\n"
        "        except Exception as exc:\n"
        "            self._errors.append(f'pump: {exc!r}')\n",
    ),
    "api-doctest": (
        "api/facade.py",
        "def wedge_count(n):\n"
        "    '''Identity stand-in.\n"
        "\n"
        "    Example\n"
        "    -------\n"
        "    >>> wedge_count(3)\n"
        "    3\n"
        "    '''\n"
        "    return n\n"
        "\n"
        "\n"
        "def _helper(n):\n"
        "    return n + 1\n",
    ),
}


def test_conforming_snippets_cover_every_rule():
    assert set(CONFORMING) == set(rule_names())


@pytest.mark.parametrize("rule", sorted(CONFORMING))
def test_conforming_snippet_is_clean(rule, tmp_path):
    relpath, source = CONFORMING[rule]
    _write(tmp_path, relpath, source)
    result = lint_paths([tmp_path])
    details = "\n".join(
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in result.findings
    )
    assert result.clean, details
    assert result.suppressed == 0
    assert result.files_checked == 1


# ----------------------------------------------------------------------
# Scope: the same violating source outside a rule's scope is ignored.
# ----------------------------------------------------------------------
def test_scoped_rules_ignore_out_of_scope_files(tmp_path):
    # graph/ is outside rng-discipline's scope (core/baselines/streams/
    # engine) and outside nondet-ban's (core/stats).
    _write(tmp_path, "graph/io.py", "import random\nx = random.random()\n")
    assert lint_paths([tmp_path]).clean


def test_global_rules_apply_everywhere(tmp_path):
    source = (
        "from multiprocessing import shared_memory\n"
        "shm = shared_memory.SharedMemory(create=True, size=8)\n"
    )
    _write(tmp_path, "anywhere/leak.py", source)
    assert _rules(lint_paths([tmp_path])) == {"shm-lifecycle"}


# ----------------------------------------------------------------------
# Suppressions.
# ----------------------------------------------------------------------
def test_suppression_silences_and_is_counted(tmp_path):
    _write(
        tmp_path,
        "core/bad.py",
        "import random\n"
        "x = random.random()  # repro-lint: disable=rng-discipline fixture\n",
    )
    result = lint_paths([tmp_path])
    assert result.clean
    assert result.suppressed == 1


def test_suppression_comma_list(tmp_path):
    _write(
        tmp_path,
        "streams/bad.py",
        "import numpy as np\n"
        "xs = np.empty(4)  # repro-lint: disable=dtype-explicit,rng-discipline\n",
    )
    result = lint_paths([tmp_path])
    assert result.clean
    assert result.suppressed == 1


def test_suppression_is_rule_specific(tmp_path):
    _write(
        tmp_path,
        "core/bad.py",
        "import random\n"
        "x = random.random()  # repro-lint: disable=dtype-explicit\n",
    )
    result = lint_paths([tmp_path])
    assert [f.rule for f in result.findings] == ["rng-discipline"]
    assert result.suppressed == 0


def test_suppression_is_line_scoped(tmp_path):
    _write(
        tmp_path,
        "core/bad.py",
        "import random  # repro-lint: disable=rng-discipline\n"
        "x = random.random()\n",
    )
    result = lint_paths([tmp_path])
    assert [f.rule for f in result.findings] == ["rng-discipline"]


# ----------------------------------------------------------------------
# Selection, unknown ids, missing paths.
# ----------------------------------------------------------------------
def _mixed_tree(tmp_path):
    _write(tmp_path, "core/r.py", "import random\nx = random.random()\n")
    _write(tmp_path, "streams/d.py", "import numpy as np\nxs = np.zeros(4)\n")


def test_select_restricts_rules(tmp_path):
    _mixed_tree(tmp_path)
    result = lint_paths([tmp_path], select=["rng-discipline"])
    assert _rules(result) == {"rng-discipline"}


def test_ignore_drops_rules(tmp_path):
    _mixed_tree(tmp_path)
    result = lint_paths([tmp_path], ignore=["rng-discipline"])
    assert _rules(result) == {"dtype-explicit"}


def test_unknown_rule_id_raises(tmp_path):
    _mixed_tree(tmp_path)
    with pytest.raises(ValueError, match="unknown rule id"):
        lint_paths([tmp_path], select=["no-such-rule"])
    with pytest.raises(ValueError, match="no-such-rule"):
        lint_paths([tmp_path], ignore=["no-such-rule"])


def test_missing_path_raises(tmp_path):
    with pytest.raises(ValueError, match="no such file"):
        lint_paths([tmp_path / "nowhere"])


def test_findings_are_sorted_deterministically(tmp_path):
    _mixed_tree(tmp_path)
    result = lint_paths([tmp_path])
    keys = [f.sort_key() for f in result.findings]
    assert keys == sorted(keys)
    assert result.files_checked == 2


# ----------------------------------------------------------------------
# Syntax errors: unsuppressible, immune to --select/--ignore.
# ----------------------------------------------------------------------
def test_syntax_error_is_always_reported(tmp_path):
    _write(
        tmp_path,
        "core/broken.py",
        "def broken(:  # repro-lint: disable=syntax-error\n",
    )
    for kwargs in (
        {},
        {"select": ["dtype-explicit"]},
        {"ignore": ["rng-discipline"]},
    ):
        result = lint_paths([tmp_path], **kwargs)
        assert _rules(result) == {SYNTAX_ERROR_RULE}
        assert result.suppressed == 0


# ----------------------------------------------------------------------
# CLI round trips.
# ----------------------------------------------------------------------
def test_cli_clean_run_exits_zero(tmp_path, capsys):
    _write(tmp_path, "core/ok.py", "ANSWER = 42\n")
    assert main(["lint", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "1 file checked: clean" in out


def test_cli_text_report_shape(tmp_path, capsys):
    _write(tmp_path, "core/bad.py", "import random\nx = random.random()\n")
    assert main(["lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    [line, summary] = [l for l in out.splitlines() if l]
    assert line.endswith(
        "core/bad.py:2:4: rng-discipline [error] module-level draw "
        "`random.random` uses process-global RNG state; draw from the "
        "injected self._rng"
    )
    assert "1 finding" in summary


def test_cli_json_round_trip(tmp_path, capsys):
    _write(tmp_path, "core/bad.py", "import random\nx = random.random()\n")
    assert main(["lint", str(tmp_path), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["files_checked"] == 1
    assert payload["suppressed"] == 0
    [finding] = payload["findings"]
    assert finding["rule"] == "rng-discipline"
    assert finding["severity"] == "error"
    assert finding["line"] == 2
    assert finding["path"].endswith("core/bad.py")
    # The JSON cell shape is exactly Finding.to_dict.
    assert set(finding) == set(
        Finding(
            rule="r", severity="error", path="p", line=1, col=0, message="m"
        ).to_dict()
    )


def test_cli_select_accepts_comma_lists(tmp_path, capsys):
    _mixed_tree(tmp_path)
    code = main(
        ["lint", str(tmp_path), "--select", "rng-discipline,dtype-explicit"]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "rng-discipline" in out
    assert "dtype-explicit" in out


def test_cli_ignore_filters(tmp_path, capsys):
    _mixed_tree(tmp_path)
    assert main(["lint", str(tmp_path), "--ignore", "rng-discipline"]) == 1
    out = capsys.readouterr().out
    assert "rng-discipline" not in out
    assert "dtype-explicit" in out


def test_cli_unknown_rule_is_a_usage_error(tmp_path, capsys):
    _mixed_tree(tmp_path)
    assert main(["lint", str(tmp_path), "--select", "no-such-rule"]) == 2
    err = capsys.readouterr().err
    assert "no-such-rule" in err
    assert "known rules" in err


def test_cli_missing_path_is_a_usage_error(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "nowhere")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_cli_markdown_emits_the_catalog(capsys):
    assert main(["lint", "--markdown"]) == 0
    assert capsys.readouterr().out == rules_markdown()
