"""Checked-in generated docs must match what the registry generates.

``docs/methods.md`` is emitted by ``python -m repro methods --markdown``;
this test (and the mirroring CI step) fails when a method or weight is
registered, renamed or re-described without regenerating the file.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import rule_names, rules_markdown
from repro.api.registry import registry_markdown
from repro.cli import main

DOCS = Path(__file__).resolve().parent.parent / "docs" / "methods.md"
INVARIANTS = DOCS.parent / "invariants.md"


def test_methods_markdown_in_sync_with_registry():
    assert DOCS.exists(), (
        "docs/methods.md is missing; regenerate with "
        "`python -m repro methods --markdown > docs/methods.md`"
    )
    assert DOCS.read_text() == registry_markdown(), (
        "docs/methods.md drifted from the method registry; regenerate "
        "with `python -m repro methods --markdown > docs/methods.md`"
    )


def test_markdown_flag_emits_the_catalog(capsys):
    assert main(["methods", "--markdown"]) == 0
    out = capsys.readouterr().out
    assert out == registry_markdown()


def test_catalog_lists_every_registration():
    from repro.api.registry import method_names, weight_names

    text = registry_markdown()
    for name in method_names():
        assert f"| {name} |" in text
    for name in weight_names():
        assert f"| {name} |" in text


def test_catalog_escapes_table_pipes():
    # MASCOT's description contains 'budget/|K|'; unescaped pipes would
    # silently add table columns.
    text = registry_markdown()
    assert "budget/\\|K\\|" in text


def test_invariants_markdown_in_sync_with_rule_registry():
    assert INVARIANTS.exists(), (
        "docs/invariants.md is missing; regenerate with "
        "`python -m repro lint --markdown > docs/invariants.md`"
    )
    assert INVARIANTS.read_text() == rules_markdown(), (
        "docs/invariants.md drifted from the lint rule registry; "
        "regenerate with `python -m repro lint --markdown > "
        "docs/invariants.md`"
    )


def test_lint_markdown_flag_emits_the_catalog(capsys):
    assert main(["lint", "--markdown"]) == 0
    assert capsys.readouterr().out == rules_markdown()


def test_invariant_catalog_lists_every_rule():
    text = rules_markdown()
    for name in rule_names():
        assert f"## {name}" in text
        assert f"| [{name}](#{name}) |" in text


@pytest.mark.parametrize(
    "doc",
    [
        "architecture.md",
        "methods.md",
        "performance.md",
        "invariants.md",
        "serving.md",
        "sharding.md",
        "robustness.md",
        "distributed.md",
    ],
)
def test_documentation_suite_present(doc):
    assert (DOCS.parent / doc).exists()


def test_readme_present_and_covers_quickstart():
    readme = DOCS.parent.parent / "README.md"
    assert readme.exists()
    text = readme.read_text()
    for command in ("sample", "track", "replicate", "sweep", "serve"):
        assert command in text
