"""Tests for EdgeRecord and the SampledGraph reservoir view."""

from __future__ import annotations

import pytest

from repro.core.records import EdgeRecord
from repro.core.reservoir import SampledGraph


def rec(u, v, weight=1.0, priority=1.0):
    return EdgeRecord(u, v, weight=weight, priority=priority)


class TestEdgeRecord:
    def test_key_is_canonical(self):
        assert rec(5, 2).key == (2, 5)

    def test_other_endpoint(self):
        record = rec(1, 2)
        assert record.other_endpoint(1) == 2
        assert record.other_endpoint(2) == 1

    def test_other_endpoint_invalid(self):
        with pytest.raises(ValueError):
            rec(1, 2).other_endpoint(9)

    def test_inclusion_probability_before_overflow(self):
        assert rec(0, 1, weight=0.5).inclusion_probability(0.0) == 1.0

    def test_inclusion_probability_capped_at_one(self):
        assert rec(0, 1, weight=10.0).inclusion_probability(2.0) == 1.0

    def test_inclusion_probability_ratio(self):
        assert rec(0, 1, weight=1.0).inclusion_probability(4.0) == 0.25

    def test_accumulators_start_at_zero(self):
        record = rec(0, 1)
        assert record.cov_triangle == 0.0
        assert record.cov_wedge == 0.0
        assert record.heap_pos == -1


class TestSampledGraphMutation:
    def test_add_and_query(self):
        sample = SampledGraph()
        record = rec(0, 1)
        sample.add(record)
        assert sample.num_edges == 1
        assert sample.num_nodes == 2
        assert sample.has_edge(0, 1)
        assert sample.has_edge(1, 0)
        assert sample.record(1, 0) is record

    def test_duplicate_add_raises(self):
        sample = SampledGraph()
        sample.add(rec(0, 1))
        with pytest.raises(ValueError):
            sample.add(rec(1, 0))

    def test_remove_drops_isolated_nodes(self):
        sample = SampledGraph()
        record = rec(0, 1)
        sample.add(record)
        sample.remove(record)
        assert sample.num_edges == 0
        assert sample.num_nodes == 0
        assert sample.record(0, 1) is None

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            SampledGraph().remove(rec(0, 1))

    def test_degree(self):
        sample = SampledGraph()
        sample.add(rec(0, 1))
        sample.add(rec(0, 2))
        assert sample.degree(0) == 2
        assert sample.degree(1) == 1
        assert sample.degree(9) == 0


class TestSampledGraphEnumeration:
    def build_diamond(self):
        sample = SampledGraph()
        records = {}
        for u, v in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]:
            records[(u, v)] = rec(u, v)
            sample.add(records[(u, v)])
        return sample, records

    def test_records_each_edge_once(self):
        sample, records = self.build_diamond()
        seen = sorted(r.key for r in sample.records())
        assert seen == sorted(r.key for r in records.values())

    def test_common_neighbor_count(self):
        sample, _ = self.build_diamond()
        assert sample.common_neighbor_count(1, 2) == 2
        assert sample.common_neighbor_count(0, 3) == 2
        assert sample.common_neighbor_count(0, 9) == 0

    def test_triangles_with_sampled_edge(self):
        sample, records = self.build_diamond()
        found = {w: (r1.key, r2.key) for w, r1, r2 in sample.triangles_with(1, 2)}
        assert set(found) == {0, 3}
        assert found[0] == ((0, 1), (0, 2))
        assert found[3] == ((1, 3), (2, 3))

    def test_triangles_with_unsampled_edge(self):
        # Triangles an *arriving* (not yet sampled) edge would close.
        sample = SampledGraph()
        sample.add(rec(0, 1))
        sample.add(rec(0, 2))
        found = list(sample.triangles_with(1, 2))
        assert len(found) == 1
        assert found[0][0] == 0

    def test_incident_records_with_exclusion(self):
        sample, _ = self.build_diamond()
        keys = sorted(r.key for r in sample.incident_records(1, exclude=2))
        assert keys == [(0, 1), (1, 3)]
        keys_all = sorted(r.key for r in sample.incident_records(1))
        assert keys_all == [(0, 1), (1, 2), (1, 3)]

    def test_triangles_with_scans_smaller_side(self):
        # Correctness is orientation-independent.
        sample, _ = self.build_diamond()
        fwd = {w for w, _a, _b in sample.triangles_with(1, 2)}
        rev = {w for w, _a, _b in sample.triangles_with(2, 1)}
        assert fwd == rev == {0, 3}
