"""Chaos acceptance suite: bit-identity under injected faults.

Every test runs one of the four execution surfaces (replicated run,
sweep grid, sharded run, live serve session) twice — once fault-free
and once under a deterministic :class:`~repro.faults.FaultPlan` — and
asserts that the faulted run (a) actually exercised the recovery path
(retry/reconnect/quarantine counters > 0) and (b) produced estimates
**bit-identical** to the fault-free oracle.  That equality is the
whole point of the retry design: tasks and streams are pure functions
of their seeds, so a resubmitted task or a replayed source recomputes
the exact same numbers.

These tests spin real process pools and TCP servers, so they are
deselected from tier-1 (``addopts`` excludes ``-m chaos``) and run in
their own CI job::

    python -m pytest -m chaos
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from random import Random

import pytest

from repro.api.execution import run
from repro.api.spec import RunSpec
from repro.api.sweep import SweepSpec, run_sweep
from repro.core.weights import UniformWeight
from repro.distrib import DistribSpec, run_distributed_sweep
from repro.faults import FaultPlan, FaultSpec
from repro.graph.generators import powerlaw_cluster
from repro.graph.io import write_edge_list
from repro.serve import SamplingService, ServeSpec
from repro.shard.runner import ShardedRunner
from repro.streams.stream import EdgeStream

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster(250, 3, 0.5, seed=9)


@pytest.fixture(scope="module")
def edge_file(graph, tmp_path_factory):
    path = tmp_path_factory.mktemp("chaos") / "graph.txt"
    write_edge_list(graph, path)
    return str(path)


# ----------------------------------------------------------------------
# Replicated run: a crashed pool worker is retried bit-identically
# ----------------------------------------------------------------------
class TestReplicationChaos:
    def test_worker_crash_bit_identical(self, edge_file):
        base = RunSpec(
            source=edge_file, method="gps", budget=100, replications=4,
            stream_seed=3, sampler_seed=30,
        )
        oracle = run(base.replace(workers=0))
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="crash-worker", site="replication", at=1),
            )
        )
        crashed = run(base.replace(workers=2), faults=plan)
        assert crashed.task_retries > 0
        assert crashed.pool_rebuilds > 0
        assert crashed.estimates == oracle.estimates
        assert set(crashed.metrics) == set(oracle.metrics)
        for name, summary in oracle.metrics.items():
            assert crashed.metrics[name] == summary

    def test_raised_task_bit_identical(self, edge_file):
        base = RunSpec(
            source=edge_file, method="gps", budget=100, replications=3,
            stream_seed=4, sampler_seed=40,
        )
        oracle = run(base.replace(workers=0))
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="raise-task", site="replication", at=0),
                FaultSpec(kind="raise-task", site="replication", at=2),
            )
        )
        flaky = run(base.replace(workers=2), faults=plan)
        assert flaky.task_retries >= 2
        assert flaky.pool_rebuilds == 0  # raise kills the task, not the pool
        assert flaky.estimates == oracle.estimates


# ----------------------------------------------------------------------
# Sweep grid: pooled crash, then resume over a corrupted cell cache
# ----------------------------------------------------------------------
class TestSweepChaos:
    @pytest.fixture(scope="class")
    def spec(self, edge_file):
        # 1 source x 2 methods x 2 budgets = the 4-cell grid.
        return SweepSpec(
            sources=(edge_file,),
            methods=("triest", "gps-in-stream"),
            budgets=(80, 120),
            runs=2,
            base_stream_seed=3,
            base_sampler_seed=30,
            workers=2,
        )

    @staticmethod
    def _assert_cells_identical(report, oracle):
        assert len(report.cells) == len(oracle.cells) == 4
        for cell, truth in zip(report.cells, oracle.cells):
            assert cell.key == truth.key
            assert cell.metrics == truth.metrics
            assert cell.triangles == truth.triangles
            assert cell.relative_error == truth.relative_error
            assert [r.estimates for r in cell.reports] == [
                r.estimates for r in truth.reports
            ]

    def test_crash_then_corrupted_resume(self, spec, tmp_path):
        oracle = run_sweep(spec.replace(workers=0))

        # Leg 1: pooled execution with a worker crash mid-grid.
        plan = FaultPlan(
            faults=(FaultSpec(kind="crash-worker", site="sweep", at=1),)
        )
        crashed = run_sweep(spec, cache_dir=tmp_path, faults=plan)
        assert crashed.task_retries > 0
        assert crashed.pool_rebuilds > 0
        self._assert_cells_identical(crashed, oracle)

        # Leg 2: resume over the populated cache with one entry mangled
        # — the store quarantines it and the grid recounts that cell.
        corrupt = FaultPlan(
            faults=(
                FaultSpec(kind="corrupt-cache", site="sweep-cache", at=2),
            )
        )
        resumed = run_sweep(
            spec, cache_dir=tmp_path, resume=True, faults=corrupt
        )
        assert resumed.cache_quarantined >= 1
        assert resumed.cell_cache_misses >= 1  # the recount
        assert resumed.cell_cache_hits >= 1  # intact entries replayed
        self._assert_cells_identical(resumed, oracle)


# ----------------------------------------------------------------------
# Distributed sweep: a SIGKILLed fleet worker's cells are reclaimed
# ----------------------------------------------------------------------
class TestDistributedSweepChaos:
    @pytest.fixture(scope="class")
    def spec(self, edge_file):
        # 1 source x 2 methods x 3 budgets = the 6-cell grid.
        return SweepSpec(
            sources=(edge_file,),
            methods=("triest", "gps-in-stream"),
            budgets=(60, 80, 100),
            runs=1,
            base_stream_seed=3,
            base_sampler_seed=30,
        )

    @staticmethod
    def _assert_cells_identical(report, oracle):
        assert len(report.cells) == len(oracle.cells) == 6
        for cell, truth in zip(report.cells, oracle.cells):
            assert cell.key == truth.key
            assert cell.metrics == truth.metrics
            assert cell.triangles == truth.triangles
            assert cell.relative_error == truth.relative_error
            assert [r.estimates for r in cell.reports] == [
                r.estimates for r in truth.reports
            ]

    def test_sigkilled_worker_cells_reclaimed_bit_identical(
        self, spec, tmp_path
    ):
        oracle = run_sweep(spec.replace(workers=0))
        # Worker 0 SIGKILLs itself after its second claim — lease held,
        # no result published.  The short lease timeout lets worker 1
        # reclaim the orphaned cell and re-execute it; the assembled
        # report must not show the crash in its numbers.
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="crash-worker-midcell", site="distrib",
                          at=1),
            )
        )
        report = run_distributed_sweep(
            spec,
            cache_dir=tmp_path,
            distrib=DistribSpec(
                workers=2, lease_timeout=1.0,
                heartbeat_interval=0.1, poll_interval=0.02,
            ),
            fault_plans={0: plan},
        )
        assert report.distributed_workers == 2
        assert report.leases_reclaimed > 0
        assert report.cells_reexecuted > 0
        assert report.cell_cache_hits == 6  # assembly replays the store
        self._assert_cells_identical(report, oracle)

    def test_heartbeat_stall_converges_bit_identical(self, spec, tmp_path):
        oracle = run_sweep(spec.replace(workers=0))
        # Worker 0's heartbeat thread swallows its touches, so its
        # leases can go stale mid-execution and be reclaimed while it
        # is still computing.  Both copies of a doubly-executed cell
        # write byte-identical content-addressed results, so the
        # convergence guarantee is unconditional even though the
        # reclaim counters depend on scheduling.
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="stall-heartbeat", site="distrib",
                          at=0, times=1000),
            )
        )
        report = run_distributed_sweep(
            spec,
            cache_dir=tmp_path,
            distrib=DistribSpec(
                workers=2, lease_timeout=0.4,
                heartbeat_interval=0.1, poll_interval=0.02,
            ),
            fault_plans={0: plan},
        )
        assert report.distributed_workers == 2
        self._assert_cells_identical(report, oracle)


# ----------------------------------------------------------------------
# Sharded run: a crashed shard task is re-dispatched bit-identically
# ----------------------------------------------------------------------
class TestShardChaos:
    def test_shard_crash_bit_identical(self, graph):
        edges = EdgeStream.canonical_edges(graph)
        kwargs = dict(
            shards=4, budget=400, weight_fn=UniformWeight(),
            stream_seed=2, sampler_seed=20,
        )
        oracle = ShardedRunner(edges, workers=0, **kwargs).run()
        plan = FaultPlan(
            faults=(FaultSpec(kind="crash-worker", site="shard", at=2),)
        )
        crashed = ShardedRunner(
            edges, workers=2, faults=plan, **kwargs
        ).run()
        assert crashed.task_retries > 0
        assert crashed.pool_rebuilds > 0
        assert (
            crashed.estimates.triangles.value
            == oracle.estimates.triangles.value
        )
        assert crashed.shard_thresholds == oracle.shard_thresholds
        assert crashed.shard_edges == oracle.shard_edges
        assert crashed.shard_sample_sizes == oracle.shard_sample_sizes


# ----------------------------------------------------------------------
# Live serve: a reset TCP source reconnects and replays bit-identically
# ----------------------------------------------------------------------
def _stream_edges(n: int, nodes: int, seed: int):
    rng = Random(seed)
    seen = set()
    edges = []
    while len(edges) < n:
        u, v = rng.randrange(nodes), rng.randrange(nodes)
        key = (min(u, v), max(u, v))
        if u == v or key in seen:
            continue
        seen.add(key)
        edges.append((u, v))
    return edges


def _feeder(server: socket.socket, edges, drop_after=None) -> None:
    """Serve ``edges`` to every connection; reset (RST) the *first*
    connection after ``drop_after`` lines to simulate an abrupt drop.
    Each connection replays from the start — the source's replay-skip
    must turn that into a gapless resume."""
    first = [True]

    def run() -> None:
        while True:
            try:
                conn, _ = server.accept()
            except OSError:
                return
            limit = drop_after if (first[0] and drop_after) else None
            first[0] = False
            try:
                handle = conn.makefile("w")
                sent = 0
                for u, v in edges:
                    if limit is not None and sent >= limit:
                        break
                    handle.write(f"{u} {v}\n")
                    sent += 1
                handle.flush()
                if limit is not None and sent >= limit:
                    # RST on close: an abrupt drop, not a clean EOF.
                    conn.setsockopt(
                        socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0),
                    )
                handle.close()
                conn.close()
            except OSError:
                pass

    threading.Thread(target=run, daemon=True).start()


def _run_session(spec: ServeSpec, want: int):
    service = SamplingService(spec)
    service.start()
    deadline = time.time() + 30
    while time.time() < deadline:
        if service.status()["stream_position"] >= want:
            break
        if not service.running:
            break
        time.sleep(0.02)
    service.stop(drain=True)
    return service, service.latest()


class TestServeChaos:
    def test_socket_reset_bit_identical(self):
        edges = _stream_edges(1500, nodes=300, seed=42)

        clean_srv = socket.create_server(("127.0.0.1", 0))
        _feeder(clean_srv, edges)
        faulty_srv = socket.create_server(("127.0.0.1", 0))
        _feeder(faulty_srv, edges, drop_after=500)
        try:
            base = dict(
                budget=200, chunk_size=128, max_edges=len(edges),
                sampler_seed=7,
            )
            clean_spec = ServeSpec(
                source=f"tcp://127.0.0.1:{clean_srv.getsockname()[1]}",
                **base,
            )
            faulty_spec = ServeSpec(
                source=f"tcp://127.0.0.1:{faulty_srv.getsockname()[1]}",
                source_retries=3, retry_backoff=0.01,
                retry_backoff_cap=0.05, **base,
            )
            _, oracle = _run_session(clean_spec, want=len(edges))
            service, snap = _run_session(faulty_spec, want=len(edges))
        finally:
            clean_srv.close()
            faulty_srv.close()

        resilience = service.status()["resilience"]
        assert resilience["source_reconnects"] >= 1
        assert resilience["degraded"] is False
        assert snap.stream_position == oracle.stream_position == len(edges)
        assert snap.estimates() == oracle.estimates()
