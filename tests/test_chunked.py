"""The chunked (columnar) admission pipeline: bit-exactness and plumbing.

The chunked pipeline's contract mirrors the compact core's: given the
same ``(capacity, weight_fn, seed)`` and the same arrival order,
``process_chunk`` over columnar blocks is *indistinguishable* from the
scalar loops — same samples, thresholds, estimates and RNG state, bit
for bit — for every registered label-free weight, through every entry
point (direct classes, ``run(spec)``, tracking with mid-chunk marks,
inline and pooled replication).  Dirty blocks (self-loops, duplicates,
non-int labels) and label-reading configurations must fall back to the
scalar path, identically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.execution import replicate, run
from repro.api.registry import GpsPostStreamAdapter, get_weight, weight_names
from repro.api.spec import RunSpec
from repro.core.compact import (
    CompactGraphPrioritySampler,
    CompactInStreamEstimator,
)
from repro.core.in_stream import InStreamEstimator
from repro.core.priority_sampler import GraphPrioritySampler
from repro.core.weights import AttributeWeight, UniformWeight, is_label_free
from repro.engine.replication import (
    ReplicatedRunner,
    _Population,
    _ReplicationTask,
    _run_replication,
)
from repro.engine.stream_engine import (
    DEFAULT_PIPELINE,
    PIPELINES,
    StreamEngine,
    validate_pipeline,
)
from repro.graph.generators import powerlaw_cluster
from repro.graph.io import iter_edge_chunks, write_edge_list
from repro.streams.chunks import (
    DEFAULT_CHUNK_SIZE,
    columnar_or_none,
    iter_chunks,
)
from repro.streams.interner import NodeInterner
from repro.streams.stream import EdgeStream


@pytest.fixture(scope="module")
def clean_edges():
    graph = powerlaw_cluster(400, 4, 0.6, seed=3)
    return list(EdgeStream.from_graph(graph, seed=0))


@pytest.fixture(scope="module")
def dirty_edges(clean_edges):
    """Self-loops and duplicates mixed in: every block must fall back."""
    return (clean_edges[:40] + [(7, 7)] + clean_edges[:15]
            + clean_edges[40:])


def label_free_weights():
    return [
        get_weight(name).factory()
        for name in weight_names()
        if is_label_free(get_weight(name).factory())
    ]


def sampler_signature(sampler):
    return (
        sampler.threshold,
        sampler.stream_position,
        sampler.duplicates_skipped,
        sampler.self_loops_skipped,
        sampler.normalized_probabilities(),
        [
            (r.key, r.weight, r.priority, r.arrival)
            for r in sampler.records()
        ],
        sampler._rng.getstate(),
    )


def drive_chunked(sampler, edges, chunk_size):
    for cu, cv in EdgeStream(edges).chunks(chunk_size):
        consumed = sampler.process_chunk(cu, cv)
        assert consumed == len(cu)


# ----------------------------------------------------------------------
# Columnar substrate
# ----------------------------------------------------------------------
class TestColumnar:
    def test_int_streams_columnarise_label_faithfully(self):
        u, v = columnar_or_none([(5, 3), (3, 9)])
        assert u.dtype == np.int32
        assert u.tolist() == [5, 3] and v.tolist() == [3, 9]

    @pytest.mark.parametrize("edges", [
        [("a", "b")],
        [(0.5, 1)],
        [(True, 2)],
        [(2**31, 1)],
        [(-(2**31) - 1, 1)],
    ], ids=["str", "float", "bool", "overflow", "underflow"])
    def test_non_int32_labels_refuse(self, edges):
        assert columnar_or_none(edges) is None

    def test_negative_int32_labels_allowed(self):
        u, v = columnar_or_none([(-3, 4)])
        assert (u.tolist(), v.tolist()) == ([-3], [4])

    def test_stream_chunks_slice_in_order(self, clean_edges):
        stream = EdgeStream(clean_edges)
        rebuilt = []
        for cu, cv in stream.chunks(64):
            assert len(cu) == len(cv) <= 64
            rebuilt.extend(zip(cu.tolist(), cv.tolist()))
        assert rebuilt == clean_edges
        # the columnar conversion is cached on the stream
        assert stream.columnar() is stream.columnar()

    def test_label_stream_needs_interner(self):
        stream = EdgeStream([("a", "b"), ("b", "c")])
        with pytest.raises(TypeError):
            next(stream.chunks(8))
        interner = NodeInterner()
        blocks = list(stream.chunks(8, interner=interner))
        assert [(u.tolist(), v.tolist()) for u, v in blocks] == [([0, 1], [1, 2])]
        assert interner.label(2) == "c"

    def test_iter_chunks_over_generator(self):
        blocks = list(iter_chunks(((i, i + 1) for i in range(10)), size=4))
        assert [len(u) for u, _ in blocks] == [4, 4, 2]
        assert blocks[2][1].tolist() == [9, 10]

    def test_iter_edge_chunks_parses_natively(self, tmp_path, clean_edges):
        path = tmp_path / "graph.txt"
        write_edge_list(clean_edges, path, header="a comment")
        rebuilt = []
        for cu, cv in iter_edge_chunks(path, size=100):
            assert cu.dtype == np.int32 and len(cu) <= 100
            rebuilt.extend(zip(cu.tolist(), cv.tolist()))
        assert rebuilt == clean_edges

    def test_invalid_sizes_rejected(self, clean_edges):
        with pytest.raises(ValueError):
            next(EdgeStream(clean_edges).chunks(0))
        with pytest.raises(ValueError):
            next(iter_chunks(clean_edges, size=-1))

    def test_pipeline_validation(self):
        assert validate_pipeline(DEFAULT_PIPELINE) == DEFAULT_PIPELINE
        with pytest.raises(ValueError):
            validate_pipeline("turbo")
        assert set(PIPELINES) == {"chunked", "scalar"}


# ----------------------------------------------------------------------
# process_chunk bit-equivalence (direct classes)
# ----------------------------------------------------------------------
class TestProcessChunkEquivalence:
    @pytest.mark.parametrize(
        "weight_fn", label_free_weights(), ids=lambda w: repr(w)[:40]
    )
    @pytest.mark.parametrize("chunk_size", [1, 37, 256, 10**6])
    def test_chunked_equals_scalar_and_object(
        self, clean_edges, weight_fn, chunk_size
    ):
        chunked = CompactGraphPrioritySampler(
            150, weight_fn=weight_fn, seed=9
        )
        drive_chunked(chunked, clean_edges, chunk_size)
        scalar = CompactGraphPrioritySampler(150, weight_fn=weight_fn, seed=9)
        scalar.process_many(clean_edges)
        assert sampler_signature(chunked) == sampler_signature(scalar)
        reference = GraphPrioritySampler(150, weight_fn=weight_fn, seed=9)
        reference.process_many(clean_edges)
        assert chunked.threshold == reference.threshold
        assert (
            chunked.normalized_probabilities()
            == reference.normalized_probabilities()
        )

    @pytest.mark.parametrize(
        "weight_fn", label_free_weights(), ids=lambda w: repr(w)[:40]
    )
    def test_dirty_blocks_fall_back_bit_exactly(self, dirty_edges, weight_fn):
        chunked = CompactGraphPrioritySampler(
            150, weight_fn=weight_fn, seed=9
        )
        drive_chunked(chunked, dirty_edges, 64)
        scalar = CompactGraphPrioritySampler(150, weight_fn=weight_fn, seed=9)
        scalar.process_many(dirty_edges)
        assert sampler_signature(chunked) == sampler_signature(scalar)
        assert chunked.duplicates_skipped > 0
        assert chunked.self_loops_skipped > 0

    def test_stream_shorter_than_one_chunk(self, clean_edges):
        short = clean_edges[:17]  # below capacity: pure fill phase
        chunked = CompactGraphPrioritySampler(150, seed=4)
        drive_chunked(chunked, short, DEFAULT_CHUNK_SIZE)
        scalar = CompactGraphPrioritySampler(150, seed=4)
        scalar.process_many(short)
        assert sampler_signature(chunked) == sampler_signature(scalar)

    def test_scalar_and_chunked_calls_interleave(self, clean_edges):
        mixed = CompactGraphPrioritySampler(
            120, weight_fn=UniformWeight(), seed=2
        )
        mixed.process_many(clean_edges[:101])
        drive_chunked(mixed, clean_edges[101:401], 50)
        mixed.process_many(clean_edges[401:500])
        drive_chunked(mixed, clean_edges[500:], 128)
        scalar = CompactGraphPrioritySampler(
            120, weight_fn=UniformWeight(), seed=2
        )
        scalar.process_many(clean_edges)
        assert sampler_signature(mixed) == sampler_signature(scalar)

    def test_plain_sequences_accepted(self, clean_edges):
        us = [u for u, _ in clean_edges[:300]]
        vs = [v for _, v in clean_edges[:300]]
        loose = CompactGraphPrioritySampler(80, seed=1)
        loose.process_chunk(us, vs)
        scalar = CompactGraphPrioritySampler(80, seed=1)
        scalar.process_many(clean_edges[:300])
        assert sampler_signature(loose) == sampler_signature(scalar)

    def test_mismatched_columns_rejected(self):
        sampler = CompactGraphPrioritySampler(8, seed=0)
        with pytest.raises(ValueError):
            sampler.process_chunk(np.array([1, 2]), np.array([3]))

    def test_chunk_vectorized_only_for_uniform(self):
        assert CompactGraphPrioritySampler(
            8, weight_fn=UniformWeight(), seed=0
        ).chunk_vectorized
        assert not CompactGraphPrioritySampler(8, seed=0).chunk_vectorized
        assert not CompactInStreamEstimator(8, seed=0).chunk_vectorized

    def test_estimator_chunks_match_scalar(self, clean_edges):
        for weight_fn in label_free_weights():
            chunked = CompactInStreamEstimator(
                100, weight_fn=weight_fn, seed=5
            )
            for cu, cv in EdgeStream(clean_edges).chunks(200):
                chunked.process_chunk(cu, cv)
            scalar = InStreamEstimator(100, weight_fn=weight_fn, seed=5)
            scalar.process_many(clean_edges)
            assert chunked.triangle_estimate == scalar.triangle_estimate
            assert chunked.wedge_estimate == scalar.wedge_estimate
            assert chunked.estimates() == scalar.estimates()

    def test_adapter_forwards_chunks_on_both_cores(self, clean_edges):
        columns = EdgeStream(clean_edges).columnar()
        for core_cls in (CompactGraphPrioritySampler, GraphPrioritySampler):
            adapter = GpsPostStreamAdapter(
                core_cls(90, weight_fn=UniformWeight(), seed=3)
            )
            adapter.process_chunk(*columns)
            scalar = core_cls(90, weight_fn=UniformWeight(), seed=3)
            scalar.process_many(clean_edges)
            assert adapter.sampler.threshold == scalar.threshold
            assert (
                adapter.sampler.normalized_probabilities()
                == scalar.normalized_probabilities()
            )

    def test_reset_restores_fresh_state(self, clean_edges):
        warm = CompactGraphPrioritySampler(
            100, weight_fn=UniformWeight(), seed=42
        )
        warm.process_many(clean_edges)
        warm.reset(9)
        drive_chunked(warm, clean_edges, 128)
        fresh = CompactGraphPrioritySampler(
            100, weight_fn=UniformWeight(), seed=9
        )
        fresh.process_many(clean_edges)
        assert sampler_signature(warm) == sampler_signature(fresh)

    def test_estimator_reset(self, clean_edges):
        warm = CompactInStreamEstimator(80, seed=1)
        warm.process_many(clean_edges)
        warm.reset(6)
        warm.process_many(clean_edges)
        fresh = CompactInStreamEstimator(80, seed=6)
        fresh.process_many(clean_edges)
        assert warm.estimates() == fresh.estimates()


# ----------------------------------------------------------------------
# Engine: chunk splitting at marks, companion granularity
# ----------------------------------------------------------------------
class _BatchSpy:
    """A companion that records the granularity it was driven at."""

    def __init__(self):
        self.edges = []
        self.batch_sizes = []

    def process(self, u, v):
        self.edges.append((u, v))
        self.batch_sizes.append(1)

    def process_many(self, edges):
        batch = list(edges)
        self.edges.extend(batch)
        self.batch_sizes.append(len(batch))


class _PerEdgeSpy:
    """A companion demanding per-edge hooks (no process_many)."""

    def __init__(self):
        self.edges = []

    def process(self, u, v):
        self.edges.append((u, v))


class TestEngineChunking:
    def test_checkpoints_split_chunks_exactly(self, clean_edges):
        stream = EdgeStream(clean_edges)
        marks = [3, 64, 65, 301, len(clean_edges)]
        sampler = CompactGraphPrioritySampler(
            70, weight_fn=UniformWeight(), seed=8
        )
        seen = {}

        def record(t):
            seen[t] = sampler_signature(sampler)

        engine = StreamEngine(sampler, chunk_size=64)
        stats = engine.run(stream, checkpoints=marks, on_checkpoint=record)
        assert stats.edges == len(clean_edges)
        assert stats.checkpoints == tuple(marks)
        for t in marks:
            fresh = CompactGraphPrioritySampler(
                70, weight_fn=UniformWeight(), seed=8
            )
            fresh.process_many(clean_edges[:t])
            assert seen[t] == sampler_signature(fresh), t

    def test_companions_ride_the_batched_path(self, clean_edges):
        """Regression: a process_many companion must no longer force the
        per-edge lockstep loop."""
        spy = _BatchSpy()
        counter = CompactGraphPrioritySampler(
            60, weight_fn=UniformWeight(), seed=1
        )
        marks = [100, 250]
        engine = StreamEngine(counter, companions=(spy,))
        stats = engine.run(EdgeStream(clean_edges), checkpoints=marks)
        assert stats.edges == len(clean_edges)
        assert spy.edges == clean_edges  # same arrivals, same order
        assert max(spy.batch_sizes) > 1  # driven at batch granularity
        assert len(spy.batch_sizes) < len(clean_edges)

    def test_companions_ride_the_chunked_path(self, clean_edges):
        spy = _BatchSpy()
        counter = CompactGraphPrioritySampler(
            60, weight_fn=UniformWeight(), seed=1
        )
        engine = StreamEngine(counter, companions=(spy,), chunk_size=128)
        engine.run(EdgeStream(clean_edges), checkpoints=[50, 200])
        assert spy.edges == clean_edges
        assert max(spy.batch_sizes) > 1
        scalar = CompactGraphPrioritySampler(
            60, weight_fn=UniformWeight(), seed=1
        )
        scalar.process_many(clean_edges)
        assert sampler_signature(counter) == sampler_signature(scalar)

    def test_per_edge_companion_forces_lockstep(self, clean_edges):
        spy = _PerEdgeSpy()
        counter = CompactGraphPrioritySampler(
            60, weight_fn=UniformWeight(), seed=1
        )
        engine = StreamEngine(counter, companions=(spy,), chunk_size=128)
        engine.run(EdgeStream(clean_edges))
        assert spy.edges == clean_edges
        scalar = CompactGraphPrioritySampler(
            60, weight_fn=UniformWeight(), seed=1
        )
        scalar.process_many(clean_edges)
        assert sampler_signature(counter) == sampler_signature(scalar)

    def test_chunked_engine_matches_scalar_engine(self, clean_edges):
        chunked = CompactGraphPrioritySampler(
            90, weight_fn=UniformWeight(), seed=5
        )
        StreamEngine(chunked, chunk_size=77).run(EdgeStream(clean_edges))
        scalar = CompactGraphPrioritySampler(
            90, weight_fn=UniformWeight(), seed=5
        )
        StreamEngine(scalar).run(EdgeStream(clean_edges))
        assert sampler_signature(chunked) == sampler_signature(scalar)

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            StreamEngine(object(), chunk_size=0)


# ----------------------------------------------------------------------
# run(spec): pipeline plumbing and fallbacks
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def graph_file(tmp_path_factory, clean_edges):
    path = tmp_path_factory.mktemp("chunked") / "graph.txt"
    write_edge_list(clean_edges, path)
    return str(path)


class TestRunSpecPipeline:
    @pytest.mark.parametrize("method", ["gps", "gps-post", "gps-in-stream"])
    @pytest.mark.parametrize("weight", ["uniform", "triangle", "wedge"])
    def test_chunked_vs_scalar_bit_equal(self, graph_file, method, weight):
        spec = RunSpec(source=graph_file, method=method, budget=120,
                       weight=weight, pipeline="chunked")
        chunked = run(spec)
        scalar = run(spec.replace(pipeline="scalar"))
        assert chunked.estimates == scalar.estimates
        assert chunked.sample_size == scalar.sample_size
        assert chunked.threshold == scalar.threshold
        assert scalar.pipeline == "scalar"
        # only the vectorised-gate configuration reports chunked
        expected = "chunked" if (method == "gps-post"
                                 and weight == "uniform") else "scalar"
        assert chunked.pipeline == expected

    def test_tracking_marks_land_mid_chunk(self, graph_file):
        spec = RunSpec(source=graph_file, method="gps-post", budget=80,
                       weight="uniform", checkpoints=7)
        chunked = run(spec)
        scalar = run(spec.replace(pipeline="scalar"))
        assert chunked.pipeline == "chunked"
        assert len(chunked.tracking) == 7
        for a, b in zip(chunked.tracking, scalar.tracking):
            assert (a.position, a.estimate, a.exact_triangles) == (
                b.position, b.estimate, b.exact_triangles
            )

    def test_label_reading_weight_falls_back(self, graph_file):
        spec = RunSpec(source=graph_file, method="gps-post", budget=80,
                       pipeline="chunked")
        report = run(spec, weight_fn=AttributeWeight(lambda u, v: 1.0))
        assert report.pipeline == "scalar"

    def test_report_round_trips_pipeline(self, graph_file):
        report = run(RunSpec(source=graph_file, method="gps-post",
                             budget=80, weight="uniform"))
        assert report.to_dict()["pipeline"] == "chunked"
        rebuilt = type(report).from_dict(report.to_dict())
        assert rebuilt.pipeline == "chunked"

    def test_spec_rejects_unknown_pipeline(self):
        with pytest.raises(ValueError):
            RunSpec(source="x.txt", pipeline="turbo")

    def test_replicated_report_resolves_pipeline(self, graph_file):
        """A replicated report records the executed pipeline: the
        default (triangle) weight has no vectorised gate, so asking for
        chunked still reports scalar; the uniform weight engages it."""
        spec = RunSpec(source=graph_file, method="gps-post", budget=100,
                       replications=3, workers=0, pipeline="chunked")
        assert run(spec).pipeline == "scalar"
        assert run(spec.replace(weight="uniform")).pipeline == "chunked"
        assert run(
            spec.replace(weight="uniform", pipeline="scalar")
        ).pipeline == "scalar"

    def test_replicated_object_core_reuses_nothing_but_works(self, graph_file):
        """gps-post over the object core (no reset) replicates fine and
        matches the compact core bit for bit."""
        spec = RunSpec(source=graph_file, method="gps-post", budget=100,
                       weight="uniform", replications=3, workers=0)
        compact = run(spec)
        object_core = run(spec.replace(core="object"))
        assert object_core.estimates == compact.estimates

    @pytest.mark.parametrize("workers", [0, 2])
    def test_replication_chunked_vs_scalar(self, graph_file, workers):
        spec = RunSpec(source=graph_file, method="gps-post", budget=100,
                       weight="uniform", replications=3, workers=workers,
                       pipeline="chunked")
        chunked = replicate(spec)
        scalar = replicate(spec.replace(pipeline="scalar"))
        assert chunked.estimates == scalar.estimates
        for name in chunked.metrics:
            assert chunked.metrics[name] == scalar.metrics[name]


# ----------------------------------------------------------------------
# Replication workers: warm arenas and columnar populations
# ----------------------------------------------------------------------
class TestWarmArena:
    def test_population_dual_views_agree(self, clean_edges):
        population = _Population(edges=list(clean_edges))
        u, v = population.columns()
        from_columns = _Population(columns=(u, v))
        assert from_columns.tuples() == list(clean_edges)
        assert len(from_columns) == len(population)

    def test_arena_reuse_is_bit_exact(self, clean_edges):
        """Back-to-back tasks (the second on a warm arena) match fresh
        single-task runs exactly."""
        def task(seed_pair, pipeline):
            return _ReplicationTask(
                edges=tuple(clean_edges), capacity=90, weight_fn=None,
                stream_seed=seed_pair[0], sampler_seed=seed_pair[1],
                method="gps-post", pipeline=pipeline,
            )

        for pipeline in PIPELINES:
            warm = [_run_replication(task(pair, pipeline))
                    for pair in ((1, 2), (3, 4), (1, 2))]
            assert warm[0] == warm[2]  # warm arena == earlier fresh run
            assert warm[0] != warm[1]
            assert warm[0] == _run_replication(task((1, 2), pipeline))

    def test_runner_pipelines_match(self, clean_edges):
        results = {}
        for pipeline in PIPELINES:
            summary = ReplicatedRunner(
                clean_edges, capacity=100, weight_fn=UniformWeight(),
                replications=3, max_workers=0, method="gps-post",
                pipeline=pipeline,
            ).run()
            results[pipeline] = {
                name: s.mean for name, s in summary.metrics.items()
            }
        assert results["chunked"] == results["scalar"]

    def test_runner_rejects_unknown_pipeline(self, clean_edges):
        with pytest.raises(ValueError):
            ReplicatedRunner(clean_edges, capacity=10, pipeline="turbo")

    def test_pooled_dispatches_match_inline(self, clean_edges):
        inline = ReplicatedRunner(
            clean_edges, capacity=90, weight_fn=UniformWeight(),
            replications=2, max_workers=0, method="gps-post",
        ).run()
        for dispatch in ("shared", "pickle"):
            pooled = ReplicatedRunner(
                clean_edges, capacity=90, weight_fn=UniformWeight(),
                replications=2, max_workers=1, method="gps-post",
                dispatch=dispatch,
            ).run()
            for name, summary in inline.metrics.items():
                assert pooled.metrics[name].mean == summary.mean, (
                    dispatch, name,
                )
