"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.graph.generators import powerlaw_cluster
from repro.graph.io import write_edge_list


@pytest.fixture(scope="module")
def edge_file(tmp_path_factory):
    graph = powerlaw_cluster(300, 3, 0.6, seed=2)
    path = tmp_path_factory.mktemp("cli") / "graph.txt"
    write_edge_list(graph, path)
    return str(path)


class TestStats:
    def test_basic(self, edge_file, capsys):
        assert main(["stats", edge_file]) == 0
        out = capsys.readouterr().out
        assert "triangles" in out
        assert "clustering" in out

    def test_motifs(self, edge_file, capsys):
        assert main(["stats", edge_file, "--motifs"]) == 0
        out = capsys.readouterr().out
        assert "clique4" in out
        assert "tailed_triangle" in out


class TestSampleAndEstimate:
    def test_sample_prints_estimates(self, edge_file, capsys):
        assert main(["sample", edge_file, "-m", "200", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "in-stream estimates" in out
        assert "95% CI" in out

    def test_sample_then_estimate_round_trip(self, edge_file, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt.json")
        assert main(["sample", edge_file, "-m", "200", "-o", ckpt]) == 0
        capsys.readouterr()
        assert main([
            "estimate", ckpt, "--cliques", "4", "--stars", "3",
            "--motifs", "--top-nodes", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "post-stream estimates" in out
        assert "4-cliques" in out
        assert "3-stars" in out
        assert "diamond" in out
        assert "top 3 nodes" in out

    def test_uniform_weight_selection(self, edge_file, tmp_path, capsys):
        ckpt = str(tmp_path / "uniform.json")
        assert main([
            "sample", edge_file, "-m", "100", "--weight", "uniform", "-o", ckpt,
        ]) == 0
        capsys.readouterr()
        # Restoring with the matching weight succeeds ...
        assert main(["estimate", ckpt, "--weight", "uniform"]) == 0
        capsys.readouterr()
        # ... while a mismatching weight is rejected loudly.
        with pytest.raises(ValueError, match="weight function mismatch"):
            main(["estimate", ckpt, "--weight", "triangle"])


class TestTrack:
    def test_track_table(self, edge_file, capsys):
        assert main([
            "track", edge_file, "-m", "150", "--checkpoints", "4",
        ]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert "triangles" in lines[0]
        assert len(lines) == 5  # header + 4 checkpoints


class TestReproduce:
    def test_parser_knows_artefacts(self):
        from repro.cli import ARTEFACTS, build_parser

        assert set(ARTEFACTS) == {
            "table1", "table2", "table3", "figure1", "figure2", "figure3",
        }
        parser = build_parser()
        args = parser.parse_args(["reproduce", "figure1"])
        assert args.artefacts == ["figure1"]

    def test_invalid_artefact_rejected(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "table9"])

    def test_zero_artefacts_accepted(self):
        from repro.cli import ARTEFACTS, build_parser

        args = build_parser().parse_args(["reproduce"])
        assert args.artefacts == []  # handler expands [] to all artefacts
        assert (args.artefacts or sorted(ARTEFACTS)) == sorted(ARTEFACTS)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestReplicate:
    def test_replicate_reports_error_bars(self, edge_file, capsys):
        assert main([
            "replicate", edge_file, "-m", "120", "-R", "3", "--workers", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "3 replications" in out
        assert "triangles in-stream" in out
        assert "95% CI" in out

    def test_replicate_with_process_pool(self, edge_file, capsys):
        assert main([
            "replicate", edge_file, "-m", "80", "-R", "4", "--workers", "2",
            "--weight", "uniform",
        ]) == 0
        out = capsys.readouterr().out
        assert "workers=2" in out

    def test_replicate_any_registered_baseline(self, edge_file, capsys):
        assert main([
            "replicate", edge_file, "-m", "100", "-R", "3", "--workers", "0",
            "--method", "triest-impr",
        ]) == 0
        out = capsys.readouterr().out
        assert "3 replications" in out
        assert "method=triest-impr" in out
        assert "triangles" in out
        assert "95% CI" in out

    def test_replicate_single_replication_keeps_error_bar_shape(
        self, edge_file, capsys
    ):
        assert main([
            "replicate", edge_file, "-m", "100", "-R", "1", "--workers", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "1 replications" in out
        assert "triangles in-stream" in out  # metric rows still printed

    def test_replicate_json_report_parses(self, edge_file, capsys):
        assert main([
            "replicate", edge_file, "-m", "100", "-R", "2", "--workers", "0",
            "--method", "triest", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "replicate"
        assert payload["spec"]["method"] == "triest"
        assert payload["metrics"]["triangles"]["count"] == 2


class TestDeclarativeSurface:
    def test_methods_listing(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for name in ("gps", "triest", "mascot", "nsamp"):
            assert name in out

    def test_weights_listing(self, capsys):
        assert main(["weights"]) == 0
        out = capsys.readouterr().out
        for name in ("triangle", "uniform", "wedge"):
            assert name in out

    def test_sample_json_report(self, edge_file, capsys):
        assert main(["sample", edge_file, "-m", "150", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "single"
        assert payload["spec"]["source"] == edge_file
        assert payload["in_stream"]["triangles"]["value"] >= 0.0

    def test_sample_json_with_checkpoint_keeps_stdout_parseable(
        self, edge_file, tmp_path, capsys
    ):
        ckpt = str(tmp_path / "json_ckpt.json")
        assert main(["sample", edge_file, "-m", "120", "--json", "-o", ckpt]) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # notice must not corrupt the JSON stream
        assert "checkpoint written" in captured.err

    def test_track_json_report(self, edge_file, capsys):
        assert main([
            "track", edge_file, "-m", "150", "--checkpoints", "3", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "track"
        assert len(payload["tracking"]) == 3

    def test_track_baseline_method(self, edge_file, capsys):
        assert main([
            "track", edge_file, "-m", "150", "--checkpoints", "4",
            "--method", "triest-impr",
        ]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert len(lines) == 5  # header + 4 checkpoints


class TestSweepCommand:
    def test_grid_flags_human_table(self, edge_file, tmp_path, capsys):
        assert main([
            "sweep", "--source", edge_file, "--method", "triest",
            "gps-in-stream", "-m", "100", "150", "--runs", "2",
            "--workers", "0", "--cache", str(tmp_path / "cache"),
        ]) == 0
        out = capsys.readouterr().out
        assert "4 cells" in out
        assert "ground truth: 0 cache hit(s), 1 exact recount(s)" in out
        assert "cell reports: 0 reused from cache, 8 executed" in out

    def test_resume_reuses_cache(self, edge_file, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = [
            "sweep", "--source", edge_file, "--method", "triest",
            "-m", "100", "--runs", "2", "--workers", "0", "--cache", cache,
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "ground truth: 1 cache hit(s), 0 exact recount(s)" in out
        assert "cell reports: 2 reused from cache, 0 executed" in out

    def test_json_report_parses(self, edge_file, tmp_path, capsys):
        assert main([
            "sweep", "--source", edge_file, "--method", "triest",
            "-m", "100", "--workers", "0", "--no-cache", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["sources"] == [edge_file]
        assert len(payload["cells"]) == 1
        assert payload["cells"][0]["metrics"]["triangles"]["count"] == 1
        assert payload["cache"]["cell_misses"] == 1

    def test_csv_export(self, edge_file, tmp_path, capsys):
        csv_path = tmp_path / "cells.csv"
        assert main([
            "sweep", "--source", edge_file, "--method", "triest",
            "-m", "100", "150", "--workers", "0", "--no-cache",
            "--csv", str(csv_path),
        ]) == 0
        lines = csv_path.read_text().splitlines()
        assert lines[0].startswith("source,method,budget")
        assert len(lines) == 3

    def test_spec_file_round_trip(self, edge_file, tmp_path, capsys):
        spec_path = tmp_path / "grid.json"
        assert main([
            "sweep", "--source", edge_file, "--method", "triest",
            "-m", "100", "--workers", "0", "--no-cache",
            "--save-spec", str(spec_path),
        ]) == 0
        first = capsys.readouterr().out
        assert main([
            "sweep", "--spec", str(spec_path), "--no-cache",
        ]) == 0
        second = capsys.readouterr().out
        # identical grid, identical estimates (timing columns aside):
        # drop the µs/edge and cached columns from the first data row
        row_a = first.splitlines()[4].split()
        row_b = second.splitlines()[4].split()
        assert row_a[:-2] == row_b[:-2]
        assert row_a[:2] == [edge_file, "triest"]

    def test_spec_and_grid_flags_conflict(self, tmp_path, capsys):
        spec_path = tmp_path / "grid.json"
        spec_path.write_text('{"sources": ["x.txt"]}')
        assert main([
            "sweep", "--spec", str(spec_path), "--source", "x.txt",
        ]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_source_required_without_spec(self, capsys):
        assert main(["sweep", "--runs", "2"]) == 2
        assert "--source is required" in capsys.readouterr().err

    def test_spec_rejects_flags_even_at_default_values(self, tmp_path, capsys):
        spec_path = tmp_path / "grid.json"
        spec_path.write_text('{"sources": ["x.txt"], "runs": 3}')
        # --runs 1 matches the built-in default but contradicts the spec
        # file; it must be rejected, not silently ignored.
        assert main(["sweep", "--spec", str(spec_path), "--runs", "1"]) == 2
        assert "--runs" in capsys.readouterr().err
        assert main([
            "sweep", "--spec", str(spec_path), "--budget-policy", "keep",
        ]) == 2
        assert "--budget-policy" in capsys.readouterr().err

    def test_resume_conflicts_with_no_cache(self, edge_file, capsys):
        assert main([
            "sweep", "--source", edge_file, "--resume", "--no-cache",
        ]) == 2
        assert "--no-cache" in capsys.readouterr().err


class TestCoreFlag:
    def test_sample_cores_bit_identical(self, edge_file, capsys):
        outputs = {}
        for core in ("compact", "object"):
            assert main([
                "sample", edge_file, "-m", "200", "--seed", "5",
                "--core", core, "--json",
            ]) == 0
            outputs[core] = json.loads(capsys.readouterr().out)
        assert (
            outputs["compact"]["estimates"] == outputs["object"]["estimates"]
        )
        assert (
            outputs["compact"]["threshold"] == outputs["object"]["threshold"]
        )
        assert outputs["compact"]["spec"]["core"] == "compact"
        assert outputs["object"]["spec"]["core"] == "object"

    def test_replicate_cores_bit_identical(self, edge_file, capsys):
        outputs = {}
        for core in ("compact", "object"):
            assert main([
                "replicate", edge_file, "-m", "150", "-R", "2",
                "--workers", "0", "--core", core, "--json",
            ]) == 0
            outputs[core] = json.loads(capsys.readouterr().out)
        assert outputs["compact"]["metrics"] == outputs["object"]["metrics"]

    def test_sweep_defaults_to_compact_core(self, edge_file, capsys):
        assert main([
            "sweep", "--source", edge_file, "--method", "triest",
            "-m", "100", "--workers", "0", "--no-cache", "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["spec"]["core"] == "compact"

    def test_sweep_spec_file_conflicts_with_core_flag(self, tmp_path, capsys):
        spec_path = tmp_path / "grid.json"
        spec_path.write_text('{"sources": ["x.txt"], "core": "object"}')
        assert main([
            "sweep", "--spec", str(spec_path), "--core", "compact",
        ]) == 2
        assert "--core" in capsys.readouterr().err


class TestBench:
    def test_engine_quick_writes_uniform_schema(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main([
            "bench", "engine", "--quick", "--repeats", "1", "-o", str(out),
        ]) == 0
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "engine"
        assert payload["mode"] == "quick"
        assert payload["generated_by"] == "python -m repro bench engine"
        for weight in ("uniform", "triangle"):
            entry = payload["results"][weight]
            assert entry["compact_edges_per_sec"] > 0
            assert entry["object_edges_per_sec"] > 0
            assert entry["speedup"] > 0

    def test_replication_quick_setup_ladder(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main([
            "bench", "replication", "--quick", "-o", str(out),
        ]) == 0
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "replication"
        ladder = payload["results"]["setup_vs_size"]
        assert len(ladder) >= 2
        small, big = ladder[0], ladder[-1]
        # Pickled payload grows with the graph; the shared-memory task
        # payload (a descriptor) does not.
        assert big["pickle_payload_bytes"] > 2 * small["pickle_payload_bytes"]
        assert (
            big["shared_task_payload_bytes"]
            == small["shared_task_payload_bytes"]
        )
        assert payload["results"]["end_to_end"]["shared"]["edges_per_sec"] > 0

    def test_bad_repeats_rejected(self, capsys):
        assert main(["bench", "engine", "--repeats", "0"]) == 2
        assert "--repeats" in capsys.readouterr().err
