"""Tests for the table/figure builders (small configurations).

These use the deterministic dataset registry (graphs cached per process)
with reduced capacities/run counts so the whole file stays fast; the
full-size regeneration lives in benchmarks/.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure1 import build_figure1, format_figure1
from repro.experiments.figure2 import build_figure2, format_figure2
from repro.experiments.figure3 import build_figure3, format_figure3
from repro.experiments.table1 import build_table1, format_table1
from repro.experiments.table2 import build_table2, format_table2
from repro.experiments.table3 import build_table3, format_table3

SMALL = ["infra-roadNet-CA"]


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return build_table1(datasets=SMALL, capacity=3000, runs=2)

    def test_three_statistics_per_dataset(self, rows):
        assert [r.statistic for r in rows] == ["triangles", "wedges", "clustering"]

    def test_rows_carry_truth_and_estimates(self, rows):
        for row in rows:
            assert row.actual > 0
            assert row.in_stream.value > 0
            assert row.post_stream.value > 0
            assert 0 < row.fraction < 1

    def test_errors_are_moderate(self, rows):
        for row in rows:
            assert row.are_in_stream < 0.5
            assert row.are_post < 0.5

    def test_format_contains_sections(self, rows):
        text = format_table1(rows)
        assert "TRIANGLES" in text
        assert "WEDGES" in text
        assert "CLUSTERING" in text
        assert "infra-roadNet-CA" in text

    def test_capacity_capped_at_graph_size(self):
        rows = build_table1(datasets=SMALL, capacity=10**9, runs=1)
        tri = rows[0]
        assert tri.are_in_stream == pytest.approx(0.0, abs=1e-9)


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return build_table2(
            datasets=SMALL,
            methods=("triest", "gps-post"),
            budget=1500,
            runs=2,
        )

    def test_one_row_per_method(self, rows):
        assert [r.method for r in rows] == ["triest", "gps-post"]

    def test_rows_have_metrics(self, rows):
        for row in rows:
            assert row.are >= 0.0
            assert row.rel_std >= 0.0
            assert row.update_time_us > 0.0
            assert row.runs == 2

    def test_paper_reference_attached(self, rows):
        assert rows[0].paper_are == pytest.approx(0.301)

    def test_format(self, rows):
        text = format_table2(rows)
        assert "Table 2" in text
        assert "µs/edge" in text
        assert "gps-post" in text


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return build_table3(datasets=SMALL, capacity=2500, num_checkpoints=6)

    def test_four_methods(self, rows):
        assert [r.method for r in rows] == [
            "triest",
            "triest-impr",
            "gps-post",
            "gps-in-stream",
        ]

    def test_mare_not_worse_than_max(self, rows):
        for row in rows:
            assert row.mare <= row.max_are + 1e-12

    def test_gps_in_stream_beats_triest_base(self, rows):
        by_method = {r.method: r for r in rows}
        assert by_method["gps-in-stream"].mare < by_method["triest"].mare

    def test_format(self, rows):
        text = format_table3(rows)
        assert "Table 3" in text
        assert "MARE" in text


class TestFigure1:
    @pytest.fixture(scope="class")
    def points(self):
        return build_figure1(datasets=SMALL, capacity=3000)

    def test_ratios_near_one(self, points):
        for point in points:
            assert point.triangle_ratio == pytest.approx(1.0, abs=0.3)
            assert point.wedge_ratio == pytest.approx(1.0, abs=0.2)

    def test_max_deviation(self, points):
        point = points[0]
        expected = max(
            abs(point.triangle_ratio - 1), abs(point.wedge_ratio - 1)
        )
        assert point.max_deviation == pytest.approx(expected)

    def test_format(self, points):
        text = format_figure1(points)
        assert "Figure 1" in text
        assert "worst deviation" in text


class TestFigure2:
    @pytest.fixture(scope="class")
    def points(self):
        return build_figure2(datasets=SMALL, capacities=(1000, 4000))

    def test_point_per_capacity(self, points):
        assert [p.capacity for p in points] == [1000, 4000]

    def test_bounds_bracket_ratio(self, points):
        for point in points:
            assert point.lower_ratio <= point.ratio <= point.upper_ratio

    def test_intervals_tighten_with_capacity(self, points):
        assert points[1].interval_width < points[0].interval_width

    def test_oversized_capacities_skipped(self):
        points = build_figure2(datasets=SMALL, capacities=(1000, 10**9))
        assert [p.capacity for p in points] == [1000]

    def test_format(self, points):
        text = format_figure2(points)
        assert "Figure 2" in text
        assert "LB/x" in text


class TestFigure3:
    @pytest.fixture(scope="class")
    def series(self):
        return build_figure3(datasets=SMALL, capacity=2500, num_checkpoints=5)

    def test_series_alignment(self, series):
        entry = series[0]
        assert len(entry.series.checkpoints) == 5
        assert len(entry.triangle_rows()) == 5
        assert len(entry.clustering_rows()) == 5

    def test_estimates_track_truth(self, series):
        entry = series[0]
        final_exact = entry.series.exact_triangles[-1]
        final_est = entry.series.in_stream[-1].triangles.value
        assert final_est == pytest.approx(final_exact, rel=0.3)

    def test_format(self, series):
        text = format_figure3(series)
        assert "triangles vs time" in text
        assert "clustering vs time" in text
