"""NodeInterner and interned stream/file construction."""

from __future__ import annotations

import pytest

from repro.graph.generators import powerlaw_cluster
from repro.graph.io import (
    iter_edge_list,
    read_edge_list,
    relabel_consecutive,
    write_edge_list,
)
from repro.streams.interner import MAX_NODES, NodeInterner, intern_edges
from repro.streams.stream import EdgeStream


def test_intern_assigns_dense_first_encounter_ids():
    interner = NodeInterner()
    assert interner.intern("x") == 0
    assert interner.intern("y") == 1
    assert interner.intern("x") == 0  # idempotent
    assert len(interner) == 2
    assert "x" in interner and "z" not in interner
    assert interner.labels == ("x", "y")


def test_intern_edges_and_back():
    edges = [("a", "b"), ("b", "c"), ("a", "c")]
    interned, interner = intern_edges(edges)
    assert interned == [(0, 1), (1, 2), (0, 2)]
    assert list(interner.edge_labels(interned)) == edges
    assert interner.id_of("c") == 2
    assert interner.label(0) == "a"
    with pytest.raises(KeyError):
        interner.id_of("nope")
    with pytest.raises(KeyError):
        interner.label(99)
    assert MAX_NODES == 2**31 - 1


def test_stream_interned_preserves_order_and_length():
    graph = powerlaw_cluster(60, 3, 0.5, seed=4)
    stream = EdgeStream.from_graph(graph, seed=7)
    interned, interner = stream.interned()
    assert len(interned) == len(stream)
    # Same structure edge for edge: labels map back exactly.
    for (u, v), (iu, iv) in zip(stream, interned):
        assert interner.label(iu) == u
        assert interner.label(iv) == v
    # Ids are dense 0..n-1.
    seen = {n for e in interned for n in e}
    assert seen == set(range(len(interner)))


def test_iter_edge_list_interns_at_parse_time(tmp_path):
    path = tmp_path / "labels.txt"
    path.write_text("# comment\nalpha beta\nbeta gamma\nalpha gamma\n")
    interner = NodeInterner()
    interned = list(
        iter_edge_list(path, node_type=str, interner=interner)
    )
    assert interned == [(0, 1), (1, 2), (0, 2)]
    assert interner.labels == ("alpha", "beta", "gamma")
    graph = read_edge_list(path, node_type=str, interner=NodeInterner())
    assert graph.num_nodes == 3 and graph.num_edges == 3


def test_relabel_consecutive_matches_interner(tmp_path):
    edges = [(10, 30), (30, 20), (10, 20)]
    out, mapping = relabel_consecutive(edges)
    assert out == [(0, 1), (1, 2), (0, 2)]
    assert mapping == {10: 0, 30: 1, 20: 2}


def test_interning_is_estimate_neutral(tmp_path):
    """The whole point: interned streams give bit-identical estimates."""
    from repro.core.compact import CompactInStreamEstimator

    graph = powerlaw_cluster(100, 3, 0.5, seed=2)
    path = tmp_path / "g.txt"
    write_edge_list(graph, path)
    # Same file read with string labels vs interned ints.
    labelled = list(iter_edge_list(path, node_type=str))
    interned = list(
        iter_edge_list(path, node_type=str, interner=NodeInterner())
    )
    a = CompactInStreamEstimator(60, seed=3)
    b = CompactInStreamEstimator(60, seed=3)
    a.process_many(labelled)
    b.process_many(interned)
    assert a.triangle_estimate == b.triangle_estimate
    assert a.wedge_estimate == b.wedge_estimate
    assert a.sampler.threshold == b.sampler.threshold
    assert a.sampler.sample_size == b.sampler.sample_size
