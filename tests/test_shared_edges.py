"""Shared-memory fan-out: zero-copy dispatch and segment lifecycle.

The publisher owns the segment; these tests pin down the contract that
it is unlinked on success, on worker failure, and on KeyboardInterrupt —
a leaked segment outlives the process and eats /dev/shm until reboot,
so the lifecycle is part of the feature.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import pytest

import repro.api.sweep as sweep_module
import repro.engine.replication as replication_module
from repro.api.sweep import SweepSpec, run_sweep
from repro.engine.replication import ReplicatedRunner
from repro.engine.shared_edges import (
    SharedEdgePopulation,
    shared_memory_available,
)
from repro.core.weights import AttributeWeight
from repro.graph.generators import powerlaw_cluster
from repro.graph.io import write_edge_list


def segment_exists(name: str) -> bool:
    try:
        handle = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    handle.close()
    return True


@pytest.fixture
def graph():
    return powerlaw_cluster(120, 3, 0.5, seed=1)


# ----------------------------------------------------------------------
# Publish / attach mechanics
# ----------------------------------------------------------------------
def test_publish_attach_round_trip():
    assert shared_memory_available()
    edges = [(0, 1), (1, 2), (2, 0), (3, 1)]
    population = SharedEdgePopulation.publish(edges)
    name, count = population.descriptor
    assert count == 4
    try:
        assert SharedEdgePopulation.attach(population.descriptor) == edges
        # Attaching never destroys the segment.
        assert segment_exists(name)
    finally:
        population.close()
        population.unlink()
    assert not segment_exists(name)
    with pytest.raises(FileNotFoundError):
        SharedEdgePopulation.attach((name, count))


def test_publish_empty_population():
    population = SharedEdgePopulation.publish([])
    try:
        assert SharedEdgePopulation.attach(population.descriptor) == []
    finally:
        population.close()
        population.unlink()


def test_context_manager_unlinks_on_success_and_failure():
    with SharedEdgePopulation.publish([(0, 1)]) as population:
        name, _ = population.descriptor
        assert segment_exists(name)
    assert not segment_exists(name)

    with pytest.raises(RuntimeError):
        with SharedEdgePopulation.publish([(0, 1)]) as population:
            name, _ = population.descriptor
            raise RuntimeError("boom")
    assert not segment_exists(name)

    with pytest.raises(KeyboardInterrupt):
        with SharedEdgePopulation.publish([(0, 1)]) as population:
            name, _ = population.descriptor
            raise KeyboardInterrupt
    assert not segment_exists(name)

    # unlink is idempotent (context exit after a manual unlink).
    population = SharedEdgePopulation.publish([(0, 1)])
    population.unlink()
    population.unlink()
    population.close()


# ----------------------------------------------------------------------
# Replication pool lifecycle
# ----------------------------------------------------------------------
class _PublishRecorder:
    """Wrap publish() to capture the created segment names."""

    def __init__(self):
        self.names = []
        self._orig = SharedEdgePopulation.publish

    def __call__(self, edges):
        population = self._orig(edges)
        self.names.append(population.descriptor[0])
        return population


@pytest.fixture
def recorded_publish(monkeypatch):
    recorder = _PublishRecorder()
    monkeypatch.setattr(
        replication_module.SharedEdgePopulation, "publish", recorder
    )
    return recorder


def test_replication_shared_unlinks_on_success(graph, recorded_publish):
    summary = ReplicatedRunner(
        graph, capacity=50, replications=2, max_workers=1, dispatch="shared"
    ).run()
    assert summary.dispatch == "shared"
    assert recorded_publish.names
    assert all(not segment_exists(n) for n in recorded_publish.names)


@pytest.mark.parametrize("boom", [RuntimeError("worker died"),
                                  KeyboardInterrupt()])
def test_replication_shared_unlinks_on_pool_failure(
    graph, recorded_publish, monkeypatch, boom
):
    import repro.engine.resilient as resilient_module

    class ExplodingPool:
        def __init__(self, *args, **kwargs):
            pass

        def submit(self, fn, *args):
            raise boom

        def shutdown(self, *args, **kwargs):
            pass

    monkeypatch.setattr(
        resilient_module, "ProcessPoolExecutor", ExplodingPool
    )
    runner = ReplicatedRunner(
        graph, capacity=50, replications=2, max_workers=1, dispatch="shared"
    )
    with pytest.raises(type(boom)):
        runner.run()
    assert recorded_publish.names
    assert all(not segment_exists(n) for n in recorded_publish.names)


def test_label_dependent_weight_refuses_shared_dispatch(graph):
    weight = AttributeWeight(lambda u, v: 1.0 + (u + v) % 3)
    with pytest.raises(ValueError, match="label-free"):
        ReplicatedRunner(
            graph, capacity=50, replications=2, weight_fn=weight,
            dispatch="shared",
        )
    # Auto dispatch quietly falls back to the pickled path and the
    # labels reach the weight function unchanged.
    runner = ReplicatedRunner(
        graph, capacity=50, replications=2, max_workers=0, weight_fn=weight
    )
    assert runner.resolved_dispatch() == "pickle"
    assert runner.interner is None
    summary = runner.run()
    assert summary.metrics["in_stream_triangles"].count == 2


def test_unknown_dispatch_rejected(graph):
    with pytest.raises(ValueError, match="dispatch"):
        ReplicatedRunner(graph, capacity=50, dispatch="carrier-pigeon")


def test_interned_population_round_trips_labels(graph):
    runner = ReplicatedRunner(graph, capacity=50, replications=2,
                              max_workers=0)
    interner = runner.interner
    assert interner is not None
    # Every interned id maps back to an original node label.
    labels = set(interner.labels)
    for u, v in graph.edges():
        assert u in labels and v in labels


# ----------------------------------------------------------------------
# Sweep pool lifecycle
# ----------------------------------------------------------------------
def test_sweep_shared_sources_unlink(tmp_path, graph, monkeypatch):
    recorder = _PublishRecorder()
    monkeypatch.setattr(
        sweep_module.SharedEdgePopulation, "publish", recorder
    )
    path = tmp_path / "g.txt"
    write_edge_list(graph, path)
    spec = SweepSpec(sources=(str(path),), methods=("gps-post", "triest"),
                     budgets=(40, 60), runs=1, workers=1)
    report = run_sweep(spec)
    assert len(report.cells) == 4
    assert recorder.names, "pooled sweep should publish its sources"
    assert all(not segment_exists(n) for n in recorder.names)


def test_sweep_shared_vs_inline_bit_identical(tmp_path, graph):
    path = tmp_path / "g.txt"
    write_edge_list(graph, path)
    base = SweepSpec(sources=(str(path),),
                     methods=("gps-in-stream", "triest"),
                     budgets=(40, 60), runs=2, workers=0)
    inline = run_sweep(base)
    pooled = run_sweep(base.replace(workers=1))
    for a, b in zip(inline.cells, pooled.cells):
        assert a.key == b.key
        for name in a.metrics:
            assert a.metrics[name].mean == b.metrics[name].mean
            assert a.metrics[name].variance == b.metrics[name].variance


def test_label_reading_method_refuses_interned_dispatch(graph, monkeypatch):
    """A method registered with reads_labels=True must keep labels."""
    import repro.api.registry as registry

    from repro.baselines.triest import TriestBase

    @registry.register_method(
        "label-reader-test", description="test-only", reads_labels=True
    )
    def _make(budget, stream_length, seed):
        return TriestBase(budget, seed=seed)

    try:
        runner = ReplicatedRunner(
            graph, capacity=50, replications=2, max_workers=0,
            method="label-reader-test",
        )
        assert runner.interner is None
        assert runner.resolved_dispatch() == "pickle"
        with pytest.raises(ValueError, match="label-free"):
            ReplicatedRunner(
                graph, capacity=50, replications=2,
                method="label-reader-test", dispatch="shared",
            )
        # The sweep fan-out gate sees it too.
        spec = SweepSpec(sources=("whatever.txt",),
                         methods=("label-reader-test", "triest"))
        assert not sweep_module._grid_label_free(spec)
        assert sweep_module._grid_label_free(
            spec.replace(methods=("triest",))
        )
    finally:
        registry._METHODS.pop("label-reader-test", None)
