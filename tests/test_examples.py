"""Smoke tests: every example runs end to end at a reduced size."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys):
        module = load_example("quickstart")
        assert module.main(["--nodes", "400", "--capacity", "300"]) == 0
        out = capsys.readouterr().out
        assert "In-stream estimation" in out
        assert "Post-stream estimation" in out
        assert "ARE" in out

    def test_realtime_tracking(self, capsys):
        module = load_example("realtime_tracking")
        code = module.main(
            ["--nodes", "500", "--edges", "2000", "--capacity", "400",
             "--checkpoints", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Triangle tracking" in out
        assert "final estimate" in out

    def test_retrospective_queries(self, capsys):
        module = load_example("retrospective_queries")
        assert module.main(["--nodes", "400", "--capacity", "500"]) == 0
        out = capsys.readouterr().out
        assert "4-cliques" in out
        assert "3-stars" in out

    def test_baseline_comparison(self, capsys):
        module = load_example("baseline_comparison")
        code = module.main(
            ["--nodes", "500", "--edges", "2000", "--budget", "300", "--runs", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "gps-in-stream" in out
        assert "nsamp" in out

    def test_attribute_weighted_sampling(self, capsys):
        module = load_example("attribute_weighted_sampling")
        assert module.main(["--capacity", "400", "--runs", "3"]) == 0
        out = capsys.readouterr().out
        assert "attribute-weighted" in out

    def test_declarative_experiment(self, capsys):
        module = load_example("declarative_experiment")
        code = module.main(
            ["--nodes", "400", "--budget", "300", "--replications", "3",
             "--workers", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "single GPS pass" in out
        assert "replicated triest-impr" in out
        assert "report JSON keys" in out

    def test_motif_census(self, capsys):
        module = load_example("motif_census")
        assert module.main(["--nodes", "300", "--capacity", "500"]) == 0
        out = capsys.readouterr().out
        assert "clique4" in out
        assert "heavy-hitters" in out

    def test_example_files_exist(self):
        names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "realtime_tracking.py",
            "retrospective_queries.py",
            "baseline_comparison.py",
            "attribute_weighted_sampling.py",
            "motif_census.py",
            "declarative_experiment.py",
        } <= names


class TestExperimentClis:
    """The experiment modules double as CLIs; exercise their mains."""

    @pytest.mark.parametrize(
        "module_name,argv",
        [
            ("repro.experiments.table1",
             ["--capacity", "2000", "--runs", "1", "--datasets", "infra-roadNet-CA"]),
            ("repro.experiments.table2",
             ["--budget", "800", "--runs", "1", "--datasets", "infra-roadNet-CA",
              "--methods", "triest", "gps-post"]),
            ("repro.experiments.table3",
             ["--capacity", "2000", "--checkpoints", "4",
              "--datasets", "infra-roadNet-CA"]),
            ("repro.experiments.figure1",
             ["--capacity", "2000", "--datasets", "infra-roadNet-CA"]),
            ("repro.experiments.figure2",
             ["--capacities", "1500", "--datasets", "infra-roadNet-CA"]),
            ("repro.experiments.figure3",
             ["--capacity", "2000", "--checkpoints", "3",
              "--datasets", "infra-roadNet-CA"]),
        ],
        ids=["table1", "table2", "table3", "figure1", "figure2", "figure3"],
    )
    def test_cli_main(self, module_name, argv, capsys):
        module = importlib.import_module(module_name)
        assert module.main(argv) == 0
        assert capsys.readouterr().out.strip()
