"""End-to-end integration tests across the whole pipeline."""

from __future__ import annotations

import pytest

from repro.core.in_stream import InStreamEstimator
from repro.core.post_stream import PostStreamEstimator
from repro.core.priority_sampler import GraphPrioritySampler
from repro.core.subgraphs import CliqueEstimator, StarEstimator
from repro.core.weights import TriangleWeight, UniformWeight, WedgeWeight
from repro.graph.exact import ExactStreamCounter, compute_statistics
from repro.graph.generators import powerlaw_cluster
from repro.graph.io import read_edge_list, write_edge_list
from repro.stats.metrics import ci_coverage
from repro.stats.running import RunningMoments
from repro.streams.stream import EdgeStream
from repro.streams.transforms import simplify_edges


class TestFileToEstimatePipeline:
    def test_write_stream_sample_estimate(self, tmp_path, medium_graph, medium_stats):
        """Full user journey: edge list on disk → GPS → estimates."""
        path = tmp_path / "graph.txt.gz"
        write_edge_list(medium_graph, path)
        graph = read_edge_list(path)
        stream = EdgeStream.from_graph(graph, seed=11)
        estimator = InStreamEstimator(capacity=1500, seed=12)
        estimator.process_stream(simplify_edges(stream))
        estimates = estimator.estimates()
        assert estimates.triangles.value == pytest.approx(
            medium_stats.triangles, rel=0.35
        )
        assert estimates.wedges.value == pytest.approx(medium_stats.wedges, rel=0.15)


class TestSingleSampleManyQueries:
    def test_reference_sample_supports_all_estimators(self, medium_graph):
        """One GPS reference sample answers triangle/wedge/clique/star queries."""
        sampler = GraphPrioritySampler(capacity=1200, seed=3)
        sampler.process_stream(EdgeStream.from_graph(medium_graph, seed=3))
        alg2 = PostStreamEstimator(sampler).estimate()
        triangles_via_cliques = CliqueEstimator(sampler, size=3).estimate()
        wedges_via_stars = StarEstimator(sampler, leaves=2).estimate()
        assert triangles_via_cliques.value == pytest.approx(alg2.triangles.value)
        assert wedges_via_stars.value == pytest.approx(alg2.wedges.value)


class TestConfidenceCoverage:
    def test_in_stream_bounds_cover_truth(self, social_graph, social_stats):
        """95% bounds should cover the truth in most runs (Sec. 6 step 4)."""
        intervals = []
        for seed in range(120):
            estimator = InStreamEstimator(capacity=200, seed=80_000 + seed)
            estimator.process_stream(EdgeStream.from_graph(social_graph, seed=seed))
            intervals.append(estimator.estimates().triangles.confidence_bounds())
        coverage = ci_coverage(intervals, social_stats.triangles)
        assert coverage >= 0.80

    def test_post_stream_bounds_cover_truth(self, social_graph, social_stats):
        intervals = []
        for seed in range(120):
            sampler = GraphPrioritySampler(capacity=200, seed=90_000 + seed)
            sampler.process_stream(EdgeStream.from_graph(social_graph, seed=seed))
            est = PostStreamEstimator(sampler).estimate()
            intervals.append(est.triangles.confidence_bounds())
        assert ci_coverage(intervals, social_stats.triangles) >= 0.80


class TestWeightObjectives:
    """Sec. 3.5: weights tuned to a subgraph class cut that class's
    *post-stream* estimation variance (the cost model is derived for the
    HT estimator over the final sample; in-stream snapshots are much less
    sensitive to the weight choice)."""

    @pytest.fixture(scope="class")
    def skewed_graph(self):
        return powerlaw_cluster(800, 4, 0.6, seed=33)

    def _post_stream_runs(self, graph, weight_fn, statistic, runs, capacity=250):
        moments = RunningMoments()
        for seed in range(runs):
            sampler = GraphPrioritySampler(capacity, weight_fn=weight_fn, seed=seed)
            sampler.process_stream(EdgeStream.from_graph(graph, seed=seed))
            estimates = PostStreamEstimator(sampler).estimate()
            moments.add(getattr(estimates, statistic).value)
        return moments

    def test_triangle_weight_beats_uniform_for_triangles(self, skewed_graph):
        actual = compute_statistics(skewed_graph).triangles
        uniform = self._post_stream_runs(
            skewed_graph, UniformWeight(), "triangles", runs=100
        )
        weighted = self._post_stream_runs(
            skewed_graph, TriangleWeight(), "triangles", runs=100
        )
        # Measured effect is ~8x in variance; require at least 2x.
        assert weighted.variance < uniform.variance / 2
        # Both remain unbiased.
        assert abs(uniform.mean - actual) < 5 * uniform.std_error
        assert abs(weighted.mean - actual) < 5 * weighted.std_error

    def test_wedge_weight_helps_wedges(self, skewed_graph):
        actual = compute_statistics(skewed_graph).wedges
        uniform = self._post_stream_runs(
            skewed_graph, UniformWeight(), "wedges", runs=250, capacity=200
        )
        weighted = self._post_stream_runs(
            skewed_graph, WedgeWeight(), "wedges", runs=250, capacity=200
        )
        assert weighted.variance < uniform.variance
        assert abs(weighted.mean - actual) < 5 * weighted.std_error


class TestRealTimeTracking:
    def test_tracking_stays_close_to_exact(self, medium_graph):
        """Figure 3's property: estimates track the truth while streaming."""
        stream = EdgeStream.from_graph(medium_graph, seed=7)
        marks = stream.checkpoints(8)
        estimator = InStreamEstimator(capacity=2000, seed=8)
        exact = ExactStreamCounter()
        mark_set = set(marks)
        t = 0
        for u, v in stream:
            estimator.process(u, v)
            exact.process(u, v)
            t += 1
            if t in mark_set and exact.triangles > 50:
                estimate = estimator.triangle_estimate
                assert estimate == pytest.approx(exact.triangles, rel=0.4)

    def test_late_stream_estimates_tighter_than_early(self, medium_graph):
        """Relative CI width shrinks as the reservoir fills structure."""
        stream = EdgeStream.from_graph(medium_graph, seed=9)
        estimator = InStreamEstimator(capacity=1500, seed=10)
        widths = []
        marks = stream.checkpoints(4)
        for _t, est in estimator.track(stream, marks):
            if est.triangles.value > 0:
                lb, ub = est.triangles.confidence_bounds()
                widths.append((ub - lb) / est.triangles.value)
        assert widths[-1] <= widths[0] * 1.5
