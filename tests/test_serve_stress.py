"""Concurrency stress: live answers are prefix-exact, never torn.

Satellite 3 of the serving PR.  One service ingests a finite seeded
stream while N reader threads hammer the query API.  Every answer a
reader ever receives must be *bit-identical* to a batch run over the
exact stream prefix its ``stream_position`` names — if ingestion and
queries shared mutable state, a torn read would produce an estimate
matching no prefix at all.  Epochs must also be non-decreasing per
reader (the store never publishes backwards).
"""

from __future__ import annotations

import threading

from repro.api.execution import _estimates_dict
from repro.api.registry import get_method
from repro.serve import SamplingService, ServeSpec, SyntheticSource

NODES = 3000
MAX_EDGES = 120_000
CHUNK = 4096
BUDGET = 300
STREAM_SEED = 13
SAMPLER_SEED = 4
READERS = 4


def _spec(method: str) -> ServeSpec:
    return ServeSpec(
        source="synthetic",
        method=method,
        budget=BUDGET,
        stream_seed=STREAM_SEED,
        sampler_seed=SAMPLER_SEED,
        chunk_size=CHUNK,
        max_edges=MAX_EDGES,
        nodes=NODES,
    )


def _oracle(method_name: str) -> dict:
    """Batch-exact state at every block boundary of the same stream.

    The engine's segment boundaries over a queue source are exactly the
    transport blocks, so the publishable positions are the cumulative
    block lengths (plus position 0, the epoch-1 empty reservoir).
    """
    method = get_method(method_name)
    kwargs = {}
    if method.uses_weight:
        kwargs["weight_fn"] = None
    if method.supports_core:
        kwargs["core"] = "compact"
    counter = method.factory(BUDGET, 0, SAMPLER_SEED, **kwargs)
    sampler = getattr(counter, "sampler", counter)

    def fact():
        if hasattr(counter, "estimates"):
            bundle = counter.estimates()
        else:
            from repro.core.post_stream import PostStreamEstimator

            bundle = PostStreamEstimator(sampler).estimate()
        return {
            "estimates": _estimates_dict(bundle),
            "sample_size": sampler.sample_size,
            "threshold": sampler.threshold,
        }

    source = SyntheticSource(
        NODES, STREAM_SEED, chunk_size=CHUNK, max_edges=MAX_EDGES
    )
    # Keys are the *sampler's* stream position (self-loops and other
    # skipped arrivals excluded), matching what snapshots report.
    by_position = {0: fact()}
    for us, vs in source:
        counter.process_chunk(us, vs)
        by_position[sampler.stream_position] = fact()
    return by_position


def _stress(method_name: str):
    oracle = _oracle(method_name)
    service = SamplingService(_spec(method_name)).start()
    answers = [[] for _ in range(READERS)]
    failures = []

    def read(slot: int) -> None:
        try:
            while True:
                alive = service.running
                answer = service.query({"op": "estimates"})
                assert answer["ok"], answer
                answers[slot].append(answer)
                if not alive:
                    return
        except Exception as exc:  # noqa: BLE001 - surfaced below
            failures.append(f"reader {slot}: {exc!r}")

    threads = [
        threading.Thread(target=read, args=(slot,), daemon=True)
        for slot in range(READERS)
    ]
    for thread in threads:
        thread.start()
    service.join()
    for thread in threads:
        thread.join(30.0)
    assert not failures, failures
    return oracle, answers, service


def _check(oracle, answers):
    total = 0
    positions_seen = set()
    for per_reader in answers:
        assert per_reader, "a reader never completed a query"
        epochs = [answer["epoch"] for answer in per_reader]
        assert epochs == sorted(epochs), "epochs went backwards"
        for answer in per_reader:
            position = answer["stream_position"]
            assert position in oracle, (
                f"position {position} matches no block boundary — torn read"
            )
            expected = oracle[position]
            assert answer["estimates"] == expected["estimates"]
            assert answer["sample_size"] == expected["sample_size"]
            assert answer["threshold"] == expected["threshold"]
            positions_seen.add(position)
            total += 1
    assert total >= READERS
    return positions_seen


def test_concurrent_readers_always_see_prefix_exact_state():
    oracle, answers, service = _stress("gps")
    _check(oracle, answers)
    # The drained final state is itself one of the matched prefixes.
    end = max(oracle)
    final = service.query({"op": "estimates"})
    assert final["stream_position"] == end
    assert final["estimates"] == oracle[end]["estimates"]


def test_concurrent_readers_prefix_exact_post_stream():
    oracle, answers, service = _stress("gps-post")
    _check(oracle, answers)
    final = service.query({"op": "estimates"})
    assert final["estimates"] == oracle[max(oracle)]["estimates"]


def test_wait_readers_walk_every_epoch_in_order():
    """Blocking on each next epoch yields the exact boundary ladder."""
    oracle = _oracle("gps")
    end = max(oracle)
    service = SamplingService(_spec("gps")).start()
    walked = []

    def walk():
        epoch = 1
        while True:
            snapshot = service.wait_for_epoch(epoch, timeout=30.0)
            if snapshot is None:
                return
            walked.append((snapshot.epoch, snapshot.stream_position))
            if snapshot.stream_position >= end:
                return
            epoch = snapshot.epoch + 1

    walker = threading.Thread(target=walk, daemon=True)
    walker.start()
    service.join()
    walker.join(30.0)
    assert walked
    epochs = [epoch for epoch, _ in walked]
    assert epochs == sorted(set(epochs)), "duplicate or backward epochs"
    for _, position in walked:
        assert position in oracle
    assert walked[-1][1] == end
