"""Hypothesis property tests for the GPS core.

These pin the estimator algebra to exact counting on *arbitrary* graphs
and streams: whatever edges hypothesis generates, (a) a non-overflowing
GPS run must reproduce the exact counts with zero variance, and (b) an
overflowing run must keep all structural invariants intact.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.in_stream import InStreamEstimator
from repro.core.post_stream import PostStreamEstimator
from repro.core.priority_sampler import GraphPrioritySampler
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.exact import global_clustering, triangle_count, wedge_count
from repro.streams.transforms import simplify_edges

edge_streams = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)), max_size=70
)


@settings(max_examples=120, deadline=None)
@given(edge_streams, st.integers(0, 1_000_000))
def test_no_overflow_post_stream_is_exact(pairs, seed):
    edges = list(simplify_edges(pairs))
    graph = AdjacencyGraph(edges)
    sampler = GraphPrioritySampler(capacity=len(edges) + 1, seed=seed)
    sampler.process_stream(edges)
    estimates = PostStreamEstimator(sampler).estimate()
    assert estimates.triangles.value == pytest.approx(triangle_count(graph))
    assert estimates.wedges.value == pytest.approx(wedge_count(graph))
    assert estimates.clustering.value == pytest.approx(global_clustering(graph))
    assert estimates.triangles.variance == 0.0
    assert estimates.wedges.variance == 0.0
    assert estimates.tri_wedge_covariance == 0.0


@settings(max_examples=120, deadline=None)
@given(edge_streams, st.integers(0, 1_000_000))
def test_no_overflow_in_stream_is_exact(pairs, seed):
    edges = list(simplify_edges(pairs))
    graph = AdjacencyGraph(edges)
    estimator = InStreamEstimator(capacity=len(edges) + 1, seed=seed)
    estimator.process_stream(edges)
    estimates = estimator.estimates()
    assert estimates.triangles.value == pytest.approx(triangle_count(graph))
    assert estimates.wedges.value == pytest.approx(wedge_count(graph))
    assert estimates.triangles.variance == 0.0


@settings(max_examples=80, deadline=None)
@given(edge_streams, st.integers(1, 15), st.integers(0, 1_000_000))
def test_overflowing_runs_keep_invariants(pairs, capacity, seed):
    estimator = InStreamEstimator(capacity=capacity, seed=seed)
    last_tri = 0.0
    for u, v in pairs:
        estimator.process(u, v)
        # In-stream estimates are frozen snapshots: monotone non-decreasing.
        assert estimator.triangle_estimate >= last_tri
        last_tri = estimator.triangle_estimate
    estimates = estimator.estimates()
    sampler = estimator.sampler
    assert sampler.sample_size <= capacity
    assert estimates.triangles.value >= 0.0
    assert estimates.wedges.value >= 0.0
    assert estimates.triangles.variance >= 0.0
    assert estimates.wedges.variance >= 0.0
    assert estimates.tri_wedge_covariance >= 0.0
    post = PostStreamEstimator(sampler).estimate()
    assert post.triangles.value >= 0.0
    assert post.triangles.variance >= 0.0
    # Both estimators agree on the sample they describe.
    assert post.sample_size == estimates.sample_size
    assert post.threshold == estimates.threshold


@settings(max_examples=80, deadline=None)
@given(edge_streams, st.integers(1, 15), st.integers(0, 1_000_000))
def test_post_stream_counts_only_sampled_subgraphs(pairs, capacity, seed):
    """If the sample holds no triangles/wedges, estimates must be zero."""
    sampler = GraphPrioritySampler(capacity=capacity, seed=seed)
    sampler.process_stream(pairs)
    estimates = PostStreamEstimator(sampler).estimate()
    sample_graph = AdjacencyGraph(sampler.sampled_edges())
    if triangle_count(sample_graph) == 0:
        assert estimates.triangles.value == 0.0
    else:
        assert estimates.triangles.value > 0.0
    if wedge_count(sample_graph) == 0:
        assert estimates.wedges.value == 0.0
    else:
        assert estimates.wedges.value > 0.0


@settings(max_examples=60, deadline=None)
@given(edge_streams, st.integers(1, 12), st.integers(0, 1_000_000))
def test_threshold_never_decreases(pairs, capacity, seed):
    sampler = GraphPrioritySampler(capacity=capacity, seed=seed)
    last = 0.0
    for u, v in pairs:
        sampler.process(u, v)
        assert sampler.threshold >= last
        last = sampler.threshold
