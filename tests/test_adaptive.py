"""Tests for the adaptive-weight scheme (paper future work)."""

from __future__ import annotations

import pytest

from repro.core.adaptive import AdaptiveTriangleWeight
from repro.core.in_stream import InStreamEstimator
from repro.core.priority_sampler import GraphPrioritySampler
from repro.core.post_stream import PostStreamEstimator
from repro.core.records import EdgeRecord
from repro.core.reservoir import SampledGraph
from repro.graph.generators import powerlaw_cluster, road_grid
from repro.graph.exact import compute_statistics
from repro.stats.running import RunningMoments
from repro.streams.stream import EdgeStream


def wedge_sample():
    sample = SampledGraph()
    sample.add(EdgeRecord(0, 1, weight=1.0, priority=1.0))
    sample.add(EdgeRecord(0, 2, weight=1.0, priority=1.0))
    return sample


class TestParameters:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"boost_target": 0.0},
            {"default": -1.0},
            {"smoothing": 0.0},
            {"smoothing": 1.5},
            {"min_rate": 0.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveTriangleWeight(**kwargs)

    def test_repr(self):
        assert "AdaptiveTriangleWeight" in repr(AdaptiveTriangleWeight())


class TestAdaptivity:
    def test_default_for_novel_edges(self):
        weight = AdaptiveTriangleWeight(default=2.0)
        assert weight(5, 6, wedge_sample()) == 2.0

    def test_rare_closures_get_big_boost(self):
        weight = AdaptiveTriangleWeight(boost_target=9.0, min_rate=0.01)
        sample = wedge_sample()
        # Long run of non-closing arrivals drives the rate to the floor...
        for i in range(500):
            weight(100 + i, 200 + i, sample)
        assert weight.closure_rate < 0.01
        # ... so a closure now receives the maximum (floored) boost.
        assert weight.current_boost == pytest.approx(9.0 / 0.01)
        # The closure itself lifts the EMA to ~smoothing before weighting,
        # so the realised boost is 9/0.05 = 180 — still 18x the fixed 9.
        boosted = weight(1, 2, sample)
        assert boosted > 100.0

    def test_frequent_closures_shrink_boost(self):
        weight = AdaptiveTriangleWeight(boost_target=9.0)
        sample = wedge_sample()
        for _ in range(500):
            weight(1, 2, sample)  # every arrival closes a triangle
        assert weight.closure_rate == pytest.approx(1.0, abs=0.01)
        assert weight.current_boost == pytest.approx(9.0, rel=0.05)

    def test_rate_stays_in_unit_interval(self):
        weight = AdaptiveTriangleWeight()
        sample = wedge_sample()
        for i in range(200):
            weight(1, 2, sample) if i % 3 else weight(50 + i, 90 + i, sample)
            assert 0.0 < weight.closure_rate <= 1.0


class TestUnbiasedness:
    """History-dependent weights satisfy Theorem 1's measurability
    condition, so estimates must stay unbiased."""

    def test_post_and_in_stream_unbiased(self):
        graph = powerlaw_cluster(300, 3, 0.6, seed=5)
        stats = compute_statistics(graph)
        post = RunningMoments()
        instream = RunningMoments()
        for seed in range(200):
            estimator = InStreamEstimator(
                150, weight_fn=AdaptiveTriangleWeight(), seed=40_000 + seed
            )
            estimator.process_stream(EdgeStream.from_graph(graph, seed=seed))
            instream.add(estimator.triangle_estimate)
            post.add(PostStreamEstimator(estimator.sampler).estimate().triangles.value)
        assert abs(instream.mean - stats.triangles) < 5 * instream.std_error
        assert abs(post.mean - stats.triangles) < 5 * post.std_error

    def test_exact_without_overflow(self):
        graph = powerlaw_cluster(150, 3, 0.6, seed=6)
        stats = compute_statistics(graph)
        sampler = GraphPrioritySampler(
            graph.num_edges + 1, weight_fn=AdaptiveTriangleWeight(), seed=1
        )
        sampler.process_stream(EdgeStream.from_graph(graph, seed=1))
        estimates = PostStreamEstimator(sampler).estimate()
        assert estimates.triangles.value == pytest.approx(stats.triangles)

    def test_boost_adapts_up_on_sparse_graphs(self):
        """On a triangle-sparse road grid the adaptive boost ends well
        above the fixed coefficient 9 — the scheme's design goal."""
        graph = road_grid(40, 40, diagonal_prob=0.05, seed=7)
        weight = AdaptiveTriangleWeight(boost_target=9.0)
        sampler = GraphPrioritySampler(400, weight_fn=weight, seed=2)
        sampler.process_stream(EdgeStream.from_graph(graph, seed=2))
        assert weight.current_boost > 20.0
