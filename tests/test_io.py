"""Tests for edge-list I/O."""

from __future__ import annotations

import gzip

import pytest

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.io import (
    iter_edge_list,
    read_edge_list,
    relabel_consecutive,
    write_edge_list,
)


class TestRoundTrip:
    def test_graph_round_trip(self, tmp_path, k5_graph):
        path = tmp_path / "edges.txt"
        count = write_edge_list(k5_graph, path)
        assert count == 10
        back = read_edge_list(path)
        assert sorted(back.edges()) == sorted(k5_graph.edges())

    def test_edge_iterable_round_trip(self, tmp_path):
        path = tmp_path / "edges.txt"
        write_edge_list([(5, 2), (2, 9)], path)
        assert list(iter_edge_list(path)) == [(5, 2), (2, 9)]

    def test_gzip_round_trip(self, tmp_path, k4_graph):
        path = tmp_path / "edges.txt.gz"
        write_edge_list(k4_graph, path)
        with gzip.open(path, "rt") as handle:
            assert len(handle.readlines()) == 6
        back = read_edge_list(path)
        assert back.num_edges == 6


class TestParsing:
    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# header\n\n% matrix comment\n// c style\n1 2\n3 4\n")
        assert list(iter_edge_list(path)) == [(1, 2), (3, 4)]

    def test_extra_columns_ignored(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1 2 1483228800 0.5\n2 3 1483228900 1.0\n")
        assert list(iter_edge_list(path)) == [(1, 2), (2, 3)]

    def test_short_lines_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1\n1 2\n")
        assert list(iter_edge_list(path)) == [(1, 2)]

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "edges.csv"
        path.write_text("1,2\n2,3\n")
        assert list(iter_edge_list(path, delimiter=",")) == [(1, 2), (2, 3)]

    def test_custom_node_type(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("alice bob\nbob carol\n")
        edges = list(iter_edge_list(path, node_type=str))
        assert edges == [("alice", "bob"), ("bob", "carol")]

    def test_read_simplifies(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1 2\n2 1\n3 3\n1 2\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 1

    def test_header_written_as_comments(self, tmp_path):
        path = tmp_path / "edges.txt"
        write_edge_list([(0, 1)], path, header="line one\nline two")
        text = path.read_text()
        assert text.startswith("# line one\n# line two\n")
        assert list(iter_edge_list(path)) == [(0, 1)]


class TestRelabel:
    def test_relabel_consecutive(self):
        edges, mapping = relabel_consecutive([("x", "y"), ("y", "z")])
        assert edges == [(0, 1), (1, 2)]
        assert mapping == {"x": 0, "y": 1, "z": 2}

    def test_relabel_preserves_structure(self, k4_graph):
        edges, mapping = relabel_consecutive(k4_graph.edges())
        relabeled = AdjacencyGraph(edges)
        assert relabeled.num_edges == k4_graph.num_edges
        assert relabeled.num_nodes == k4_graph.num_nodes
        assert len(mapping) == 4

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_edge_list(tmp_path / "absent.txt")
