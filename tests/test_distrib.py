"""Unit and property tests for the distributed sweep fabric.

The lease protocol is driven with an *injected fake clock* — claims,
heartbeats and staleness all compare timestamps produced by the same
callable, so these tests advance time explicitly instead of sleeping.
Contention tests hammer one queue from many threads (the on-disk
protocol is what's under test; ``O_EXCL`` and ``rename`` are atomic
across threads and processes alike), and the store stress test races
real processes on one content key.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.execution import run
from repro.api.ground_truth import ContentAddressedStore, GroundTruthCache
from repro.api.spec import RunSpec
from repro.api.sweep import SweepSpec, cell_report_key, run_sweep
from repro.cli import main
from repro.distrib import (
    CellQueue,
    CellTask,
    DistribSpec,
    Heartbeat,
    enqueue_grid,
    run_distributed_sweep,
    run_worker,
)
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.graph.generators import powerlaw_cluster
from repro.graph.io import write_edge_list


class FakeClock:
    """An injectable clock the tests advance by hand."""

    def __init__(self, now: float = 1_000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_queue(tmp_path, *, clock=None, tasks=4, **spec_kwargs):
    """A queue with ``tasks`` dummy tasks (never executed by these tests)."""
    spec_kwargs.setdefault("lease_timeout", 10.0)
    spec_kwargs.setdefault("heartbeat_interval", 1.0)
    queue = CellQueue.create(
        tmp_path / "queue",
        tmp_path / "cells",
        DistribSpec(**spec_kwargs),
        **({"clock": clock} if clock is not None else {}),
    )
    for i in range(tasks):
        queue.enqueue(
            CellTask(
                key=f"{i:064x}",
                spec=RunSpec(source="unused.txt", budget=10),
            )
        )
    return queue


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------
class TestDistribSpec:
    def test_json_round_trip(self):
        spec = DistribSpec(
            workers=3, lease_timeout=12.0,
            heartbeat_interval=0.5, poll_interval=0.01,
        )
        assert DistribSpec.from_json(spec.to_json()) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown DistribSpec"):
            DistribSpec.from_dict({"workers": 2, "lease_ttl": 3})

    def test_workers_validated(self):
        with pytest.raises(ValueError, match="workers"):
            DistribSpec(workers=0)

    def test_timeout_must_dominate_heartbeat(self):
        with pytest.raises(ValueError, match="twice"):
            DistribSpec(lease_timeout=1.0, heartbeat_interval=0.9)

    def test_replace_revalidates(self):
        spec = DistribSpec()
        assert spec.replace(workers=5).workers == 5
        with pytest.raises(ValueError):
            spec.replace(poll_interval=0.0)


class TestCellTask:
    def test_json_round_trip(self):
        task = CellTask(
            key="a" * 64,
            spec=RunSpec(source="g.txt", method="triest", budget=50),
            include_post=True,
        )
        assert CellTask.from_json(task.to_json()) == task

    def test_unknown_field_rejected(self):
        task = CellTask(key="a" * 64, spec=RunSpec(source="g.txt", budget=5))
        payload = task.to_dict()
        payload["priority"] = 7
        with pytest.raises(ValueError, match="unknown CellTask"):
            CellTask.from_dict(payload)

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError, match="key"):
            CellTask(key="", spec=RunSpec(source="g.txt", budget=5))


# ----------------------------------------------------------------------
# Lease lifecycle (fake clock: no sleeps anywhere)
# ----------------------------------------------------------------------
class TestLeaseLifecycle:
    def test_claim_is_exclusive_while_fresh(self, tmp_path):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock=clock, tasks=1)
        claim = queue.claim("alpha")
        assert claim is not None and not claim.reclaimed
        assert queue.claim("beta") is None  # fresh lease: hands off
        payload = json.loads(claim.lease_path.read_text())
        assert payload["worker"] == "alpha"
        assert payload["pid"] > 0

    def test_heartbeat_keeps_slow_cell_alive_past_timeout(self, tmp_path):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock=clock, tasks=1, lease_timeout=10.0)
        claim = queue.claim("alpha")
        # 3x the timeout passes, but the owner keeps touching the lease.
        for _ in range(6):
            clock.advance(5.0)
            assert queue.heartbeat(claim)
            assert queue.claim("beta") is None
        # The owner stops; one timeout later the cell is reclaimable.
        clock.advance(10.1)
        stolen = queue.claim("beta")
        assert stolen is not None and stolen.reclaimed
        assert stolen.key == claim.key
        assert queue.reclaimed == 1

    def test_reclamation_requeues_exactly_the_dead_workers_cells(
        self, tmp_path
    ):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock=clock, tasks=4, lease_timeout=10.0)
        alive = [queue.claim("alive"), queue.claim("alive")]
        dead = [queue.claim("dead"), queue.claim("dead")]
        assert queue.claim("late") is None  # everything leased
        # Only the live worker heartbeats across the timeout.
        clock.advance(6.0)
        for claim in alive:
            queue.heartbeat(claim)
        clock.advance(6.0)  # dead's leases now > 10s quiet, alive's 6s
        reclaimed = []
        while True:
            claim = queue.claim("survivor")
            if claim is None:
                break
            reclaimed.append(claim)
        assert {c.key for c in reclaimed} == {c.key for c in dead}
        assert all(c.reclaimed for c in reclaimed)

    def test_release_after_result_makes_task_done(self, tmp_path):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock=clock, tasks=2)
        claim = queue.claim("alpha")
        queue.store.write(claim.key, {"ok": True})
        queue.release(claim)
        assert not claim.lease_path.exists()
        assert claim.key not in queue.pending_keys()
        # The done task is never claimed again; the other one is next.
        nxt = queue.claim("alpha")
        assert nxt is not None and nxt.key != claim.key

    def test_release_without_result_requeues_immediately(self, tmp_path):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock=clock, tasks=1)
        claim = queue.claim("alpha")
        queue.release(claim)  # failed cell: lease dropped, no result
        again = queue.claim("beta")
        assert again is not None and not again.reclaimed
        assert again.key == claim.key

    def test_reap_stale_removes_only_quiet_leases(self, tmp_path):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock=clock, tasks=2, lease_timeout=10.0)
        kept = queue.claim("alpha")
        dead = queue.claim("beta")
        clock.advance(11.0)
        queue.heartbeat(kept)
        assert queue.reap_stale() == 1
        assert kept.lease_path.exists()
        assert not dead.lease_path.exists()

    def test_steal_lease_fault_forces_double_claim(self, tmp_path):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock=clock, tasks=1)
        victim = queue.claim("victim")
        assert victim is not None
        thief_injector = FaultInjector(
            FaultPlan(faults=(FaultSpec(kind="steal-lease",
                                        site="distrib"),))
        )
        stolen = queue.claim("thief", injector=thief_injector)
        assert stolen is not None and stolen.reclaimed
        assert stolen.key == victim.key
        assert [f.kind for f in thief_injector.fired] == ["steal-lease"]
        # The budget burned: a second fresh lease is respected.
        queue.release(stolen)
        held = queue.claim("victim")
        assert held is not None
        assert queue.claim("thief", injector=thief_injector) is None

    def test_heartbeat_stall_lets_the_lease_go_stale(self, tmp_path):
        clock = FakeClock()
        queue = make_queue(tmp_path, clock=clock, tasks=1, lease_timeout=10.0)
        claim = queue.claim("alpha")
        injector = FaultInjector(
            FaultPlan(faults=(FaultSpec(kind="stall-heartbeat",
                                        site="distrib", times=3),))
        )
        beat = Heartbeat(queue, claim, injector=injector)
        for _ in range(3):  # all three touches are swallowed
            clock.advance(4.0)
            assert not beat.beat()
        assert beat.skipped == 3
        stolen = queue.claim("beta")  # 12s quiet > 10s timeout
        assert stolen is not None and stolen.reclaimed
        # Post-stall the owner's beats resume (on the lost lease they
        # report False and count `lost`).
        assert not beat.beat()
        assert beat.lost == 1

    def test_heartbeat_thread_touches_real_lease(self, tmp_path):
        queue = make_queue(
            tmp_path, tasks=1,
            lease_timeout=10.0, heartbeat_interval=0.01,
        )
        claim = queue.claim("alpha")
        beat = Heartbeat(queue, claim)
        beat.start()
        deadline_event = threading.Event()
        deadline_event.wait(0.15)
        beat.stop()
        assert beat.touched > 0


class TestClaimContention:
    def test_each_task_claimed_exactly_once(self, tmp_path):
        queue = make_queue(tmp_path, tasks=12)
        claims = []
        lock = threading.Lock()

        def grab(worker: str) -> None:
            while True:
                claim = queue.claim(worker)
                if claim is None:
                    return
                with lock:
                    claims.append(claim)

        threads = [
            threading.Thread(target=grab, args=(f"w{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        keys = [claim.key for claim in claims]
        assert sorted(keys) == sorted(set(keys))  # no double claims
        assert set(keys) == set(queue.task_keys())  # full coverage

    @settings(max_examples=15, deadline=None)
    @given(tasks=st.integers(1, 10), workers=st.integers(1, 4))
    def test_drain_completes_every_task_once(self, tmp_path_factory,
                                             tasks, workers):
        tmp_path = tmp_path_factory.mktemp("drain")
        queue = make_queue(tmp_path, tasks=tasks)
        executed = []
        for round_robin in range(tasks * workers + 1):
            claim = queue.claim(f"w{round_robin % workers}")
            if claim is None:
                break
            queue.store.write(claim.key, {"round": round_robin})
            queue.release(claim)
            executed.append(claim.key)
        assert sorted(executed) == sorted(queue.task_keys())
        assert queue.pending_keys() == ()


# ----------------------------------------------------------------------
# Store scan discipline + concurrent writers (satellite 2)
# ----------------------------------------------------------------------
def _race_writer(args):
    root, key, writer = args
    store = ContentAddressedStore(Path(root))
    for i in range(25):
        store.write(key, {"writer": writer, "i": i})
    return writer


class TestStoreScans:
    def test_entries_ignores_lease_corrupt_and_tmp_siblings(self, tmp_path):
        store = ContentAddressedStore(tmp_path)
        store.write("a" * 64, {"x": 1})
        store.write("b" * 64, {"x": 2})
        (tmp_path / ("a" * 64 + ".lease")).write_text("{}")
        (tmp_path / ("b" * 64 + ".json" + ".corrupt")).write_text("junk")
        (tmp_path / (".deadbeef-xyz.tmp")).write_text("partial")
        (tmp_path / ".hidden.json").write_text("{}")
        names = [path.name for path in store.entries()]
        assert names == sorted(["a" * 64 + ".json", "b" * 64 + ".json"])

    def test_entries_disabled_store(self):
        assert ContentAddressedStore(None).entries() == ()

    def test_concurrent_writers_one_durable_valid_entry(self, tmp_path):
        key = "c" * 64
        store = ContentAddressedStore(tmp_path)
        with ProcessPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(_race_writer, (str(tmp_path), key, w))
                for w in range(4)
            ]
            # Concurrent reads must never see a torn entry: every read
            # is either a miss or a complete envelope payload.
            torn = 0
            while not all(future.done() for future in futures):
                data = store.read(key)
                if data is not None and "writer" not in data:
                    torn += 1
            assert [future.result() for future in futures] == [0, 1, 2, 3]
        assert torn == 0
        assert store.quarantined == 0
        entries = store.entries()
        assert len(entries) == 1 and entries[0].name == f"{key}.json"
        final = store.read(key)
        assert final is not None and final["i"] == 24
        # No tmp litter left behind by the racing writers.
        assert [p for p in tmp_path.iterdir() if p.suffix == ".tmp"] == []


# ----------------------------------------------------------------------
# Worker loop + coordinator (real execution, tiny grid)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def edge_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("distrib") / "graph.txt"
    write_edge_list(powerlaw_cluster(80, 2, 0.4, seed=7), path)
    return str(path)


class TestWorkerLoop:
    def test_worker_drains_queue_bit_identically(self, tmp_path, edge_file):
        spec = SweepSpec(
            sources=(edge_file,), methods=("triest",), budgets=(40, 60),
            runs=1, base_stream_seed=3, base_sampler_seed=30,
        )
        gt_cache = GroundTruthCache(tmp_path)
        queue = CellQueue.create(
            tmp_path / "queue", tmp_path / "cells", DistribSpec(workers=1)
        )
        assert enqueue_grid(spec, queue, gt_cache) == 2
        stats = run_worker(queue.root, "w0", queue=queue)
        assert stats.executed == 2
        assert stats.reclaimed == stats.reexecuted == 0
        assert queue.pending_keys() == ()
        # Published payloads are byte-equal to a direct inline run.
        for run_spec in spec.expand()[0].specs:
            key = cell_report_key(
                run_spec, False, gt_cache.key_for(edge_file)
            )
            stored = queue.store.read(key)
            direct = run(run_spec)
            assert stored["estimates"] == direct.to_dict()["estimates"]
        summaries = queue.worker_summaries()
        assert [s["worker"] for s in summaries] == ["w0"]
        assert summaries[0]["executed"] == 2

    def test_failed_cell_records_error_releases_and_raises(self, tmp_path):
        queue = make_queue(tmp_path, tasks=0)
        queue.enqueue(
            CellTask(
                key="f" * 64,
                spec=RunSpec(source="no-such-file.txt", budget=10),
            )
        )
        with pytest.raises(Exception):
            run_worker(queue.root, "w0", queue=queue)
        assert not queue.lease_path("f" * 64).exists()  # released
        summaries = queue.worker_summaries()
        assert len(summaries) == 1
        assert summaries[0]["errors"]  # the error channel is populated

    def test_max_cells_bounds_the_session(self, tmp_path, edge_file):
        spec = SweepSpec(
            sources=(edge_file,), methods=("triest",), budgets=(40, 60),
            runs=1, base_stream_seed=3, base_sampler_seed=30,
        )
        gt_cache = GroundTruthCache(tmp_path)
        queue = CellQueue.create(
            tmp_path / "queue", tmp_path / "cells", DistribSpec(workers=1)
        )
        enqueue_grid(spec, queue, gt_cache)
        stats = run_worker(queue.root, "w0", queue=queue, max_cells=1)
        assert stats.executed == 1
        assert len(queue.pending_keys()) == 1


class TestCoordinator:
    def test_distributed_sweep_matches_inline(self, tmp_path, edge_file):
        spec = SweepSpec(
            sources=(edge_file,), methods=("triest", "gps-in-stream"),
            budgets=(50,), runs=1, base_stream_seed=3, base_sampler_seed=30,
        )
        oracle = run_sweep(spec.replace(workers=0))
        report = run_distributed_sweep(
            spec,
            cache_dir=tmp_path,
            distrib=DistribSpec(
                workers=1, lease_timeout=10.0,
                heartbeat_interval=0.2, poll_interval=0.02,
            ),
        )
        assert report.distributed_workers == 1
        assert report.leases_reclaimed == 0
        assert report.cells_reexecuted == 0
        assert len(report.cells) == len(oracle.cells) == 2
        for cell, truth in zip(report.cells, oracle.cells):
            assert cell.key == truth.key
            assert cell.metrics == truth.metrics
            assert cell.relative_error == truth.relative_error
            assert [r.estimates for r in cell.reports] == [
                r.estimates for r in truth.reports
            ]
        payload = report.to_dict()["distrib"]
        assert payload == {
            "workers": 1, "leases_reclaimed": 0, "cells_reexecuted": 0,
        }

    def test_requires_cache_dir(self, edge_file):
        with pytest.raises(ValueError, match="cache"):
            run_distributed_sweep(
                SweepSpec(sources=(edge_file,)), cache_dir=None
            )


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_distributed_rejects_no_cache(self, capsys):
        code = main(["sweep", "--source", "g.txt", "--distributed", "2",
                     "--no-cache"])
        assert code == 2
        assert "--no-cache" in capsys.readouterr().err

    def test_distributed_rejects_workers(self, capsys):
        code = main(["sweep", "--source", "g.txt", "--distributed", "2",
                     "--workers", "2"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_lease_flags_require_distributed(self, capsys):
        code = main(["sweep", "--source", "g.txt", "--lease-timeout", "5"])
        assert code == 2
        assert "--distributed" in capsys.readouterr().err

    def test_bad_lease_parameters_rejected(self, tmp_path, capsys):
        code = main(["sweep", "--source", "g.txt", "--distributed", "1",
                     "--cache", str(tmp_path),
                     "--lease-timeout", "1", "--heartbeat-interval", "0.9"])
        assert code == 2
        assert "twice" in capsys.readouterr().err

    def test_sweep_worker_requires_manifest(self, tmp_path, capsys):
        code = main(["sweep-worker", "--queue", str(tmp_path / "nope")])
        assert code == 2
        assert "manifest" in capsys.readouterr().err

    def test_sweep_worker_drains_queue_via_cli(
        self, tmp_path, edge_file, capsys
    ):
        spec = SweepSpec(
            sources=(edge_file,), methods=("triest",), budgets=(40,),
            runs=1, base_stream_seed=3, base_sampler_seed=30,
        )
        gt_cache = GroundTruthCache(tmp_path)
        queue = CellQueue.create(
            tmp_path / "queue", tmp_path / "cells", DistribSpec(workers=1)
        )
        enqueue_grid(spec, queue, gt_cache)
        code = main(["sweep-worker", "--queue", str(queue.root),
                     "--worker-id", "cli-w", "--json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["worker"] == "cli-w"
        assert summary["executed"] == 1
        assert queue.pending_keys() == ()
