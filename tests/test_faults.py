"""Unit tests for the deterministic fault-injection framework.

The framework itself must be boring: a frozen spec with a lossless JSON
round trip, an injector whose decisions are pure functions of the plan,
and seeded corruption/backoff helpers — no OS entropy anywhere, so two
chaos runs with the same plan provoke byte-identical failure schedules.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.faults import (
    CORRUPTION_MODES,
    DISTRIB_KINDS,
    FAULT_KINDS,
    FaultInjected,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    backoff_delay,
    coerce_injector,
    corrupt_entry,
    inject_source_faults,
)


class TestFaultSpecValidation:
    def test_known_kinds(self):
        for kind in FAULT_KINDS:
            assert FaultSpec(kind=kind).kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(kind="melt-cpu")

    def test_negative_at_rejected(self):
        with pytest.raises(ValueError, match="at"):
            FaultSpec(kind="crash-worker", at=-1)

    def test_non_positive_times_rejected(self):
        with pytest.raises(ValueError, match="times"):
            FaultSpec(kind="raise-task", times=0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            FaultSpec(kind="corrupt-cache", mode="bitrot")

    def test_known_modes(self):
        for mode in CORRUPTION_MODES:
            assert FaultSpec(kind="corrupt-cache", mode=mode).mode == mode


class TestFaultPlanRoundTrip:
    def test_json_round_trip(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="crash-worker", site="replication", at=2),
                FaultSpec(kind="corrupt-cache", mode="garbage"),
            ),
            seed=17,
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        assert json.loads(plan.to_json())["seed"] == 17

    def test_unknown_plan_key_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.from_dict({"faults": [], "seed": 0, "chaos": True})

    def test_unknown_fault_key_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.from_dict(
                {"faults": [{"kind": "crash-worker", "when": 3}], "seed": 0}
            )

    def test_lists_coerced_to_tuples(self):
        plan = FaultPlan(faults=[FaultSpec(kind="raise-task")])
        assert isinstance(plan.faults, tuple)

    def test_replace(self):
        plan = FaultPlan(seed=1)
        assert plan.replace(seed=2).seed == 2
        assert plan.seed == 1


class TestInjectorDecisions:
    def test_task_fault_fires_once_at_index(self):
        plan = FaultPlan(
            faults=(FaultSpec(kind="crash-worker", site="shard", at=3),)
        )
        injector = FaultInjector(plan)
        assert injector.task_fault("shard", 2) is None
        assert injector.task_fault("shard", 3) == "crash"
        # Burned: the retry of the same index succeeds.
        assert injector.task_fault("shard", 3) is None

    def test_site_filter(self):
        plan = FaultPlan(
            faults=(FaultSpec(kind="raise-task", site="sweep", at=0),)
        )
        injector = FaultInjector(plan)
        assert injector.task_fault("replication", 0) is None
        assert injector.task_fault("sweep", 0) == "raise"

    def test_empty_site_matches_everywhere(self):
        injector = FaultInjector(
            FaultPlan(faults=(FaultSpec(kind="raise-task", at=0),))
        )
        assert injector.task_fault("anywhere", 0) == "raise"

    def test_times_budget(self):
        injector = FaultInjector(
            FaultPlan(faults=(FaultSpec(kind="raise-task", at=1, times=2),))
        )
        assert injector.task_fault("s", 1) == "raise"
        assert injector.task_fault("s", 1) == "raise"
        assert injector.task_fault("s", 1) is None

    def test_source_fault_threshold(self):
        injector = FaultInjector(
            FaultPlan(faults=(FaultSpec(kind="disconnect-source", at=4),))
        )
        assert injector.source_fault("src", 3) is None
        assert injector.source_fault("src", 7) == "disconnect"
        assert injector.source_fault("src", 7) is None  # burned

    def test_stall_polls(self):
        injector = FaultInjector(
            FaultPlan(faults=(FaultSpec(kind="stall-source", at=1, times=5),))
        )
        assert injector.stall_polls("src", 0) == 0
        assert injector.stall_polls("src", 1) == 5
        assert injector.stall_polls("src", 1) == 0  # burned

    def test_cache_faults_burned(self):
        injector = FaultInjector(
            FaultPlan(faults=(FaultSpec(kind="corrupt-cache"),))
        )
        assert len(injector.cache_faults("sweep")) == 1
        assert injector.cache_faults("sweep") == []

    def test_fired_log_records_decisions(self):
        injector = FaultInjector(
            FaultPlan(faults=(FaultSpec(kind="crash-worker", at=0),))
        )
        injector.task_fault("site", 0, attempt=0)
        assert [f.kind for f in injector.fired] == ["crash-worker"]

    def test_coerce_injector(self):
        assert coerce_injector(None) is None
        plan = FaultPlan()
        injector = coerce_injector(plan)
        assert isinstance(injector, FaultInjector)
        assert coerce_injector(injector) is injector


class TestDistribHooks:
    def test_distrib_kinds_are_registered(self):
        assert set(DISTRIB_KINDS) <= set(FAULT_KINDS)
        for kind in DISTRIB_KINDS:
            spec = FaultSpec(kind=kind, site="distrib")
            assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_midcell_fires_once_at_exact_index(self):
        injector = FaultInjector(
            FaultPlan(
                faults=(
                    FaultSpec(kind="crash-worker-midcell",
                              site="distrib", at=2),
                )
            )
        )
        assert not injector.midcell_fault("distrib", 1)
        assert not injector.midcell_fault("distrib", 3)  # exact, not >=
        assert injector.midcell_fault("distrib", 2)
        assert not injector.midcell_fault("distrib", 2)  # burned
        assert [f.kind for f in injector.fired] == ["crash-worker-midcell"]

    def test_heartbeat_stall_burns_fully_and_returns_times(self):
        injector = FaultInjector(
            FaultPlan(
                faults=(
                    FaultSpec(kind="stall-heartbeat", site="distrib",
                              at=1, times=4),
                )
            )
        )
        assert injector.heartbeat_stalls("distrib", 0) == 0
        assert injector.heartbeat_stalls("distrib", 5) == 4  # threshold
        assert injector.heartbeat_stalls("distrib", 6) == 0  # burned

    def test_steal_lease_threshold_and_budget(self):
        injector = FaultInjector(
            FaultPlan(
                faults=(
                    FaultSpec(kind="steal-lease", site="distrib",
                              at=1, times=2),
                )
            )
        )
        assert not injector.steal_lease("distrib", 0)
        assert injector.steal_lease("distrib", 1)
        assert injector.steal_lease("distrib", 4)
        assert not injector.steal_lease("distrib", 5)  # budget exhausted

    def test_distrib_hooks_respect_site_filter(self):
        injector = FaultInjector(
            FaultPlan(
                faults=(
                    FaultSpec(kind="steal-lease", site="distrib", at=0),
                )
            )
        )
        assert not injector.steal_lease("sweep", 0)
        assert injector.steal_lease("distrib", 0)


class TestSourceInjection:
    def test_disconnect_raises_connection_error(self):
        injector = FaultInjector(
            FaultPlan(faults=(FaultSpec(kind="disconnect-source", at=2),))
        )
        blocks = [([1], [2]), ([3], [4]), ([5], [6]), ([7], [8])]
        out = []
        with pytest.raises(ConnectionError, match="block 2"):
            for block in inject_source_faults(iter(blocks), injector, "src"):
                out.append(block)
        assert out == blocks[:2]

    def test_no_injector_faults_pass_through(self):
        injector = FaultInjector(FaultPlan())
        blocks = [([1], [2]), ([3], [4])]
        assert (
            list(inject_source_faults(iter(blocks), injector, "src"))
            == blocks
        )


class TestCorruptionAndBackoff:
    def test_truncate_halves_the_file(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_bytes(b"x" * 100)
        corrupt_entry(path, mode="truncate")
        assert path.stat().st_size == 50

    def test_garbage_is_seeded(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        payload = json.dumps({"data": list(range(40))}).encode()
        a.write_bytes(payload)
        b.write_bytes(payload)
        corrupt_entry(a, mode="garbage", seed=5)
        corrupt_entry(b, mode="garbage", seed=5)
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes() != payload

    def test_backoff_grows_and_caps(self):
        rng = random.Random(0)
        delays = [
            backoff_delay(attempt, base=0.1, cap=0.5, rng=rng)
            for attempt in range(8)
        ]
        assert all(0.05 <= d <= 0.5 for d in delays)
        # The undithered envelope doubles until the cap.
        assert max(delays) <= 0.5

    def test_backoff_is_seeded(self):
        a = backoff_delay(3, base=0.1, cap=5.0, rng=random.Random(9))
        b = backoff_delay(3, base=0.1, cap=5.0, rng=random.Random(9))
        assert a == b

    def test_backoff_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            backoff_delay(0, base=0.0, cap=1.0, rng=rng)
        with pytest.raises(ValueError):
            backoff_delay(0, base=1.0, cap=0.5, rng=rng)


def test_fault_injected_is_runtime_error():
    assert issubclass(FaultInjected, RuntimeError)
