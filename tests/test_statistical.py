"""Statistical acceptance harness: sharded GPS is unbiased.

Replicates sharded and unsharded gps-post over hundreds of *fixed*
seeds on a small exactly-countable graph and asserts, for every shard
count S ∈ {1, 2, 4, 8}:

* **unbiasedness** — the mean triangle/wedge estimate lies within
  ``Z_TOLERANCE`` standard errors of the exact count (the Monte-Carlo
  z-statistic of the replicate population);
* **CI calibration** — the empirical coverage of the per-replication
  95% confidence intervals stays within a binomial tolerance band of
  the nominal level.

Everything is seeded, so the suite is deterministic — the tolerances
are *calibrated headroom*, not flake insurance: the observed maxima
across the ladder are z ≈ 1.4 and coverage ∈ [0.885, 0.940], against
bounds of z ≤ 3 and coverage ≥ 0.86.

The harness is deliberately heavier than tier-1 (REPLICATIONS × |S|
full passes), so it is marked ``statistical`` and deselected by
default (``addopts`` in pyproject.toml); CI runs it as its own job via
``pytest -m statistical``.
"""

from __future__ import annotations

import math

import pytest

from repro.graph.exact import compute_statistics
from repro.graph.generators import chung_lu
from repro.shard.runner import ShardedRunner
from repro.stats.merge import merge_reports
from repro.streams.stream import EdgeStream

pytestmark = pytest.mark.statistical

#: Fixed-seed replications per shard count (≥ 200 per the acceptance
#: protocol; the z and coverage tolerances below assume this scale).
REPLICATIONS = 200

#: Shard ladder under test; 1 is the unsharded reference sampler.
SHARD_LADDER = (1, 2, 4, 8)

#: Total budget; divisible by every ladder entry (8 · 30 edges/shard).
BUDGET = 240

#: Monte-Carlo z bound: |mean − exact| ≤ Z_TOLERANCE · SE.  Observed
#: maximum across the ladder is ≈ 1.43 with these seeds.
Z_TOLERANCE = 3.0

#: Empirical-coverage band around the nominal 95% level: four binomial
#: standard deviations (√(0.95·0.05/200) ≈ 0.0154) plus a 3pp
#: allowance for the HT variance estimator's small-budget undercoverage
#: (30 edges per shard at S=8).  Observed minimum is 0.885.
COVERAGE_FLOOR = 0.86

CONFIDENCE_LEVEL = 0.95


@pytest.fixture(scope="module")
def population():
    """A small heavy-tailed graph with exactly-countable statistics."""
    graph = chung_lu(150, 600, exponent=2.2, seed=9)
    edges = EdgeStream.canonical_edges(graph)
    exact = compute_statistics(graph)
    assert exact.triangles > 0 and exact.wedges > 0
    return edges, exact


def _replicate(edges, shards):
    """REPLICATIONS seeded sharded passes; returns per-metric series."""
    runner = ShardedRunner(edges, shards=shards, budget=BUDGET)
    rows = []
    for i in range(REPLICATIONS):
        estimates = runner.run(
            stream_seed=i, sampler_seed=1_000 + i
        ).estimates
        rows.append(estimates)
    return rows


def _z_statistic(values, truth):
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    std_error = math.sqrt(variance / len(values))
    return abs(mean - truth) / std_error


@pytest.fixture(scope="module", params=SHARD_LADDER)
def ladder_rung(request, population):
    edges, exact = population
    return request.param, exact, _replicate(edges, request.param)


class TestUnbiasedness:
    def test_triangle_mean_within_tolerance(self, ladder_rung):
        shards, exact, rows = ladder_rung
        values = [r.triangles.value for r in rows]
        z = _z_statistic(values, exact.triangles)
        assert z <= Z_TOLERANCE, (
            f"S={shards}: triangle mean {sum(values) / len(values):.1f} "
            f"vs exact {exact.triangles} is {z:.2f} SEs away"
        )

    def test_wedge_mean_within_tolerance(self, ladder_rung):
        shards, exact, rows = ladder_rung
        values = [r.wedges.value for r in rows]
        z = _z_statistic(values, exact.wedges)
        assert z <= Z_TOLERANCE, (
            f"S={shards}: wedge mean {sum(values) / len(values):.1f} "
            f"vs exact {exact.wedges} is {z:.2f} SEs away"
        )


class TestConfidenceCalibration:
    def test_triangle_ci_coverage(self, ladder_rung):
        shards, exact, rows = ladder_rung
        covered = sum(
            low <= exact.triangles <= high
            for low, high in (r.triangles.confidence_bounds() for r in rows)
        )
        coverage = covered / len(rows)
        assert COVERAGE_FLOOR <= coverage <= 1.0, (
            f"S={shards}: triangle CI coverage {coverage:.3f} outside "
            f"[{COVERAGE_FLOOR}, 1.0]"
        )

    def test_wedge_ci_coverage(self, ladder_rung):
        shards, exact, rows = ladder_rung
        covered = sum(
            low <= exact.wedges <= high
            for low, high in (r.wedges.confidence_bounds() for r in rows)
        )
        coverage = covered / len(rows)
        assert COVERAGE_FLOOR <= coverage <= 1.0, (
            f"S={shards}: wedge CI coverage {coverage:.3f} outside "
            f"[{COVERAGE_FLOOR}, 1.0]"
        )


class TestPooledMomentsEndToEnd:
    def test_merge_reports_recovers_the_study_mean(self, population):
        # Split the S=4 replicate series into unequal groups, summarise
        # each by (count, mean, sample variance), and pool: the merged
        # moments must be exactly the flat series' moments — the same
        # contract the distributed study path relies on.
        edges, _ = population
        runner = ShardedRunner(edges, shards=4, budget=BUDGET)
        values = [
            runner.run(stream_seed=i, sampler_seed=5_000 + i)
            .estimates.triangles.value
            for i in range(24)
        ]
        groups = [values[:5], values[5:12], values[12:24]]
        reports = []
        for group in groups:
            mean = sum(group) / len(group)
            variance = sum((v - mean) ** 2 for v in group) / (
                len(group) - 1
            )
            reports.append({"triangles": (len(group), mean, variance)})
        merged = merge_reports(reports)["triangles"]
        flat_mean = sum(values) / len(values)
        flat_var = sum((v - flat_mean) ** 2 for v in values) / (
            len(values) - 1
        )
        assert merged.count == 24
        assert merged.mean == pytest.approx(flat_mean, rel=1e-12)
        assert merged.variance == pytest.approx(flat_var, rel=1e-12)
