"""Tests for the JSP, Buriol, and graph sample-and-hold baselines."""

from __future__ import annotations

import pytest

from repro.baselines.buriol import BuriolSampler
from repro.baselines.jha import JhaSeshadhriPinar
from repro.baselines.sample_hold import GraphSampleHold
from repro.graph.generators import complete_graph
from repro.stats.running import RunningMoments
from repro.streams.stream import EdgeStream


def drive(counter, graph, stream_seed=0):
    for u, v in EdgeStream.from_graph(graph, seed=stream_seed):
        counter.process(u, v)
    return counter


class TestJhaSeshadhriPinar:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            JhaSeshadhriPinar(1, 10)
        with pytest.raises(ValueError):
            JhaSeshadhriPinar(10, 0)

    def test_self_loops_ignored(self):
        counter = JhaSeshadhriPinar(4, 4, seed=0)
        counter.process(3, 3)
        assert counter.arrivals == 0

    def test_complete_graph_transitivity(self):
        # K20 has transitivity 1; ρ should be close to 1/3 and κ to 1.
        graph = complete_graph(20)
        moments = RunningMoments()
        for seed in range(30):
            counter = drive(
                JhaSeshadhriPinar(60, 60, seed=seed), graph, stream_seed=seed
            )
            moments.add(counter.transitivity_estimate)
        assert moments.mean == pytest.approx(1.0, abs=0.15)

    def test_triangle_estimate_tracks_truth(self, social_graph, social_stats):
        moments = RunningMoments()
        for seed in range(40):
            counter = drive(
                JhaSeshadhriPinar(200, 200, seed=6000 + seed),
                social_graph,
                stream_seed=seed,
            )
            moments.add(counter.triangle_estimate)
        # JSP is approximate (not strictly unbiased at small reservoirs):
        # accept the truth within 35% of the mean.
        assert moments.mean == pytest.approx(social_stats.triangles, rel=0.35)

    def test_zero_before_anything_closes(self):
        counter = JhaSeshadhriPinar(4, 4, seed=0)
        counter.process(0, 1)
        assert counter.triangle_estimate == 0.0
        assert counter.closed_fraction == 0.0

    def test_reservoir_wedge_count_tracks_degrees(self):
        counter = JhaSeshadhriPinar(100, 10, seed=0)
        counter.process(0, 1)
        counter.process(0, 2)
        # Every cell holds one of the two edges; the wedge total follows
        # the cell-degree table (duplicate cells included by design).
        assert counter.total_reservoir_wedges > 0


class TestBuriol:
    def test_instance_validation(self):
        with pytest.raises(ValueError):
            BuriolSampler(0)

    def test_fixed_universe(self, k4_graph):
        counter = BuriolSampler(200, nodes=list(range(4)), seed=0)
        for u, v in EdgeStream.from_graph(k4_graph, seed=0):
            counter.process(u, v)
        assert counter.num_nodes_seen == 4

    def test_mostly_zero_on_sparse_graphs(self, social_graph):
        """The paper's diagnosis: Buriol rarely finds triangles."""
        zero_estimates = 0
        runs = 30
        for seed in range(runs):
            counter = drive(BuriolSampler(30, seed=seed), social_graph,
                            stream_seed=seed)
            if counter.hit_count == 0:
                zero_estimates += 1
        assert zero_estimates > runs // 2

    def test_unbiased_in_expectation_on_dense_graph(self):
        # With the node universe fixed up front (the incidence-model
        # assumption), the estimator is exactly unbiased; the growing
        # universe variant carries a documented small bias.
        graph = complete_graph(12)  # 220 triangles, dense => hits happen
        moments = RunningMoments()
        for seed in range(150):
            counter = BuriolSampler(50, nodes=list(range(12)), seed=seed)
            drive(counter, graph, stream_seed=seed)
            moments.add(counter.triangle_estimate)
        assert abs(moments.mean - 220.0) < 5.0 * moments.std_error

    def test_estimate_zero_without_nodes(self):
        counter = BuriolSampler(5, seed=0)
        assert counter.triangle_estimate == 0.0


class TestGraphSampleHold:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GraphSampleHold(0.0)
        with pytest.raises(ValueError):
            GraphSampleHold(0.5, q=1.5)

    def test_exact_at_unit_probabilities(self, k5_graph):
        counter = drive(GraphSampleHold(1.0, 1.0, seed=0), k5_graph)
        assert counter.triangle_estimate == pytest.approx(10.0)
        assert counter.edge_estimate == pytest.approx(10.0)

    def test_edge_estimate_unbiased(self, social_graph):
        moments = RunningMoments()
        for seed in range(150):
            counter = drive(
                GraphSampleHold(0.2, 0.5, seed=seed), social_graph, stream_seed=seed
            )
            moments.add(counter.edge_estimate)
        assert abs(moments.mean - social_graph.num_edges) < 5.0 * moments.std_error

    def test_triangle_estimate_unbiased(self, social_graph, social_stats):
        moments = RunningMoments()
        for seed in range(150):
            counter = drive(
                GraphSampleHold(0.2, 0.5, seed=7000 + seed),
                social_graph,
                stream_seed=seed,
            )
            moments.add(counter.triangle_estimate)
        assert abs(moments.mean - social_stats.triangles) < 5.0 * moments.std_error

    def test_hold_bias_grows_sample(self, social_graph):
        plain = drive(GraphSampleHold(0.2, 0.2, seed=1), social_graph)
        held = drive(GraphSampleHold(0.2, 0.8, seed=1), social_graph)
        assert held.sample_size > plain.sample_size

    def test_default_q_is_one(self, k4_graph):
        counter = GraphSampleHold(0.5, seed=0)
        drive(counter, k4_graph)
        assert counter.sample_size >= 1
