"""Tests for the MASCOT baselines."""

from __future__ import annotations

import pytest

from repro.baselines.mascot import Mascot, MascotBasic
from repro.stats.running import RunningMoments
from repro.streams.stream import EdgeStream


def drive(counter, graph, stream_seed=0):
    for u, v in EdgeStream.from_graph(graph, seed=stream_seed):
        counter.process(u, v)
    return counter


class TestMascot:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            Mascot(0.0)
        with pytest.raises(ValueError):
            Mascot(1.5)

    def test_exact_at_p_one(self, k5_graph, medium_graph, medium_stats):
        assert drive(Mascot(1.0, seed=0), k5_graph).triangle_estimate == 10.0
        counter = drive(Mascot(1.0, seed=0), medium_graph)
        assert counter.triangle_estimate == pytest.approx(medium_stats.triangles)

    def test_skips_self_loops_and_stored_duplicates(self):
        counter = Mascot(1.0, seed=0)
        counter.process(0, 0)
        counter.process(0, 1)
        counter.process(1, 0)
        assert counter.arrivals == 1

    def test_expected_sample_size(self, medium_graph):
        counter = drive(Mascot(0.2, seed=3), medium_graph)
        expected = 0.2 * medium_graph.num_edges
        assert counter.sample_size == pytest.approx(expected, rel=0.15)

    def test_unbiased(self, social_graph, social_stats):
        moments = RunningMoments()
        for seed in range(200):
            counter = drive(
                Mascot(0.3, seed=3000 + seed), social_graph, stream_seed=seed
            )
            moments.add(counter.triangle_estimate)
        assert abs(moments.mean - social_stats.triangles) < 5.0 * moments.std_error

    def test_estimate_monotone(self, medium_graph):
        counter = Mascot(0.3, seed=4)
        last = 0.0
        for u, v in EdgeStream.from_graph(medium_graph, seed=0).prefix(2000):
            counter.process(u, v)
            assert counter.triangle_estimate >= last
            last = counter.triangle_estimate


class TestMascotBasic:
    def test_exact_at_p_one(self, k5_graph):
        assert drive(MascotBasic(1.0, seed=0), k5_graph).triangle_estimate == 10.0

    def test_unbiased(self, social_graph, social_stats):
        moments = RunningMoments()
        for seed in range(200):
            counter = drive(
                MascotBasic(0.3, seed=4000 + seed), social_graph, stream_seed=seed
            )
            moments.add(counter.triangle_estimate)
        assert abs(moments.mean - social_stats.triangles) < 5.0 * moments.std_error

    def test_higher_variance_than_improved(self, social_graph):
        improved = RunningMoments()
        basic = RunningMoments()
        for seed in range(150):
            improved.add(
                drive(
                    Mascot(0.25, seed=seed), social_graph, stream_seed=seed
                ).triangle_estimate
            )
            basic.add(
                drive(
                    MascotBasic(0.25, seed=seed), social_graph, stream_seed=seed
                ).triangle_estimate
            )
        assert improved.variance < basic.variance

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            MascotBasic(-0.1)
