"""Snapshot surface: ``snapshot_arrays`` bit-equivalence + the store.

Satellite 1 of the serving PR: the cheap dtype-pinned snapshot must
carry exactly the state ``CompactSample.materialize()`` exposes — same
records, same priorities, same dict iteration orders — and the
epoch store must publish, recycle and wake waiters correctly.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.core.compact import (
    CompactGraphPrioritySampler,
    SlotArrays,
    make_in_stream_estimator,
)
from repro.core.post_stream import PostStreamEstimator
from repro.core.weights import TriangleWeight, UniformWeight
from repro.graph.generators import powerlaw_cluster
from repro.serve.snapshot import SampleSnapshot, SnapshotStore
from repro.streams.stream import EdgeStream


def _stream(seed=3, nodes=200):
    graph = powerlaw_cluster(nodes, 3, 0.5, seed=2)
    return list(EdgeStream.from_graph(graph, seed=seed))


def _sampler(capacity=60, seed=5, weight=TriangleWeight):
    return CompactGraphPrioritySampler(
        capacity, weight_fn=weight(), seed=seed
    )


# ----------------------------------------------------------------------
# snapshot_arrays ≡ materialize
# ----------------------------------------------------------------------
def test_snapshot_arrays_matches_materialize_records():
    sampler = _sampler()
    sampler.process_many(_stream())
    arrays = sampler.snapshot_arrays()
    sample = sampler.sample.materialize()

    assert arrays.size == sampler.sample_size == sample.num_edges
    assert arrays.threshold == sampler.threshold
    assert arrays.stream_position == sampler.stream_position

    by_key = {record.key: record for record in sample.records()}
    assert len(by_key) == arrays.size
    for slot in range(arrays.size):
        record = arrays.record(slot)
        twin = by_key[record.key]
        assert record.weight == twin.weight
        assert record.priority == twin.priority
        assert record.arrival == twin.arrival
        assert record.cov_triangle == twin.cov_triangle
        assert record.cov_wedge == twin.cov_wedge


def test_snapshot_arrays_dtypes_are_pinned():
    sampler = _sampler()
    sampler.process_many(_stream())
    arrays = sampler.snapshot_arrays()
    assert arrays.weight.dtype == np.float64
    assert arrays.priority.dtype == np.float64
    assert arrays.arrival.dtype == np.int64
    assert arrays.cov_triangle.dtype == np.float64
    assert arrays.cov_wedge.dtype == np.float64


def test_snapshot_arrays_heap_root_is_the_threshold_candidate():
    sampler = _sampler()
    sampler.process_many(_stream())
    arrays = sampler.snapshot_arrays()
    assert arrays.heap_root is not None
    root_priority, root_slot = arrays.heap_root
    assert root_priority == min(
        float(arrays.priority[s]) for s in range(arrays.size)
    )
    assert 0 <= root_slot < arrays.size


def test_snapshot_arrays_empty_sampler():
    arrays = _sampler().snapshot_arrays()
    assert arrays.size == 0
    assert arrays.heap_root is None
    assert arrays.threshold == 0.0


def test_snapshot_arrays_out_recycling_overwrites_in_place():
    sampler = _sampler()
    edges = _stream()
    sampler.process_many(edges[: len(edges) // 2])
    first = sampler.snapshot_arrays()
    sampler.process_many(edges[len(edges) // 2:])
    second = sampler.snapshot_arrays(out=first)
    assert second is first
    fresh = sampler.snapshot_arrays()
    assert second.size == fresh.size
    assert second.threshold == fresh.threshold
    assert list(second.u) == list(fresh.u)
    np.testing.assert_array_equal(
        second.priority[: second.size], fresh.priority[: fresh.size]
    )


def test_snapshot_arrays_rejects_mismatched_capacity_buffer():
    sampler = _sampler(capacity=60)
    sampler.process_many(_stream())
    wrong = SlotArrays(10)
    arrays = sampler.snapshot_arrays(out=wrong)
    assert arrays is not wrong
    assert arrays.capacity == 60


def test_snapshot_is_immutable_under_further_ingestion():
    sampler = _sampler()
    edges = _stream()
    sampler.process_many(edges[:300])
    arrays = sampler.snapshot_arrays()
    adjacency = sampler.snapshot_adjacency()
    frozen_priorities = arrays.priority[: arrays.size].copy()
    frozen_adj = {u: dict(nbrs) for u, nbrs in adjacency.items()}
    sampler.process_many(edges[300:])
    np.testing.assert_array_equal(
        arrays.priority[: arrays.size], frozen_priorities
    )
    assert adjacency == frozen_adj


def test_snapshot_adjacency_preserves_slot_orders():
    sampler = _sampler()
    sampler.process_many(_stream())
    adjacency = sampler.snapshot_adjacency()
    live = sampler._adj
    assert list(adjacency) == list(live)
    for node, nbrs in adjacency.items():
        assert list(nbrs) == list(live[node])
        assert nbrs == dict(live[node])


def test_estimator_snapshot_delegates_to_sampler():
    estimator = make_in_stream_estimator(
        60, weight_fn=TriangleWeight(), seed=5
    )
    estimator.process_many(_stream())
    arrays = estimator.snapshot_arrays()
    assert arrays.size == estimator.sampler.sample_size
    assert estimator.snapshot_adjacency() == (
        estimator.sampler.snapshot_adjacency()
    )


# ----------------------------------------------------------------------
# SampleSnapshot
# ----------------------------------------------------------------------
def test_capture_materialize_matches_compact_materialize():
    sampler = _sampler()
    sampler.process_many(_stream())
    snapshot = SampleSnapshot.capture(sampler)
    ours = snapshot.materialize()
    theirs = sampler.sample.materialize()
    assert ours.num_edges == theirs.num_edges
    assert list(ours._adj) == list(theirs._adj)
    for node in ours._adj:
        assert list(ours._adj[node]) == list(theirs._adj[node])
    # Same traversal orders => bit-identical retrospective estimates.
    assert snapshot.materialize() is ours  # cached


def test_capture_post_stream_estimates_bit_identical():
    sampler = _sampler()
    sampler.process_many(_stream())
    snapshot = SampleSnapshot.capture(sampler)
    served = snapshot.estimates()
    batch = PostStreamEstimator(sampler).estimate()
    assert served.triangles == batch.triangles
    assert served.wedges == batch.wedges
    assert served.clustering == batch.clustering
    assert snapshot.estimates() is snapshot.estimates()  # cached


def test_capture_in_stream_counter_freezes_its_bundle():
    estimator = make_in_stream_estimator(
        60, weight_fn=TriangleWeight(), seed=5
    )
    estimator.process_many(_stream())
    snapshot = SampleSnapshot.capture(estimator)
    assert snapshot.estimates() == estimator.estimates()


def test_capture_requires_the_compact_surface():
    from repro.core.priority_sampler import GraphPrioritySampler

    sampler = GraphPrioritySampler(capacity=10, seed=1)
    with pytest.raises(TypeError, match="snapshot_arrays"):
        SampleSnapshot.capture(sampler)


def test_occupancy_facts():
    sampler = _sampler(capacity=60)
    sampler.process_many(_stream())
    snapshot = SampleSnapshot.capture(sampler)
    facts = snapshot.occupancy()
    assert facts["sample_size"] == 60
    assert facts["capacity"] == 60
    assert facts["fill"] == 1.0
    assert facts["threshold"] == sampler.threshold
    assert facts["stream_position"] == sampler.stream_position


# ----------------------------------------------------------------------
# SnapshotStore
# ----------------------------------------------------------------------
def test_store_epochs_are_monotone_and_stamped():
    sampler = _sampler()
    store = SnapshotStore()
    assert store.latest() is None
    assert store.epoch == 0
    edges = _stream()
    epochs = []
    for at in range(0, 600, 200):
        sampler.process_many(edges[at:at + 200])
        epochs.append(store.publish(SampleSnapshot.capture(sampler)))
    assert epochs == [1, 2, 3]
    assert store.latest().epoch == 3
    assert store.epoch == 3


def test_store_wait_for_returns_satisfying_snapshot():
    sampler = _sampler()
    store = SnapshotStore()
    store.publish(SampleSnapshot.capture(sampler))
    assert store.wait_for(1, timeout=0.1).epoch == 1
    assert store.wait_for(5, timeout=0.05) is None  # times out


def test_store_recycles_buffers_of_collected_snapshots():
    sampler = _sampler()
    sampler.process_many(_stream())
    store = SnapshotStore(max_buffers=2)
    assert store.take_buffer() is None
    first = SampleSnapshot.capture(sampler, out=store.take_buffer())
    arena = first.arrays
    store.publish(first)
    store.publish(SampleSnapshot.capture(sampler))  # retires `first`
    del first
    gc.collect()
    assert store.take_buffer() is arena  # arena returned to the pool
    assert store.take_buffer() is None


def test_recycled_buffer_round_trips_bit_identically():
    sampler = _sampler(weight=UniformWeight)
    edges = _stream()
    store = SnapshotStore()
    sampler.process_many(edges[:400])
    store.publish(SampleSnapshot.capture(sampler, out=store.take_buffer()))
    sampler.process_many(edges[400:])
    store.publish(SampleSnapshot.capture(sampler, out=store.take_buffer()))
    served = store.latest().estimates()
    batch = PostStreamEstimator(sampler).estimate()
    assert served.triangles == batch.triangles
    assert served.wedges == batch.wedges
