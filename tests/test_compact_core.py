"""Shared-seed bit-equivalence: compact core vs the object reference.

The compact core's contract (see :mod:`repro.core.compact`) is that it
is *indistinguishable* from the object core under shared seeds: same
samples, same thresholds, same in-stream and post-stream estimates —
bit for bit, for every registered weight function, through every entry
point (direct classes, ``run(spec)``, the replication pool inline and
pooled, the sweep grid).  These tests enforce exactly that.
"""

from __future__ import annotations

import pytest

from repro.api.execution import run
from repro.api.registry import get_weight, weight_names
from repro.api.spec import RunSpec
from repro.core.adaptive import AdaptiveTriangleWeight
from repro.core.compact import (
    CORES,
    DEFAULT_CORE,
    CompactGraphPrioritySampler,
    CompactInStreamEstimator,
    make_in_stream_estimator,
    make_priority_sampler,
    validate_core,
)
from repro.core.in_stream import InStreamEstimator
from repro.core.post_stream import PostStreamEstimator
from repro.core.priority_sampler import GraphPrioritySampler
from repro.core.weights import (
    AttributeWeight,
    LinearCombinationWeight,
    TriangleWeight,
    UniformWeight,
    WedgeWeight,
    is_label_free,
)
from repro.engine.replication import ReplicatedRunner
from repro.graph.generators import powerlaw_cluster
from repro.heap.slot_heap import SlotMinHeap
from repro.streams.stream import EdgeStream


@pytest.fixture(scope="module")
def stream_edges():
    """A clustered stream with self-loops and duplicates mixed in."""
    graph = powerlaw_cluster(400, 4, 0.6, seed=3)
    edges = list(EdgeStream.from_graph(graph, seed=0))
    return edges[:40] + [(7, 7)] + edges[:15] + edges[40:]


def weight_instances():
    return [
        UniformWeight(),
        TriangleWeight(),
        WedgeWeight(),
        TriangleWeight(coef=4.0, default=2.0),
        LinearCombinationWeight([(1.0, TriangleWeight()),
                                 (0.5, WedgeWeight())]),
        AdaptiveTriangleWeight(),
    ]


def record_signature(sampler):
    """Order-sensitive full-state fingerprint of a sampler's reservoir."""
    return [
        (r.key, r.weight, r.priority, r.arrival, r.cov_triangle, r.cov_wedge)
        for r in sampler.records()
    ]


# ----------------------------------------------------------------------
# Direct class equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "weight_fn", weight_instances(), ids=lambda w: repr(w)[:40]
)
def test_sampler_bit_equivalence(stream_edges, weight_fn):
    compact = CompactGraphPrioritySampler(150, weight_fn=weight_fn, seed=9)
    import copy

    reference = GraphPrioritySampler(
        150, weight_fn=copy.deepcopy(weight_fn), seed=9
    )
    compact.process_many(stream_edges)
    reference.process_many(stream_edges)
    assert compact.threshold == reference.threshold
    assert compact.sample_size == reference.sample_size
    assert compact.stream_position == reference.stream_position
    assert compact.duplicates_skipped == reference.duplicates_skipped
    assert compact.self_loops_skipped == reference.self_loops_skipped
    # Identical samples, in the identical adjacency iteration order
    # (which is what makes post-stream estimation bit-exact too).
    assert record_signature(compact) == record_signature(reference)
    assert (
        compact.normalized_probabilities()
        == reference.normalized_probabilities()
    )


@pytest.mark.parametrize(
    "weight_fn", weight_instances(), ids=lambda w: repr(w)[:40]
)
def test_in_stream_and_post_stream_bit_equivalence(stream_edges, weight_fn):
    import copy

    compact = CompactInStreamEstimator(150, weight_fn=weight_fn, seed=9)
    reference = InStreamEstimator(
        150, weight_fn=copy.deepcopy(weight_fn), seed=9
    )
    compact.process_many(stream_edges)
    reference.process_many(stream_edges)
    assert compact.triangle_estimate == reference.triangle_estimate
    assert compact.wedge_estimate == reference.wedge_estimate
    assert compact.clustering_estimate == reference.clustering_estimate
    a, b = compact.estimates(), reference.estimates()
    assert a.triangles.variance == b.triangles.variance
    assert a.wedges.variance == b.wedges.variance
    post_a = PostStreamEstimator(compact.sampler).estimate()
    post_b = PostStreamEstimator(reference.sampler).estimate()
    assert post_a.triangles.value == post_b.triangles.value
    assert post_a.triangles.variance == post_b.triangles.variance
    assert post_a.wedges.value == post_b.wedges.value
    assert post_a.clustering.value == post_b.clustering.value


def test_process_single_equals_batch(stream_edges):
    one = CompactInStreamEstimator(100, seed=4)
    batch = CompactInStreamEstimator(100, seed=4)
    for u, v in stream_edges[:300]:
        one.process(u, v)
    batch.process_many(stream_edges[:300])
    assert one.triangle_estimate == batch.triangle_estimate
    assert one.sampler.threshold == batch.sampler.threshold
    assert record_signature(one.sampler) == record_signature(batch.sampler)


def test_generic_weight_error_matches_object_core():
    compact = CompactGraphPrioritySampler(
        10, weight_fn=lambda u, v, sample: 0.0, seed=0
    )
    with pytest.raises(ValueError, match="non-positive"):
        compact.process_many([(1, 2)])
    reference = GraphPrioritySampler(
        10, weight_fn=lambda u, v, sample: 0.0, seed=0
    )
    with pytest.raises(ValueError, match="non-positive"):
        reference.process_many([(1, 2)])


def test_view_protocol_queries(stream_edges):
    compact = CompactGraphPrioritySampler(80, seed=2)
    compact.process_many(stream_edges)
    view = compact.sample
    records = list(view.records())
    assert len(records) == compact.sample_size == view.num_edges
    some = records[0]
    assert view.has_edge(some.u, some.v)
    assert view.record(some.u, some.v).priority == some.priority
    assert some.v in view.neighbors(some.u)
    assert view.degree(some.u) == len(view.neighbors(some.u))
    assert compact.contains_edge(some.u, some.v)
    assert compact.edge_probability(some.u, some.v) == pytest.approx(
        some.inclusion_probability(compact.threshold)
    )
    assert compact.edge_probability("nope", "nada") == 0.0


# ----------------------------------------------------------------------
# Factories and the core flag
# ----------------------------------------------------------------------
def test_factories_select_cores():
    assert isinstance(
        make_priority_sampler(8, core="compact"), CompactGraphPrioritySampler
    )
    assert isinstance(
        make_priority_sampler(8, core="object"), GraphPrioritySampler
    )
    assert isinstance(
        make_in_stream_estimator(8, core="compact"), CompactInStreamEstimator
    )
    assert isinstance(
        make_in_stream_estimator(8, core="object"), InStreamEstimator
    )
    assert DEFAULT_CORE == "compact" and DEFAULT_CORE in CORES
    with pytest.raises(ValueError, match="unknown core"):
        validate_core("quantum")
    with pytest.raises(ValueError, match="unknown core"):
        make_priority_sampler(8, core="quantum")


def test_runspec_validates_core():
    assert RunSpec(source="x.txt").core == "compact"
    assert RunSpec(source="x.txt", core="object").core == "object"
    with pytest.raises(ValueError, match="core"):
        RunSpec(source="x.txt", core="quantum")
    spec = RunSpec(source="x.txt", core="object")
    assert RunSpec.from_json(spec.to_json()) == spec


@pytest.mark.parametrize("method", ["gps", "gps-post", "gps-in-stream"])
@pytest.mark.parametrize("weight", [None, *weight_names()])
def test_run_spec_equivalence_across_cores(tmp_path, method, weight):
    """run(spec) must be bit-identical under core=compact vs core=object."""
    from repro.graph.io import write_edge_list

    path = tmp_path / "g.txt"
    write_edge_list(powerlaw_cluster(120, 3, 0.5, seed=5), path)
    reports = {
        core: run(
            RunSpec(source=str(path), method=method, budget=60,
                    weight=weight, stream_seed=1, sampler_seed=2, core=core)
        )
        for core in CORES
    }
    assert reports["compact"].estimates == reports["object"].estimates
    assert reports["compact"].threshold == reports["object"].threshold
    assert reports["compact"].sample_size == reports["object"].sample_size


def test_tracking_equivalence_across_cores(tmp_path):
    from repro.graph.io import write_edge_list

    path = tmp_path / "g.txt"
    write_edge_list(powerlaw_cluster(120, 3, 0.5, seed=5), path)
    reports = {
        core: run(
            RunSpec(source=str(path), method="gps", budget=60,
                    stream_seed=1, sampler_seed=2, checkpoints=5, core=core)
        )
        for core in CORES
    }
    a, b = reports["compact"].tracking, reports["object"].tracking
    assert len(a) == len(b) == 5
    for pa, pb in zip(a, b):
        assert pa.position == pb.position
        assert pa.estimate == pb.estimate
        assert pa.in_stream.triangles.value == pb.in_stream.triangles.value


# ----------------------------------------------------------------------
# Replication pool: inline vs pooled, across cores and weights
# ----------------------------------------------------------------------
@pytest.mark.parametrize("weight_name", [None, *weight_names()])
def test_replication_inline_vs_pooled_vs_cores(weight_name):
    graph = powerlaw_cluster(120, 3, 0.5, seed=1)
    weight_fn = (
        get_weight(weight_name).factory() if weight_name is not None else None
    )
    outcomes = {}
    for core in CORES:
        for workers in (0, 1):
            summary = ReplicatedRunner(
                graph, capacity=50,
                weight_fn=(
                    get_weight(weight_name).factory()
                    if weight_name is not None else None
                ),
                replications=2, max_workers=workers, core=core,
            ).run()
            outcomes[(core, workers)] = {
                name: [r.metrics[name] for r in summary.replications]
                for name in summary.metrics
            }
    baseline = outcomes[("compact", 0)]
    for key, metrics in outcomes.items():
        assert metrics == baseline, f"{key} diverged from compact/inline"
    assert weight_fn is None or is_label_free(weight_fn)


def test_checkpoint_round_trip_compact(tmp_path):
    from repro.core.checkpoint import load_checkpoint, save_checkpoint

    est = CompactInStreamEstimator(50, seed=3)
    stream = list(EdgeStream.from_graph(powerlaw_cluster(80, 3, 0.4, seed=2),
                                        seed=1))
    est.process_many(stream[:100])
    path = tmp_path / "ck.json"
    save_checkpoint(est, path)
    resumed = load_checkpoint(path)
    # Restoration rebuilds on the object core; continuing both must stay
    # bit-identical (shared RNG state, shared reservoir).
    est.process_many(stream[100:])
    resumed.process_many(stream[100:])
    assert resumed.triangle_estimate == est.triangle_estimate
    assert resumed.sampler.threshold == est.sampler.threshold

    bare = CompactGraphPrioritySampler(40, seed=6)
    bare.process_many(stream[:80])
    save_checkpoint(bare, path)
    restored = load_checkpoint(path, weight_fn=TriangleWeight())
    assert restored.threshold == bare.threshold
    assert sorted(r.key for r in restored.records()) == sorted(
        r.key for r in bare.records()
    )


# ----------------------------------------------------------------------
# SlotMinHeap unit behaviour
# ----------------------------------------------------------------------
def test_slot_heap_operations():
    heap = SlotMinHeap()
    priorities = [5.0, 1.0, 3.0, 4.0, 2.0]
    for slot, priority in enumerate(priorities):
        heap.push(slot, priority)
    assert len(heap) == 5 and heap.is_valid()
    assert heap.peek() == 1 and heap.min_priority() == 1.0
    assert sorted(heap) == [0, 1, 2, 3, 4]
    evicted = heap.replace_root(1, 9.0)  # slot reuse, new priority
    assert evicted == (1.0, 1)
    assert heap.is_valid() and heap.peek() == 4
    order = [heap.pop() for _ in range(len(heap))]
    assert order == [4, 2, 3, 0, 1]
    with pytest.raises(IndexError):
        heap.pop()
    with pytest.raises(IndexError):
        heap.peek()
    with pytest.raises(IndexError):
        heap.replace_root(0, 1.0)
    assert heap.min_priority() is None
    heap.rebuild([(2.0, 7), (1.0, 8)])
    assert heap.peek() == 8 and heap.is_valid()
    heap.clear()
    assert not heap


def test_materialize_preserves_orders_and_records(stream_edges):
    """CompactSample.materialize: object-core view, identical traversal."""
    compact = CompactGraphPrioritySampler(120, seed=8)
    reference = GraphPrioritySampler(120, seed=8)
    compact.process_many(stream_edges)
    reference.process_many(stream_edges)
    snapshot = compact.sample.materialize()
    assert snapshot.num_edges == compact.sample_size
    assert snapshot.num_nodes == compact.sample.num_nodes
    # records() order matches the live object core's exactly.
    assert [r.key for r in snapshot.records()] == [
        r.key for r in reference.sample.records()
    ]
    # One shared record per edge: both inner-dict entries are identical.
    some = next(snapshot.records())
    assert snapshot.neighbors(some.u)[some.v] is snapshot.neighbors(some.v)[some.u]
