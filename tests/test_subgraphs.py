"""Tests for generalised subgraph estimation (k-cliques, k-stars)."""

from __future__ import annotations

import math

import pytest

from repro.core.priority_sampler import GraphPrioritySampler
from repro.core.subgraphs import CliqueEstimator, StarEstimator, _elementary_symmetric
from repro.graph.generators import complete_graph, powerlaw_cluster, star_graph
from repro.stats.running import RunningMoments
from repro.streams.stream import EdgeStream


def comb(n: int, k: int) -> int:
    return math.comb(n, k)


def sampler_over(graph, capacity, stream_seed=0, sampler_seed=1):
    sampler = GraphPrioritySampler(capacity=capacity, seed=sampler_seed)
    sampler.process_stream(EdgeStream.from_graph(graph, seed=stream_seed))
    return sampler


class TestElementarySymmetric:
    def test_small_cases(self):
        values = [1.0, 2.0, 3.0]
        assert _elementary_symmetric(values, 1) == pytest.approx(6.0)
        assert _elementary_symmetric(values, 2) == pytest.approx(11.0)
        assert _elementary_symmetric(values, 3) == pytest.approx(6.0)

    def test_k_larger_than_n(self):
        assert _elementary_symmetric([1.0], 2) == 0.0

    def test_all_ones_gives_binomial(self):
        assert _elementary_symmetric([1.0] * 10, 3) == pytest.approx(comb(10, 3))


class TestCliqueExactness:
    @pytest.mark.parametrize("n,k", [(5, 3), (5, 4), (6, 4), (6, 5)])
    def test_complete_graph_counts(self, n, k):
        graph = complete_graph(n)
        sampler = sampler_over(graph, capacity=graph.num_edges + 1)
        estimate = CliqueEstimator(sampler, size=k).estimate()
        assert estimate.value == pytest.approx(comb(n, k))
        assert estimate.variance == 0.0

    def test_triangles_match_algorithm2(self, medium_graph, medium_stats):
        sampler = sampler_over(medium_graph, capacity=medium_graph.num_edges + 1)
        estimate = CliqueEstimator(sampler, size=3).estimate()
        assert estimate.value == pytest.approx(medium_stats.triangles)

    def test_no_cliques_in_star(self):
        sampler = sampler_over(star_graph(6), capacity=100)
        assert CliqueEstimator(sampler, size=3).estimate().value == 0.0

    def test_enumerate_returns_node_tuples(self, k4_graph):
        sampler = sampler_over(k4_graph, capacity=10)
        cliques = CliqueEstimator(sampler, size=3).enumerate()
        assert len(cliques) == 4
        assert all(len(c.nodes) == 3 for c in cliques)
        assert all(c.estimate == pytest.approx(1.0) for c in cliques)

    def test_size_validation(self, k4_graph):
        sampler = sampler_over(k4_graph, capacity=10)
        with pytest.raises(ValueError):
            CliqueEstimator(sampler, size=2)


class TestCliqueSampling:
    def test_four_clique_unbiased(self):
        graph = powerlaw_cluster(120, 4, 0.8, seed=9)
        sampler_full = sampler_over(graph, capacity=graph.num_edges + 1)
        actual = CliqueEstimator(sampler_full, size=4).estimate().value
        assert actual > 0
        moments = RunningMoments()
        runs = 200
        for seed in range(runs):
            sampler = sampler_over(
                graph, capacity=250, stream_seed=seed, sampler_seed=60_000 + seed
            )
            moments.add(CliqueEstimator(sampler, size=4).estimate().value)
        assert abs(moments.mean - actual) < 5.0 * moments.std_error

    def test_variance_non_negative(self):
        graph = powerlaw_cluster(200, 4, 0.7, seed=10)
        sampler = sampler_over(graph, capacity=150)
        estimate = CliqueEstimator(sampler, size=4).estimate()
        assert estimate.variance >= 0.0


class TestStars:
    @pytest.mark.parametrize("leaves,k", [(5, 2), (5, 3), (7, 4)])
    def test_star_graph_counts(self, leaves, k):
        graph = star_graph(leaves)
        sampler = sampler_over(graph, capacity=100)
        estimate = StarEstimator(sampler, leaves=k).estimate()
        assert estimate.value == pytest.approx(comb(leaves, k))
        assert estimate.variance == 0.0

    def test_two_stars_are_wedges(self, medium_graph, medium_stats):
        sampler = sampler_over(medium_graph, capacity=medium_graph.num_edges + 1)
        estimate = StarEstimator(sampler, leaves=2).estimate()
        assert estimate.value == pytest.approx(medium_stats.wedges)

    def test_k4_three_stars(self, k4_graph):
        sampler = sampler_over(k4_graph, capacity=10)
        # each of the 4 nodes has degree 3 → one 3-star each.
        assert StarEstimator(sampler, leaves=3).estimate().value == pytest.approx(4.0)

    def test_star_unbiased_under_sampling(self, social_graph, social_stats):
        moments = RunningMoments()
        runs = 150
        for seed in range(runs):
            sampler = sampler_over(
                social_graph, capacity=150, stream_seed=seed, sampler_seed=70_000 + seed
            )
            moments.add(StarEstimator(sampler, leaves=2).estimate().value)
        assert abs(moments.mean - social_stats.wedges) < 5.0 * moments.std_error

    def test_leaves_validation(self, k4_graph):
        sampler = sampler_over(k4_graph, capacity=10)
        with pytest.raises(ValueError):
            StarEstimator(sampler, leaves=0)
