"""Shared fixtures for the test suite.

Conventions:

* every stochastic test fixes all seeds — the suite is deterministic;
* Monte-Carlo assertions use generous tolerances and are tuned to pass
  reproducibly with the pinned seeds (they document statistical behaviour,
  not razor-thin thresholds);
* medium graphs are session-scoped because exact counting is reused by
  many tests.
"""

from __future__ import annotations

import pytest

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.exact import compute_statistics
from repro.graph.generators import complete_graph, powerlaw_cluster


@pytest.fixture()
def triangle_graph() -> AdjacencyGraph:
    """The single triangle on nodes 0-2."""
    return AdjacencyGraph([(0, 1), (1, 2), (0, 2)])


@pytest.fixture()
def diamond_graph() -> AdjacencyGraph:
    """K4 minus one edge: 2 triangles, 8 wedges."""
    return AdjacencyGraph([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])


@pytest.fixture()
def k4_graph() -> AdjacencyGraph:
    return complete_graph(4)


@pytest.fixture()
def k5_graph() -> AdjacencyGraph:
    return complete_graph(5)


@pytest.fixture(scope="session")
def social_graph() -> AdjacencyGraph:
    """A small clustered power-law graph used across Monte-Carlo tests."""
    return powerlaw_cluster(300, 3, 0.6, seed=5)


@pytest.fixture(scope="session")
def social_stats(social_graph):
    return compute_statistics(social_graph)


@pytest.fixture(scope="session")
def medium_graph() -> AdjacencyGraph:
    """A mid-size graph for single-run accuracy and integration tests."""
    return powerlaw_cluster(2000, 4, 0.5, seed=1)


@pytest.fixture(scope="session")
def medium_stats(medium_graph):
    return compute_statistics(medium_graph)
