"""Monte-Carlo verification of the paper's theorems on live samples.

The unit tests in test_martingale.py check the estimator *algebra*; these
tests check the *statistics*: over many independent GPS runs, the
estimators must hit the expectations the theorems assert.

* Theorem 1/2 — edge and subgraph product estimators are unbiased
  (covered extensively elsewhere; re-checked here per-subgraph).
* Theorem 3(i) — ``Ĉ_{J1,J2} = Ŝ_{J1∪J2}(Ŝ_{J1∩J2} − 1)`` is an unbiased
  estimator of ``Cov(Ŝ_{J1}, Ŝ_{J2})`` for overlapping subgraphs.
* Theorem 3(iii) — ``Ŝ_J(Ŝ_J − 1)`` is an unbiased estimator of
  ``Var(Ŝ_J)``.
* Theorem 3(iv) — the covariance estimator is zero for edge-disjoint
  subgraphs.
"""

from __future__ import annotations

import pytest

from repro.core.martingale import (
    post_stream_covariance,
    subgraph_estimate,
    variance_estimate,
)
from repro.core.priority_sampler import GraphPrioritySampler
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.generators import erdos_renyi_gnm
from repro.stats.running import RunningMoments
from repro.streams.stream import EdgeStream


def overlap_graph() -> AdjacencyGraph:
    """Two triangles sharing edge (1, 2), inside background noise."""
    base = erdos_renyi_gnm(30, 60, seed=9)
    for u, v in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]:
        base.add_edge(u, v)
    return base


TRIANGLE_A = [(0, 1), (0, 2), (1, 2)]
TRIANGLE_B = [(1, 2), (1, 3), (2, 3)]


def run_once(graph, seed):
    sampler = GraphPrioritySampler(capacity=30, seed=50_000 + seed)
    sampler.process_stream(EdgeStream.from_graph(graph, seed=seed))
    threshold = sampler.threshold
    sample = sampler.sample

    def records_of(edges):
        out = []
        for u, v in edges:
            record = sample.record(u, v)
            if record is None:
                return None
            out.append(record)
        return out

    rec_a = records_of(TRIANGLE_A)
    rec_b = records_of(TRIANGLE_B)
    s_a = subgraph_estimate(rec_a, threshold) if rec_a else 0.0
    s_b = subgraph_estimate(rec_b, threshold) if rec_b else 0.0
    v_a = variance_estimate(rec_a, threshold) if rec_a else 0.0
    c_ab = (
        post_stream_covariance(rec_a, rec_b, threshold)
        if rec_a and rec_b
        else 0.0
    )
    return s_a, s_b, v_a, c_ab


@pytest.fixture(scope="module")
def theory_runs():
    graph = overlap_graph()
    runs = [run_once(graph, seed) for seed in range(4000)]
    return runs


class TestTheorem2Unbiasedness:
    def test_subgraph_estimators_hit_indicator(self, theory_runs):
        # Both triangles exist in the full graph, so E[Ŝ] = 1 each.
        mean_a = sum(r[0] for r in theory_runs) / len(theory_runs)
        mean_b = sum(r[1] for r in theory_runs) / len(theory_runs)
        assert mean_a == pytest.approx(1.0, abs=0.1)
        assert mean_b == pytest.approx(1.0, abs=0.1)


class TestTheorem3Variance:
    def test_variance_estimator_unbiased(self, theory_runs):
        estimates = RunningMoments()
        variance_estimates = RunningMoments()
        for s_a, _s_b, v_a, _c in theory_runs:
            estimates.add(s_a)
            variance_estimates.add(v_a)
        empirical = estimates.variance
        assert variance_estimates.mean == pytest.approx(empirical, rel=0.25)


class TestTheorem3Covariance:
    def test_covariance_estimator_unbiased(self, theory_runs):
        # Empirical covariance of the two triangle estimators ...
        n = len(theory_runs)
        mean_a = sum(r[0] for r in theory_runs) / n
        mean_b = sum(r[1] for r in theory_runs) / n
        empirical_cov = sum(
            (r[0] - mean_a) * (r[1] - mean_b) for r in theory_runs
        ) / (n - 1)
        # ... versus the mean of the covariance estimator.
        mean_c = sum(r[3] for r in theory_runs) / n
        assert empirical_cov > 0.0  # shared edge => positive dependence
        assert mean_c == pytest.approx(empirical_cov, rel=0.35)

    def test_covariance_estimator_non_negative(self, theory_runs):
        assert all(r[3] >= 0.0 for r in theory_runs)

    def test_disjoint_subgraphs_zero_covariance(self):
        graph = overlap_graph()
        sampler = GraphPrioritySampler(capacity=len(graph.edge_list()) + 1, seed=0)
        sampler.process_stream(EdgeStream.from_graph(graph, seed=0))
        sample = sampler.sample
        j1 = [sample.record(0, 1)]
        disjoint = [
            record for record in sample.records()
            if record.key not in {(0, 1)} and 0 not in record.key and 1 not in record.key
        ][:2]
        assert post_stream_covariance(j1, disjoint, sampler.threshold) == 0.0
