"""Tests for the statistics substrate (metrics, CIs, HT, moments, delta)."""

from __future__ import annotations

import math
import random
import statistics

import pytest
from scipy import stats as scipy_stats

from repro.stats.confidence import confidence_interval, inverse_normal_cdf, z_score
from repro.stats.merge import merge_reports
from repro.stats.horvitz_thompson import (
    ht_estimate,
    ht_single_variance_term,
    ht_variance_with_replacement,
    inverse_probability,
    product_estimate,
)
from repro.stats.metrics import (
    absolute_relative_error,
    ci_coverage,
    max_absolute_relative_error,
    mean_absolute_relative_error,
    normalized_rmse,
)
from repro.stats.running import RunningMoments
from repro.stats.variance import (
    clustering_variance,
    pooled_mean,
    pooled_variance,
    ratio_variance_delta,
)


class TestInverseNormal:
    @pytest.mark.parametrize("p", [0.001, 0.01, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999])
    def test_matches_scipy(self, p):
        assert inverse_normal_cdf(p) == pytest.approx(
            scipy_stats.norm.ppf(p), abs=1e-7
        )

    def test_symmetry(self):
        assert inverse_normal_cdf(0.3) == pytest.approx(-inverse_normal_cdf(0.7))

    def test_median_is_zero(self):
        assert inverse_normal_cdf(0.5) == pytest.approx(0.0, abs=1e-12)

    @pytest.mark.parametrize("p", [0.0, 1.0, -0.5, 2.0])
    def test_out_of_range_raises(self, p):
        with pytest.raises(ValueError):
            inverse_normal_cdf(p)

    def test_z_score_95(self):
        assert z_score(0.95) == pytest.approx(1.959964, abs=1e-5)

    def test_z_score_invalid(self):
        with pytest.raises(ValueError):
            z_score(1.5)


class TestConfidenceInterval:
    def test_95_interval(self):
        lb, ub = confidence_interval(100.0, 25.0)
        assert lb == pytest.approx(100 - 1.959964 * 5, abs=1e-3)
        assert ub == pytest.approx(100 + 1.959964 * 5, abs=1e-3)

    def test_zero_variance_collapses(self):
        assert confidence_interval(7.0, 0.0) == (7.0, 7.0)

    def test_negative_variance_clamped(self):
        assert confidence_interval(7.0, -3.0) == (7.0, 7.0)

    def test_wider_level_wider_interval(self):
        lb95, ub95 = confidence_interval(0.0, 1.0, level=0.95)
        lb99, ub99 = confidence_interval(0.0, 1.0, level=0.99)
        assert lb99 < lb95 < ub95 < ub99


class TestMetrics:
    def test_are_basic(self):
        assert absolute_relative_error(90, 100) == pytest.approx(0.1)
        assert absolute_relative_error(110, 100) == pytest.approx(0.1)

    def test_are_zero_actual(self):
        assert absolute_relative_error(0, 0) == 0.0
        assert absolute_relative_error(5, 0) == float("inf")

    def test_mare(self):
        assert mean_absolute_relative_error([90, 110], [100, 100]) == pytest.approx(0.1)

    def test_mare_skips_zero_actuals(self):
        assert mean_absolute_relative_error([5, 90], [0, 100]) == pytest.approx(0.1)

    def test_mare_all_zero_actuals(self):
        assert mean_absolute_relative_error([5], [0]) == 0.0

    def test_mare_length_mismatch(self):
        with pytest.raises(ValueError):
            mean_absolute_relative_error([1, 2], [1])

    def test_max_are(self):
        assert max_absolute_relative_error([90, 150], [100, 100]) == pytest.approx(0.5)

    def test_nrmse(self):
        assert normalized_rmse([90, 110], 100) == pytest.approx(0.1)

    def test_nrmse_requires_data(self):
        with pytest.raises(ValueError):
            normalized_rmse([], 10)
        with pytest.raises(ValueError):
            normalized_rmse([1.0], 0)

    def test_ci_coverage(self):
        intervals = [(0, 2), (5, 6), (0.5, 1.5)]
        assert ci_coverage(intervals, 1.0) == pytest.approx(2 / 3)

    def test_ci_coverage_empty(self):
        with pytest.raises(ValueError):
            ci_coverage([], 1.0)


class TestHorvitzThompson:
    def test_inverse_probability(self):
        assert inverse_probability(0.25) == 4.0

    @pytest.mark.parametrize("p", [0.0, -0.1, 1.5])
    def test_invalid_probability(self, p):
        with pytest.raises(ValueError):
            inverse_probability(p)

    def test_ht_estimate(self):
        assert ht_estimate([0.5, 0.25]) == pytest.approx(6.0)

    def test_single_variance_term(self):
        assert ht_single_variance_term(0.5) == pytest.approx(2.0)
        assert ht_single_variance_term(1.0) == 0.0

    def test_variance_with_replacement(self):
        assert ht_variance_with_replacement([0.5, 1.0]) == pytest.approx(2.0)

    def test_product_estimate(self):
        assert product_estimate([0.5, 0.5, 1.0]) == pytest.approx(4.0)

    def test_ht_is_unbiased_bernoulli(self):
        # Monte-Carlo: estimate a population total of 100 items sampled
        # independently with p = 0.3 via HT; mean should approach 100.
        rng = random.Random(0)
        total = 0.0
        runs = 3000
        for _ in range(runs):
            kept = sum(1 for _ in range(100) if rng.random() < 0.3)
            total += kept / 0.3
        assert total / runs == pytest.approx(100.0, rel=0.02)


class TestRunningMoments:
    def test_matches_batch_statistics(self):
        rng = random.Random(1)
        values = [rng.gauss(5, 2) for _ in range(500)]
        mom = RunningMoments()
        mom.extend(values)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert mom.mean == pytest.approx(mean)
        assert mom.variance == pytest.approx(var)
        assert mom.std == pytest.approx(math.sqrt(var))
        assert mom.minimum == min(values)
        assert mom.maximum == max(values)

    def test_std_error(self):
        mom = RunningMoments()
        mom.extend([1.0, 2.0, 3.0, 4.0])
        assert mom.std_error == pytest.approx(mom.std / 2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            RunningMoments().mean

    def test_single_value(self):
        mom = RunningMoments()
        mom.add(3.0)
        assert mom.mean == 3.0
        assert mom.variance == 0.0


class TestDeltaMethod:
    def test_matches_monte_carlo(self):
        # X ~ N(100, 4), Y ~ N(50, 1) independent; Var(X/Y) by simulation.
        rng = random.Random(2)
        ratios = []
        for _ in range(40_000):
            x = rng.gauss(100, 2)
            y = rng.gauss(50, 1)
            ratios.append(x / y)
        mean = sum(ratios) / len(ratios)
        empirical = sum((r - mean) ** 2 for r in ratios) / (len(ratios) - 1)
        approx = ratio_variance_delta(100, 50, 4.0, 1.0, 0.0)
        assert approx == pytest.approx(empirical, rel=0.1)

    def test_zero_denominator(self):
        assert ratio_variance_delta(1, 0, 1, 1) == 0.0

    def test_negative_inputs_clamped(self):
        assert ratio_variance_delta(10, 5, -1.0, -1.0) == 0.0

    def test_result_clamped_non_negative(self):
        # Huge positive covariance can push the expansion negative.
        assert ratio_variance_delta(10, 5, 0.1, 0.1, covariance=100.0) == 0.0

    def test_clustering_variance_scaling(self):
        base = ratio_variance_delta(30, 300, 9.0, 25.0, 2.0)
        assert clustering_variance(30, 300, 9.0, 25.0, 2.0) == pytest.approx(9 * base)


class TestPooledMoments:
    """Pooled group moments (the sharded-study merge math)."""

    def test_pooled_mean_hand_computed_unequal_counts(self):
        # Groups [3, 7] and [10, 20, 30]: mean of all five values is 14.
        assert pooled_mean([2, 3], [5.0, 20.0]) == pytest.approx(14.0)

    def test_pooled_variance_hand_computed_unequal_counts(self):
        # Values [9, 11] (n=2, mean 10, s²=2) and [15, 16, 17]
        # (n=3, mean 16, s²=1).  Concatenated: mean 13.6,
        # SS = (1·2 + 2·(10−13.6)²) + (2·1 + 3·(16−13.6)²) = 47.2,
        # sample variance 47.2/4 = 11.8.
        assert pooled_variance(
            [2, 3], [10.0, 16.0], [2.0, 1.0]
        ) == pytest.approx(11.8)

    def test_matches_statistics_variance_of_concatenation(self):
        rng = random.Random(7)
        groups = [
            [rng.gauss(10, 3) for _ in range(n)] for n in (2, 5, 1, 9)
        ]
        counts = [len(g) for g in groups]
        means = [sum(g) / len(g) for g in groups]
        variances = [
            statistics.variance(g) if len(g) > 1 else 0.0 for g in groups
        ]
        flat = [v for g in groups for v in g]
        assert pooled_mean(counts, means) == pytest.approx(
            statistics.mean(flat)
        )
        assert pooled_variance(counts, means, variances) == pytest.approx(
            statistics.variance(flat)
        )

    def test_empty_groups_are_skipped(self):
        assert pooled_mean([0, 3], [999.0, 4.0]) == pytest.approx(4.0)
        assert pooled_variance(
            [0, 3], [999.0, 4.0], [999.0, 2.5]
        ) == pytest.approx(2.5)

    def test_degenerate_pools_have_no_spread(self):
        assert pooled_mean([], []) == 0.0
        assert pooled_variance([], [], []) == 0.0
        assert pooled_variance([1], [5.0], [0.0]) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="disagree on length"):
            pooled_mean([1, 2], [1.0])
        with pytest.raises(ValueError, match="disagree on length"):
            pooled_variance([1, 2], [1.0, 2.0], [0.0])

    def test_negative_count_raises(self):
        with pytest.raises(ValueError, match=">= 0"):
            pooled_mean([-1], [1.0])

    def test_negative_variance_raises(self):
        with pytest.raises(ValueError, match="variances must be >= 0"):
            pooled_variance([2, 2], [1.0, 2.0], [1.0, -0.5])


class TestMergeReports:
    """Cross-shard pooling of replicate report groups."""

    def test_pools_unequal_groups_to_hand_computed_values(self):
        merged = merge_reports([
            {"triangles": (2, 10.0, 2.0)},
            {"triangles": (3, 16.0, 1.0)},
        ])
        tri = merged["triangles"]
        assert tri.count == 5
        assert tri.mean == pytest.approx(13.6)
        assert tri.variance == pytest.approx(11.8)
        assert tri.std_error == pytest.approx((11.8 / 5) ** 0.5)

    def test_confidence_interval_matches_direct_computation(self):
        merged = merge_reports(
            [{"x": (4, 8.0, 4.0)}, {"x": (4, 12.0, 4.0)}], level=0.95
        )
        metric = merged["x"]
        low, high = confidence_interval(
            metric.mean, metric.variance / metric.count, level=0.95
        )
        assert metric.ci_low == pytest.approx(low)
        assert metric.ci_high == pytest.approx(high)
        assert metric.to_dict()["ci_low"] == pytest.approx(low)

    def test_metric_name_mismatch_raises(self):
        with pytest.raises(ValueError, match="metric"):
            merge_reports([
                {"triangles": (2, 1.0, 0.0)},
                {"wedges": (2, 1.0, 0.0)},
            ])

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            merge_reports([])
