"""The docstring examples in repro.api are executable and must stay true.

Every public function in the facade carries an ``Example`` block; these
are documentation first, but several pin concrete registry state
(weight names, content hashes), so they drift silently unless executed.
Running them here puts them in the tier-1 suite without turning on
``--doctest-modules`` for the whole tree.
"""

from __future__ import annotations

import doctest

import pytest

import repro.analysis
import repro.analysis.engine
import repro.analysis.findings
import repro.analysis.registry
import repro.api.execution
import repro.api.ground_truth
import repro.api.registry
import repro.api.spec
import repro.api.sweep
import repro.core.compact
import repro.core.weights
import repro.engine.replication
import repro.engine.shared_edges
import repro.heap.slot_heap
import repro.streams.interner

MODULES = [
    repro.analysis,
    repro.analysis.engine,
    repro.analysis.findings,
    repro.analysis.registry,
    repro.api.execution,
    repro.api.ground_truth,
    repro.api.registry,
    repro.api.spec,
    repro.api.sweep,
    repro.core.compact,
    repro.core.weights,
    repro.engine.replication,
    repro.engine.shared_edges,
    repro.heap.slot_heap,
    repro.streams.interner,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=lambda m: m.__name__
)
def test_module_doctests_pass(module):
    results = doctest.testmod(module, optionflags=doctest.ELLIPSIS)
    assert results.attempted > 0, f"{module.__name__} lost its examples"
    assert results.failed == 0
