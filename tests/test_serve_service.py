"""The live sampling service: spec, sources, queries, CLI.

Tentpole coverage for ``repro.serve``: the frozen :class:`ServeSpec`
round trip, the pluggable block sources, end-to-end service runs whose
final answers are bit-identical to batch ``run()`` over the same
stream, the JSON-lines query protocol, and the ``python -m repro
serve`` stdio session.
"""

from __future__ import annotations

import io
import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.api.execution import _estimates_dict, run
from repro.api.spec import RunSpec
from repro.cli import main
from repro.graph.generators import powerlaw_cluster
from repro.graph.io import write_edge_list
from repro.serve import (
    FileTailSource,
    SamplingService,
    ServeSpec,
    SyntheticSource,
    make_source,
)
from repro.serve.protocol import handle_line, serve_lines
from repro.serve.source import ResolvedSource, SocketLineSource


@pytest.fixture(scope="module")
def graph_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "graph.txt"
    write_edge_list(powerlaw_cluster(250, 3, 0.5, seed=2), path)
    return str(path)


# ----------------------------------------------------------------------
# ServeSpec
# ----------------------------------------------------------------------
class TestServeSpec:
    def test_json_round_trip_is_lossless(self):
        spec = ServeSpec(
            source="synthetic",
            method="gps-post",
            budget=500,
            weight="uniform",
            stream_seed=None,
            max_edges=10_000,
            nodes=777,
        )
        assert ServeSpec.from_json(spec.to_json()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown ServeSpec fields"):
            ServeSpec.from_dict({"source": "synthetic", "turbo": True})

    @pytest.mark.parametrize(
        "changes",
        [
            {"source": ""},
            {"budget": 0},
            {"chunk_size": 0},
            {"queue_chunks": 0},
            {"snapshot_every": 0},
            {"max_edges": -1},
            {"nodes": 1},
            {"poll_interval": 0.0},
        ],
    )
    def test_validation_rejects_bad_fields(self, changes):
        base = {"source": "synthetic"}
        base.update(changes)
        with pytest.raises(ValueError):
            ServeSpec(**base)

    def test_follow_rejected_for_live_sources(self):
        with pytest.raises(ValueError, match="file sources only"):
            ServeSpec(source="synthetic", follow=True)
        with pytest.raises(ValueError, match="file sources only"):
            ServeSpec(source="tcp://localhost:9", follow=True)

    def test_replace_revalidates(self):
        spec = ServeSpec(source="synthetic")
        assert spec.replace(budget=7).budget == 7
        with pytest.raises(ValueError):
            spec.replace(budget=-1)


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------
class TestSources:
    def test_synthetic_is_deterministic_in_its_seed(self):
        blocks_a = list(
            SyntheticSource(100, seed=3, chunk_size=64, max_edges=256)
        )
        blocks_b = list(
            SyntheticSource(100, seed=3, chunk_size=64, max_edges=256)
        )
        assert len(blocks_a) == len(blocks_b) == 4
        for (ua, va), (ub, vb) in zip(blocks_a, blocks_b):
            np.testing.assert_array_equal(ua, ub)
            np.testing.assert_array_equal(va, vb)
            assert ua.dtype == np.int32

    def test_synthetic_max_edges_truncates_mid_block(self):
        blocks = list(
            SyntheticSource(100, seed=3, chunk_size=64, max_edges=100)
        )
        assert [len(us) for us, _ in blocks] == [64, 36]
        assert SyntheticSource(100, seed=3, max_edges=1).bounded
        assert not SyntheticSource(100, seed=3).bounded

    def test_file_source_streams_file_order(self, graph_file):
        edges = []
        for us, vs in FileTailSource(graph_file, chunk_size=128):
            edges.extend(zip(us.tolist(), vs.tolist()))
        with open(graph_file) as handle:
            lines = [line.split() for line in handle if line.strip()]
        assert len(edges) == len(lines)
        assert edges[0] == (int(lines[0][0]), int(lines[0][1]))

    def test_follow_tail_picks_up_appended_lines(self, tmp_path):
        path = tmp_path / "tail.txt"
        path.write_text("0 1\n1 2\n")
        source = FileTailSource(
            str(path), chunk_size=4, follow=True, poll_interval=0.01
        )
        assert not source.bounded
        collected = []
        done = threading.Event()

        def consume():
            for us, vs in source:
                collected.extend(zip(us.tolist(), vs.tolist()))
            done.set()

        thread = threading.Thread(target=consume, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5.0
        while len(collected) < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        with open(path, "a") as handle:
            handle.write("2 3\n")
        while len(collected) < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        source.stop()
        assert done.wait(5.0)
        assert collected == [(0, 1), (1, 2), (2, 3)]

    def test_socket_source_rejects_malformed_addresses(self):
        with pytest.raises(ValueError, match="tcp://"):
            SocketLineSource("localhost:9")
        with pytest.raises(ValueError, match="malformed"):
            SocketLineSource("tcp://nohost")

    def test_make_source_resolves_each_shape(self, graph_file):
        assert isinstance(
            make_source(ServeSpec(source="synthetic")), SyntheticSource
        )
        assert isinstance(
            make_source(ServeSpec(source="tcp://h:1")), SocketLineSource
        )
        assert isinstance(
            make_source(ServeSpec(source=graph_file)), ResolvedSource
        )
        assert isinstance(
            make_source(ServeSpec(source=graph_file, follow=True)),
            FileTailSource,
        )


# ----------------------------------------------------------------------
# Service end-to-end
# ----------------------------------------------------------------------
def _drained(spec):
    service = SamplingService(spec).start()
    service.join()
    return service


class TestService:
    def test_rejects_length_budgeted_methods(self):
        with pytest.raises(ValueError, match="stream length"):
            SamplingService(
                ServeSpec(source="synthetic", method="mascot")
            )

    def test_rejects_methods_without_snapshot_surface(self):
        with pytest.raises(ValueError, match="GPS family"):
            SamplingService(
                ServeSpec(source="synthetic", method="triest")
            )

    def test_rejects_weight_on_weightless_methods(self):
        with pytest.raises(ValueError, match="weight"):
            SamplingService(
                ServeSpec(source="synthetic", method="triest-impr",
                          weight="triangle")
            )

    def test_final_estimates_bit_identical_to_batch_gps(self, graph_file):
        spec = ServeSpec(
            source=graph_file, method="gps", budget=120,
            stream_seed=11, sampler_seed=5, chunk_size=97,
        )
        service = _drained(spec)
        served = service.query({"op": "estimates"})
        assert served["ok"]
        report = run(RunSpec(
            source=graph_file, method="gps", budget=120,
            stream_seed=11, sampler_seed=5,
        ))
        assert served["estimates"] == _estimates_dict(report.in_stream)
        assert not service.running

    def test_final_estimates_bit_identical_to_batch_gps_post(
        self, graph_file
    ):
        spec = ServeSpec(
            source=graph_file, method="gps-post", budget=120,
            weight="uniform", stream_seed=11, sampler_seed=5,
            chunk_size=64, snapshot_every=3,
        )
        served = _drained(spec).query({"op": "estimates"})
        report = run(RunSpec(
            source=graph_file, method="gps-post", budget=120,
            weight="uniform", stream_seed=11, sampler_seed=5,
        ))
        assert served["estimates"] == _estimates_dict(report.post_stream)

    def test_epoch_one_is_queryable_before_any_ingestion(self):
        spec = ServeSpec(source="synthetic", budget=50, max_edges=1000)
        service = SamplingService(spec)
        service.start()
        try:
            first = service.wait_for_epoch(1, timeout=5.0)
            assert first is not None
        finally:
            service.stop(drain=True)
        assert service.latest().stream_position == 1000

    def test_context_manager_drains_and_final_snapshot_lands(self):
        spec = ServeSpec(
            source="synthetic", budget=50, max_edges=5000, chunk_size=512
        )
        with SamplingService(spec) as service:
            pass
        assert service.latest().stream_position == 5000
        assert service.stats is not None and service.stats.edges == 5000

    def test_abort_discards_queued_blocks(self):
        # Unbounded synthetic stream: only an abort can end it.
        spec = ServeSpec(
            source="synthetic", budget=50, chunk_size=256, queue_chunks=2
        )
        service = SamplingService(spec).start()
        assert service.wait_for_epoch(3, timeout=10.0) is not None
        service.stop(drain=False)
        assert not service.running

    def test_status_reports_progress_and_backpressure(self):
        spec = ServeSpec(source="synthetic", budget=50, max_edges=4096,
                         chunk_size=256)
        service = _drained(spec)
        status = service.status()
        assert status["running"] is False
        assert status["stream_position"] == 4096
        assert status["blocks_ingested"] == 16
        assert status["chunks_processed"] >= 16
        assert status["errors"] == []
        assert status["backpressure"]["queue_chunks"] == spec.queue_chunks
        assert status["backpressure"]["stalls"] >= 0

    def test_start_twice_raises(self):
        spec = ServeSpec(source="synthetic", budget=50, max_edges=256)
        service = SamplingService(spec).start()
        with pytest.raises(RuntimeError, match="already started"):
            service.start()
        service.stop()


# ----------------------------------------------------------------------
# Query dispatch + protocol
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def drained_service(graph_file):
    spec = ServeSpec(
        source=graph_file, method="gps", budget=120,
        stream_seed=11, sampler_seed=5, chunk_size=97,
    )
    service = SamplingService(spec).start()
    service.join()
    return service


class TestQueries:
    def test_malformed_requests_never_raise(self, drained_service):
        assert drained_service.query([1, 2]) == {
            "ok": False, "error": "request must be a JSON object"
        }
        assert not drained_service.query({})["ok"]
        assert not drained_service.query({"op": 7})["ok"]
        unknown = drained_service.query({"op": "sudo"})
        assert not unknown["ok"] and "known ops" in unknown["error"]

    def test_ping_spec_status(self, drained_service):
        assert drained_service.query({"op": "ping"})["ok"]
        spec = drained_service.query({"op": "spec"})
        assert spec["spec"]["method"] == "gps"
        assert drained_service.query({"op": "status"})["status"][
            "running"] is False

    def test_head_fields_on_snapshot_answers(self, drained_service):
        answer = drained_service.query({"op": "occupancy"})
        for field in ("epoch", "stream_position", "sample_size",
                      "threshold"):
            assert field in answer
        assert answer["occupancy"]["sample_size"] == answer["sample_size"]

    def test_local_and_motif_queries(self, drained_service):
        local = drained_service.query({"op": "local"})
        assert local["ok"] and isinstance(local["triangles"], dict)
        node = next(iter(local["triangles"]))
        single = drained_service.query({"op": "local", "node": node})
        assert single["triangles"] == local["triangles"][node]
        motifs = drained_service.query({"op": "motifs"})
        assert motifs["ok"] and "clique4" in motifs["motifs"]

    def test_wait_for_published_epoch_and_timeout(self, drained_service):
        waited = drained_service.query({"op": "wait", "epoch": 1})
        assert waited["ok"]
        hopeless = drained_service.query(
            {"op": "wait", "epoch": 10_000, "timeout": 0.01}
        )
        assert not hopeless["ok"] and "timed out" in hopeless["error"]

    def test_pinned_epoch_answers_from_that_snapshot(self, drained_service):
        latest = drained_service.latest()
        answer = drained_service.query(
            {"op": "estimates", "epoch": latest.epoch, "timeout": 1.0}
        )
        assert answer["epoch"] == latest.epoch

    def test_handle_line_parses_and_reports_errors(self, drained_service):
        assert handle_line(drained_service, '{"op": "ping"}\n')["ok"]
        bad = handle_line(drained_service, "{nope")
        assert not bad["ok"] and "bad JSON" in bad["error"]
        assert not handle_line(drained_service, "   \n")["ok"]

    def test_serve_lines_stops_after_terminal_op(self, graph_file):
        spec = ServeSpec(source=graph_file, budget=50)
        service = SamplingService(spec).start()
        out = []
        served = serve_lines(
            service,
            ['{"op": "ping"}', "", '{"op": "drain"}', '{"op": "ping"}'],
            out.append,
        )
        assert served == 2  # the trailing ping is never read
        answers = [json.loads(line) for line in out]
        assert [a["op"] for a in answers] == ["ping", "drain"]
        assert all(a["ok"] for a in answers)
        assert not service.running


# ----------------------------------------------------------------------
# CLI + TCP
# ----------------------------------------------------------------------
class TestCli:
    def test_stdio_session(self, graph_file, monkeypatch, capsys):
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO('{"op": "ping"}\n'
                        '{"op": "wait", "epoch": 2, "timeout": 30}\n'
                        '{"op": "estimates"}\n'
                        '{"op": "drain"}\n'),
        )
        code = main(["serve", graph_file, "-m", "80", "--stream-seed", "7"])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        answers = [json.loads(line) for line in lines]
        assert [a["op"] for a in answers] == [
            "ping", "wait", "estimates", "drain"
        ]
        assert all(a["ok"] for a in answers)
        assert answers[2]["stream_position"] > 0

    def test_spec_flag_conflicts_with_overrides(self, tmp_path, capsys):
        spec_file = tmp_path / "serve.json"
        spec_file.write_text(ServeSpec(source="synthetic").to_json())
        code = main(["serve", "--spec", str(spec_file), "-m", "10"])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_source_required_without_spec(self, capsys):
        assert main(["serve"]) == 2
        assert "source is required" in capsys.readouterr().err

    def test_invalid_method_exits_2(self, capsys):
        code = main(["serve", "synthetic", "--method", "triest"])
        assert code == 2
        assert "GPS family" in capsys.readouterr().err

    def test_negative_stream_seed_means_source_order(
        self, graph_file, monkeypatch, capsys
    ):
        monkeypatch.setattr("sys.stdin", io.StringIO('{"op": "spec"}\n'
                                                    '{"op": "drain"}\n'))
        code = main(["serve", graph_file, "--stream-seed", "-1"])
        assert code == 0
        first = json.loads(capsys.readouterr().out.splitlines()[0])
        assert first["spec"]["stream_seed"] is None

    def test_tcp_session(self, graph_file):
        spec = ServeSpec(
            source=graph_file, budget=80, stream_seed=7, sampler_seed=5
        )
        service = SamplingService(spec)
        bound = {}
        ready = threading.Event()

        def note(host, port):
            bound["addr"] = (host, port)
            ready.set()

        from repro.serve.protocol import serve_tcp

        runner = threading.Thread(
            target=lambda: serve_tcp(service.start(), ready=note),
            daemon=True,
        )
        runner.start()
        assert ready.wait(10.0)
        with socket.create_connection(bound["addr"], timeout=10.0) as conn:
            with conn.makefile("rw", encoding="utf-8") as wire:
                for op in ("ping", "estimates", "drain"):
                    wire.write(json.dumps({"op": op}) + "\n")
                    wire.flush()
                    answer = json.loads(wire.readline())
                    assert answer["ok"] and answer["op"] == op
        runner.join(10.0)
        assert not runner.is_alive()
        assert not service.running
