"""Tests for exact 4-node motif counting and the GPS motif census."""

from __future__ import annotations

from itertools import combinations, permutations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.motifs import MotifCensusEstimator
from repro.core.priority_sampler import GraphPrioritySampler
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    powerlaw_cluster,
    star_graph,
)
from repro.graph.motifs import (
    MOTIF_NAMES,
    count_cliques4,
    count_cycles4,
    count_diamonds,
    count_motifs,
    count_paths4,
    count_stars4,
    count_tailed_triangles,
)
from repro.stats.running import RunningMoments
from repro.streams.stream import EdgeStream


# ----------------------------------------------------------------------
# Brute-force reference counters (independent implementations)
# ----------------------------------------------------------------------
def brute_paths4(graph):
    count = 0
    nodes = list(graph.nodes())
    for quad in permutations(nodes, 4):
        a, b, c, d = quad
        if graph.has_edge(a, b) and graph.has_edge(b, c) and graph.has_edge(c, d):
            count += 1
    return count // 2  # each path counted in both directions


def brute_cycles4(graph):
    count = 0
    for quad in permutations(list(graph.nodes()), 4):
        a, b, c, d = quad
        if (
            graph.has_edge(a, b)
            and graph.has_edge(b, c)
            and graph.has_edge(c, d)
            and graph.has_edge(d, a)
        ):
            count += 1
    return count // 8  # 4 rotations x 2 directions


def brute_tailed(graph):
    count = 0
    for tri in combinations(list(graph.nodes()), 3):
        a, b, c = tri
        if not (
            graph.has_edge(a, b) and graph.has_edge(b, c) and graph.has_edge(a, c)
        ):
            continue
        for v in tri:
            count += graph.degree(v) - 2
    return count


def brute_diamonds(graph):
    count = 0
    for u, v in graph.edges():
        shared = len(graph.common_neighbors(u, v))
        count += shared * (shared - 1) // 2
    return count


def brute_cliques4(graph):
    count = 0
    for quad in combinations(list(graph.nodes()), 4):
        if all(graph.has_edge(a, b) for a, b in combinations(quad, 2)):
            count += 1
    return count


class TestExactClosedForms:
    def test_k5(self, k5_graph):
        counts = count_motifs(k5_graph)
        assert counts.path4 == 60
        assert counts.star4 == 20
        assert counts.cycle4 == 15
        assert counts.tailed_triangle == 60
        assert counts.diamond == 30
        assert counts.clique4 == 5

    def test_path_graph(self):
        graph = path_graph(6)
        counts = count_motifs(graph)
        assert counts.path4 == 3
        assert counts.star4 == 0
        assert counts.cycle4 == 0
        assert counts.clique4 == 0

    def test_cycle_graph(self):
        counts = count_motifs(cycle_graph(4))
        assert counts.cycle4 == 1
        assert counts.path4 == 4
        assert counts.clique4 == 0

    def test_star_graph(self):
        counts = count_motifs(star_graph(5))
        assert counts.star4 == 10  # C(5,3)
        assert counts.path4 == 0
        assert counts.tailed_triangle == 0

    def test_diamond_graph(self, diamond_graph):
        counts = count_motifs(diamond_graph)
        assert counts.diamond == 1
        assert counts.clique4 == 0
        # Non-induced occurrences: each of the two triangles has two tail
        # edges (the tails land on the other triangle's nodes).
        assert counts.tailed_triangle == 4

    def test_as_dict_names(self, k4_graph):
        assert tuple(count_motifs(k4_graph).as_dict()) == MOTIF_NAMES


small_graphs = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=30
)


@settings(max_examples=60, deadline=None)
@given(small_graphs)
def test_exact_formulas_match_brute_force(pairs):
    graph = AdjacencyGraph(pairs)
    assert count_paths4(graph) == brute_paths4(graph)
    assert count_cycles4(graph) == brute_cycles4(graph)
    assert count_tailed_triangles(graph) == brute_tailed(graph)
    assert count_diamonds(graph) == brute_diamonds(graph)
    assert count_cliques4(graph) == brute_cliques4(graph)
    assert count_stars4(graph) == sum(
        graph.degree(v) * (graph.degree(v) - 1) * (graph.degree(v) - 2) // 6
        for v in graph.nodes()
    )


class TestCensusExactness:
    def sampler_for(self, graph, capacity=None, seed=0):
        sampler = GraphPrioritySampler(
            capacity or graph.num_edges + 1, seed=seed
        )
        sampler.process_stream(EdgeStream.from_graph(graph, seed=seed))
        return sampler

    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_complete_graphs(self, n):
        graph = complete_graph(n)
        census = MotifCensusEstimator(self.sampler_for(graph)).estimate()
        exact = count_motifs(graph)
        for name in MOTIF_NAMES:
            assert census[name].value == pytest.approx(getattr(exact, name)), name
            assert census[name].variance == pytest.approx(0.0, abs=1e-9), name

    def test_clustered_graph(self):
        graph = powerlaw_cluster(200, 3, 0.7, seed=5)
        census = MotifCensusEstimator(self.sampler_for(graph)).estimate()
        exact = count_motifs(graph)
        for name in MOTIF_NAMES:
            assert census[name].value == pytest.approx(getattr(exact, name)), name


@settings(max_examples=40, deadline=None)
@given(small_graphs, st.integers(0, 100_000))
def test_census_exact_without_overflow(pairs, seed):
    graph = AdjacencyGraph(pairs)
    sampler = GraphPrioritySampler(graph.num_edges + 1, seed=seed)
    sampler.process_stream(graph.edges())
    census = MotifCensusEstimator(sampler).estimate()
    exact = count_motifs(graph)
    for name in MOTIF_NAMES:
        assert census[name].value == pytest.approx(getattr(exact, name)), name


class TestCensusSampling:
    @pytest.fixture(scope="class")
    def motif_graph(self):
        return powerlaw_cluster(150, 3, 0.7, seed=3)

    def test_all_motifs_unbiased(self, motif_graph):
        exact = count_motifs(motif_graph)
        moments = {name: RunningMoments() for name in MOTIF_NAMES}
        for seed in range(120):
            sampler = GraphPrioritySampler(capacity=120, seed=2_000 + seed)
            sampler.process_stream(EdgeStream.from_graph(motif_graph, seed=seed))
            census = MotifCensusEstimator(sampler).estimate()
            for name in MOTIF_NAMES:
                moments[name].add(census[name].value)
        for name in MOTIF_NAMES:
            actual = getattr(exact, name)
            spread = moments[name].std_error
            assert abs(moments[name].mean - actual) < 5.0 * spread, name

    def test_variances_non_negative(self, motif_graph):
        sampler = GraphPrioritySampler(capacity=120, seed=9)
        sampler.process_stream(EdgeStream.from_graph(motif_graph, seed=9))
        census = MotifCensusEstimator(sampler).estimate()
        for name in MOTIF_NAMES:
            assert census[name].variance >= 0.0, name

    def test_estimates_non_negative(self, motif_graph):
        sampler = GraphPrioritySampler(capacity=60, seed=11)
        sampler.process_stream(EdgeStream.from_graph(motif_graph, seed=11))
        census = MotifCensusEstimator(sampler).estimate()
        for name in MOTIF_NAMES:
            assert census[name].value >= 0.0, name
