"""Tests for the experiment dataset registry."""

from __future__ import annotations

import pytest

from repro.experiments.datasets import (
    DATASETS,
    FIGURE1_DATASETS,
    FIGURE2_DATASETS,
    FIGURE3_DATASETS,
    TABLE1_DATASETS,
    TABLE2_DATASETS,
    TABLE3_DATASETS,
    get_statistics,
    make_graph,
    register_edge_list_dataset,
)


class TestRegistryIntegrity:
    def test_experiment_groupings_are_registered(self):
        for group in (
            TABLE1_DATASETS,
            TABLE2_DATASETS,
            TABLE3_DATASETS,
            FIGURE1_DATASETS,
            FIGURE2_DATASETS,
            FIGURE3_DATASETS,
        ):
            for name in group:
                assert name in DATASETS

    def test_paper_groupings_match_paper_sizes(self):
        assert len(TABLE1_DATASETS) == 11
        assert len(TABLE2_DATASETS) == 3
        assert len(TABLE3_DATASETS) == 4
        assert len(FIGURE1_DATASETS) == 12
        assert len(FIGURE2_DATASETS) == 12
        assert len(FIGURE3_DATASETS) == 2

    def test_specs_have_descriptions_and_domains(self):
        for spec in DATASETS.values():
            assert spec.description
            assert spec.domain

    def test_table1_specs_carry_paper_statistics(self):
        for name in TABLE1_DATASETS:
            paper = DATASETS[name].paper
            assert paper is not None
            assert paper.triangles and paper.wedges and paper.clustering
            assert paper.are_in_stream is not None

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            make_graph("no-such-graph")


class TestConstruction:
    def test_make_graph_cached_identity(self):
        assert make_graph("infra-roadNet-CA") is make_graph("infra-roadNet-CA")

    def test_statistics_cached(self):
        stats = get_statistics("infra-roadNet-CA")
        assert get_statistics("infra-roadNet-CA") is stats
        assert stats.triangles > 0
        assert stats.num_edges > 10_000

    def test_road_network_has_low_clustering(self):
        stats = get_statistics("infra-roadNet-CA")
        assert stats.clustering < 0.25

    def test_graphs_are_simple(self):
        graph = make_graph("infra-roadNet-CA")
        for v in list(graph.nodes())[:100]:
            assert v not in graph.neighbors(v)


class TestUserRegistration:
    def test_register_edge_list_dataset(self, tmp_path):
        path = tmp_path / "mini.txt"
        path.write_text("0 1\n1 2\n0 2\n")
        spec = register_edge_list_dataset("test-mini-graph", path)
        try:
            assert "test-mini-graph" in DATASETS
            graph = spec.factory()
            assert graph.num_edges == 3
        finally:
            del DATASETS["test-mini-graph"]

    def test_duplicate_name_rejected(self, tmp_path):
        path = tmp_path / "mini.txt"
        path.write_text("0 1\n")
        with pytest.raises(ValueError):
            register_edge_list_dataset("infra-roadNet-CA", path)
