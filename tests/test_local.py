"""Tests for local (per-node) estimation: GPS LocalTriangleEstimator and
MASCOT's local counts."""

from __future__ import annotations

import pytest

from repro.baselines.mascot import Mascot
from repro.core.local import LocalTriangleEstimator
from repro.core.priority_sampler import GraphPrioritySampler
from repro.graph.exact import local_clustering, per_node_triangles
from repro.graph.generators import powerlaw_cluster
from repro.stats.running import RunningMoments
from repro.streams.stream import EdgeStream


def sampler_over(graph, capacity, stream_seed=0, sampler_seed=1):
    sampler = GraphPrioritySampler(capacity=capacity, seed=sampler_seed)
    sampler.process_stream(EdgeStream.from_graph(graph, seed=stream_seed))
    return sampler


class TestGpsLocalExactness:
    def test_k4_per_node(self, k4_graph):
        local = LocalTriangleEstimator(sampler_over(k4_graph, 10))
        counts = local.node_triangles()
        assert counts == pytest.approx({0: 3.0, 1: 3.0, 2: 3.0, 3: 3.0})

    def test_diamond_per_node(self, diamond_graph):
        local = LocalTriangleEstimator(sampler_over(diamond_graph, 10))
        counts = local.node_triangles()
        assert counts[1] == pytest.approx(2.0)
        assert counts[0] == pytest.approx(1.0)
        assert counts[3] == pytest.approx(1.0)

    def test_matches_exact_per_node(self, medium_graph):
        sampler = sampler_over(medium_graph, medium_graph.num_edges + 1)
        estimates = LocalTriangleEstimator(sampler).node_triangles()
        exact = per_node_triangles(medium_graph)
        for node, actual in exact.items():
            assert estimates.get(node, 0.0) == pytest.approx(actual), node

    def test_wedges_match_exact(self, medium_graph):
        sampler = sampler_over(medium_graph, medium_graph.num_edges + 1)
        wedges = LocalTriangleEstimator(sampler).node_wedges()
        for node in medium_graph.nodes():
            d = medium_graph.degree(node)
            assert wedges.get(node, 0.0) == pytest.approx(d * (d - 1) / 2), node

    def test_local_clustering_matches_exact(self, diamond_graph):
        sampler = sampler_over(diamond_graph, 10)
        clustering = LocalTriangleEstimator(sampler).local_clustering()
        for node in diamond_graph.nodes():
            assert clustering[node] == pytest.approx(
                local_clustering(diamond_graph, node)
            ), node

    def test_zero_entries_for_triangle_free_nodes(self):
        sampler = GraphPrioritySampler(capacity=10, seed=0)
        sampler.process_stream([(0, 1), (1, 2), (0, 2), (5, 6)])
        counts = LocalTriangleEstimator(sampler).node_triangles()
        assert counts[5] == 0.0
        assert counts[6] == 0.0
        assert counts[0] == pytest.approx(1.0)


class TestGpsLocalSampling:
    @pytest.fixture(scope="class")
    def hub_graph(self):
        return powerlaw_cluster(300, 3, 0.7, seed=13)

    def test_hub_estimates_unbiased(self, hub_graph):
        exact = per_node_triangles(hub_graph)
        hubs = sorted(exact, key=exact.get, reverse=True)[:3]
        moments = {node: RunningMoments() for node in hubs}
        for seed in range(150):
            sampler = sampler_over(
                hub_graph, 200, stream_seed=seed, sampler_seed=3_000 + seed
            )
            counts = LocalTriangleEstimator(sampler).node_triangles()
            for node in hubs:
                moments[node].add(counts.get(node, 0.0))
        for node in hubs:
            spread = moments[node].std_error
            assert abs(moments[node].mean - exact[node]) < 5.0 * spread, node

    def test_local_sums_to_three_global(self, hub_graph):
        from repro.core.post_stream import PostStreamEstimator

        sampler = sampler_over(hub_graph, 200, sampler_seed=17)
        local_total = sum(
            LocalTriangleEstimator(sampler).node_triangles().values()
        )
        global_estimate = PostStreamEstimator(sampler).estimate().triangles.value
        assert local_total == pytest.approx(3.0 * global_estimate)

    def test_top_nodes_sorted(self, hub_graph):
        sampler = sampler_over(hub_graph, 200)
        top = LocalTriangleEstimator(sampler).top_nodes(5)
        values = [count for _node, count in top]
        assert values == sorted(values, reverse=True)
        assert len(top) == 5


class TestMascotLocal:
    def test_exact_at_p_one(self, medium_graph):
        counter = Mascot(1.0, seed=0)
        for u, v in EdgeStream.from_graph(medium_graph, seed=0):
            counter.process(u, v)
        exact = per_node_triangles(medium_graph)
        for node, actual in exact.items():
            if actual:
                assert counter.local_estimate(node) == pytest.approx(actual), node

    def test_local_sums_to_three_global(self, medium_graph):
        counter = Mascot(0.5, seed=1)
        for u, v in EdgeStream.from_graph(medium_graph, seed=1):
            counter.process(u, v)
        assert sum(counter.local_estimates.values()) == pytest.approx(
            3.0 * counter.triangle_estimate
        )

    def test_local_unbiased(self, social_graph):
        exact = per_node_triangles(social_graph)
        hub = max(exact, key=exact.get)
        moments = RunningMoments()
        for seed in range(200):
            counter = Mascot(0.4, seed=9_000 + seed)
            for u, v in EdgeStream.from_graph(social_graph, seed=seed):
                counter.process(u, v)
            moments.add(counter.local_estimate(hub))
        assert abs(moments.mean - exact[hub]) < 5.0 * moments.std_error

    def test_unseen_node_is_zero(self):
        counter = Mascot(0.5, seed=0)
        counter.process(0, 1)
        assert counter.local_estimate(99) == 0.0
