"""Tests for Algorithm 3 (in-stream snapshot estimation)."""

from __future__ import annotations

import pytest

from repro.core.in_stream import InStreamEstimator
from repro.core.post_stream import PostStreamEstimator
from repro.stats.running import RunningMoments
from repro.streams.stream import EdgeStream


def run_in_stream(graph, capacity, stream_seed=0, sampler_seed=1):
    estimator = InStreamEstimator(capacity=capacity, seed=sampler_seed)
    estimator.process_stream(EdgeStream.from_graph(graph, seed=stream_seed))
    return estimator


class TestExactnessWithoutOverflow:
    def test_triangle(self, triangle_graph):
        est = run_in_stream(triangle_graph, capacity=10).estimates()
        assert est.triangles.value == pytest.approx(1.0)
        assert est.wedges.value == pytest.approx(3.0)
        assert est.triangles.variance == 0.0

    def test_k4(self, k4_graph):
        est = run_in_stream(k4_graph, capacity=10).estimates()
        assert est.triangles.value == pytest.approx(4.0)
        assert est.wedges.value == pytest.approx(12.0)

    def test_medium_graph(self, medium_graph, medium_stats):
        est = run_in_stream(medium_graph, medium_graph.num_edges + 1).estimates()
        assert est.triangles.value == pytest.approx(medium_stats.triangles)
        assert est.wedges.value == pytest.approx(medium_stats.wedges)
        assert est.clustering.value == pytest.approx(medium_stats.clustering)

    def test_order_invariant_when_exact(self, diamond_graph):
        for seed in range(5):
            est = run_in_stream(diamond_graph, 10, stream_seed=seed).estimates()
            assert est.triangles.value == pytest.approx(2.0)
            assert est.wedges.value == pytest.approx(8.0)


class TestStreamSemantics:
    def test_estimates_are_monotone(self, medium_graph):
        estimator = InStreamEstimator(capacity=300, seed=2)
        last_tri = last_wedge = 0.0
        for u, v in EdgeStream.from_graph(medium_graph, seed=0).prefix(2000):
            estimator.process(u, v)
            assert estimator.triangle_estimate >= last_tri
            assert estimator.wedge_estimate >= last_wedge
            last_tri = estimator.triangle_estimate
            last_wedge = estimator.wedge_estimate

    def test_skips_match_sampler(self):
        estimator = InStreamEstimator(capacity=10, seed=0)
        estimator.process(0, 1)
        estimator.process(0, 1)  # duplicate of sampled edge
        estimator.process(2, 2)  # self loop
        assert estimator.sampler.stream_position == 1
        assert estimator.wedge_estimate == 0.0

    def test_duplicate_does_not_double_count(self, triangle_graph):
        estimator = InStreamEstimator(capacity=10, seed=0)
        estimator.process(0, 1)
        estimator.process(1, 2)
        estimator.process(0, 2)
        before = estimator.triangle_estimate
        estimator.process(0, 2)
        assert estimator.triangle_estimate == before

    def test_track_yields_at_checkpoints(self, medium_graph):
        stream = EdgeStream.from_graph(medium_graph, seed=0)
        marks = stream.checkpoints(5)
        estimator = InStreamEstimator(capacity=200, seed=1)
        out = list(estimator.track(stream, marks))
        assert [t for t, _ in out] == marks
        values = [e.triangles.value for _, e in out]
        assert values == sorted(values)

    def test_estimates_readable_any_time(self):
        estimator = InStreamEstimator(capacity=10, seed=0)
        assert estimator.estimates().triangles.value == 0.0
        estimator.process(0, 1)
        assert estimator.estimates().wedges.value == 0.0

    def test_shares_sampler_with_post_stream(self, medium_graph):
        """The paper's protocol: post-stream estimates from the same sample."""
        estimator = run_in_stream(medium_graph, capacity=400, sampler_seed=5)
        post = PostStreamEstimator(estimator.sampler).estimate()
        assert post.sample_size == estimator.estimates().sample_size
        assert post.threshold == estimator.estimates().threshold


class TestUnbiasedness:
    def test_triangle_and_wedge_means(self, social_graph, social_stats):
        runs = 250
        tri = RunningMoments()
        wedge = RunningMoments()
        for seed in range(runs):
            estimator = run_in_stream(
                social_graph, 150, stream_seed=seed, sampler_seed=30_000 + seed
            )
            tri.add(estimator.triangle_estimate)
            wedge.add(estimator.wedge_estimate)
        assert abs(tri.mean - social_stats.triangles) < 4.5 * tri.std_error
        assert abs(wedge.mean - social_stats.wedges) < 4.5 * wedge.std_error

    def test_variance_estimator_calibrated(self, social_graph):
        runs = 250
        estimates = RunningMoments()
        variance_estimates = RunningMoments()
        for seed in range(runs):
            est = run_in_stream(
                social_graph, 150, stream_seed=seed, sampler_seed=40_000 + seed
            ).estimates()
            estimates.add(est.triangles.value)
            variance_estimates.add(est.triangles.variance)
        assert variance_estimates.mean == pytest.approx(estimates.variance, rel=0.4)

    def test_lower_variance_than_post_stream(self, social_graph):
        """The paper's headline property of in-stream estimation."""
        runs = 150
        in_stream = RunningMoments()
        post = RunningMoments()
        for seed in range(runs):
            estimator = run_in_stream(
                social_graph, 150, stream_seed=seed, sampler_seed=50_000 + seed
            )
            in_stream.add(estimator.triangle_estimate)
            post.add(PostStreamEstimator(estimator.sampler).estimate().triangles.value)
        assert in_stream.variance < post.variance


class TestVarianceProperties:
    def test_non_negative(self, medium_graph):
        est = run_in_stream(medium_graph, 400).estimates()
        assert est.triangles.variance >= 0.0
        assert est.wedges.variance >= 0.0
        assert est.clustering.variance >= 0.0
        assert est.tri_wedge_covariance >= 0.0

    def test_bounds_bracket_estimate(self, medium_graph):
        est = run_in_stream(medium_graph, 400).estimates()
        lb, ub = est.wedges.confidence_bounds()
        assert lb <= est.wedges.value <= ub
