"""Tests for canonical edge helpers."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.graph.edge import canonical_edge, is_self_loop


class TestCanonicalEdge:
    def test_orders_integers(self):
        assert canonical_edge(3, 1) == (1, 3)
        assert canonical_edge(1, 3) == (1, 3)

    def test_orders_strings(self):
        assert canonical_edge("b", "a") == ("a", "b")

    def test_equal_endpoints_stay(self):
        assert canonical_edge(2, 2) == (2, 2)

    def test_mixed_types_fall_back_to_repr(self):
        key1 = canonical_edge("a", 1)
        key2 = canonical_edge(1, "a")
        assert key1 == key2

    def test_tuple_nodes(self):
        assert canonical_edge((2, 0), (1, 5)) == ((1, 5), (2, 0))


@given(st.integers(), st.integers())
def test_canonical_edge_is_symmetric(u, v):
    assert canonical_edge(u, v) == canonical_edge(v, u)


@given(st.integers(), st.integers())
def test_canonical_edge_is_sorted(u, v):
    a, b = canonical_edge(u, v)
    assert a <= b


class TestSelfLoop:
    def test_loop_detected(self):
        assert is_self_loop(4, 4)

    def test_distinct_nodes(self):
        assert not is_self_loop(4, 5)

    def test_string_nodes(self):
        assert is_self_loop("x", "x")
        assert not is_self_loop("x", "y")
