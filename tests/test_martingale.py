"""Tests for the martingale/snapshot toolkit (Theorems 1-5 algebra)."""

from __future__ import annotations

import pytest

from repro.core.martingale import (
    Snapshot,
    edge_inverse_probability,
    post_stream_covariance,
    snapshot_covariance,
    subgraph_estimate,
    variance_estimate,
)
from repro.core.records import EdgeRecord


def rec(u, v, weight):
    return EdgeRecord(u, v, weight=weight, priority=1.0)


class TestEdgeEstimators:
    def test_inverse_probability_before_overflow(self):
        assert edge_inverse_probability(rec(0, 1, 0.5), 0.0) == 1.0

    def test_inverse_probability_after_overflow(self):
        assert edge_inverse_probability(rec(0, 1, 1.0), 4.0) == 4.0

    def test_subgraph_product(self):
        records = [rec(0, 1, 1.0), rec(1, 2, 2.0)]
        assert subgraph_estimate(records, 4.0) == pytest.approx(4.0 * 2.0)

    def test_variance_estimate(self):
        records = [rec(0, 1, 2.0)]
        # p = 0.5 → Ŝ = 2, Ŝ(Ŝ−1) = 2.
        assert variance_estimate(records, 4.0) == pytest.approx(2.0)

    def test_variance_zero_when_certain(self):
        assert variance_estimate([rec(0, 1, 8.0)], 4.0) == 0.0


class TestSnapshots:
    def test_capture_freezes_values(self):
        record = rec(0, 1, 1.0)
        snap = Snapshot.capture([record], threshold=2.0, time=5)
        assert snap.value == pytest.approx(2.0)
        # Later threshold changes do not affect the snapshot.
        assert Snapshot.capture([record], threshold=10.0, time=9).value == 10.0
        assert snap.value == pytest.approx(2.0)

    def test_edges_property(self):
        snap = Snapshot.capture([rec(0, 1, 1.0), rec(1, 2, 1.0)], 0.0, 1)
        assert snap.edges == frozenset({(0, 1), (1, 2)})

    def test_snapshot_variance(self):
        snap = Snapshot.capture([rec(0, 1, 1.0)], threshold=4.0, time=1)
        assert snap.variance() == pytest.approx(4.0 * 3.0)


class TestSnapshotCovariance:
    def test_disjoint_snapshots_have_zero_covariance(self):
        s1 = Snapshot.capture([rec(0, 1, 1.0)], 2.0, 1)
        s2 = Snapshot.capture([rec(2, 3, 1.0)], 2.0, 2)
        assert snapshot_covariance(s1, s2) == 0.0

    def test_shared_edge_same_time(self):
        shared = rec(0, 1, 1.0)
        other1 = rec(1, 2, 1.0)
        other2 = rec(0, 2, 1.0)
        threshold = 2.0  # p = 0.5 everywhere
        s1 = Snapshot.capture([shared, other1], threshold, 3)
        s2 = Snapshot.capture([shared, other2], threshold, 3)
        # Ĉ = Ŝ_{J1∪J2}(Ŝ_{J1∩J2} − 1) = 2·2·2 · (2 − 1) = 8.
        assert snapshot_covariance(s1, s2) == pytest.approx(8.0)

    def test_shared_edge_uses_later_stopping_time(self):
        shared = rec(0, 1, 1.0)
        other1 = rec(1, 2, 1.0)
        other2 = rec(0, 2, 1.0)
        early = Snapshot.capture([shared, other1], 2.0, time=1)   # p_shared = 0.5
        late = Snapshot.capture([shared, other2], 4.0, time=9)    # p_shared = 0.25
        # Ŝ1·Ŝ2 − Ŝ_{J1\J2} Ŝ_{J2\J1} Ŝ^{later}_{shared}
        #   = (2·2)·(4·4) − 2·4·4 = 64 − 32 = 32.
        assert snapshot_covariance(early, late) == pytest.approx(32.0)

    def test_covariance_symmetric_in_arguments(self):
        shared = rec(0, 1, 1.0)
        s1 = Snapshot.capture([shared, rec(1, 2, 1.0)], 2.0, 1)
        s2 = Snapshot.capture([shared, rec(0, 2, 1.0)], 4.0, 2)
        assert snapshot_covariance(s1, s2) == pytest.approx(
            snapshot_covariance(s2, s1)
        )

    def test_covariance_non_negative(self):
        # Theorem 5(ii): the estimator is non-negative by construction.
        shared = rec(0, 1, 1.0)
        for t1, t2 in [(2.0, 4.0), (4.0, 2.0), (3.0, 3.0)]:
            s1 = Snapshot.capture([shared, rec(1, 2, 1.0)], t1, 1)
            s2 = Snapshot.capture([shared, rec(0, 2, 1.0)], t2, 2)
            assert snapshot_covariance(s1, s2) >= 0.0

    def test_identical_snapshot_covariance_is_variance(self):
        records = [rec(0, 1, 1.0), rec(1, 2, 1.0)]
        snap = Snapshot.capture(records, 2.0, 1)
        assert snapshot_covariance(snap, snap) == pytest.approx(snap.variance())


class TestPostStreamCovariance:
    def test_matches_snapshot_special_case(self):
        shared = rec(0, 1, 1.0)
        j1 = [shared, rec(1, 2, 1.0)]
        j2 = [shared, rec(0, 2, 1.0)]
        threshold = 2.0
        direct = post_stream_covariance(j1, j2, threshold)
        s1 = Snapshot.capture(j1, threshold, 1)
        s2 = Snapshot.capture(j2, threshold, 1)
        assert direct == pytest.approx(snapshot_covariance(s1, s2))

    def test_disjoint_zero(self):
        assert post_stream_covariance(
            [rec(0, 1, 1.0)], [rec(2, 3, 1.0)], 2.0
        ) == 0.0

    def test_certain_edges_give_zero(self):
        shared = rec(0, 1, 9.0)  # p = 1 at threshold 4
        j1 = [shared, rec(1, 2, 9.0)]
        j2 = [shared, rec(0, 2, 9.0)]
        assert post_stream_covariance(j1, j2, 4.0) == 0.0
