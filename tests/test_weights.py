"""Tests for the W(k, K̂) weight-function family."""

from __future__ import annotations

import pytest

from repro.core.records import EdgeRecord
from repro.core.reservoir import SampledGraph
from repro.core.weights import (
    AttributeWeight,
    LinearCombinationWeight,
    TriangleWeight,
    UniformWeight,
    WedgeWeight,
)


@pytest.fixture()
def wedge_sample():
    """Sample containing edges (0,1) and (0,2): arriving (1,2) closes one triangle."""
    sample = SampledGraph()
    sample.add(EdgeRecord(0, 1, weight=1.0, priority=1.0))
    sample.add(EdgeRecord(0, 2, weight=1.0, priority=1.0))
    return sample


class TestUniformWeight:
    def test_constant(self, wedge_sample):
        weight = UniformWeight()
        assert weight(1, 2, wedge_sample) == 1.0
        assert weight(7, 9, wedge_sample) == 1.0

    def test_custom_constant(self, wedge_sample):
        assert UniformWeight(2.5)(1, 2, wedge_sample) == 2.5

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            UniformWeight(0.0)


class TestTriangleWeight:
    def test_paper_default(self, wedge_sample):
        weight = TriangleWeight()
        assert weight(1, 2, wedge_sample) == 9.0 * 1 + 1.0
        assert weight(5, 6, wedge_sample) == 1.0

    def test_counts_multiple_triangles(self):
        sample = SampledGraph()
        for u, v in [(0, 1), (0, 2), (3, 1), (3, 2)]:
            sample.add(EdgeRecord(u, v, weight=1.0, priority=1.0))
        assert TriangleWeight()(1, 2, sample) == 9.0 * 2 + 1.0

    def test_custom_coefficients(self, wedge_sample):
        assert TriangleWeight(coef=4.0, default=0.5)(1, 2, wedge_sample) == 4.5

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TriangleWeight(coef=-1.0)
        with pytest.raises(ValueError):
            TriangleWeight(default=0.0)


class TestWedgeWeight:
    def test_counts_adjacent_sampled_edges(self, wedge_sample):
        # deĝ(1) = 1, deĝ(2) = 1 → 2 wedges would be completed.
        assert WedgeWeight()(1, 2, wedge_sample) == 2 + 1.0

    def test_novel_edge_gets_default(self, wedge_sample):
        assert WedgeWeight()(7, 9, wedge_sample) == 1.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            WedgeWeight(default=-1.0)


class TestAttributeWeight:
    def test_user_callable(self, wedge_sample):
        weight = AttributeWeight(lambda u, v: u + v)
        assert weight(1, 2, wedge_sample) == 3.0

    def test_non_positive_result_raises(self, wedge_sample):
        weight = AttributeWeight(lambda u, v: 0.0)
        with pytest.raises(ValueError):
            weight(1, 2, wedge_sample)


class TestLinearCombination:
    def test_combines_terms(self, wedge_sample):
        combo = LinearCombinationWeight(
            [(1.0, TriangleWeight(coef=9.0, default=1.0)), (2.0, UniformWeight())]
        )
        assert combo(1, 2, wedge_sample) == 10.0 + 2.0

    def test_empty_terms_rejected(self):
        with pytest.raises(ValueError):
            LinearCombinationWeight([])

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ValueError):
            LinearCombinationWeight([(-1.0, UniformWeight())])

    def test_all_zero_coefficients_rejected_at_construction(self):
        # Regression: an all-zero combination used to construct fine and
        # then blow up mid-stream with a "non-positive weight" error.
        with pytest.raises(ValueError, match="positive"):
            LinearCombinationWeight(
                [(0.0, UniformWeight()), (0.0, TriangleWeight())]
            )

    def test_zero_coefficient_allowed_alongside_positive(self, wedge_sample):
        combo = LinearCombinationWeight(
            [(0.0, TriangleWeight()), (3.0, UniformWeight())]
        )
        assert combo(1, 2, wedge_sample) == 3.0

    def test_reprs_are_informative(self):
        assert "TriangleWeight" in repr(TriangleWeight())
        assert "UniformWeight" in repr(UniformWeight())
        assert "WedgeWeight" in repr(WedgeWeight())
