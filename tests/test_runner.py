"""Tests for the experiment runner (on small ad-hoc graphs, not the registry)."""

from __future__ import annotations

import pytest

from repro.baselines.triest import TriestImpr
from repro.experiments.runner import (
    BASELINE_METHODS,
    run_baseline,
    run_gps,
    track_counter,
    track_gps,
)
from repro.graph.exact import compute_statistics
from repro.graph.generators import powerlaw_cluster


@pytest.fixture(scope="module")
def runner_graph():
    return powerlaw_cluster(400, 4, 0.5, seed=21)


@pytest.fixture(scope="module")
def runner_stats(runner_graph):
    return compute_statistics(runner_graph)


class TestRunGps:
    def test_shared_sample_protocol(self, runner_graph, runner_stats):
        result = run_gps(runner_graph, runner_stats, capacity=300, stream_seed=0)
        assert result.in_stream.sample_size == result.post_stream.sample_size
        assert result.in_stream.threshold == result.post_stream.threshold
        assert result.capacity == 300
        assert result.update_time_us > 0.0

    def test_sample_fraction(self, runner_graph, runner_stats):
        result = run_gps(runner_graph, runner_stats, capacity=300)
        assert result.sample_fraction == pytest.approx(
            300 / runner_stats.num_edges
        )

    def test_no_overflow_is_exact(self, runner_graph, runner_stats):
        result = run_gps(
            runner_graph, runner_stats, capacity=runner_stats.num_edges + 10
        )
        assert result.in_stream.triangles.value == pytest.approx(
            runner_stats.triangles
        )
        assert result.post_stream.triangles.value == pytest.approx(
            runner_stats.triangles
        )

    def test_deterministic(self, runner_graph, runner_stats):
        a = run_gps(runner_graph, runner_stats, capacity=200, stream_seed=3,
                    sampler_seed=4)
        b = run_gps(runner_graph, runner_stats, capacity=200, stream_seed=3,
                    sampler_seed=4)
        assert a.in_stream.triangles.value == b.in_stream.triangles.value
        assert a.post_stream.triangles.value == b.post_stream.triangles.value


class TestRunBaseline:
    @pytest.mark.parametrize("method", BASELINE_METHODS)
    def test_every_method_dispatches(self, method, runner_graph, runner_stats):
        result = run_baseline(
            method, runner_graph, runner_stats, budget=120, stream_seed=0, seed=1
        )
        assert result.method == method
        assert result.estimate >= 0.0
        assert result.update_time_us > 0.0
        assert result.memory_edges == 120
        assert result.are >= 0.0

    def test_unknown_method_raises(self, runner_graph, runner_stats):
        with pytest.raises(ValueError):
            run_baseline("nope", runner_graph, runner_stats, budget=10)

    def test_gps_post_reasonable(self, runner_graph, runner_stats):
        result = run_baseline(
            "gps-post", runner_graph, runner_stats, budget=350, stream_seed=0
        )
        assert result.are < 1.0


class TestTracking:
    def test_track_gps_alignment(self, runner_graph):
        series = track_gps(runner_graph, capacity=200, num_checkpoints=6,
                           stream_seed=0)
        n = len(series.checkpoints)
        assert n == 6
        assert len(series.exact_triangles) == n
        assert len(series.in_stream) == n
        assert len(series.post_stream) == n
        assert series.checkpoints == sorted(series.checkpoints)
        assert series.checkpoints[-1] == runner_graph.num_edges

    def test_track_gps_exact_when_capacity_large(self, runner_graph):
        series = track_gps(
            runner_graph, capacity=runner_graph.num_edges + 5, num_checkpoints=4
        )
        for exact, est in zip(series.exact_triangles, series.in_stream_triangles):
            assert est == pytest.approx(exact)
        for exact, est in zip(series.exact_triangles, series.post_stream_triangles):
            assert est == pytest.approx(exact)

    def test_track_gps_without_post(self, runner_graph):
        series = track_gps(runner_graph, capacity=100, num_checkpoints=3,
                           include_post=False)
        assert series.post_stream == []
        assert len(series.in_stream) == 3

    def test_track_counter(self, runner_graph):
        marks, exact, estimates = track_counter(
            TriestImpr(150, seed=0), runner_graph, num_checkpoints=5
        )
        assert len(marks) == len(exact) == len(estimates) == 5
        assert exact == sorted(exact)
