"""Tests for sharded GPS: router properties, ShardSpec, the runner,
and the sharded execution path behind ``RunSpec(shards=...)``.

The router tests are property-style: the partition must be a pure
function of the canonical (unordered) edge and the router seed — never
of arrival orientation, process identity or ``PYTHONHASHSEED`` — and
the shard substreams must concatenate back to a permutation of the
input.  The runner tests pin the merge algebra to the single-sampler
post-stream estimator (S=1 is exactly the unsharded estimate) and
prove the inline, chunked and pooled drives bit-identical.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api.execution import replicate, run
from repro.api.spec import RunSpec
from repro.api.sweep import SweepSpec
from repro.core.weights import UniformWeight, WedgeWeight, is_label_free
from repro.engine.stream_engine import StreamEngine
from repro.graph.generators import chung_lu
from repro.shard.router import (
    edge_key,
    edge_shard,
    shard_columns,
    split_stream,
)
from repro.shard.runner import (
    SHARDABLE_METHODS,
    ShardedRunner,
    validate_shardable_method,
)
from repro.shard.spec import ShardSpec

np = pytest.importorskip("numpy")

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(scope="module")
def edges():
    """A small heavy-tailed population with int labels."""
    graph = chung_lu(600, 3000, exponent=2.2, seed=5)
    from repro.streams.stream import EdgeStream

    return EdgeStream.canonical_edges(graph)


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------
class TestRouter:
    def test_orientation_invariant(self):
        for u, v in [(0, 1), (5, 2), (1000, 3), (7, 7_000_000)]:
            for seed in (0, 1, 99):
                assert edge_key(u, v, seed) == edge_key(v, u, seed)
                assert edge_shard(u, v, 8, seed) == edge_shard(v, u, 8, seed)

    def test_known_values_pin_the_mixer(self):
        # Hardcoded splitmix64 outputs: any change to the hash chain —
        # constants, canonicalisation, seeding — fails loudly here, and
        # the same values are recomputed in a fresh interpreter below,
        # so the partition is provably process-independent.
        assert edge_key(0, 1, 0) == 3092335531369821329
        assert edge_key(12345, 67890, 0) == 1174895183225651080
        assert edge_key(7, 3, 42) == 11553577166213567705

    def test_stable_across_processes_and_hash_seeds(self):
        script = (
            "from repro.shard.router import edge_key;"
            "print(edge_key(0, 1, 0), edge_key(12345, 67890, 0),"
            " edge_key(7, 3, 42))"
        )
        outputs = set()
        for hash_seed in ("0", "1", "4242"):
            env = dict(os.environ, PYTHONPATH=SRC_DIR,
                       PYTHONHASHSEED=hash_seed)
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.add(result.stdout.strip())
        assert outputs == {
            "3092335531369821329 1174895183225651080 "
            "11553577166213567705"
        }

    def test_seed_changes_the_partition(self):
        pairs = [(i, i + 1) for i in range(200)]
        a = [edge_shard(u, v, 4, seed=0) for u, v in pairs]
        b = [edge_shard(u, v, 4, seed=1) for u, v in pairs]
        assert a != b

    def test_single_shard_short_circuits(self):
        assert edge_shard(10, 20, 1, seed=123) == 0

    def test_covers_all_shards(self, edges):
        for shards in (2, 4, 8):
            seen = {edge_shard(u, v, shards) for u, v in edges}
            assert seen == set(range(shards))

    def test_vectorized_matches_scalar(self, edges):
        us = np.asarray([u for u, _ in edges], dtype=np.int32)
        vs = np.asarray([v for _, v in edges], dtype=np.int32)
        for shards in (2, 4, 8):
            for seed in (0, 7):
                ids = shard_columns(us, vs, shards, seed)
                expected = [
                    edge_shard(u, v, shards, seed) for u, v in edges
                ]
                assert ids.tolist() == expected

    def test_vectorized_handles_negative_labels(self):
        # int32 columns sign-extend into the 64-bit mix exactly like
        # Python's & mask on negative ints; canonical min/max must be
        # taken on the *signed* values.
        pairs = [(-5, 3), (-100, -2), (7, -7), (-1, 0)]
        us = np.asarray([u for u, _ in pairs], dtype=np.int32)
        vs = np.asarray([v for _, v in pairs], dtype=np.int32)
        ids = shard_columns(us, vs, 4, seed=3)
        assert ids.tolist() == [
            edge_shard(u, v, 4, seed=3) for u, v in pairs
        ]

    def test_split_stream_is_an_order_preserving_partition(self, edges):
        buckets = split_stream(edges, 4, seed=0)
        assert len(buckets) == 4
        # Concatenation is a permutation of the input (here: equality as
        # multisets), and each bucket preserves arrival order.
        flat = [e for bucket in buckets for e in bucket]
        assert sorted(flat) == sorted(edges)
        position = {e: i for i, e in enumerate(edges)}
        for bucket in buckets:
            order = [position[e] for e in bucket]
            assert order == sorted(order)
        # Membership agrees with the scalar router.
        for s, bucket in enumerate(buckets):
            assert all(edge_shard(u, v, 4, 0) == s for u, v in bucket)


# ----------------------------------------------------------------------
# ShardSpec
# ----------------------------------------------------------------------
class TestShardSpec:
    def test_round_trip(self):
        spec = ShardSpec(shards=4, router_seed=9)
        assert ShardSpec.from_json(spec.to_json()) == spec
        assert ShardSpec.from_dict(spec.to_dict()) == spec

    def test_defaults(self):
        spec = ShardSpec()
        assert spec.shards == 1
        assert spec.router_seed == 0

    def test_replace(self):
        assert ShardSpec().replace(shards=8).shards == 8

    def test_validation(self):
        with pytest.raises(ValueError, match="shards"):
            ShardSpec(shards=0)
        with pytest.raises(ValueError, match="router_seed"):
            ShardSpec(router_seed=-1)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            ShardSpec.from_dict({"shards": 2, "replicas": 3})


# ----------------------------------------------------------------------
# ShardedRunner
# ----------------------------------------------------------------------
class TestShardedRunner:
    def test_single_shard_equals_unsharded_post_stream(self, edges):
        # S=1 routes everything to one sampler with the same seed the
        # plain path uses, so the merged estimate must be *exactly* the
        # single-sampler post-stream estimate.
        from repro.api.registry import get_method
        from repro.core.post_stream import PostStreamEstimator

        result = ShardedRunner(
            edges, shards=1, budget=400, stream_seed=3, sampler_seed=11,
        ).run()

        import random

        order = list(edges)
        random.Random(3).shuffle(order)
        counter = get_method("gps-post").make(400, len(order), 11)
        StreamEngine(counter).run(order)
        direct = PostStreamEstimator(counter.sampler).estimate()

        assert result.estimates.triangles.value == direct.triangles.value
        assert result.estimates.wedges.value == direct.wedges.value
        assert (
            result.estimates.triangles.variance
            == direct.triangles.variance
        )

    def test_budget_splits_evenly(self, edges):
        result = ShardedRunner(edges, shards=4, budget=400).run()
        assert result.shards == 4
        assert all(size <= 100 for size in result.shard_sample_sizes)
        assert sum(result.shard_edges) == len(edges)
        assert result.estimates.sample_size == sum(
            result.shard_sample_sizes
        )

    def test_layout_round_trip(self, edges):
        layout = ShardSpec(shards=2, router_seed=5)
        runner = ShardedRunner.from_layout(edges, layout, budget=100)
        assert runner.layout == layout

    def test_chunked_equals_scalar_pipeline(self, edges):
        # The uniform weight engages the vectorised per-shard drives;
        # forcing pipeline="scalar" must not change a single bit.
        kwargs = dict(shards=4, budget=400, weight_fn=UniformWeight())
        chunked = ShardedRunner(edges, **kwargs).run()
        scalar = ShardedRunner(
            edges, pipeline="scalar", **kwargs
        ).run()
        assert chunked.pipeline == "chunked"
        assert scalar.pipeline == "scalar"
        assert (
            chunked.estimates.triangles.value
            == scalar.estimates.triangles.value
        )
        assert chunked.shard_thresholds == scalar.shard_thresholds
        assert chunked.shard_sample_sizes == scalar.shard_sample_sizes

    def test_pooled_equals_inline(self, edges):
        kwargs = dict(shards=4, budget=400, weight_fn=UniformWeight())
        inline = ShardedRunner(edges, workers=0, **kwargs).run()
        pooled = ShardedRunner(edges, workers=2, **kwargs).run()
        assert pooled.workers == 2
        assert inline.workers == 0
        assert (
            pooled.estimates.triangles.value
            == inline.estimates.triangles.value
        )
        assert pooled.shard_thresholds == inline.shard_thresholds
        assert pooled.shard_edges == inline.shard_edges

    def test_default_weight_falls_back_to_scalar_drive(self, edges):
        # gps-post defaults to the triangle weight, which reads the
        # evolving reservoir and cannot be vectorised; the runner must
        # quietly drive scalar (and record it).
        result = ShardedRunner(edges, shards=2, budget=100).run()
        assert result.pipeline == "scalar"

    def test_seed_overrides_change_the_pass(self, edges):
        runner = ShardedRunner(edges, shards=2, budget=200)
        a = runner.run()
        b = runner.run(stream_seed=1, sampler_seed=2)
        c = runner.run()
        assert a.estimates.triangles.value == c.estimates.triangles.value
        assert (
            a.estimates.triangles.value != b.estimates.triangles.value
        )

    def test_validation_errors(self, edges):
        with pytest.raises(ValueError, match="divide evenly"):
            ShardedRunner(edges, shards=3, budget=100)
        with pytest.raises(ValueError, match="shards must be >= 1"):
            ShardedRunner(edges, shards=0, budget=100)
        with pytest.raises(ValueError, match="cannot run sharded"):
            ShardedRunner(edges, shards=2, budget=100, method="triest")
        with pytest.raises(ValueError, match="integer node labels"):
            ShardedRunner([("a", "b")], shards=2, budget=100)
        with pytest.raises(ValueError, match="workers"):
            ShardedRunner(edges, shards=2, budget=100, workers=-1)

    def test_shardable_registry(self):
        assert "gps-post" in SHARDABLE_METHODS
        assert validate_shardable_method("gps-post") == "gps-post"
        with pytest.raises(ValueError, match="unbiasedly"):
            validate_shardable_method("gps")


# ----------------------------------------------------------------------
# Execution / spec integration
# ----------------------------------------------------------------------
class TestShardedExecution:
    def test_runspec_shards_validation(self):
        with pytest.raises(ValueError, match="shards"):
            RunSpec(source="a.txt", shards=0)
        with pytest.raises(ValueError, match="divide evenly"):
            RunSpec(source="a.txt", budget=100, shards=3)
        with pytest.raises(ValueError, match="mutually exclusive"):
            RunSpec(source="a.txt", budget=100, shards=2, checkpoints=5)

    def test_runspec_round_trip_with_shards(self):
        spec = RunSpec(source="a.txt", method="gps-post", budget=400,
                       shards=4)
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_shards_one_is_bit_identical_to_the_plain_path(self, edges):
        # Acceptance gate: shards=1 must be *the same code path* as no
        # shards at all — for every registered label-free weight.
        from repro.api.registry import get_weight, weight_names

        label_free = [
            name for name in sorted(weight_names())
            if is_label_free(get_weight(name).factory())
        ]
        assert label_free  # the registry always has uniform at least
        for weight in label_free:
            base = RunSpec(source="inline", method="gps-post", budget=200,
                           weight=weight, stream_seed=2)
            plain = run(base, graph=edges)
            sharded = run(base.replace(shards=1), graph=edges)
            assert plain.mode == sharded.mode == "single"
            assert plain.estimates == sharded.estimates
            assert plain.threshold == sharded.threshold
            assert plain.sample_size == sharded.sample_size

    def test_sharded_run_report(self, edges):
        spec = RunSpec(source="inline", method="gps-post", budget=400,
                       shards=4)
        report = run(spec, graph=edges)
        assert report.mode == "sharded"
        assert set(report.estimates) == {
            "triangles", "wedges", "clustering"
        }
        assert report.post_stream is not None
        assert report.sample_size == report.post_stream.sample_size
        payload = json.loads(report.to_json())
        assert payload["spec"]["shards"] == 4
        assert payload["mode"] == "sharded"

    def test_sharded_replicate_report(self, edges):
        spec = RunSpec(source="inline", method="gps-post", budget=200,
                       shards=2, replications=3, workers=0)
        report = run(spec, graph=edges)
        assert report.mode == "replicate"
        assert report.metrics["triangles"].count == 3
        forced = replicate(
            RunSpec(source="inline", method="gps-post", budget=200,
                    shards=2), graph=edges,
        )
        assert forced.mode == "replicate"
        assert forced.metrics["triangles"].count == 1

    def test_non_shardable_method_fails_loudly(self, edges):
        spec = RunSpec(source="inline", method="triest", budget=200,
                       shards=2)
        with pytest.raises(ValueError, match="cannot run sharded"):
            run(spec, graph=edges)


# ----------------------------------------------------------------------
# Sweep integration
# ----------------------------------------------------------------------
class TestShardedSweep:
    def test_shards_axis_expands_and_collapses(self):
        spec = SweepSpec(sources=("a.txt",),
                         methods=("gps-post", "triest"),
                         budgets=(400,), shards=(1, 2, 4))
        cells = spec.expand()
        assert [(c.key.method, c.key.shards) for c in cells] == [
            ("gps-post", 1), ("gps-post", 2), ("gps-post", 4),
            ("triest", 1),
        ]
        for cell in cells:
            assert all(s.shards == cell.key.shards for s in cell.specs)

    def test_shards_axis_round_trips(self):
        spec = SweepSpec(sources=("a.txt",), methods=("gps-post",),
                         shards=(1, 4), budgets=(400,))
        assert SweepSpec.from_json(spec.to_json()) == spec

    def test_shards_axis_validation(self):
        with pytest.raises(ValueError, match="shards"):
            SweepSpec(sources=("a.txt",), shards=())
        with pytest.raises(ValueError, match="shards"):
            SweepSpec(sources=("a.txt",), shards=(0,))


# ----------------------------------------------------------------------
# Weight sanity for the wedge weight used above
# ----------------------------------------------------------------------
def test_wedge_weight_is_label_free():
    # The bit-identity acceptance sweep iterates every label-free
    # registered weight; wedge and uniform must both be in that set.
    assert is_label_free(UniformWeight())
    assert is_label_free(WedgeWeight())
