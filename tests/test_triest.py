"""Tests for the TRIEST baselines."""

from __future__ import annotations

import pytest

from repro.baselines.triest import TriestBase, TriestImpr
from repro.stats.running import RunningMoments
from repro.streams.stream import EdgeStream


def drive(counter, graph, stream_seed=0):
    for u, v in EdgeStream.from_graph(graph, seed=stream_seed):
        counter.process(u, v)
    return counter


class TestTriestBase:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TriestBase(2)

    def test_exact_when_no_eviction(self, k5_graph):
        counter = drive(TriestBase(100, seed=0), k5_graph)
        assert counter.triangle_estimate == pytest.approx(10.0)
        assert counter.sample_triangles == 10

    def test_scaling_factor_applied_after_capacity(self):
        counter = TriestBase(3, seed=0)
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]:
            counter.process(u, v)
        assert counter.arrivals == 5
        # ξ(5) = 5·4·3 / 3·2·1 = 10.
        assert counter.triangle_estimate == counter.sample_triangles * 10.0

    def test_skips_self_loops_and_sampled_duplicates(self):
        counter = TriestBase(10, seed=0)
        counter.process(0, 0)
        counter.process(0, 1)
        counter.process(1, 0)
        assert counter.arrivals == 1
        assert counter.sample_size == 1

    def test_sample_counter_consistent_with_sample(self, medium_graph):
        counter = drive(TriestBase(200, seed=1), medium_graph)
        # τ must equal the exact triangle count of the reservoir graph.
        from repro.graph.exact import triangle_count

        assert counter.sample_triangles == triangle_count(counter._graph)

    def test_unbiased(self, social_graph, social_stats):
        moments = RunningMoments()
        for seed in range(150):
            counter = drive(
                TriestBase(150, seed=1000 + seed), social_graph, stream_seed=seed
            )
            moments.add(counter.triangle_estimate)
        assert abs(moments.mean - social_stats.triangles) < 5.0 * moments.std_error


class TestTriestImpr:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TriestImpr(1)

    def test_exact_when_no_eviction(self, k5_graph):
        counter = drive(TriestImpr(100, seed=0), k5_graph)
        assert counter.triangle_estimate == pytest.approx(10.0)

    def test_estimate_monotone(self, medium_graph):
        counter = TriestImpr(200, seed=2)
        last = 0.0
        for u, v in EdgeStream.from_graph(medium_graph, seed=0).prefix(2000):
            counter.process(u, v)
            assert counter.triangle_estimate >= last
            last = counter.triangle_estimate

    def test_unbiased(self, social_graph, social_stats):
        moments = RunningMoments()
        for seed in range(150):
            counter = drive(
                TriestImpr(150, seed=2000 + seed), social_graph, stream_seed=seed
            )
            moments.add(counter.triangle_estimate)
        assert abs(moments.mean - social_stats.triangles) < 5.0 * moments.std_error

    def test_lower_variance_than_base(self, social_graph):
        base = RunningMoments()
        impr = RunningMoments()
        for seed in range(120):
            base.add(
                drive(
                    TriestBase(120, seed=seed), social_graph, stream_seed=seed
                ).triangle_estimate
            )
            impr.add(
                drive(
                    TriestImpr(120, seed=seed), social_graph, stream_seed=seed
                ).triangle_estimate
            )
        assert impr.variance < base.variance

    def test_sample_size_bounded(self, medium_graph):
        counter = drive(TriestImpr(77, seed=0), medium_graph)
        assert counter.sample_size == 77
