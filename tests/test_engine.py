"""Tests for repro.engine: StreamEngine and ReplicatedRunner."""

from __future__ import annotations

import pytest

from repro.baselines.triest import TriestImpr
from repro.core.in_stream import InStreamEstimator
from repro.core.priority_sampler import GraphPrioritySampler
from repro.core.weights import UniformWeight
from repro.engine import (
    MetricSummary,
    ReplicatedRunner,
    StreamEngine,
)
from repro.engine.replication import _ReplicationTask, _run_replication
from repro.graph.exact import ExactStreamCounter, compute_statistics
from repro.graph.generators import powerlaw_cluster
from repro.stats.running import RunningMoments
from repro.streams.stream import EdgeStream


@pytest.fixture(scope="module")
def engine_graph():
    return powerlaw_cluster(250, 3, 0.5, seed=11)


@pytest.fixture(scope="module")
def engine_stream(engine_graph):
    return EdgeStream.from_graph(engine_graph, seed=0)


class TestStreamEngine:
    def test_batched_path_matches_direct_processing(self, engine_stream):
        direct = InStreamEstimator(100, seed=3)
        direct.process_stream(engine_stream)
        driven = InStreamEstimator(100, seed=3)
        stats = StreamEngine(driven).run(engine_stream)
        assert stats.edges == len(engine_stream)
        assert stats.elapsed_seconds > 0.0
        assert driven.triangle_estimate == direct.triangle_estimate
        assert driven.wedge_estimate == direct.wedge_estimate
        assert driven.sampler.threshold == direct.sampler.threshold

    def test_checkpoints_fire_at_positions(self, engine_stream):
        marks = engine_stream.checkpoints(6)
        fired = []
        engine = StreamEngine(GraphPrioritySampler(50, seed=1))
        stats = engine.run(engine_stream, checkpoints=marks,
                           on_checkpoint=fired.append)
        assert fired == marks
        assert stats.checkpoints == tuple(marks)

    def test_checkpoint_state_matches_prefix_run(self, engine_stream):
        """At checkpoint t the counter state equals a fresh run over the
        t-edge prefix (batching must not smear past the mark)."""
        marks = engine_stream.checkpoints(4)
        estimator = InStreamEstimator(60, seed=9)
        seen = {}

        def record(t):
            seen[t] = estimator.triangle_estimate

        StreamEngine(estimator).run(engine_stream, checkpoints=marks,
                                    on_checkpoint=record)
        for t in marks:
            fresh = InStreamEstimator(60, seed=9)
            fresh.process_stream(engine_stream.prefix(t))
            assert seen[t] == fresh.triangle_estimate

    def test_lockstep_companions(self, engine_stream):
        estimator = InStreamEstimator(80, seed=2)
        exact = ExactStreamCounter()
        marks = engine_stream.checkpoints(5)
        exact_at = []
        engine = StreamEngine(estimator, companions=(exact,))
        stats = engine.run(engine_stream, checkpoints=marks,
                           on_checkpoint=lambda t: exact_at.append(exact.triangles))
        assert stats.edges == len(engine_stream)
        assert len(exact_at) == 5
        assert exact_at == sorted(exact_at)  # prefix counts are monotone
        final = compute_statistics(engine_stream.prefix_graph())
        assert exact_at[-1] == final.triangles

    def test_counter_without_process_many(self, engine_stream):
        counter = TriestImpr(60, seed=0)
        stats = StreamEngine(counter).run(engine_stream)
        assert stats.edges == len(engine_stream)
        assert counter.triangle_estimate >= 0.0

    def test_checkpoints_beyond_stream_never_fire(self):
        fired = []
        stats = StreamEngine(GraphPrioritySampler(5, seed=0)).run(
            [(0, 1), (1, 2)], checkpoints=[1, 5], on_checkpoint=fired.append
        )
        assert fired == [1]
        assert stats.edges == 2
        assert stats.checkpoints == (1,)

    def test_rejects_unsorted_checkpoints(self):
        engine = StreamEngine(GraphPrioritySampler(5, seed=0))
        with pytest.raises(ValueError):
            engine.run([(0, 1)], checkpoints=[3, 2])
        with pytest.raises(ValueError):
            engine.run([(0, 1)], checkpoints=[0, 2])

    def test_stats_throughput_fields(self, engine_stream):
        stats = StreamEngine(GraphPrioritySampler(40, seed=0)).run(engine_stream)
        assert stats.edges_per_second > 0.0
        assert stats.update_time_us > 0.0


class TestReplicatedRunner:
    def test_eight_replications_two_workers(self, engine_graph):
        runner = ReplicatedRunner(
            engine_graph, capacity=100, replications=8, max_workers=2
        )
        summary = runner.run()
        assert summary.workers == 2
        assert summary.num_replications == 8
        seeds = {(r.stream_seed, r.sampler_seed) for r in summary.replications}
        assert len(seeds) == 8
        # Aggregates agree with a direct Welford pass over the results.
        moments = RunningMoments()
        moments.extend(r.in_stream_triangles for r in summary.replications)
        assert summary.in_stream_triangles.mean == pytest.approx(moments.mean)
        assert summary.in_stream_triangles.variance == pytest.approx(
            moments.variance
        )
        assert summary.in_stream_triangles.count == 8
        assert (
            summary.in_stream_triangles.ci_low
            <= summary.in_stream_triangles.mean
            <= summary.in_stream_triangles.ci_high
        )

    def test_pool_matches_inline_execution(self, engine_graph):
        kwargs = dict(capacity=100, replications=4)
        pooled = ReplicatedRunner(engine_graph, max_workers=2, **kwargs).run()
        inline = ReplicatedRunner(engine_graph, max_workers=0, **kwargs).run()
        assert inline.workers == 0
        assert [r.in_stream_triangles for r in pooled.replications] == [
            r.in_stream_triangles for r in inline.replications
        ]
        assert pooled.in_stream_triangles.mean == inline.in_stream_triangles.mean

    def test_replication_stream_matches_from_graph_protocol(self, engine_graph):
        """A replication with stream_seed s runs exactly the stream
        EdgeStream.from_graph(graph, seed=s) produces."""
        runner = ReplicatedRunner(
            engine_graph, capacity=90, replications=1, max_workers=0,
            base_stream_seed=5, base_sampler_seed=77,
        )
        summary = runner.run()
        estimator = InStreamEstimator(90, seed=77)
        estimator.process_stream(EdgeStream.from_graph(engine_graph, seed=5))
        assert summary.replications[0].in_stream_triangles == (
            estimator.triangle_estimate
        )
        assert summary.replications[0].threshold == estimator.sampler.threshold

    def test_mean_tracks_exact_count(self, engine_graph):
        exact = compute_statistics(engine_graph)
        summary = ReplicatedRunner(
            engine_graph, capacity=150, replications=8, max_workers=2
        ).run()
        assert summary.in_stream_triangles.mean == pytest.approx(
            exact.triangles, rel=0.6
        )

    def test_accepts_raw_edge_sequence(self, engine_graph):
        edges = list(engine_graph.edges())
        summary = ReplicatedRunner(
            edges, capacity=80, replications=2, max_workers=0
        ).run()
        assert summary.num_replications == 2

    def test_picklable_weight_functions(self, engine_graph):
        summary = ReplicatedRunner(
            engine_graph, capacity=60, weight_fn=UniformWeight(),
            replications=3, max_workers=2,
        ).run()
        assert summary.num_replications == 3

    def test_invalid_configurations_rejected(self, engine_graph):
        with pytest.raises(ValueError):
            ReplicatedRunner(engine_graph, capacity=0)
        with pytest.raises(ValueError):
            ReplicatedRunner(engine_graph, capacity=5, replications=0)
        with pytest.raises(ValueError):
            ReplicatedRunner(engine_graph, capacity=5, max_workers=-1)
        with pytest.raises(ValueError):
            ReplicatedRunner(
                engine_graph, capacity=5, seed_pairs=[(0, 1), (0, 1)]
            )

    def test_worker_task_is_deterministic(self, engine_graph):
        task = _ReplicationTask(
            edges=tuple(sorted(engine_graph.edges(), key=repr)),
            capacity=70, weight_fn=None, stream_seed=3, sampler_seed=4,
        )
        a = _run_replication(task)
        b = _run_replication(task)
        assert a == b


class TestReplicatedBaselines:
    """Any registered method fans through the same pool (PR 2 tentpole)."""

    def test_triest_through_pool(self, engine_graph):
        summary = ReplicatedRunner(
            engine_graph, capacity=100, replications=4, max_workers=2,
            method="triest",
        ).run()
        assert summary.method == "triest"
        assert set(summary.metrics) == {"triangles"}
        stats = summary.metrics["triangles"]
        assert stats.count == 4
        assert stats.ci_low <= stats.mean <= stats.ci_high

    def test_baseline_pool_matches_inline(self, engine_graph):
        kwargs = dict(capacity=120, replications=3, method="triest-impr")
        pooled = ReplicatedRunner(engine_graph, max_workers=2, **kwargs).run()
        inline = ReplicatedRunner(engine_graph, max_workers=0, **kwargs).run()
        assert [r.metrics for r in pooled.replications] == [
            r.metrics for r in inline.replications
        ]

    def test_baseline_replication_matches_direct_pass(self, engine_graph):
        """Replication i of a baseline runs exactly the seeded stream."""
        summary = ReplicatedRunner(
            engine_graph, capacity=90, replications=1, max_workers=0,
            base_stream_seed=6, base_sampler_seed=42, method="triest-impr",
        ).run()
        direct = TriestImpr(90, seed=42)
        for u, v in EdgeStream.from_graph(engine_graph, seed=6):
            direct.process(u, v)
        assert summary.replications[0].metrics["triangles"] == (
            direct.triangle_estimate
        )

    def test_unknown_method_rejected_up_front(self, engine_graph):
        with pytest.raises(ValueError, match="unknown method"):
            ReplicatedRunner(engine_graph, capacity=10, method="frobnicate")

    def test_gps_legacy_accessors_still_work(self, engine_graph):
        summary = ReplicatedRunner(
            engine_graph, capacity=80, replications=2, max_workers=0
        ).run()
        assert summary.method == "gps"
        assert summary.in_stream_triangles.mean == (
            summary.metrics["in_stream_triangles"].mean
        )
        first = summary.replications[0]
        assert first.in_stream_triangles == first.metrics["in_stream_triangles"]


class TestMetricSummary:
    def test_single_value_collapses(self):
        summary = MetricSummary.from_values([5.0])
        assert summary.mean == 5.0
        assert summary.variance == 0.0
        assert summary.ci_low == summary.ci_high == 5.0

    def test_known_values(self):
        summary = MetricSummary.from_values([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.variance == pytest.approx(5.0 / 3.0)
        assert summary.count == 4
        assert summary.ci_low < 2.5 < summary.ci_high
