"""Tests for the uniform reservoir edge sampler (Vitter) substrate."""

from __future__ import annotations

import math
from collections import Counter

import pytest

from repro.baselines.base import BatchProcessMixin, StreamingTriangleCounter
from repro.baselines.mascot import Mascot
from repro.baselines.neighborhood import NeighborhoodSampling
from repro.baselines.reservoir import ReservoirEdgeSampler
from repro.baselines.triest import TriestBase, TriestImpr
from repro.core.in_stream import InStreamEstimator


class TestReservoirEdgeSampler:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReservoirEdgeSampler(0)

    def test_fills_then_caps(self):
        sampler = ReservoirEdgeSampler(3, seed=0)
        for i in range(10):
            sampler.process(i, i + 1)
        assert sampler.sample_size == 3
        assert sampler.arrivals == 10

    def test_skips_self_loops_and_sampled_duplicates(self):
        sampler = ReservoirEdgeSampler(5, seed=0)
        assert sampler.process(0, 0) is None
        sampler.process(0, 1)
        assert sampler.process(1, 0) is None
        assert sampler.arrivals == 1

    def test_graph_view_tracks_sample(self):
        sampler = ReservoirEdgeSampler(2, seed=1)
        for i in range(20):
            sampler.process(i, i + 1)
        assert sampler.graph.num_edges == 2
        assert sorted(sampler.graph.edges()) == sorted(sampler.edges())

    def test_inclusion_probability(self):
        sampler = ReservoirEdgeSampler(4, seed=0)
        for i in range(3):
            sampler.process(i, i + 1)
        assert sampler.inclusion_probability == 1.0
        for i in range(3, 16):
            sampler.process(i, i + 1)
        assert sampler.inclusion_probability == pytest.approx(4 / 16)

    def test_marginals_are_uniform(self):
        edges = [(i, i + 1) for i in range(25)]
        counts: Counter = Counter()
        runs = 4000
        m = 5
        for seed in range(runs):
            sampler = ReservoirEdgeSampler(m, seed=seed)
            for u, v in edges:
                sampler.process(u, v)
            counts.update(sampler.edges())
        expected = m / len(edges)
        sigma = math.sqrt(expected * (1 - expected) / runs)
        for edge in counts:
            assert abs(counts[edge] / runs - expected) < 4.5 * sigma


class TestCounterProtocol:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: TriestBase(10, seed=0),
            lambda: TriestImpr(10, seed=0),
            lambda: Mascot(0.5, seed=0),
            lambda: NeighborhoodSampling(10, seed=0),
            lambda: InStreamEstimator(10, seed=0),
        ],
        ids=["triest", "triest-impr", "mascot", "nsamp", "gps-in-stream"],
    )
    def test_satisfies_protocol(self, factory, k4_graph):
        counter = factory()
        assert isinstance(counter, StreamingTriangleCounter)
        # Every counter (mixin-inherited or hand-vectorised) batches.
        consumed = counter.process_many(k4_graph.edges())
        assert consumed == k4_graph.num_edges
        assert counter.triangle_estimate >= 0.0

    def test_baselines_inherit_batch_mixin(self):
        for factory in (
            lambda: TriestBase(10, seed=0),
            lambda: TriestImpr(10, seed=0),
            lambda: Mascot(0.5, seed=0),
            lambda: NeighborhoodSampling(10, seed=0),
            lambda: ReservoirEdgeSampler(10, seed=0),
        ):
            assert isinstance(factory(), BatchProcessMixin)
