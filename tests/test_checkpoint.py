"""Tests for sampler/estimator checkpointing (save → load → resume)."""

from __future__ import annotations

import json

import pytest

from repro.core.checkpoint import (
    estimator_state,
    load_checkpoint,
    restore_estimator,
    restore_sampler,
    sampler_state,
    save_checkpoint,
)
from repro.core.in_stream import InStreamEstimator
from repro.core.post_stream import PostStreamEstimator
from repro.core.priority_sampler import GraphPrioritySampler
from repro.core.weights import UniformWeight
from repro.graph.generators import powerlaw_cluster
from repro.streams.stream import EdgeStream


@pytest.fixture(scope="module")
def ckpt_graph():
    return powerlaw_cluster(500, 4, 0.5, seed=1)


@pytest.fixture(scope="module")
def ckpt_stream(ckpt_graph):
    return list(EdgeStream.from_graph(ckpt_graph, seed=2))


class TestSamplerRoundTrip:
    def test_state_is_json_serializable(self, ckpt_stream):
        sampler = GraphPrioritySampler(100, seed=3)
        sampler.process_stream(ckpt_stream[:500])
        state = sampler_state(sampler)
        json.dumps(state)  # must not raise

    def test_restore_reproduces_sample(self, ckpt_stream):
        sampler = GraphPrioritySampler(100, seed=3)
        sampler.process_stream(ckpt_stream[:500])
        restored = restore_sampler(sampler_state(sampler))
        assert sorted(restored.sampled_edges()) == sorted(sampler.sampled_edges())
        assert restored.threshold == sampler.threshold
        assert restored.stream_position == sampler.stream_position
        assert restored.normalized_probabilities() == (
            sampler.normalized_probabilities()
        )

    def test_resume_equals_uninterrupted_run(self, ckpt_stream):
        half = len(ckpt_stream) // 2
        full = GraphPrioritySampler(150, seed=4)
        full.process_stream(ckpt_stream)

        part = GraphPrioritySampler(150, seed=4)
        part.process_stream(ckpt_stream[:half])
        resumed = restore_sampler(sampler_state(part))
        resumed.process_stream(ckpt_stream[half:])

        assert sorted(resumed.sampled_edges()) == sorted(full.sampled_edges())
        assert resumed.threshold == full.threshold

    def test_weight_fingerprint_guard(self, ckpt_stream):
        sampler = GraphPrioritySampler(50, weight_fn=UniformWeight(), seed=5)
        sampler.process_stream(ckpt_stream[:200])
        state = sampler_state(sampler)
        restore_sampler(state, weight_fn=UniformWeight())  # matching: fine
        with pytest.raises(ValueError, match="weight function mismatch"):
            restore_sampler(state)  # default TriangleWeight differs

    def test_wrong_kind_rejected(self, ckpt_stream):
        sampler = GraphPrioritySampler(50, seed=6)
        sampler.process_stream(ckpt_stream[:100])
        state = sampler_state(sampler)
        state["kind"] = "other"
        with pytest.raises(ValueError, match="not a sampler checkpoint"):
            restore_sampler(state)

    def test_wrong_version_rejected(self, ckpt_stream):
        sampler = GraphPrioritySampler(50, seed=6)
        sampler.process_stream(ckpt_stream[:100])
        state = sampler_state(sampler)
        state["version"] = 99
        with pytest.raises(ValueError, match="version"):
            restore_sampler(state)


class TestEstimatorRoundTrip:
    def test_resume_equals_uninterrupted_run(self, ckpt_stream):
        half = len(ckpt_stream) // 2
        full = InStreamEstimator(150, seed=7)
        full.process_stream(ckpt_stream)

        part = InStreamEstimator(150, seed=7)
        part.process_stream(ckpt_stream[:half])
        resumed = restore_estimator(estimator_state(part))
        resumed.process_stream(ckpt_stream[half:])

        full_estimates = full.estimates()
        resumed_estimates = resumed.estimates()
        assert resumed_estimates.triangles.value == full_estimates.triangles.value
        assert resumed_estimates.wedges.value == full_estimates.wedges.value
        assert resumed_estimates.triangles.variance == (
            full_estimates.triangles.variance
        )
        assert resumed_estimates.tri_wedge_covariance == (
            full_estimates.tri_wedge_covariance
        )

    def test_post_stream_identical_after_restore(self, ckpt_stream):
        estimator = InStreamEstimator(120, seed=8)
        estimator.process_stream(ckpt_stream)
        restored = restore_estimator(estimator_state(estimator))
        original = PostStreamEstimator(estimator.sampler).estimate()
        recovered = PostStreamEstimator(restored.sampler).estimate()
        assert recovered.triangles.value == original.triangles.value
        assert recovered.triangles.variance == original.triangles.variance


class TestFileRoundTrip:
    def test_sampler_file(self, tmp_path, ckpt_stream):
        sampler = GraphPrioritySampler(80, seed=9)
        sampler.process_stream(ckpt_stream[:400])
        path = save_checkpoint(sampler, tmp_path / "sampler.json")
        loaded = load_checkpoint(path)
        assert isinstance(loaded, GraphPrioritySampler)
        assert sorted(loaded.sampled_edges()) == sorted(sampler.sampled_edges())

    def test_estimator_file(self, tmp_path, ckpt_stream):
        estimator = InStreamEstimator(80, seed=10)
        estimator.process_stream(ckpt_stream[:400])
        path = save_checkpoint(estimator, tmp_path / "est.json")
        loaded = load_checkpoint(path)
        assert isinstance(loaded, InStreamEstimator)
        assert loaded.triangle_estimate == estimator.triangle_estimate

    def test_creates_parent_directories(self, tmp_path, ckpt_stream):
        sampler = GraphPrioritySampler(10, seed=0)
        sampler.process_stream(ckpt_stream[:50])
        path = save_checkpoint(sampler, tmp_path / "deep" / "dir" / "c.json")
        assert path.exists()

    def test_unknown_object_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_checkpoint(object(), tmp_path / "x.json")

    def test_string_nodes_survive(self, tmp_path):
        sampler = GraphPrioritySampler(10, seed=0)
        sampler.process_stream([("alice", "bob"), ("bob", "carol")])
        path = save_checkpoint(sampler, tmp_path / "s.json")
        loaded = load_checkpoint(path)
        assert sorted(loaded.sampled_edges()) == [
            ("alice", "bob"), ("bob", "carol"),
        ]
