"""Tests for the AdjacencyGraph substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.adjacency import AdjacencyGraph

edge_lists = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=120
)


class TestConstruction:
    def test_empty(self):
        graph = AdjacencyGraph()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0

    def test_from_edges(self):
        graph = AdjacencyGraph([(0, 1), (1, 2)])
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_self_loops_ignored(self):
        graph = AdjacencyGraph([(1, 1), (0, 1)])
        assert graph.num_edges == 1
        assert not graph.has_edge(1, 1)

    def test_duplicates_collapse(self):
        graph = AdjacencyGraph([(0, 1), (1, 0), (0, 1)])
        assert graph.num_edges == 1

    def test_add_edge_returns_newness(self):
        graph = AdjacencyGraph()
        assert graph.add_edge(0, 1) is True
        assert graph.add_edge(1, 0) is False
        assert graph.add_edge(2, 2) is False

    def test_add_node_isolated(self):
        graph = AdjacencyGraph()
        graph.add_node(7)
        assert 7 in graph
        assert graph.degree(7) == 0
        assert graph.num_nodes == 1


class TestMutation:
    def test_remove_edge(self):
        graph = AdjacencyGraph([(0, 1), (1, 2)])
        graph.remove_edge(0, 1)
        assert graph.num_edges == 1
        assert not graph.has_edge(0, 1)
        assert graph.has_edge(1, 2)

    def test_remove_missing_raises(self):
        graph = AdjacencyGraph([(0, 1)])
        with pytest.raises(KeyError):
            graph.remove_edge(0, 2)

    def test_copy_is_independent(self):
        graph = AdjacencyGraph([(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert graph.num_edges == 1
        assert clone.num_edges == 2


class TestQueries:
    def test_degree_and_neighbors(self, diamond_graph):
        assert diamond_graph.degree(1) == 3
        assert diamond_graph.neighbors(1) == {0, 2, 3}
        assert diamond_graph.degree(99) == 0
        assert diamond_graph.neighbors(99) == frozenset()

    def test_edges_iterates_each_once(self, k4_graph):
        edges = list(k4_graph.edges())
        assert len(edges) == 6
        assert len(set(edges)) == 6
        assert all(u < v for u, v in edges)

    def test_common_neighbors(self, diamond_graph):
        assert diamond_graph.common_neighbors(1, 2) == {0, 3}
        assert diamond_graph.common_neighbors(0, 3) == {1, 2}
        assert diamond_graph.common_neighbors(0, 99) == set()

    def test_triangles_through(self, diamond_graph):
        assert diamond_graph.triangles_through(1, 2) == 2
        assert diamond_graph.triangles_through(0, 1) == 1

    def test_subgraph_induced(self, k4_graph):
        sub = k4_graph.subgraph([0, 1, 2])
        assert sub.num_nodes == 3
        assert sub.num_edges == 3

    def test_subgraph_keeps_isolated_nodes(self):
        graph = AdjacencyGraph([(0, 1)])
        graph.add_node(5)
        sub = graph.subgraph([0, 5])
        assert sub.num_nodes == 2
        assert sub.num_edges == 0

    def test_len_is_node_count(self, k4_graph):
        assert len(k4_graph) == 4


@settings(max_examples=150, deadline=None)
@given(edge_lists)
def test_edge_count_matches_edge_iteration(pairs):
    graph = AdjacencyGraph(pairs)
    assert graph.num_edges == len(list(graph.edges()))


@settings(max_examples=150, deadline=None)
@given(edge_lists)
def test_degree_sum_is_twice_edges(pairs):
    graph = AdjacencyGraph(pairs)
    assert sum(graph.degree(v) for v in graph.nodes()) == 2 * graph.num_edges


@settings(max_examples=150, deadline=None)
@given(edge_lists)
def test_adjacency_is_symmetric(pairs):
    graph = AdjacencyGraph(pairs)
    for u in graph.nodes():
        for v in graph.neighbors(u):
            assert u in graph.neighbors(v)
