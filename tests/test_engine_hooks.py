"""``StreamEngine.on_chunk`` observers (satellite 2 of the serving PR).

Two invariant families:

* hooks fire at every natural segment boundary of whichever drive the
  engine picked, with monotone 1-based positions that end at the
  stream length;
* hooks are *observationally free* — registering one never perturbs
  the counter's RNG state, sample, or estimates relative to an
  unhooked run (the serving layer leans on this: snapshot publication
  must not change what is being snapshotted).
"""

from __future__ import annotations

import numpy as np

from repro.core.compact import CompactGraphPrioritySampler
from repro.core.priority_sampler import GraphPrioritySampler
from repro.core.weights import TriangleWeight
from repro.engine.stream_engine import StreamEngine
from repro.graph.exact import ExactStreamCounter
from repro.graph.generators import powerlaw_cluster
from repro.streams.stream import EdgeStream


def _edges(n_nodes=150, seed=7):
    graph = powerlaw_cluster(n_nodes, 3, 0.4, seed=4)
    return list(EdgeStream.from_graph(graph, seed=seed))


def _compact(seed=9):
    return CompactGraphPrioritySampler(
        50, weight_fn=TriangleWeight(), seed=seed
    )


class _PerEdgeOnly:
    """A companion without ``process_many``: forces the lockstep drive."""

    def __init__(self) -> None:
        self.count = 0

    def process(self, u, v) -> None:
        self.count += 1


def _run_with_hook(engine, edges, **kwargs):
    positions = []
    engine.on_chunk(positions.append)
    stats = engine.run(edges, **kwargs)
    return stats, positions


def _assert_boundary_contract(positions, total):
    assert positions, "hooks never fired"
    assert positions == sorted(positions)
    assert len(set(positions)) == len(positions), "double-fired a position"
    assert positions[-1] == total
    assert all(p >= 1 for p in positions)


# ----------------------------------------------------------------------
# Hooks fire in every drive
# ----------------------------------------------------------------------
def test_hooks_fire_in_chunked_drive_at_block_and_mark_boundaries():
    edges = _edges()
    engine = StreamEngine(_compact(), chunk_size=64)
    stats, positions = _run_with_hook(
        engine, edges, checkpoints=[100, 250], on_checkpoint=lambda t: None
    )
    _assert_boundary_contract(positions, stats.edges)
    # Checkpoint splits are segment boundaries too.
    assert 100 in positions and 250 in positions
    # Block-sized cadence between the marks.
    assert 64 in positions


def test_hooks_fire_in_batched_drive():
    edges = _edges()
    engine = StreamEngine(GraphPrioritySampler(capacity=50, seed=9))
    stats, positions = _run_with_hook(engine, edges, checkpoints=[120])
    _assert_boundary_contract(positions, stats.edges)
    assert 120 in positions


def test_hooks_fire_in_batched_drive_with_companions():
    edges = _edges()
    engine = StreamEngine(
        GraphPrioritySampler(capacity=50, seed=9),
        companions=[ExactStreamCounter()],
    )
    stats, positions = _run_with_hook(engine, edges, checkpoints=[120])
    _assert_boundary_contract(positions, stats.edges)
    assert 120 in positions


def test_hooks_fire_per_arrival_in_lockstep_drive():
    edges = _edges()[:40]
    companion = _PerEdgeOnly()
    engine = StreamEngine(
        GraphPrioritySampler(capacity=20, seed=9), companions=[companion]
    )
    stats, positions = _run_with_hook(engine, edges)
    assert positions == list(range(1, len(edges) + 1))
    assert stats.edges == len(edges) == companion.count


def test_on_chunk_works_as_decorator_and_stacks():
    edges = _edges()[:100]
    engine = StreamEngine(_compact(), chunk_size=32)
    first, second = [], []

    @engine.on_chunk
    def _observe(position):
        first.append(position)

    engine.on_chunk(second.append)
    engine.run(edges)
    assert first == second
    assert _observe is not None  # decorator returns the callback


def test_hooks_see_truncated_stream_end_position():
    edges = _edges()[:50]
    engine = StreamEngine(GraphPrioritySampler(capacity=20, seed=9))
    # Checkpoint past the end: stream dies early, hook still reports 50.
    stats, positions = _run_with_hook(engine, edges, checkpoints=[500])
    assert stats.edges == 50
    assert positions[-1] == 50


# ----------------------------------------------------------------------
# Hooks are observationally free
# ----------------------------------------------------------------------
def _final_state(sampler):
    sample = sampler.sample.materialize()
    return (
        sampler.stream_position,
        sampler.threshold,
        sorted(record.key for record in sample.records()),
        sorted(record.priority for record in sample.records()),
    )


def test_hooks_do_not_perturb_compact_chunked_run():
    edges = _edges()
    plain = _compact()
    StreamEngine(plain, chunk_size=64).run(edges)

    hooked = _compact()
    engine = StreamEngine(hooked, chunk_size=64)
    engine.on_chunk(lambda position: None)
    engine.on_chunk(lambda position: None)  # two observers, same answer
    engine.run(edges)

    assert _final_state(hooked) == _final_state(plain)
    np.testing.assert_array_equal(
        hooked.snapshot_arrays().priority[: hooked.sample_size],
        plain.snapshot_arrays().priority[: plain.sample_size],
    )


def test_hooks_do_not_perturb_batched_run():
    edges = _edges()
    plain = GraphPrioritySampler(capacity=50, seed=9)
    StreamEngine(plain).run(edges, checkpoints=[100])

    hooked = GraphPrioritySampler(capacity=50, seed=9)
    engine = StreamEngine(hooked)
    engine.on_chunk(lambda position: None)
    engine.run(edges, checkpoints=[100])

    assert hooked.stream_position == plain.stream_position
    assert hooked.threshold == plain.threshold
    assert sorted(e.key for e in hooked.sample.records()) == sorted(
        e.key for e in plain.sample.records()
    )


def test_hooks_do_not_perturb_lockstep_run():
    edges = _edges()[:80]
    plain = GraphPrioritySampler(capacity=30, seed=9)
    StreamEngine(plain, companions=[_PerEdgeOnly()]).run(edges)

    hooked = GraphPrioritySampler(capacity=30, seed=9)
    engine = StreamEngine(hooked, companions=[_PerEdgeOnly()])
    engine.on_chunk(lambda position: None)
    engine.run(edges)

    assert hooked.threshold == plain.threshold
    assert sorted(e.key for e in hooked.sample.records()) == sorted(
        e.key for e in plain.sample.records()
    )


def test_reader_inside_hook_sees_consistent_prefix_state():
    """An observer reading the counter sees exactly-position state."""
    edges = _edges()
    sampler = _compact()
    engine = StreamEngine(sampler, chunk_size=64)
    seen = []
    engine.on_chunk(
        lambda position: seen.append((position, sampler.stream_position))
    )
    engine.run(edges)
    assert seen
    assert all(position == live for position, live in seen)
