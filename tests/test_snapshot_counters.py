"""Tests for the in-stream snapshot counters (clique counter + reference)."""

from __future__ import annotations

import pytest

from repro.core.in_stream import InStreamEstimator
from repro.core.priority_sampler import GraphPrioritySampler
from repro.core.snapshot_counters import (
    InStreamCliqueCounter,
    InStreamTriangleReference,
)
from repro.core.subgraphs import CliqueEstimator
from repro.graph.generators import complete_graph, powerlaw_cluster, star_graph
from repro.graph.motifs import count_cliques4
from repro.stats.running import RunningMoments
from repro.streams.stream import EdgeStream


class TestTriangleReference:
    """Algorithm 3's triangle count must equal the generic snapshot sum."""

    def test_matches_optimized_in_stream(self, medium_graph):
        stream = list(EdgeStream.from_graph(medium_graph, seed=0))
        optimized = InStreamEstimator(capacity=300, seed=5)
        reference = InStreamTriangleReference(capacity=300, seed=5)
        for u, v in stream:
            optimized.process(u, v)
            reference.process(u, v)
        assert reference.triangle_estimate == pytest.approx(
            optimized.triangle_estimate
        )

    def test_snapshot_values_frozen(self, k4_graph):
        reference = InStreamTriangleReference(capacity=100, seed=1)
        for u, v in EdgeStream.from_graph(k4_graph, seed=1):
            reference.process(u, v)
        # no overflow: every snapshot is worth exactly 1
        assert all(s.value == 1.0 for s in reference.snapshots)
        assert reference.triangle_estimate == pytest.approx(4.0)


class TestInStreamCliqueCounter:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            InStreamCliqueCounter(10, size=2)

    @pytest.mark.parametrize("n,size,expected", [(4, 4, 1), (5, 4, 5), (6, 5, 6)])
    def test_exact_on_complete_graphs(self, n, size, expected):
        counter = InStreamCliqueCounter(capacity=100, size=size, seed=0)
        counter.process_stream(EdgeStream.from_graph(complete_graph(n), seed=0))
        assert counter.clique_estimate == pytest.approx(expected)

    def test_triangle_size_matches_triangle_counter(self, medium_graph):
        stream = list(EdgeStream.from_graph(medium_graph, seed=2))
        cliques = InStreamCliqueCounter(capacity=400, size=3, seed=7)
        triangles = InStreamEstimator(capacity=400, seed=7)
        for u, v in stream:
            cliques.process(u, v)
            triangles.process(u, v)
        assert cliques.clique_estimate == pytest.approx(
            triangles.triangle_estimate
        )

    def test_zero_on_clique_free_graph(self):
        counter = InStreamCliqueCounter(capacity=50, size=4, seed=0)
        counter.process_stream(EdgeStream.from_graph(star_graph(10), seed=0))
        assert counter.clique_estimate == 0.0
        assert counter.snapshots_taken == 0

    def test_exact_without_overflow(self):
        graph = powerlaw_cluster(120, 4, 0.8, seed=4)
        counter = InStreamCliqueCounter(
            capacity=graph.num_edges + 1, size=4, seed=3
        )
        counter.process_stream(EdgeStream.from_graph(graph, seed=3))
        assert counter.clique_estimate == pytest.approx(count_cliques4(graph))

    def test_unbiased_under_sampling(self):
        graph = powerlaw_cluster(120, 4, 0.8, seed=4)
        actual = count_cliques4(graph)
        assert actual > 0
        moments = RunningMoments()
        for seed in range(150):
            counter = InStreamCliqueCounter(capacity=250, size=4, seed=5_000 + seed)
            counter.process_stream(EdgeStream.from_graph(graph, seed=seed))
            moments.add(counter.clique_estimate)
        assert abs(moments.mean - actual) < 5.0 * moments.std_error

    def test_lower_variance_than_post_stream(self):
        """Snapshots reduce variance for cliques just as for triangles."""
        graph = powerlaw_cluster(120, 4, 0.8, seed=4)
        in_stream = RunningMoments()
        post = RunningMoments()
        for seed in range(100):
            counter = InStreamCliqueCounter(capacity=250, size=4, seed=6_000 + seed)
            counter.process_stream(EdgeStream.from_graph(graph, seed=seed))
            in_stream.add(counter.clique_estimate)
            post.add(CliqueEstimator(counter.sampler, size=4).estimate().value)
        assert in_stream.variance < post.variance

    def test_skips_duplicates_and_loops(self):
        counter = InStreamCliqueCounter(capacity=10, size=3, seed=0)
        counter.process(0, 0)
        counter.process(0, 1)
        counter.process(0, 1)
        assert counter.sampler.stream_position == 1
        assert counter.clique_estimate == 0.0

    def test_shares_sampler_protocol(self):
        sampler = GraphPrioritySampler(capacity=50, seed=1)
        counter = InStreamCliqueCounter(capacity=50, size=4, sampler=sampler)
        assert counter.sampler is sampler
