"""Tests for the NSAMP (neighbourhood sampling) baseline."""

from __future__ import annotations

import pytest

from repro.baselines.neighborhood import NeighborhoodSampling
from repro.stats.running import RunningMoments
from repro.streams.stream import EdgeStream


def drive(counter, graph, stream_seed=0):
    for u, v in EdgeStream.from_graph(graph, seed=stream_seed):
        counter.process(u, v)
    return counter


class TestBasics:
    def test_instances_validation(self):
        with pytest.raises(ValueError):
            NeighborhoodSampling(0)

    def test_empty_stream_estimate(self):
        assert NeighborhoodSampling(10, seed=0).triangle_estimate == 0.0

    def test_self_loops_ignored(self):
        counter = NeighborhoodSampling(10, seed=0)
        counter.process(1, 1)
        assert counter.arrivals == 0

    def test_single_triangle_capture_logic(self):
        """With one instance, e1=(0,1), e2=(1,2), edge (0,2) must close it."""
        counter = NeighborhoodSampling(1, seed=0)
        # t=1: e1 <- (0,1) with probability 1.
        counter.process(0, 1)
        # t=2: adjacency holds; c=1 so e2 <- (1,2) with probability 1,
        # unless the level-1 coin (prob 1/2) replaced e1 first.  Run until
        # we find a seed where the closure is detected.
        counter.process(1, 2)
        counter.process(0, 2)
        estimate = counter.triangle_estimate
        # Estimate is either 0 (e1 replaced) or c·t = 1·3.
        assert estimate in (0.0, 3.0)

    def test_closed_instances_counted(self, k4_graph):
        counter = drive(NeighborhoodSampling(500, seed=1), k4_graph)
        assert 0 < counter.closed_instances <= 500


class TestUnbiasedness:
    def test_k4_mean(self, k4_graph):
        # K4 has 4 triangles; average over instances and seeds.
        moments = RunningMoments()
        for seed in range(100):
            counter = drive(NeighborhoodSampling(300, seed=seed), k4_graph,
                            stream_seed=seed)
            moments.add(counter.triangle_estimate)
        assert abs(moments.mean - 4.0) < 5.0 * moments.std_error

    def test_social_graph_mean(self, social_graph, social_stats):
        moments = RunningMoments()
        for seed in range(40):
            counter = drive(
                NeighborhoodSampling(400, seed=5000 + seed),
                social_graph,
                stream_seed=seed,
            )
            moments.add(counter.triangle_estimate)
        assert abs(moments.mean - social_stats.triangles) < 5.0 * moments.std_error

    def test_more_instances_reduce_variance(self, social_graph):
        few = RunningMoments()
        many = RunningMoments()
        for seed in range(30):
            few.add(
                drive(
                    NeighborhoodSampling(50, seed=seed), social_graph, stream_seed=seed
                ).triangle_estimate
            )
            many.add(
                drive(
                    NeighborhoodSampling(800, seed=seed), social_graph, stream_seed=seed
                ).triangle_estimate
            )
        assert many.variance < few.variance
