"""Tests for the spec-driven sweep subsystem (repro.api.sweep / ground_truth).

Grid expansion edge cases, SweepSpec JSON round trip, ground-truth cache
hit/miss bit-equivalence, resume behaviour, and equivalence of sweep
cells against direct ``run(spec)`` passes under shared seeds.
"""

from __future__ import annotations

import json

import pytest

from repro.api import RunSpec, SweepSpec, run, run_sweep
from repro.api.ground_truth import (
    ContentAddressedStore,
    GroundTruthCache,
    content_key,
    source_descriptor,
)
from repro.api.sweep import CellKey
from repro.graph.exact import compute_statistics
from repro.graph.generators import powerlaw_cluster
from repro.graph.io import read_edge_list, write_edge_list


@pytest.fixture(scope="module")
def edge_file(tmp_path_factory):
    graph = powerlaw_cluster(250, 3, 0.5, seed=9)
    path = tmp_path_factory.mktemp("sweep") / "graph.txt"
    write_edge_list(graph, path)
    return str(path)


@pytest.fixture(scope="module")
def small_spec(edge_file):
    return SweepSpec(
        sources=(edge_file,),
        methods=("triest", "gps-in-stream"),
        budgets=(80, 120),
        runs=2,
        base_stream_seed=3,
        base_sampler_seed=30,
        workers=0,
    )


class TestSweepSpecValidation:
    def test_empty_sources_rejected(self):
        with pytest.raises(ValueError, match="sources"):
            SweepSpec(sources=())

    @pytest.mark.parametrize("axis", ["methods", "budgets", "weights"])
    def test_empty_axis_rejected(self, axis):
        with pytest.raises(ValueError, match=axis):
            SweepSpec(sources=("a.txt",), **{axis: ()})

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError, match="budgets"):
            SweepSpec(sources=("a.txt",), budgets=(100, 0))

    def test_zero_runs_rejected(self):
        with pytest.raises(ValueError, match="runs"):
            SweepSpec(sources=("a.txt",), runs=0)

    def test_bad_budget_policy_rejected(self):
        with pytest.raises(ValueError, match="budget_policy"):
            SweepSpec(sources=("a.txt",), budget_policy="explode")

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            SweepSpec(sources=("a.txt",), workers=-1)

    def test_override_for_unknown_source_rejected(self):
        with pytest.raises(ValueError, match="does not match any source"):
            SweepSpec(sources=("a.txt",), overrides={"b.txt": {"runs": 2}})

    def test_override_with_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown override axes"):
            SweepSpec(
                sources=("a.txt",),
                overrides={"a.txt": {"capacities": (5,)}},
            )

    def test_empty_override_axis_rejected(self):
        with pytest.raises(ValueError, match="must not be empty"):
            SweepSpec(sources=("a.txt",), overrides={"a.txt": {"budgets": ()}})

    def test_lists_coerced_to_tuples(self):
        spec = SweepSpec(sources=["a.txt"], methods=["triest"], budgets=[5])
        assert spec.sources == ("a.txt",)
        assert spec.methods == ("triest",)
        assert spec.budgets == (5,)
        assert hash(spec) == hash(spec.replace())


class TestSweepSpecRoundTrip:
    def test_json_round_trip(self, small_spec):
        assert SweepSpec.from_json(small_spec.to_json()) == small_spec

    def test_round_trip_with_overrides_weights_and_policy(self):
        spec = SweepSpec(
            sources=("a.txt", "b.txt"),
            methods=("gps", "triest"),
            budgets=(100, 200),
            weights=("triangle", None),
            runs=3,
            checkpoints=4,
            include_post=True,
            budget_policy="skip",
            workers=0,
            overrides={"b.txt": {"budgets": (50,), "runs": 1}},
        )
        rebuilt = SweepSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.overrides_map == {"b.txt": {"budgets": (50,), "runs": 1}}

    def test_dict_form_is_json_safe(self, small_spec):
        assert json.loads(json.dumps(small_spec.to_dict())) == small_spec.to_dict()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown SweepSpec fields"):
            SweepSpec.from_dict({"sources": ["a.txt"], "capacity": 7})

    def test_replace_revalidates(self, small_spec):
        with pytest.raises(ValueError):
            small_spec.replace(runs=0)


class TestExpansion:
    def test_grid_order_and_size(self, small_spec):
        cells = small_spec.expand()
        assert [(c.key.method, c.key.budget) for c in cells] == [
            ("triest", 80), ("triest", 120),
            ("gps-in-stream", 80), ("gps-in-stream", 120),
        ]

    def test_seed_schedule(self, small_spec):
        cell = small_spec.expand()[0]
        assert [(s.stream_seed, s.sampler_seed) for s in cell.specs] == [
            (3, 30), (4, 31),
        ]
        assert all(s.replications == 1 for s in cell.specs)

    def test_duplicate_axis_values_deduped(self, edge_file):
        spec = SweepSpec(
            sources=(edge_file, edge_file),
            methods=("triest", "triest"),
            budgets=(80, 80),
        )
        assert len(spec.expand()) == 1

    def test_weight_axis_collapses_for_weight_free_methods(self, edge_file):
        spec = SweepSpec(
            sources=(edge_file,),
            methods=("gps", "triest"),
            budgets=(80,),
            weights=("triangle", "uniform"),
        )
        keys = [
            (c.key.method, c.key.weight) for c in spec.expand()
        ]
        # gps keeps both weights; triest collapses to a single None cell.
        assert keys == [
            ("gps", "triangle"), ("gps", "uniform"), ("triest", None),
        ]

    def test_unknown_method_fails_at_expansion(self, edge_file):
        spec = SweepSpec(sources=(edge_file,), methods=("nope",))
        with pytest.raises(ValueError, match="unknown method"):
            spec.expand()

    def test_per_source_overrides(self, edge_file):
        spec = SweepSpec(
            sources=(edge_file, "infra-roadNet-CA"),
            methods=("triest",),
            budgets=(80,),
            runs=2,
            overrides={
                "infra-roadNet-CA": {"budgets": (500, 700), "runs": 1},
            },
        )
        cells = spec.expand()
        assert [(c.key.source, c.key.budget, len(c.specs)) for c in cells] == [
            (edge_file, 80, 2),
            ("infra-roadNet-CA", 500, 1),
            ("infra-roadNet-CA", 700, 1),
        ]


class TestGroundTruthCache:
    def test_memory_hit_and_miss_counters(self, edge_file):
        cache = GroundTruthCache()
        first = cache.statistics(edge_file)
        second = cache.statistics(edge_file)
        assert (cache.misses, cache.hits) == (1, 1)
        assert first == second

    def test_cached_statistics_bit_equal_to_direct_computation(
        self, edge_file, tmp_path
    ):
        direct = compute_statistics(read_edge_list(edge_file))
        disk = GroundTruthCache(tmp_path / "cache")
        computed = disk.statistics(edge_file)
        assert computed == direct
        # A fresh cache instance must round-trip through the disk layer
        # bit-equivalently (ints exact, float via repr-faithful JSON).
        fresh = GroundTruthCache(tmp_path / "cache")
        replayed = fresh.statistics(edge_file)
        assert (fresh.misses, fresh.hits) == (0, 1)
        assert replayed == direct

    def test_dataset_sources_keyed_by_generated_content(self):
        descriptor = source_descriptor("infra-roadNet-CA")
        assert descriptor["kind"] == "dataset"
        assert descriptor["name"] == "infra-roadNet-CA"
        # The key follows the generated edge set, so a changed generator
        # definition misses the persistent cache instead of replaying
        # stale statistics.
        assert len(descriptor["edges_sha256"]) == 64
        assert descriptor != source_descriptor("com-amazon")

    def test_file_sources_are_content_addressed(self, tmp_path):
        a = tmp_path / "a.txt"
        b = tmp_path / "renamed.txt"
        a.write_text("1 2\n2 3\n")
        b.write_text("1 2\n2 3\n")
        assert source_descriptor(str(a)) == source_descriptor(str(b))
        b.write_text("1 2\n2 3\n3 4\n")
        assert source_descriptor(str(a)) != source_descriptor(str(b))

    def test_missing_source_raises(self):
        with pytest.raises(ValueError, match="cannot resolve source"):
            source_descriptor("no-such-dataset-or-file")

    def test_store_survives_corrupt_entries(self, tmp_path):
        store = ContentAddressedStore(tmp_path)
        key = content_key({"kind": "test"})
        store.write(key, {"x": 1})
        assert store.read(key) == {"x": 1}
        # Any corruption shape degrades to a miss: invalid JSON, valid
        # JSON that is not our envelope, and an envelope with bad data.
        for garbage in ("{ not json", "null", "[]", '"text"',
                        '{"version": 1, "data": [1, 2]}'):
            store.path_for(key).write_text(garbage)
            assert store.read(key) is None, garbage

    def test_memory_only_cache_never_hashes_dataset_content(
        self, monkeypatch
    ):
        # Without a disk layer the memo is name-keyed; the per-edge
        # content hashing pass must not run (it exists to validate
        # entries that outlive the process).
        import repro.api.ground_truth as gt

        def boom(name):
            raise AssertionError("content hashing ran for a memory-only cache")

        monkeypatch.setattr(gt, "_dataset_sha256", boom)
        cache = GroundTruthCache()
        stats = cache.statistics("infra-roadNet-CA")
        assert stats.triangles > 0
        assert cache.statistics("infra-roadNet-CA") == stats
        assert (cache.misses, cache.hits) == (1, 1)


class TestRunSweep:
    @pytest.fixture(scope="class")
    def report(self, small_spec):
        return run_sweep(small_spec)

    def test_cells_match_grid(self, report, small_spec):
        assert [c.key for c in report.cells] == [
            c.key for c in small_spec.expand()
        ]

    def test_cells_bit_equal_to_direct_runs(self, report, edge_file):
        cell = report.cell(edge_file, "gps-in-stream", budget=120)
        for i, spec in enumerate(
            (
                RunSpec(source=edge_file, method="gps-in-stream", budget=120,
                        stream_seed=3 + i, sampler_seed=30 + i)
                for i in range(2)
            )
        ):
            assert cell.reports[i].estimates == run(spec).estimates

    def test_metric_summaries_cover_method_metrics(self, report, edge_file):
        cell = report.cell(edge_file, "gps-in-stream", budget=80)
        assert set(cell.metrics) == {"triangles", "wedges", "clustering"}
        assert cell.metrics["triangles"].count == 2
        assert cell.triangles.mean == cell.metrics["triangles"].mean

    def test_relative_error_against_cached_truth(self, report, edge_file):
        truth = compute_statistics(read_edge_list(edge_file))
        cell = report.cell(edge_file, "triest", budget=120)
        expected = abs(cell.triangles.mean - truth.triangles) / truth.triangles
        assert cell.relative_error == pytest.approx(expected)
        assert cell.ground_truth == truth

    def test_ground_truth_computed_once_for_whole_grid(self, report):
        assert report.ground_truth_misses == 1
        assert report.ground_truth_hits == 0

    def test_error_matrix_shape(self, report, edge_file):
        matrix = report.error_matrix(edge_file)
        assert matrix["methods"] == ["triest", "gps-in-stream"]
        assert matrix["budgets"] == [80, 120]
        assert all(len(row) == 2 for row in matrix["errors"])
        assert all(e >= 0 for row in matrix["errors"] for e in row)

    def test_cell_lookup_errors(self, report, edge_file):
        with pytest.raises(KeyError, match="no cell"):
            report.cell(edge_file, "mascot")
        with pytest.raises(KeyError, match="ambiguous"):
            report.cell(edge_file, "triest")

    def test_weight_none_is_selectable_not_a_wildcard(self, edge_file):
        # A grid can legitimately contain both a weight=None cell (the
        # method's default weight) and named-weight siblings; None must
        # select the former, not match everything.
        spec = SweepSpec(
            sources=(edge_file,), methods=("gps-in-stream",),
            budgets=(80,), weights=(None, "uniform"), workers=0,
        )
        report = run_sweep(spec)
        assert len(report.cells) == 2
        default = report.cell(edge_file, "gps-in-stream", weight=None)
        assert default.key.weight is None
        named = report.cell(edge_file, "gps-in-stream", weight="uniform")
        assert named.key.weight == "uniform"
        with pytest.raises(KeyError, match="ambiguous"):
            report.cell(edge_file, "gps-in-stream")

    def test_csv_export(self, report):
        lines = report.to_csv().splitlines()
        assert lines[0].startswith("source,method,budget,weight,runs")
        assert len(lines) == 1 + len(report.cells)

    def test_json_export_parses(self, report):
        payload = json.loads(report.to_json())
        assert payload["spec"]["methods"] == ["triest", "gps-in-stream"]
        assert len(payload["cells"]) == 4
        assert payload["cache"]["ground_truth_misses"] == 1

    def test_parallel_workers_bit_identical(self, small_spec, report):
        parallel = run_sweep(small_spec.replace(workers=2))
        for inline_cell, pool_cell in zip(report.cells, parallel.cells):
            assert inline_cell.metrics == pool_cell.metrics
            assert inline_cell.relative_error == pool_cell.relative_error


class TestBudgetPolicy:
    def test_clip_caps_budget_at_edge_count(self, edge_file):
        truth = compute_statistics(read_edge_list(edge_file))
        spec = SweepSpec(
            sources=(edge_file,), methods=("triest",),
            budgets=(10**9,), budget_policy="clip", workers=0,
        )
        report = run_sweep(spec)
        assert [c.key.budget for c in report.cells] == [truth.num_edges]

    def test_clip_dedupes_colliding_budgets(self, edge_file):
        truth = compute_statistics(read_edge_list(edge_file))
        spec = SweepSpec(
            sources=(edge_file,), methods=("triest",),
            budgets=(10**8, 10**9), budget_policy="clip", workers=0,
        )
        report = run_sweep(spec)
        assert [c.key.budget for c in report.cells] == [truth.num_edges]

    def test_skip_drops_oversized_cells(self, edge_file):
        spec = SweepSpec(
            sources=(edge_file,), methods=("triest",),
            budgets=(80, 10**9), budget_policy="skip", workers=0,
        )
        report = run_sweep(spec)
        assert [c.key.budget for c in report.cells] == [80]
        assert report.skipped == (
            CellKey(edge_file, "triest", 10**9, None),
        )


class TestSweepCacheResume:
    def test_resume_serves_cells_from_cache_bit_equivalently(
        self, small_spec, tmp_path
    ):
        cache = tmp_path / "cache"
        cold = run_sweep(small_spec, cache_dir=cache)
        assert cold.cell_cache_hits == 0
        assert cold.cell_cache_misses == 8
        assert (cache / "ground_truth").exists()
        assert len(list((cache / "cells").glob("*.json"))) == 8

        warm = run_sweep(small_spec, cache_dir=cache, resume=True)
        assert warm.cell_cache_hits == 8
        assert warm.cell_cache_misses == 0
        assert warm.ground_truth_hits == 1
        assert warm.ground_truth_misses == 0
        for cold_cell, warm_cell in zip(cold.cells, warm.cells):
            assert cold_cell.metrics == warm_cell.metrics
            assert cold_cell.triangles == warm_cell.triangles
            assert cold_cell.relative_error == warm_cell.relative_error
            assert warm_cell.cached_runs == warm_cell.runs

    def test_without_resume_cache_is_written_but_not_read(
        self, small_spec, tmp_path
    ):
        cache = tmp_path / "cache"
        run_sweep(small_spec, cache_dir=cache)
        again = run_sweep(small_spec, cache_dir=cache)
        assert again.cell_cache_hits == 0
        assert again.cell_cache_misses == 8

    def test_changed_grid_misses_cell_cache(self, small_spec, tmp_path):
        cache = tmp_path / "cache"
        run_sweep(small_spec, cache_dir=cache)
        moved = run_sweep(
            small_spec.replace(base_sampler_seed=999),
            cache_dir=cache,
            resume=True,
        )
        assert moved.cell_cache_hits == 0

    def test_edited_source_file_misses_content_addressed_cache(
        self, tmp_path
    ):
        path = tmp_path / "graph.txt"
        write_edge_list(powerlaw_cluster(60, 2, 0.4, seed=4), path)
        spec = SweepSpec(sources=(str(path),), methods=("triest",),
                         budgets=(20,), workers=0)
        cache = tmp_path / "cache"
        run_sweep(spec, cache_dir=cache)
        write_edge_list(powerlaw_cluster(60, 2, 0.4, seed=5), path)
        after = run_sweep(spec, cache_dir=cache, resume=True)
        assert after.cell_cache_hits == 0
        assert after.ground_truth_misses == 1


class TestTrackingSweep:
    def test_tracking_cells_carry_series(self, edge_file):
        spec = SweepSpec(
            sources=(edge_file,), methods=("gps", "triest"),
            budgets=(100,), checkpoints=4, include_post=True, workers=0,
        )
        report = run_sweep(spec)
        gps = report.cell(edge_file, "gps").reports[0]
        assert len(gps.tracking) == 4
        assert gps.tracking[-1].in_stream is not None
        assert gps.tracking[-1].post_stream is not None
        triest = report.cell(edge_file, "triest").reports[0]
        assert len(triest.tracking) == 4
        assert triest.tracking[-1].in_stream is None
