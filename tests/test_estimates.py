"""Tests for the estimate containers."""

from __future__ import annotations

import math

import pytest

from repro.core.estimates import GraphEstimates, SubgraphEstimate


class TestSubgraphEstimate:
    def test_std_error(self):
        assert SubgraphEstimate(10.0, 25.0).std_error == 5.0

    def test_std_error_clamps_negative_variance(self):
        assert SubgraphEstimate(10.0, -1.0).std_error == 0.0

    def test_confidence_bounds(self):
        estimate = SubgraphEstimate(100.0, 100.0)
        lb, ub = estimate.confidence_bounds()
        assert lb == pytest.approx(100 - 1.96 * 10, abs=0.01)
        assert ub == pytest.approx(100 + 1.96 * 10, abs=0.01)
        assert estimate.lower_bound == pytest.approx(lb)
        assert estimate.upper_bound == pytest.approx(ub)

    def test_custom_level(self):
        estimate = SubgraphEstimate(0.0, 1.0)
        lb99, ub99 = estimate.confidence_bounds(level=0.99)
        lb95, ub95 = estimate.confidence_bounds(level=0.95)
        assert lb99 < lb95 and ub99 > ub95

    def test_relative_error(self):
        assert SubgraphEstimate(90.0, 0.0).relative_error(100.0) == pytest.approx(0.1)
        assert SubgraphEstimate(0.0, 0.0).relative_error(0.0) == 0.0
        assert SubgraphEstimate(1.0, 0.0).relative_error(0.0) == float("inf")


class TestGraphEstimates:
    def test_from_raw_derives_clustering(self):
        bundle = GraphEstimates.from_raw(
            triangle_count=30.0,
            triangle_variance=9.0,
            wedge_count=300.0,
            wedge_variance=100.0,
            tri_wedge_covariance=5.0,
            stream_position=1000,
            sample_size=100,
            threshold=2.5,
        )
        assert bundle.clustering.value == pytest.approx(3 * 30 / 300)
        assert bundle.clustering.variance > 0.0
        assert bundle.stream_position == 1000
        assert bundle.sample_size == 100
        assert bundle.threshold == 2.5

    def test_zero_wedges_gives_zero_clustering(self):
        bundle = GraphEstimates.from_raw(
            triangle_count=0.0,
            triangle_variance=0.0,
            wedge_count=0.0,
            wedge_variance=0.0,
            tri_wedge_covariance=0.0,
            stream_position=0,
            sample_size=0,
            threshold=0.0,
        )
        assert bundle.clustering.value == 0.0
        assert bundle.clustering.variance == 0.0

    def test_clustering_variance_uses_delta_method(self):
        # Against the formula: Var ≈ 9·[Vt/W² + T²·Vw/W⁴ − 2·T·C/W³].
        t, w, vt, vw, c = 30.0, 300.0, 9.0, 100.0, 5.0
        bundle = GraphEstimates.from_raw(t, vt, w, vw, c, 1, 1, 1.0)
        expected = 9.0 * (
            vt / w**2 + t * t * vw / w**4 - 2 * t * c / w**3
        )
        assert bundle.clustering.variance == pytest.approx(expected)

    def test_immutable(self):
        estimate = SubgraphEstimate(1.0, 1.0)
        with pytest.raises(AttributeError):
            estimate.value = 2.0
