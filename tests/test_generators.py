"""Tests for the from-scratch random graph generators."""

from __future__ import annotations

import pytest

from repro.graph.exact import global_clustering, triangle_count
from repro.graph.generators import (
    barabasi_albert,
    chung_lu,
    complete_graph,
    cycle_graph,
    erdos_renyi_gnm,
    path_graph,
    powerlaw_cluster,
    road_grid,
    star_graph,
    stochastic_block_model,
    watts_strogatz,
)


def assert_simple(graph):
    """No self loops (structural) and consistent degree bookkeeping."""
    for u in graph.nodes():
        assert u not in graph.neighbors(u)
    assert sum(graph.degree(v) for v in graph.nodes()) == 2 * graph.num_edges


class TestDeterministicFamilies:
    def test_complete(self):
        graph = complete_graph(6)
        assert graph.num_nodes == 6
        assert graph.num_edges == 15
        assert_simple(graph)

    def test_star(self):
        graph = star_graph(7)
        assert graph.num_nodes == 8
        assert graph.num_edges == 7
        assert graph.degree(0) == 7

    def test_cycle(self):
        graph = cycle_graph(6)
        assert graph.num_edges == 6
        assert all(graph.degree(v) == 2 for v in graph.nodes())

    def test_tiny_cycle_is_single_node(self):
        assert cycle_graph(1).num_nodes == 1
        assert cycle_graph(1).num_edges == 0

    def test_path(self):
        graph = path_graph(5)
        assert graph.num_edges == 4
        assert graph.degree(0) == 1
        assert graph.degree(2) == 2


class TestErdosRenyi:
    def test_exact_edge_count(self):
        graph = erdos_renyi_gnm(50, 200, seed=0)
        assert graph.num_nodes == 50
        assert graph.num_edges == 200
        assert_simple(graph)

    def test_too_many_edges_raises(self):
        with pytest.raises(ValueError):
            erdos_renyi_gnm(5, 100, seed=0)

    def test_deterministic_by_seed(self):
        g1 = erdos_renyi_gnm(40, 100, seed=3)
        g2 = erdos_renyi_gnm(40, 100, seed=3)
        assert sorted(g1.edges()) == sorted(g2.edges())

    def test_seeds_differ(self):
        g1 = erdos_renyi_gnm(40, 100, seed=3)
        g2 = erdos_renyi_gnm(40, 100, seed=4)
        assert sorted(g1.edges()) != sorted(g2.edges())


class TestBarabasiAlbert:
    def test_size_and_edge_count(self):
        graph = barabasi_albert(200, 3, seed=0)
        assert graph.num_nodes == 200
        # star seed contributes `attach` edges; each later node adds `attach`.
        assert graph.num_edges == 3 + 3 * (200 - 4)
        assert_simple(graph)

    def test_heavy_tail(self):
        graph = barabasi_albert(500, 2, seed=1)
        degrees = sorted((graph.degree(v) for v in graph.nodes()), reverse=True)
        assert degrees[0] >= 5 * degrees[len(degrees) // 2]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, 0)
        with pytest.raises(ValueError):
            barabasi_albert(3, 3)


class TestPowerlawCluster:
    def test_clustering_increases_with_triangle_prob(self):
        low = powerlaw_cluster(400, 3, 0.0, seed=2)
        high = powerlaw_cluster(400, 3, 0.9, seed=2)
        assert global_clustering(high) > global_clustering(low)

    def test_structure(self):
        graph = powerlaw_cluster(300, 4, 0.5, seed=3)
        assert graph.num_nodes == 300
        assert_simple(graph)
        assert triangle_count(graph) > 0

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            powerlaw_cluster(10, 2, 1.5)


class TestChungLu:
    def test_reaches_target_edges(self):
        graph = chung_lu(500, 2000, exponent=2.3, seed=4)
        assert graph.num_edges == 2000
        assert_simple(graph)

    def test_heavier_exponent_gives_heavier_tail(self):
        flat = chung_lu(800, 3000, exponent=3.5, seed=5)
        heavy = chung_lu(800, 3000, exponent=2.05, seed=5)
        max_flat = max(flat.degree(v) for v in flat.nodes())
        max_heavy = max(heavy.degree(v) for v in heavy.nodes())
        assert max_heavy > max_flat

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            chung_lu(1, 5)

    def test_target_capped_at_complete_graph(self):
        graph = chung_lu(10, 10_000, seed=6)
        assert graph.num_edges <= 45


class TestWattsStrogatz:
    def test_no_rewiring_is_ring_lattice(self):
        graph = watts_strogatz(30, 4, 0.0, seed=7)
        assert graph.num_edges == 60
        assert all(graph.degree(v) == 4 for v in graph.nodes())

    def test_rewiring_preserves_edge_count(self):
        graph = watts_strogatz(100, 6, 0.4, seed=8)
        assert graph.num_edges == 300
        assert_simple(graph)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, 3, 0.1)
        with pytest.raises(ValueError):
            watts_strogatz(4, 4, 0.1)


class TestStochasticBlockModel:
    def test_block_density_contrast(self):
        graph = stochastic_block_model([60, 60], p_in=0.3, p_out=0.01, seed=9)
        within = sum(
            1 for u, v in graph.edges() if (u < 60) == (v < 60)
        )
        across = graph.num_edges - within
        assert within > 4 * across
        assert_simple(graph)

    def test_zero_probabilities(self):
        graph = stochastic_block_model([10, 10], p_in=0.0, p_out=0.0, seed=10)
        assert graph.num_edges == 0
        assert graph.num_nodes == 20


class TestRoadGrid:
    def test_pure_grid_has_no_triangles(self):
        graph = road_grid(10, 12, diagonal_prob=0.0, seed=11)
        assert graph.num_nodes == 120
        assert graph.num_edges == 10 * 11 + 12 * 9
        assert triangle_count(graph) == 0

    def test_diagonals_create_triangles(self):
        graph = road_grid(15, 15, diagonal_prob=0.5, seed=12)
        assert triangle_count(graph) > 0
        assert_simple(graph)

    def test_clustering_stays_low(self):
        graph = road_grid(25, 25, diagonal_prob=0.1, seed=13)
        assert global_clustering(graph) < 0.15


@pytest.mark.parametrize(
    "factory",
    [
        lambda seed: erdos_renyi_gnm(60, 150, seed=seed),
        lambda seed: barabasi_albert(80, 3, seed=seed),
        lambda seed: powerlaw_cluster(80, 3, 0.4, seed=seed),
        lambda seed: chung_lu(80, 200, seed=seed),
        lambda seed: watts_strogatz(40, 4, 0.3, seed=seed),
        lambda seed: stochastic_block_model([20, 20], 0.3, 0.05, seed=seed),
        lambda seed: road_grid(8, 8, 0.2, seed=seed),
    ],
    ids=["gnm", "ba", "plc", "cl", "ws", "sbm", "road"],
)
def test_generators_deterministic_by_seed(factory):
    assert sorted(factory(123).edges()) == sorted(factory(123).edges())
