"""Columnar edge chunks: the numpy-facing shape of a stream.

Everything upstream of the samplers traffics in ``(u, v)`` tuples — the
natural Python shape, but the wrong one for a vectorised admission
pre-pass.  This module defines the columnar alternative: a *chunk* is a
pair of equal-length dense ``int32`` arrays ``(u, v)`` holding up to
``DEFAULT_CHUNK_SIZE`` arrivals in stream order.  Chunks feed
``process_chunk`` on the compact GPS core
(:mod:`repro.core.compact`), which screens a whole block against the
reservoir threshold in a handful of numpy operations instead of one
Python loop iteration per loser.

Three producers exist:

* :meth:`repro.streams.stream.EdgeStream.chunks` — columnarises a
  materialised stream once (cached) and yields zero-copy slices;
* :func:`repro.graph.io.iter_edge_chunks` — reads an edge-list file as
  blocks without ever materialising the whole stream;
* :func:`iter_chunks` here — adapts any lazy ``(u, v)`` iterable, one
  block's worth of pairs in memory at a time.

Columnarisation never relabels: it only succeeds when every node label
already is a machine integer in ``[-2³¹, 2³¹)`` (the synthetic
generators, interned streams and integer edge-list files all are), so a
chunked pass sees exactly the labels a scalar pass would and samples,
checkpoints and reports stay label-faithful.  Arbitrary labels can opt
in through an explicit :class:`~repro.streams.interner.NodeInterner`.

numpy is a declared dependency (``pyproject.toml``), but every consumer
degrades gracefully when it is absent: :func:`numpy_or_none` gates the
fast paths, and the scalar pipeline remains the behavioural oracle.
"""

from __future__ import annotations

from itertools import chain, islice
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.graph.edge import Node

try:  # pragma: no cover - the container ships numpy; belt and braces
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Default arrivals per columnar block.  Large enough to amortise the
#: per-block fixed costs (MT19937 state transplant ~170 µs, reservoir
#: screen ~80 µs), small enough that the admission gate's snapshot of
#: the heap root stays fresh; the bench chunk-size axis
#: (``python -m repro bench engine``) tracks the sensitivity, which is
#: flat within 2× either side of this value.
DEFAULT_CHUNK_SIZE = 16384

#: int32 bounds a label must fit for direct (relabelling-free) columns.
_INT32_MIN = -(2**31)
_INT32_MAX = 2**31 - 1

Edge = Tuple[Node, Node]
#: A columnar block: equal-length int32 arrays (u column, v column).
Chunk = Tuple["_np.ndarray", "_np.ndarray"]


def numpy_or_none():
    """The :mod:`numpy` module, or ``None`` when unavailable."""
    return _np


def columnar_or_none(edges: Sequence[Edge]) -> Optional[Chunk]:
    """``(u, v)`` int32 columns of ``edges``, or ``None`` when impossible.

    Succeeds only when every label is a plain int (``bool`` excluded)
    within int32 range — then the columns carry the *original* labels and
    a chunked pass is label-faithful.  Anything else (strings, floats,
    overflow, missing numpy) returns ``None`` and callers keep the
    scalar tuple path.

    Examples
    --------
    >>> u, v = columnar_or_none([(0, 1), (1, 2)])
    >>> u.tolist(), v.tolist()
    ([0, 1], [1, 2])
    >>> columnar_or_none([("a", "b")]) is None
    True
    """
    if _np is None:
        return None
    for u, v in edges:
        if type(u) is not int or type(v) is not int:
            return None
        if not (_INT32_MIN <= u <= _INT32_MAX and _INT32_MIN <= v <= _INT32_MAX):
            return None
    n = len(edges)
    flat = _np.fromiter(
        chain.from_iterable(edges), dtype=_np.int32, count=2 * n
    )
    pairs = flat.reshape(n, 2)
    return _np.ascontiguousarray(pairs[:, 0]), _np.ascontiguousarray(pairs[:, 1])


def pairs_from_columns(us, vs):
    """A columnar block back as an iterator of plain-int ``(u, v)`` pairs.

    The one adapter every scalar fallback shares: ``tolist()`` unboxes
    numpy scalars to the exact Python ints/labels a tuple stream would
    have carried, so delegating a block to a scalar loop stays
    bit-identical (dict hashing, record contents, reprs).

    >>> import numpy as np
    >>> list(pairs_from_columns(np.array([0, 1]), np.array([1, 2])))
    [(0, 1), (1, 2)]
    """
    u_list = us.tolist() if hasattr(us, "tolist") else list(us)
    v_list = vs.tolist() if hasattr(vs, "tolist") else list(vs)
    return zip(u_list, v_list)


def iter_chunks(
    edges: Iterable[Edge],
    size: int = DEFAULT_CHUNK_SIZE,
    interner=None,
) -> Iterator[Chunk]:
    """Adapt any lazy ``(u, v)`` iterable into columnar int32 blocks.

    Labels must already be int32-range ints; pass a
    :class:`~repro.streams.interner.NodeInterner` to intern arbitrary
    labels to dense ids instead (the interner keeps the id → label map).
    Raises :class:`TypeError` on non-integer labels without an interner
    and :class:`RuntimeError` when numpy is unavailable.

    Examples
    --------
    >>> blocks = list(iter_chunks(((i, i + 1) for i in range(5)), size=2))
    >>> [(u.tolist(), v.tolist()) for u, v in blocks]
    [([0, 1], [1, 2]), ([2, 3], [3, 4]), ([4], [5])]
    """
    if _np is None:
        raise RuntimeError("columnar chunks need numpy, which is unavailable")
    if size <= 0:
        raise ValueError("chunk size must be positive")
    it = iter(edges)
    intern = interner.intern if interner is not None else None
    while True:
        block: List[Edge] = list(islice(it, size))
        if not block:
            return
        if intern is not None:
            block = [(intern(u), intern(v)) for u, v in block]
        columns = columnar_or_none(block)
        if columns is None:
            raise TypeError(
                "chunked streams need int32-range integer node labels; "
                "pass a NodeInterner to intern arbitrary labels"
            )
        yield columns


__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "columnar_or_none",
    "iter_chunks",
    "numpy_or_none",
    "pairs_from_columns",
]
