"""Edge streams: the arbitrary-order arrival model of the paper.

An :class:`EdgeStream` wraps a concrete edge sequence and can be iterated
multiple times (each iteration replays the same order).  The canonical
constructor, :meth:`EdgeStream.from_graph`, randomly permutes a graph's
edge set with an explicit seed — exactly the experimental setup of Sec. 6
("We generate the graph stream by randomly permuting the set of edges in
each graph").
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.edge import Node
from repro.streams.chunks import (
    DEFAULT_CHUNK_SIZE,
    columnar_or_none,
    numpy_or_none,
)
from repro.streams.interner import NodeInterner


class EdgeStream:
    """A replayable, finite stream of undirected edges."""

    __slots__ = ("_edges", "_columns")

    def __init__(self, edges: Sequence[Tuple[Node, Node]]) -> None:
        self._edges: List[Tuple[Node, Node]] = list(edges)
        self._columns = None  # lazily built by columnar(); False = can't

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def canonical_edges(graph: AdjacencyGraph) -> List[Tuple[Node, Node]]:
        """``graph``'s edge set in the canonical pre-permutation order.

        This ordering is the contract every seeded stream shares: a
        permutation with seed ``s`` of the canonical order is *the*
        stream ``(graph, s)`` denotes, wherever it is rebuilt (here, in
        replication workers, in the :mod:`repro.api` executor).
        """
        return sorted(graph.edges(), key=repr)

    @classmethod
    def from_graph(
        cls, graph: AdjacencyGraph, seed: Optional[int] = None
    ) -> "EdgeStream":
        """Random permutation of ``graph``'s edge set (paper Sec. 6 setup).

        The permutation is drawn from ``random.Random(seed)``; the same
        seed always yields the same arrival order.
        """
        edges = cls.canonical_edges(graph)
        random.Random(seed).shuffle(edges)
        return cls(edges)

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[Node, Node]]) -> "EdgeStream":
        """Stream with the given explicit arrival order."""
        return cls(list(edges))

    def interned(
        self, interner: Optional[NodeInterner] = None
    ) -> Tuple["EdgeStream", NodeInterner]:
        """The same stream on dense ``int32`` node ids.

        Returns ``(stream, interner)``: an :class:`EdgeStream` in the
        identical arrival order whose labels are replaced by dense ids
        (first-encounter order), plus the
        :class:`~repro.streams.interner.NodeInterner` mapping ids back to
        the original labels.  Interning changes no estimate — every
        metric in the repo is label-free — and is what the compact core
        and the shared-memory replication fan-out run on.

        >>> stream, interner = EdgeStream([("a", "b"), ("b", "c")]).interned()
        >>> list(stream), interner.label(2)
        ([(0, 1), (1, 2)], 'c')
        """
        interner = interner if interner is not None else NodeInterner()
        return EdgeStream(interner.intern_edges(self._edges)), interner

    # ------------------------------------------------------------------
    # Columnar (chunked) access
    # ------------------------------------------------------------------
    def columnar(self):
        """The whole stream as ``(u, v)`` int32 columns, or ``None``.

        Succeeds only when every node label is already an int32-range
        integer — then the columns carry the original labels and the
        chunked pipeline is label-faithful (no interning).  The result
        is cached: repeated :meth:`chunks` calls pay the conversion
        once.

        >>> EdgeStream([(0, 1), (1, 2)]).columnar()[0].tolist()
        [0, 1]
        >>> EdgeStream([("a", "b")]).columnar() is None
        True
        """
        if self._columns is None:
            built = columnar_or_none(self._edges)
            self._columns = False if built is None else built
        return None if self._columns is False else self._columns

    def chunks(
        self,
        size: int = DEFAULT_CHUNK_SIZE,
        interner: Optional[NodeInterner] = None,
    ) -> Iterator[Tuple["object", "object"]]:
        """Yield the stream as columnar int32 blocks of ≤ ``size`` edges.

        Blocks are zero-copy views into the cached :meth:`columnar`
        arrays, in arrival order — the input shape of
        ``process_chunk`` on the compact GPS core.  Streams whose
        labels are not int32-range integers need an explicit
        :class:`~repro.streams.interner.NodeInterner` (dense ids in
        first-encounter order; the interner keeps the label map) and
        raise :class:`TypeError` without one.

        >>> [u.tolist() for u, v in EdgeStream([(0, 1), (1, 2), (2, 3)]).chunks(2)]
        [[0, 1], [2]]
        """
        if size <= 0:
            raise ValueError("chunk size must be positive")
        if numpy_or_none() is None:
            raise RuntimeError(
                "columnar chunks need numpy, which is unavailable"
            )
        columns = self.columnar()
        if columns is None:
            if interner is None:
                raise TypeError(
                    "stream labels are not int32-range ints; pass a "
                    "NodeInterner to intern them to dense ids"
                )
            columns = columnar_or_none(interner.intern_edges(self._edges))
        u, v = columns
        for start in range(0, len(u), size):
            yield u[start:start + size], v[start:start + size]

    # ------------------------------------------------------------------
    # Sequence-ish protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Tuple[Node, Node]]:
        return iter(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return EdgeStream(self._edges[index])
        return self._edges[index]

    def prefix(self, length: int) -> "EdgeStream":
        """The first ``length`` arrivals as a new stream."""
        return EdgeStream(self._edges[:length])

    def prefix_graph(self, length: Optional[int] = None) -> AdjacencyGraph:
        """The (simple) graph formed by the first ``length`` arrivals."""
        upto = len(self._edges) if length is None else length
        return AdjacencyGraph(self._edges[:upto])

    def enumerate(self, start: int = 1) -> Iterator[Tuple[int, Tuple[Node, Node]]]:
        """Iterate ``(t, (u, v))`` with arrival index ``t`` starting at 1."""
        t = start
        for edge in self._edges:
            yield t, edge
            t += 1

    def checkpoints(self, count: int) -> List[int]:
        """``count`` evenly spaced arrival indices ending at the stream end.

        Always produces exactly ``min(count, n)`` strictly increasing marks
        in ``[1, n]``: when rounding makes two ideal marks collide, the
        later one advances to the next free index (and marks near the end
        retreat just enough that the remainder still fit).

        Used by the time-series experiments (Table 3, Figure 3) to pick
        when to record estimates.
        """
        if count <= 0:
            return []
        n = len(self._edges)
        if count >= n:
            return list(range(1, n + 1))
        step = n / count
        marks: List[int] = []
        for i in range(count):
            mark = int(round(step * (i + 1)))
            lowest = marks[-1] + 1 if marks else 1
            highest = n - (count - 1 - i)  # leave room for the rest
            marks.append(min(max(mark, lowest), highest))
        return marks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EdgeStream(len={len(self._edges)})"
