"""Stream transforms: hygiene and reshaping for edge streams.

The paper assumes simplified graphs (unique, loop-free edges).  Real edge
lists rarely guarantee that, so :func:`simplify_edges` is the standard
pre-processing step; the remaining helpers cover common experiment plumbing
(prefix/suffix selection, relabelling, synthetic timestamps).

All transforms are lazy generators over ``(u, v)`` pairs and compose.
"""

from __future__ import annotations

from itertools import islice
from typing import Callable, Dict, Iterable, Iterator, Set, Tuple

from repro.graph.edge import EdgeKey, Node, canonical_edge, is_self_loop


def simplify_edges(
    edges: Iterable[Tuple[Node, Node]],
) -> Iterator[Tuple[Node, Node]]:
    """Drop self loops and repeat occurrences of an undirected edge.

    The first arrival of each undirected edge is kept with its original
    endpoint order; later duplicates (in either orientation) are dropped.
    """
    seen: Set[EdgeKey] = set()
    for u, v in edges:
        if is_self_loop(u, v):
            continue
        key = canonical_edge(u, v)
        if key in seen:
            continue
        seen.add(key)
        yield u, v


def take(edges: Iterable[Tuple[Node, Node]], count: int) -> Iterator[Tuple[Node, Node]]:
    """The first ``count`` arrivals."""
    return islice(iter(edges), count)


def skip(edges: Iterable[Tuple[Node, Node]], count: int) -> Iterator[Tuple[Node, Node]]:
    """Everything after the first ``count`` arrivals."""
    return islice(iter(edges), count, None)


def map_nodes(
    edges: Iterable[Tuple[Node, Node]],
    mapping: Callable[[Node], Node],
) -> Iterator[Tuple[Node, Node]]:
    """Apply ``mapping`` to both endpoints of every edge."""
    for u, v in edges:
        yield mapping(u), mapping(v)


def relabel_streaming(
    edges: Iterable[Tuple[Node, Node]],
) -> Iterator[Tuple[int, int]]:
    """Relabel nodes to consecutive ints in first-appearance order."""
    labels: Dict[Node, int] = {}
    for u, v in edges:
        iu = labels.setdefault(u, len(labels))
        iv = labels.setdefault(v, len(labels))
        yield iu, iv


def with_timestamps(
    edges: Iterable[Tuple[Node, Node]],
    start: float = 0.0,
    interval: float = 1.0,
) -> Iterator[Tuple[float, Node, Node]]:
    """Attach synthetic arrival timestamps ``start + t·interval``."""
    timestamp = start
    for u, v in edges:
        yield timestamp, u, v
        timestamp += interval
