"""Node interning: arbitrary labels → dense ``int32`` ids.

The paper's stream model allows any hashable node labels, but everything
downstream of the stream — reservoir membership, adjacency lookups,
triangle intersections — only needs label *identity*.  Interning the
labels to dense machine integers at stream-construction time therefore
changes no estimate (every metric in the repo is label-free) while
buying two things:

* the compact core's hot-path dict operations hash small ints instead of
  arbitrary objects;
* the edge population becomes a flat ``int32`` array, which is what the
  zero-copy shared-memory fan-out (:mod:`repro.engine.shared_edges`)
  publishes to replication workers — per-task payloads stay seed pairs
  no matter how large the graph is.

Ids are assigned densely in first-encounter order, so interning the same
edge sequence always produces the same id sequence — the property the
replication pool relies on when parent and workers intern independently
is *not* needed here precisely because only the parent interns; workers
receive the already-interned array.

The synthetic generators (:mod:`repro.graph.generators`) already emit
dense ``0..n-1`` int labels, for which interning is the identity
relabelling; edge-list files (:func:`repro.graph.io.iter_edge_list`) can
intern at parse time via the ``interner`` argument.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.graph.edge import Node

#: Dense ids are published as int32 (float-free, numpy-friendly); a
#: graph would need > 2**31 - 1 distinct nodes to overflow this.
MAX_NODES = 2**31 - 1

Edge = Tuple[Node, Node]
InternedEdge = Tuple[int, int]


class NodeInterner:
    """Bijective ``label ↔ dense int`` mapping in first-encounter order.

    Examples
    --------
    >>> interner = NodeInterner()
    >>> interner.intern_edges([("a", "b"), ("b", "c")])
    [(0, 1), (1, 2)]
    >>> interner.label(2), len(interner)
    ('c', 3)
    """

    __slots__ = ("_ids", "_labels")

    def __init__(self) -> None:
        self._ids: Dict[Node, int] = {}
        self._labels: List[Node] = []

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: Node) -> bool:
        return label in self._ids

    def intern(self, label: Node) -> int:
        """The dense id of ``label``, assigning the next id if new."""
        ids = self._ids
        node_id = ids.get(label)
        if node_id is None:
            node_id = len(ids)
            if node_id >= MAX_NODES:
                raise OverflowError(
                    f"more than {MAX_NODES} distinct node labels"
                )
            ids[label] = node_id
            self._labels.append(label)
        return node_id

    def intern_edges(self, edges: Iterable[Edge]) -> List[InternedEdge]:
        """Intern a whole edge sequence (order-preserving)."""
        ids = self._ids
        labels = self._labels
        out: List[InternedEdge] = []
        append = out.append
        for u, v in edges:
            iu = ids.get(u)
            if iu is None:
                iu = len(ids)
                ids[u] = iu
                labels.append(u)
            iv = ids.get(v)
            if iv is None:
                iv = len(ids)
                ids[v] = iv
                labels.append(v)
            append((iu, iv))
        if len(labels) > MAX_NODES:
            raise OverflowError(f"more than {MAX_NODES} distinct node labels")
        return out

    def id_of(self, label: Node) -> int:
        """The id of an already-interned label; unknown labels raise."""
        try:
            return self._ids[label]
        except KeyError:
            raise KeyError(f"label {label!r} was never interned") from None

    def label(self, node_id: int) -> Node:
        """The original label of a dense id."""
        try:
            return self._labels[node_id]
        except IndexError:
            raise KeyError(f"no label interned with id {node_id}") from None

    def edge_labels(
        self, edges: Iterable[InternedEdge]
    ) -> Iterator[Edge]:
        """Map interned edges back to their original labels."""
        labels = self._labels
        for u, v in edges:
            yield labels[u], labels[v]

    @property
    def labels(self) -> Tuple[Node, ...]:
        """All interned labels, indexed by id."""
        return tuple(self._labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeInterner(nodes={len(self._labels)})"


def intern_edges(
    edges: Sequence[Edge],
) -> Tuple[List[InternedEdge], NodeInterner]:
    """Convenience one-shot: ``(interned edges, interner)``.

    Example
    -------
    >>> interned, interner = intern_edges([(10, 20), (20, 30)])
    >>> interned
    [(0, 1), (1, 2)]
    """
    interner = NodeInterner()
    return interner.intern_edges(edges), interner


__all__ = ["MAX_NODES", "NodeInterner", "intern_edges"]
