"""Graph-stream substrate.

The paper's stream model presents the edges of a graph in arbitrary order,
each processed exactly once (Sec. 1).  Experiments generate streams by
randomly permuting a graph's edge set (Sec. 6).  :class:`EdgeStream`
implements that model with explicit seeding so every run is reproducible,
and :mod:`repro.streams.transforms` provides the usual stream hygiene
(simplification, take/skip, relabelling, synthetic timestamps).
:mod:`repro.streams.interner` interns arbitrary node labels to dense
``int32`` ids at stream-construction time, so everything downstream of
an :class:`EdgeStream` can run on machine integers, and
:mod:`repro.streams.chunks` turns streams into columnar ``int32``
blocks (``EdgeStream.chunks``) feeding the compact core's vectorised
``process_chunk`` admission pre-pass.
"""

from repro.streams.chunks import (
    DEFAULT_CHUNK_SIZE,
    columnar_or_none,
    iter_chunks,
)
from repro.streams.interner import NodeInterner, intern_edges
from repro.streams.stream import EdgeStream
from repro.streams.transforms import (
    map_nodes,
    simplify_edges,
    skip,
    take,
    with_timestamps,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "EdgeStream",
    "NodeInterner",
    "columnar_or_none",
    "iter_chunks",
    "intern_edges",
    "map_nodes",
    "simplify_edges",
    "skip",
    "take",
    "with_timestamps",
]
