"""Graph-stream substrate.

The paper's stream model presents the edges of a graph in arbitrary order,
each processed exactly once (Sec. 1).  Experiments generate streams by
randomly permuting a graph's edge set (Sec. 6).  :class:`EdgeStream`
implements that model with explicit seeding so every run is reproducible,
and :mod:`repro.streams.transforms` provides the usual stream hygiene
(simplification, take/skip, relabelling, synthetic timestamps).
"""

from repro.streams.stream import EdgeStream
from repro.streams.transforms import (
    map_nodes,
    simplify_edges,
    skip,
    take,
    with_timestamps,
)

__all__ = [
    "EdgeStream",
    "map_nodes",
    "simplify_edges",
    "skip",
    "take",
    "with_timestamps",
]
