"""Content-addressed caching of exact ground truth (and sweep cells).

Every cell of a sweep grid reports error against the *exact* statistics
of its source graph — and exact triangle counting is the single most
expensive computation in the harness (O(a(G)·|K|), versus one budget-
bounded streaming pass per cell).  The paper's evaluation grids (Tables
2–3, Figures 1–3) share a handful of sources across dozens of cells, so
the exact counts must be computed **once per source** and reused
everywhere.

:class:`GroundTruthCache` does exactly that, content-addressed:

* a registered dataset is addressed by its name *plus* the SHA-256 of
  its generated canonical edge set, so editing a generator (seed, size,
  family) in the registry invalidates old disk entries instead of
  silently serving the previous graph's statistics;
* an edge-list file is addressed by the SHA-256 of its bytes, so editing
  the file invalidates the entry while renaming or copying it does not;
* entries live in memory always, and as JSON files under
  ``<root>/ground_truth/`` when a cache directory is given, surviving
  across processes and ``--resume`` runs.

Note the cache key deliberately has **no stream-seed component**: the
exact statistics of the full graph are invariant under the arrival
permutation, so one entry serves every ``stream_seed`` (and every
method/budget/weight) in the grid.

:class:`ContentAddressedStore` is the shared disk layer; the sweep
runner reuses it for per-cell :class:`~repro.api.execution.RunReport`
payloads (``<root>/cells/``), which is what makes
``python -m repro sweep --resume`` skip already-computed cells.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from repro.graph.exact import GraphStatistics, compute_statistics
from repro.graph.io import read_edge_list

#: Bump when the on-disk payload layout changes; stale versions are
#: treated as misses rather than parsed.
_FORMAT_VERSION = 1


def _canonical_json(data: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace drift)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def content_key(descriptor: Dict[str, Any]) -> str:
    """SHA-256 content address of a JSON-safe descriptor.

    The descriptor *is* the identity: two descriptors with equal
    canonical JSON map to the same key, anything else to different keys
    (and a :data:`_FORMAT_VERSION` bump re-keys everything).

    Example
    -------
    >>> key = content_key({"kind": "dataset", "name": "com-amazon"})
    >>> len(key), key == content_key({"kind": "dataset", "name": "com-amazon"})
    (64, True)
    >>> key == content_key({"kind": "dataset", "name": "soc-orkut"})
    False
    """
    payload = _canonical_json({"v": _FORMAT_VERSION, "descriptor": descriptor})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _file_sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _dataset_sha256(name: str) -> str:
    """Hash of a registered dataset's canonical edge set.

    Generating the graph is cheap next to exact counting (and
    ``make_graph`` memoises it per process), so the persistent cache key
    can afford to follow the *generated content* rather than trusting
    the name — a changed generator definition then misses instead of
    replaying the old graph's statistics.
    """
    from repro.experiments.datasets import make_graph
    from repro.streams.stream import EdgeStream

    digest = hashlib.sha256()
    for edge in EdgeStream.canonical_edges(make_graph(name)):
        digest.update(repr(edge).encode("utf-8"))
    return digest.hexdigest()


def source_descriptor(source: str) -> Dict[str, Any]:
    """The content identity of a :class:`~repro.api.spec.RunSpec` source.

    Registered dataset names carry the hash of their generated edge set;
    file paths resolve to the hash of their bytes.  Either way the
    address follows the *content*, not the name or location.

    Example
    -------
    >>> descriptor = source_descriptor("infra-roadNet-CA")
    >>> descriptor["kind"], descriptor["name"], len(descriptor["edges_sha256"])
    ('dataset', 'infra-roadNet-CA', 64)
    """
    from repro.experiments.datasets import DATASETS

    if source in DATASETS:
        return {
            "kind": "dataset",
            "name": source,
            "edges_sha256": _dataset_sha256(source),
        }
    if os.path.exists(source):
        return {"kind": "file", "sha256": _file_sha256(source)}
    raise ValueError(
        f"cannot resolve source {source!r}: not a registered dataset "
        f"and no such file"
    )


class ContentAddressedStore:
    """A flat ``key -> JSON payload`` store under one directory.

    Keys are content hashes (see :func:`content_key`); payloads are
    JSON-safe dicts.  Reads of missing or undecodable entries return
    ``None`` — a corrupt cache degrades to recomputation, never to an
    error.  A structurally corrupt entry (undecodable bytes, or JSON
    that is not our envelope) is additionally *quarantined*: renamed to
    ``<key>.json.corrupt`` and counted on :attr:`quarantined`, so the
    recomputed payload replaces it cleanly while the damaged bytes stay
    available for forensics.  With ``root=None`` the store is disabled
    (every read misses, writes are dropped), which lets callers hold
    one code path.

    Example
    -------
    >>> store = ContentAddressedStore(None)  # disabled: read misses
    >>> store.read("0" * 64) is None
    True
    """

    #: Suffix quarantined (corrupt) entries are renamed to.
    QUARANTINE_SUFFIX = ".corrupt"

    def __init__(self, root: Optional[Path]) -> None:
        self._root = Path(root) if root is not None else None
        #: Corrupt entries set aside by :meth:`read` over this
        #: instance's lifetime.
        self.quarantined = 0

    @property
    def root(self) -> Optional[Path]:
        return self._root

    def path_for(self, key: str) -> Optional[Path]:
        """Where ``key``'s payload lives (None when the store is disabled)."""
        if self._root is None:
            return None
        return self._root / f"{key}.json"

    def entries(self) -> "tuple[Path, ...]":
        """Paths of the store's payload entries, sorted by name.

        The store directory is shared infrastructure: the distributed
        sweep fabric parks ``<key>.lease`` claim files next to the
        payloads, quarantine leaves ``<key>.json.corrupt`` siblings,
        and in-flight writers hold ``.<key16>-*.tmp`` files.  A scan
        must never mistake any of those for an entry, so the filter is
        explicit: payloads are exactly the non-hidden ``*.json`` files.
        """
        if self._root is None or not self._root.is_dir():
            return ()
        return tuple(
            sorted(
                path
                for path in self._root.iterdir()
                if path.suffix == ".json"
                and not path.name.startswith(".")
                and not path.name.endswith(self.QUARANTINE_SUFFIX)
                and not path.name.endswith(".lease")
                and not path.name.endswith(".tmp")
            )
        )

    def read(self, key: str) -> Optional[Dict[str, Any]]:
        path = self.path_for(key)
        if path is None or not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError):
            # Undecodable bytes and broken JSON are the same failure:
            # the entry is structurally corrupt.
            self._quarantine(path)
            return None
        except OSError:
            return None
        # Valid JSON that is not our envelope (null, a list, a bare
        # number …) is corruption too: degrade to a miss, never raise.
        if not isinstance(payload, dict):
            self._quarantine(path)
            return None
        if payload.get("version") != _FORMAT_VERSION:
            # A stale-but-intact format version is a plain miss, not
            # corruption: nothing to set aside.
            return None
        data = payload.get("data")
        if not isinstance(data, dict):
            self._quarantine(path)
            return None
        return data

    def _quarantine(self, path: Path) -> None:
        """Set a corrupt entry aside so the recount can overwrite cleanly."""
        try:
            path.rename(path.with_name(path.name + self.QUARANTINE_SUFFIX))
        except OSError:  # pragma: no cover - raced or read-only cache
            return
        self.quarantined += 1

    def write(self, key: str, data: Dict[str, Any]) -> None:
        path = self.path_for(key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        # Unique tmp name per writer: concurrent processes sharing one
        # cache directory (same content key => same payload) must not
        # truncate each other's in-flight file; each publishes its own
        # complete copy atomically and the last replace wins.
        fd, tmp = tempfile.mkstemp(
            prefix=f".{key[:16]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(
                    json.dumps(
                        {"version": _FORMAT_VERSION, "data": data}, indent=1
                    )
                )
            os.replace(tmp, path)  # atomic: readers never see partial JSON
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


class GroundTruthCache:
    """Exact per-source statistics, computed once and reused everywhere.

    Layered: an in-process memo (always on) over an optional on-disk
    :class:`ContentAddressedStore` (``<root>/ground_truth/``).  The
    ``hits``/``misses`` counters record memo+disk hits versus exact
    recounts, and surface in :class:`~repro.api.sweep.SweepReport` so a
    resumed sweep can *prove* it never recounted.

    Example
    -------
    >>> cache = GroundTruthCache()              # memory-only
    >>> a = cache.statistics("infra-roadNet-CA")   # computed (miss)
    >>> b = cache.statistics("infra-roadNet-CA")   # memoised (hit)
    >>> (a == b, cache.misses, cache.hits)
    (True, 1, 1)
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        self._store = ContentAddressedStore(
            Path(root) / "ground_truth" if root is not None else None
        )
        self._memory: Dict[str, GraphStatistics] = {}
        self._keys: Dict[str, str] = {}  # source -> content key memo
        self.hits = 0
        self.misses = 0

    @property
    def root(self) -> Optional[Path]:
        return self._store.root

    @property
    def quarantined(self) -> int:
        """Corrupt disk entries the store set aside (see the store)."""
        return self._store.quarantined

    def key_for(self, source: str) -> str:
        """Content key of ``source`` (file hashing memoised per instance)."""
        key = self._keys.get(source)
        if key is None:
            key = content_key(source_descriptor(source))
            self._keys[source] = key
        return key

    def statistics(self, source: str) -> GraphStatistics:
        """Exact statistics of ``source``, from the cheapest layer that has them.

        Resolution order: in-process memo, then the disk store, then an
        exact recount (registered datasets reuse the process-wide
        :func:`~repro.experiments.datasets.get_statistics` memo so the
        sweep layer and the legacy harnesses share one computation).

        Memory-only caches memoise by source *name* — content hashing
        exists to validate entries that outlive the process, so a cache
        with no disk layer never pays the per-edge hashing pass.
        """
        key = source if self._store.root is None else self.key_for(source)
        cached = self._memory.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        stored = self._store.read(key)
        if stored is not None:
            stats = GraphStatistics(
                num_nodes=int(stored["num_nodes"]),
                num_edges=int(stored["num_edges"]),
                triangles=int(stored["triangles"]),
                wedges=int(stored["wedges"]),
                clustering=float(stored["clustering"]),
            )
            self._memory[key] = stats
            self.hits += 1
            return stats
        self.misses += 1
        stats = self._compute(source)
        self._memory[key] = stats
        self._store.write(key, stats.as_dict())
        return stats

    @staticmethod
    def _compute(source: str) -> GraphStatistics:
        from repro.experiments.datasets import DATASETS, get_statistics

        if source in DATASETS:
            return get_statistics(source)
        return compute_statistics(read_edge_list(source))


__all__ = [
    "ContentAddressedStore",
    "GroundTruthCache",
    "content_key",
    "source_descriptor",
]
