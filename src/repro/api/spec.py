"""Declarative experiment specifications: experiments are data, not code.

A :class:`RunSpec` freezes everything that determines one experiment of
the paper's protocol (Sec. 6) — stream source, seeded permutation,
budget-matched method, weight family, checkpoint schedule and
replication fan-out — into a hashable value object with a lossless JSON
round trip.  Specs can therefore be stored in files, shipped to workers,
diffed between runs, and replayed bit-identically; ``run(spec)`` in
:mod:`repro.api.execution` is the single interpreter.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Optional

from repro.core.compact import CORES, DEFAULT_CORE
from repro.engine.stream_engine import DEFAULT_PIPELINE, PIPELINES


@dataclass(frozen=True)
class RunSpec:
    """One declarative experiment.

    Attributes
    ----------
    source:
        Where the edges come from: a dataset-registry name
        (:mod:`repro.experiments.datasets`) or an edge-list file path.
        Callers holding an in-memory graph pass it to ``run(spec, graph=…)``
        and the field becomes provenance metadata.
    method:
        Registered method name (see ``python -m repro methods``).
    budget:
        The paper's common memory budget; each method's registration
        interprets it (reservoir capacity, probability, instances …).
    weight:
        Registered weight name for weight-aware (GPS) methods, or ``None``
        for the method's default.  Ignored by weight-free baselines.
    stream_seed:
        Seed of the stream permutation (paper: streams are seeded random
        permutations of the edge population).  ``None`` streams the source
        in its given order — file order for edge lists.
    sampler_seed:
        Seed of the method's own randomness.
    checkpoints:
        Number of evenly spaced tracking marks; ``0`` disables tracking.
    replications:
        Independent ``(stream_seed + i, sampler_seed + i)`` repetitions;
        values > 1 run the error-bar protocol through the process pool.
    workers:
        Process-pool size for replicated runs (``0`` inline, ``None``
        auto-sized); ignored for single passes.
    core:
        GPS reservoir implementation for core-aware methods:
        ``"compact"`` (default, slot-based struct-of-arrays) or
        ``"object"`` (the boxed reference core).  The two produce
        bit-identical results under shared seeds; methods that predate
        the flag ignore it.
    pipeline:
        Stream-driving pipeline: ``"chunked"`` (default) feeds columnar
        ``int32`` blocks through the compact core's vectorised
        admission gate whenever the counter, weight and stream allow it
        (uniform-family weights over int-labelled streams; label-reading
        weights and methods auto-fall-back), ``"scalar"`` always keeps
        the tuple-at-a-time loops.  Bit-identical results either way;
        the executed pipeline is recorded on the report.
    shards:
        Number of independent samplers the stream is partitioned across
        by the seeded edge-hash router (:mod:`repro.shard`).  ``1``
        (default) is today's single-sampler path, bit-identical to every
        prior release; values > 1 give each shard budget
        ``budget/shards`` (the budget must divide evenly) and merge the
        per-shard reservoirs through the union Horvitz–Thompson pass
        (:mod:`repro.stats.merge`).  Sharded estimation is post-stream
        only, so it excludes checkpoints.
    """

    source: str
    method: str = "gps"
    budget: int = 1000
    weight: Optional[str] = None
    stream_seed: Optional[int] = 0
    sampler_seed: int = 1
    checkpoints: int = 0
    replications: int = 1
    workers: Optional[int] = None
    core: str = DEFAULT_CORE
    pipeline: str = DEFAULT_PIPELINE
    shards: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.source, str) or not self.source:
            raise ValueError("source must be a non-empty string")
        if self.core not in CORES:
            raise ValueError(
                f"core must be one of {CORES}, got {self.core!r}"
            )
        if self.pipeline not in PIPELINES:
            raise ValueError(
                f"pipeline must be one of {PIPELINES}, got {self.pipeline!r}"
            )
        if self.budget <= 0:
            raise ValueError("budget must be positive")
        if self.checkpoints < 0:
            raise ValueError("checkpoints must be >= 0")
        if self.replications < 1:
            raise ValueError("replications must be >= 1")
        if self.workers is not None and self.workers < 0:
            raise ValueError("workers must be >= 0 (0 runs inline)")
        if self.replications > 1 and self.stream_seed is None:
            raise ValueError(
                "replicated runs need a base stream_seed (replication i "
                "streams the permutation seeded stream_seed + i)"
            )
        if self.replications > 1 and self.checkpoints > 0:
            raise ValueError(
                "checkpoints and replications are mutually exclusive: the "
                "replicated pass aggregates final estimates only and would "
                "silently drop the tracking schedule"
            )
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shards > 1:
            if self.budget % self.shards != 0:
                raise ValueError(
                    f"budget ({self.budget}) must divide evenly across "
                    f"the {self.shards} shards so every sampler gets the "
                    f"same capacity"
                )
            if self.checkpoints > 0:
                raise ValueError(
                    "checkpoints and sharded execution are mutually "
                    "exclusive: the Horvitz-Thompson merge is a "
                    "post-stream pass and would silently drop the "
                    "tracking schedule"
                )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe; inverse of :meth:`from_dict`).

        Example
        -------
        >>> RunSpec(source="graph.txt").to_dict()["method"]
        'gps'
        """
        return asdict(self)

    def to_json(self, **kwargs: Any) -> str:
        """JSON text form; :meth:`from_json` inverts it losslessly.

        Example
        -------
        >>> spec = RunSpec(source="graph.txt", budget=500)
        >>> RunSpec.from_json(spec.to_json()) == spec
        True
        """
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output; unknown keys raise."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown RunSpec fields: {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def replace(self, **changes: Any) -> "RunSpec":
        """A copy with ``changes`` applied (re-runs validation).

        Example
        -------
        >>> RunSpec(source="graph.txt").replace(budget=4000).budget
        4000
        """
        return dataclasses.replace(self, **changes)


__all__ = ["RunSpec"]
