"""Spec-driven sweeps: grids of :class:`RunSpec`\\ s with cached ground truth.

The paper's evaluation is a *grid* — every method × budget × dataset,
replicated over seed pairs (Tables 2–3, Figures 1–3) — and before this
module every harness hand-rolled its own nested loops and recomputed the
exact triangle counts per cell.  A :class:`SweepSpec` freezes the whole
grid into one declarative value object (JSON round trip included, like
:class:`~repro.api.spec.RunSpec`), expands it into concrete ``RunSpec``
cells, and :func:`run_sweep` executes them through the existing
``run(spec)`` machinery with

* a shared :class:`~concurrent.futures.ProcessPoolExecutor` across all
  cells (``workers=0`` runs inline, bit-identically);
* a content-addressed :class:`~repro.api.ground_truth.GroundTruthCache`
  so exact statistics are computed once per source and reused by every
  cell of the grid — and by every later sweep pointed at the same cache
  directory;
* an optional per-cell report cache (same directory, ``cells/``) that
  lets ``python -m repro sweep --resume`` skip already-computed cells.

The result is a :class:`SweepReport`: per-cell metric summaries (mean /
variance / 95% CI across the seed replications), relative-error
matrices against the cached ground truth, and CSV/JSON export.  The
table and figure harnesses (:mod:`repro.experiments`) are thin
projections of sweep reports.

Example
-------
>>> from repro.api import SweepSpec, run_sweep
>>> spec = SweepSpec(sources=("infra-roadNet-CA",),
...                  methods=("triest", "gps-post"),
...                  budgets=(1000, 2000), runs=3, workers=0)
>>> report = run_sweep(spec)                                # doctest: +SKIP
>>> report.cell("infra-roadNet-CA", "triest", 1000).relative_error  # doctest: +SKIP
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
import os
import time
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.execution import RunReport, _resolve_edges, run
from repro.api.ground_truth import (
    ContentAddressedStore,
    GroundTruthCache,
    content_key,
)
from repro.api.spec import RunSpec
from repro.core.compact import CORES, DEFAULT_CORE
from repro.core.weights import is_label_free
from repro.engine.resilient import (
    DEFAULT_RETRY_BUDGET,
    RetryStats,
    run_resilient,
)
from repro.engine.stream_engine import DEFAULT_PIPELINE, PIPELINES
from repro.engine.replication import MetricSummary, default_max_workers
from repro.faults.corruption import corrupt_entry
from repro.faults.injector import FaultInjector, coerce_injector
from repro.engine.shared_edges import (
    SharedEdgePopulation,
    shared_memory_available,
)
from repro.graph.exact import GraphStatistics
from repro.stats.metrics import absolute_relative_error
from repro.streams.interner import NodeInterner

#: Axes a per-source override may replace.
_OVERRIDE_AXES = ("budgets", "methods", "runs", "shards", "weights")

#: What to do with a cell whose budget exceeds its source's edge count.
BUDGET_POLICIES = ("keep", "clip", "skip")


class _Any:
    """Wildcard default for :meth:`SweepReport.cell` lookups.

    Distinct from ``None``, which is a legitimate weight value (the
    method's own default weight) and must stay selectable.
    """

    def __repr__(self) -> str:
        return "ANY"


#: Pass explicitly to match any value of an axis in ``SweepReport.cell``.
ANY = _Any()


# ----------------------------------------------------------------------
# The grid specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepSpec:
    """One declarative experiment grid.

    Attributes
    ----------
    sources:
        Dataset-registry names and/or edge-list paths; the outermost axis.
    methods / budgets / weights / shards:
        The remaining grid axes (cells enumerate source → method →
        budget → weight → shard count).  A weight is only meaningful for
        weight-aware methods; for weight-free methods the weight axis
        collapses to ``None`` and the duplicate cells are deduplicated,
        so mixed grids like
        ``methods=("gps", "triest"), weights=("triangle", "uniform")``
        do the right thing.  Shard counts > 1 likewise collapse to 1 for
        methods outside :data:`repro.shard.runner.SHARDABLE_METHODS`
        (sharded merging is a post-stream Horvitz–Thompson pass), so
        variance-vs-S grids can mix sharded GPS with baselines.
    runs:
        Seed replications per cell: run ``i`` uses
        ``(base_stream_seed + i, base_sampler_seed + i)``, the protocol
        every harness shares.
    checkpoints:
        Tracking marks per run (``0`` disables tracking) — Table 3 grids.
    include_post:
        For tracking runs of GPS methods: also record the post-stream
        bundle at every mark (one Algorithm-2 evaluation per mark).
    budget_policy:
        ``"keep"`` cells as specified, ``"clip"`` budgets to the source's
        edge count (Figure 1), or ``"skip"`` oversized cells entirely
        (Figure 2).  Applied by :func:`run_sweep` using cached ground
        truth.
    workers:
        Shared process-pool size for cell execution (``0`` inline,
        ``None`` auto-sized).  Results are identical either way — every
        cell is deterministic given its seeds.
    core:
        GPS reservoir core threaded into every cell's :class:`RunSpec`
        (``"compact"`` default / ``"object"`` reference); bit-identical
        results, so purely a performance switch.
    pipeline:
        Stream pipeline threaded into every cell (``"chunked"`` default
        / ``"scalar"``); cells whose method/weight cannot use the
        columnar gate fall back per cell, bit-identically.
    overrides:
        Per-source axis overrides, ``{source: {axis: value}}`` with axes
        from ``budgets``/``methods``/``weights``/``runs`` — e.g. give one
        dataset its own budget ladder without splitting the sweep.

    Example
    -------
    >>> spec = SweepSpec(sources=("com-amazon",), methods=("triest",),
    ...                  budgets=(500, 1000), runs=2)
    >>> SweepSpec.from_json(spec.to_json()) == spec
    True
    >>> len(spec.expand())
    2
    """

    sources: Tuple[str, ...] = ()
    methods: Tuple[str, ...] = ("gps",)
    budgets: Tuple[int, ...] = (1000,)
    weights: Tuple[Optional[str], ...] = (None,)
    shards: Tuple[int, ...] = (1,)
    runs: int = 1
    base_stream_seed: int = 0
    base_sampler_seed: int = 1
    checkpoints: int = 0
    include_post: bool = False
    budget_policy: str = "keep"
    workers: Optional[int] = None
    core: str = DEFAULT_CORE
    pipeline: str = DEFAULT_PIPELINE
    overrides: Any = ()

    def __post_init__(self) -> None:
        for axis in ("sources", "methods", "budgets", "weights", "shards"):
            object.__setattr__(self, axis, tuple(getattr(self, axis)))
        object.__setattr__(
            self, "overrides", _normalise_overrides(self.overrides)
        )
        for axis in ("sources", "methods", "budgets", "weights", "shards"):
            if not getattr(self, axis):
                raise ValueError(f"sweep axis {axis!r} must not be empty")
        for source in self.sources:
            if not isinstance(source, str) or not source:
                raise ValueError("sources must be non-empty strings")
        for budget in self.budgets:
            if not isinstance(budget, int) or budget <= 0:
                raise ValueError("budgets must be positive integers")
        for shard_count in self.shards:
            if not isinstance(shard_count, int) or shard_count < 1:
                raise ValueError("shards must be integers >= 1")
        if self.runs < 1:
            raise ValueError("runs must be >= 1")
        if self.checkpoints < 0:
            raise ValueError("checkpoints must be >= 0")
        if self.budget_policy not in BUDGET_POLICIES:
            raise ValueError(
                f"budget_policy must be one of {BUDGET_POLICIES}, "
                f"got {self.budget_policy!r}"
            )
        if self.workers is not None and self.workers < 0:
            raise ValueError("workers must be >= 0 (0 runs inline)")
        if self.core not in CORES:
            raise ValueError(
                f"core must be one of {CORES}, got {self.core!r}"
            )
        if self.pipeline not in PIPELINES:
            raise ValueError(
                f"pipeline must be one of {PIPELINES}, got {self.pipeline!r}"
            )
        known = set(self.sources)
        for source, axes in self.overrides:
            if source not in known:
                raise ValueError(
                    f"override for {source!r} does not match any source"
                )
            for axis, value in axes:
                if axis == "runs":
                    if not isinstance(value, int) or value < 1:
                        raise ValueError("runs override must be an int >= 1")
                elif not value:
                    raise ValueError(
                        f"override axis {axis!r} for {source!r} must not "
                        f"be empty"
                    )

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    @property
    def overrides_map(self) -> Dict[str, Dict[str, Any]]:
        """The overrides as a plain ``{source: {axis: value}}`` dict."""
        return {
            source: {axis: value for axis, value in axes}
            for source, axes in self.overrides
        }

    def _axis(self, source: str, axis: str) -> Any:
        return self.overrides_map.get(source, {}).get(
            axis, getattr(self, axis)
        )

    def expand(self) -> Tuple["SweepCell", ...]:
        """The grid as concrete cells, deduplicated, in grid order.

        Cells enumerate source → method → budget → weight → shard count
        (per-source overrides applied); each cell carries its ``runs``
        seeded :class:`RunSpec` replications.  Weights collapse to
        ``None`` for weight-free methods, shard counts collapse to 1 for
        methods outside the shardable set, and exact duplicate cells
        (repeated axis values, collapsed weights/shards) are dropped,
        keeping the first.
        """
        from repro.api.registry import get_method
        from repro.shard.runner import SHARDABLE_METHODS

        cells: List[SweepCell] = []
        seen: set = set()
        for source in self.sources:
            runs = self._axis(source, "runs")
            for method in self._axis(source, "methods"):
                uses_weight = get_method(method).uses_weight
                shardable = method in SHARDABLE_METHODS
                for budget in self._axis(source, "budgets"):
                    for weight in self._axis(source, "weights"):
                        effective = weight if uses_weight else None
                        for shard_count in self._axis(source, "shards"):
                            layout = shard_count if shardable else 1
                            key = CellKey(
                                source, method, budget, effective, layout
                            )
                            if key in seen:
                                continue
                            seen.add(key)
                            cells.append(_make_cell(key, runs, self))
        return tuple(cells)

    # ------------------------------------------------------------------
    # Serialisation (mirrors RunSpec)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe; inverse of :meth:`from_dict`).

        Example
        -------
        >>> SweepSpec(sources=("a.txt",)).to_dict()["budget_policy"]
        'keep'
        """
        out = dataclasses.asdict(self)
        for axis in ("sources", "methods", "budgets", "weights", "shards"):
            out[axis] = list(out[axis])
        out["overrides"] = {
            source: {
                axis: (value if axis == "runs" else list(value))
                for axis, value in axes
            }
            for source, axes in self.overrides
        }
        return out

    def to_json(self, **kwargs: Any) -> str:
        """JSON text form; ``SweepSpec.from_json`` inverts it losslessly."""
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        """Rebuild a spec from :meth:`to_dict` output; unknown keys raise.

        Example
        -------
        >>> SweepSpec.from_dict({"sources": ["a.txt"]}).sources
        ('a.txt',)
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown SweepSpec fields: {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**dict(data))

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def replace(self, **changes: Any) -> "SweepSpec":
        """A copy with ``changes`` applied (re-runs validation).

        Example
        -------
        >>> SweepSpec(sources=("a.txt",)).replace(runs=4).runs
        4
        """
        return dataclasses.replace(self, **changes)


def _normalise_overrides(overrides: Any) -> Tuple[Any, ...]:
    """Canonical, hashable form: sorted ``((source, ((axis, value), …)), …)``."""
    if not overrides:
        return ()
    if isinstance(overrides, Mapping):
        items = overrides.items()
    else:  # already the canonical tuple form (e.g. via replace())
        items = [(source, dict(axes)) for source, axes in overrides]
    out = []
    for source, axes in sorted(items):
        if not isinstance(axes, Mapping):
            raise ValueError(
                f"override for {source!r} must map axes to values"
            )
        unknown = set(axes) - set(_OVERRIDE_AXES)
        if unknown:
            raise ValueError(
                f"unknown override axes {sorted(unknown)} for {source!r}; "
                f"known: {list(_OVERRIDE_AXES)}"
            )
        canon = tuple(
            (axis, axes[axis] if axis == "runs" else tuple(axes[axis]))
            for axis in _OVERRIDE_AXES
            if axis in axes
        )
        out.append((source, canon))
    return tuple(out)


# ----------------------------------------------------------------------
# Cells
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellKey:
    """One logical grid point: ``(source, method, budget, weight, shards)``."""

    source: str
    method: str
    budget: int
    weight: Optional[str] = None
    shards: int = 1


@dataclass(frozen=True)
class SweepCell:
    """A grid point together with its seeded per-run specs."""

    key: CellKey
    specs: Tuple[RunSpec, ...]


def _make_cell(key: CellKey, runs: int, sweep: SweepSpec) -> SweepCell:
    return SweepCell(
        key=key,
        specs=tuple(
            RunSpec(
                source=key.source,
                method=key.method,
                budget=key.budget,
                weight=key.weight,
                stream_seed=sweep.base_stream_seed + i,
                sampler_seed=sweep.base_sampler_seed + i,
                checkpoints=sweep.checkpoints,
                core=sweep.core,
                pipeline=sweep.pipeline,
                shards=key.shards,
            )
            for i in range(runs)
        ),
    )


@dataclass(frozen=True)
class CellResult:
    """Aggregated outcome of one grid cell across its seed replications.

    ``metrics`` summarises every metric the method reports (mean /
    variance / 95% CI across runs); ``triangles`` is the canonical
    triangle summary (None only for methods without a triangle metric);
    ``relative_error`` is the ARE of the *mean* estimate against the
    cached exact count — the paper's ``|E[X̂]−X|/X``.  ``cached_runs``
    counts replications served from the cell cache on a resumed sweep.
    """

    key: CellKey
    reports: Tuple[RunReport, ...]
    metrics: Dict[str, MetricSummary]
    ground_truth: GraphStatistics
    triangles: Optional[MetricSummary] = None
    relative_error: Optional[float] = None
    update_time: Optional[MetricSummary] = None
    cached_runs: int = 0

    @property
    def runs(self) -> int:
        return len(self.reports)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "source": self.key.source,
            "method": self.key.method,
            "budget": self.key.budget,
            "weight": self.key.weight,
            "shards": self.key.shards,
            "runs": self.runs,
            "cached_runs": self.cached_runs,
            "ground_truth": self.ground_truth.as_dict(),
            "metrics": {
                name: summary.to_dict()
                for name, summary in self.metrics.items()
            },
            "relative_error": self.relative_error,
        }
        if self.triangles is not None:
            out["triangles"] = self.triangles.to_dict()
        if self.update_time is not None:
            out["update_time_us"] = self.update_time.mean
        return out


# ----------------------------------------------------------------------
# The report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepReport:
    """Uniform outcome of :func:`run_sweep`.

    Cells appear in grid order (source → method → budget → weight).  The
    cache counters make reuse observable: ``ground_truth_hits`` counts
    exact recounts avoided, ``cell_cache_hits`` counts replications a
    resumed sweep did not re-execute.
    """

    spec: SweepSpec
    cells: Tuple[CellResult, ...]
    elapsed_seconds: float = 0.0
    ground_truth_hits: int = 0
    ground_truth_misses: int = 0
    cell_cache_hits: int = 0
    cell_cache_misses: int = 0
    workers: int = 0
    cache_dir: Optional[str] = None
    skipped: Tuple[CellKey, ...] = ()
    #: Fault-tolerance cost: pooled replications resubmitted.
    task_retries: int = 0
    #: Fault-tolerance cost: executors rebuilt after BrokenProcessPool.
    pool_rebuilds: int = 0
    #: Corrupt cache entries set aside (and recounted) this run.
    cache_quarantined: int = 0
    #: Worker fleet size of a distributed run (0 = not distributed).
    distributed_workers: int = 0
    #: Stale leases reclaimed across the fleet (distributed runs only).
    leases_reclaimed: int = 0
    #: Cells executed under a reclaimed lease — the at-least-once cost.
    cells_reexecuted: int = 0

    def cell(
        self,
        source: str,
        method: str,
        budget: Any = ANY,
        weight: Any = ANY,
        shards: Any = ANY,
    ) -> CellResult:
        """Look one cell up; unspecified axes must match uniquely.

        ``budget``/``weight``/``shards`` default to the :data:`ANY`
        wildcard; ``weight=None`` selects cells whose weight is
        *literally* None (the method's default weight), which is why the
        wildcard is a sentinel rather than None.
        """
        matches = [
            c
            for c in self.cells
            if c.key.source == source
            and c.key.method == method
            and (budget is ANY or c.key.budget == budget)
            and (weight is ANY or c.key.weight == weight)
            and (shards is ANY or c.key.shards == shards)
        ]
        if not matches:
            raise KeyError(
                f"no cell ({source!r}, {method!r}, budget={budget}, "
                f"weight={weight}) in this sweep"
            )
        if len(matches) > 1:
            raise KeyError(
                f"ambiguous cell lookup ({source!r}, {method!r}): "
                f"{len(matches)} matches; pass budget/weight"
            )
        return matches[0]

    def error_matrix(self, source: str) -> Dict[str, Any]:
        """Relative-error matrix of one source: methods × budgets.

        Returns ``{"methods": […], "budgets": […], "errors": rows}``
        where ``rows[i][j]`` is the relative error of method ``i`` at
        budget ``j`` (None for skipped/absent cells).  Cells differing
        only in weight are reported as separate "method[weight]" rows;
        sharded cells get "method@Sn" rows (variance-vs-S curves read
        straight off the matrix).
        """
        labels: List[str] = []
        budgets: List[int] = []
        values: Dict[Tuple[str, int], float] = {}
        for cell in self.cells:
            if cell.key.source != source:
                continue
            label = cell.key.method + (
                f"[{cell.key.weight}]" if cell.key.weight else ""
            ) + (f"@S{cell.key.shards}" if cell.key.shards > 1 else "")
            if label not in labels:
                labels.append(label)
            if cell.key.budget not in budgets:
                budgets.append(cell.key.budget)
            values[(label, cell.key.budget)] = cell.relative_error
        return {
            "methods": labels,
            "budgets": budgets,
            "errors": [
                [values.get((label, budget)) for budget in budgets]
                for label in labels
            ],
        }

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "cells": [cell.to_dict() for cell in self.cells],
            "skipped": [dataclasses.asdict(key) for key in self.skipped],
            "elapsed_seconds": self.elapsed_seconds,
            "workers": self.workers,
            "cache_dir": self.cache_dir,
            "cache": {
                "ground_truth_hits": self.ground_truth_hits,
                "ground_truth_misses": self.ground_truth_misses,
                "cell_hits": self.cell_cache_hits,
                "cell_misses": self.cell_cache_misses,
                "quarantined": self.cache_quarantined,
            },
            "resilience": {
                "task_retries": self.task_retries,
                "pool_rebuilds": self.pool_rebuilds,
            },
            "distrib": {
                "workers": self.distributed_workers,
                "leases_reclaimed": self.leases_reclaimed,
                "cells_reexecuted": self.cells_reexecuted,
            },
        }

    def to_json(self, **kwargs: Any) -> str:
        kwargs.setdefault("indent", 2)
        return json.dumps(self.to_dict(), **kwargs)

    def to_csv(self) -> str:
        """One CSV row per cell: identity, triangle summary, error, time."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(
            [
                "source", "method", "budget", "weight", "runs", "shards",
                "triangles_mean", "triangles_ci_low", "triangles_ci_high",
                "exact_triangles", "relative_error", "update_time_us",
                "cached_runs",
            ]
        )
        for cell in self.cells:
            tri = cell.triangles
            writer.writerow(
                [
                    cell.key.source,
                    cell.key.method,
                    cell.key.budget,
                    cell.key.weight or "",
                    cell.runs,
                    cell.key.shards,
                    "" if tri is None else repr(tri.mean),
                    "" if tri is None else repr(tri.ci_low),
                    "" if tri is None else repr(tri.ci_high),
                    cell.ground_truth.triangles,
                    "" if cell.relative_error is None
                    else repr(cell.relative_error),
                    "" if cell.update_time is None
                    else repr(cell.update_time.mean),
                    cell.cached_runs,
                ]
            )
        return buffer.getvalue()


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
# Per-worker cache of attached shared-memory edge populations,
# ``{source: interned edge list}`` — populated once by the pool
# initializer, read by every task the worker executes.
_SWEEP_EDGES: Dict[str, List[Tuple[int, int]]] = {}


def _sweep_pool_initializer(descriptors: Dict[str, Any]) -> None:
    """Attach each published source once per worker (zero-copy setup)."""
    global _SWEEP_EDGES
    _SWEEP_EDGES = {
        source: SharedEdgePopulation.attach(descriptor)
        for source, descriptor in descriptors.items()
    }


def _execute_payload(payload: Tuple[Dict[str, Any], bool]) -> RunReport:
    """Worker entry point: one cell replication (module-level: picklable).

    When the parent published the cell's source through shared memory,
    the worker streams the attached interned population instead of
    re-resolving the source (re-reading the file / regenerating the
    graph) for every task — interning is a pure relabelling, so the
    report is bit-identical.  The live counter is stripped from the
    report — it does not cross the process boundary and sweep
    aggregation never reads it.
    """
    spec_dict, include_post = payload
    run_spec = RunSpec.from_dict(spec_dict)
    edges = _SWEEP_EDGES.get(run_spec.source)
    if edges is None:
        report = run(run_spec, include_post=include_post)
    else:
        report = run(run_spec, graph=edges, include_post=include_post)
    return dataclasses.replace(report, counter=None)


def _grid_label_free(spec: SweepSpec) -> bool:
    """Whether every method and named weight in the grid ignores labels.

    Methods registered with ``reads_labels=True`` disqualify the whole
    grid from interned dispatch.  ``None`` weight cells use the method's
    own default weight; every built-in default is label-free (the GPS
    family defaults to the triangle weight), so ``None`` passes —
    third-party methods with label-reading *default* weights should
    register ``reads_labels=True`` or name their weights explicitly.
    """
    from repro.api.registry import get_method, get_weight

    method_names = {
        method
        for source in spec.sources
        for method in spec._axis(source, "methods")
    }
    if any(get_method(name).reads_labels for name in method_names):
        return False
    weight_names = {
        weight
        for source in spec.sources
        for weight in spec._axis(source, "weights")
        if weight is not None
    }
    return all(
        is_label_free(get_weight(name).factory()) for name in weight_names
    )


def cell_report_key(
    spec: RunSpec, include_post: bool, source_key: str
) -> str:
    """Content address of one replication's report.

    The spec's ``source`` string is replaced by its *content* key, so a
    renamed-but-identical edge list hits and an edited one misses.  The
    package version is folded in as a coarse guard against replaying
    estimates produced by older estimator code; *within* one version,
    editing an estimator without bumping it still replays stale cells —
    clear the cache directory (or skip ``--resume``) after such edits.

    Example
    -------
    >>> spec = RunSpec(source="g.txt", method="triest", budget=10)
    >>> key = cell_report_key(spec, False, "0" * 64)
    >>> len(key), key == cell_report_key(spec, False, "0" * 64)
    (64, True)
    >>> key == cell_report_key(spec, True, "0" * 64)
    False
    """
    from repro import __version__

    descriptor = dict(spec.to_dict(), source={"content": source_key})
    return content_key({"kind": "cell", "include_post": include_post,
                        "repro": __version__, "spec": descriptor})


def expand_for_execution(
    spec: SweepSpec, gt_cache: GroundTruthCache
) -> Tuple[
    Tuple[SweepCell, ...], Tuple[CellKey, ...], Dict[str, GraphStatistics]
]:
    """Expand a grid to its executable cells, exactly as :func:`run_sweep`.

    Returns ``(cells, skipped, truths)`` after ground-truth resolution
    and budget-policy application — the shared front half of the inline
    runner and the distributed coordinator, so both enumerate (and
    content-address) the *same* replications in the same order.

    Example
    -------
    >>> spec = SweepSpec(sources=("com-amazon",), methods=("triest",),
    ...                  budgets=(500,), budget_policy="clip")
    >>> cells, skipped, truths = expand_for_execution(
    ...     spec, GroundTruthCache())                     # doctest: +SKIP
    >>> [cell.key.budget for cell in cells]               # doctest: +SKIP
    [500]
    """
    cells = spec.expand()
    truths = {
        source: gt_cache.statistics(source)
        for source in dict.fromkeys(cell.key.source for cell in cells)
    }
    cells, skipped = _apply_budget_policy(spec, cells, truths)
    return cells, skipped, truths


def run_sweep(
    spec: SweepSpec,
    *,
    cache_dir: Optional[os.PathLike] = None,
    resume: bool = False,
    ground_truth: Optional[GroundTruthCache] = None,
    faults=None,
    retry_budget: int = DEFAULT_RETRY_BUDGET,
) -> SweepReport:
    """Execute one sweep grid and return its aggregated report.

    Parameters
    ----------
    spec:
        The grid description.
    cache_dir:
        Root of the on-disk cache.  Ground truth (``ground_truth/``) and
        per-replication reports (``cells/``) are written there; without
        it, ground truth is still shared in-process across all cells.
    resume:
        Reuse cached per-replication reports instead of re-executing
        them.  Resumed reports carry their full metric/estimate payload
        but not live estimate-bundle objects (``in_stream`` and the
        like), which do not round-trip through JSON.  Cache entries are
        keyed by spec + source content + package version — *not* by
        estimator code — so after editing a method's implementation,
        clear the cache directory rather than resuming over stale
        estimates.
    ground_truth:
        Inject a pre-warmed :class:`GroundTruthCache` (tests, long-lived
        services); defaults to a fresh cache rooted at ``cache_dir``.
    faults:
        Optional :class:`~repro.faults.FaultPlan` (or shared
        :class:`~repro.faults.FaultInjector`): ``crash-worker`` /
        ``raise-task`` faults target the pooled replications (site
        ``"sweep"``), ``corrupt-cache`` faults mangle stored cell
        entries (site ``"sweep-cache"``) before the resume scan reads
        them.  Chaos testing only; production sweeps pass ``None``.
    retry_budget:
        Per-replication resubmissions allowed beyond the first attempt
        (see :func:`repro.engine.resilient.run_resilient`).

    Example
    -------
    >>> from repro.api import SweepSpec, run_sweep
    >>> report = run_sweep(SweepSpec(sources=("com-amazon",),
    ...     methods=("triest",), budgets=(500,), workers=0))  # doctest: +SKIP
    >>> report.cells[0].relative_error                        # doctest: +SKIP
    """
    started = time.perf_counter()
    injector = coerce_injector(faults)
    root = Path(cache_dir) if cache_dir is not None else None
    gt_cache = ground_truth or GroundTruthCache(root)
    cell_store = ContentAddressedStore(
        root / "cells" if root is not None else None
    )
    gt_hits_before = gt_cache.hits
    gt_misses_before = gt_cache.misses
    gt_quarantined_before = gt_cache.quarantined
    if injector is not None and cell_store.root is not None:
        _apply_cache_faults(injector, cell_store.root)

    cells, skipped, truths = expand_for_execution(spec, gt_cache)

    # Gather the flat replication list; serve what we can from the cache.
    # Cell keys (which content-hash the source) are only computed when a
    # disk store is actually attached.
    cell_cache_on = cell_store.root is not None

    def report_key(run_spec: RunSpec) -> str:
        return cell_report_key(
            run_spec, spec.include_post, gt_cache.key_for(run_spec.source)
        )

    flat: List[Tuple[int, int, RunSpec]] = []  # (cell idx, run idx, spec)
    for c, cell in enumerate(cells):
        for r, run_spec in enumerate(cell.specs):
            flat.append((c, r, run_spec))
    reports: Dict[Tuple[int, int], RunReport] = {}
    cached: Dict[Tuple[int, int], bool] = {}
    pending: List[Tuple[int, int, RunSpec]] = []
    for c, r, run_spec in flat:
        stored = (
            cell_store.read(report_key(run_spec))
            if resume and cell_cache_on
            else None
        )
        if stored is not None:
            reports[(c, r)] = RunReport.from_dict(stored)
            cached[(c, r)] = True
        else:
            pending.append((c, r, run_spec))

    workers = _resolve_workers(spec.workers, len(pending))
    payloads = [
        (run_spec.to_dict(), spec.include_post) for _, _, run_spec in pending
    ]
    if workers == 0:
        fresh = [_execute_payload(payload) for payload in payloads]
        retry_stats = RetryStats()
    else:
        fresh, retry_stats = _execute_pooled(
            spec, pending, payloads, workers,
            injector=injector, retry_budget=retry_budget,
        )
    for (c, r, run_spec), report in zip(pending, fresh):
        reports[(c, r)] = report
        cached[(c, r)] = False
        if cell_cache_on:
            cell_store.write(report_key(run_spec), report.to_dict())

    results = tuple(
        _aggregate_cell(
            cell,
            [reports[(c, r)] for r in range(len(cell.specs))],
            truths[cell.key.source],
            cached_runs=sum(
                cached[(c, r)] for r in range(len(cell.specs))
            ),
        )
        for c, cell in enumerate(cells)
    )
    return SweepReport(
        spec=spec,
        cells=results,
        elapsed_seconds=time.perf_counter() - started,
        ground_truth_hits=gt_cache.hits - gt_hits_before,
        ground_truth_misses=gt_cache.misses - gt_misses_before,
        cell_cache_hits=sum(cached.values()),
        cell_cache_misses=len(pending),
        workers=workers,
        cache_dir=str(root) if root is not None else None,
        skipped=skipped,
        task_retries=retry_stats.task_retries,
        pool_rebuilds=retry_stats.pool_rebuilds,
        cache_quarantined=(
            cell_store.quarantined
            + (gt_cache.quarantined - gt_quarantined_before)
        ),
    )


def _apply_cache_faults(injector: FaultInjector, root: Path) -> None:
    """Mangle stored cell entries as the plan's corrupt-cache faults ask.

    Each armed fault corrupts the ``at``-th entry of the sorted cell
    listing (modulo the entry count) — deterministic given a
    deterministic cache population, which a seeded sweep is.  The scan
    goes through :meth:`ContentAddressedStore.entries`, which skips the
    ``.lease`` / ``.corrupt`` / tmp siblings a distributed sweep parks
    next to the payloads.
    """
    entries = list(ContentAddressedStore(root).entries())
    if not entries:
        return
    for fault in injector.cache_faults("sweep-cache"):
        corrupt_entry(
            entries[fault.at % len(entries)],
            mode=fault.mode,
            seed=injector.plan.seed,
        )


def _execute_pooled(
    spec: SweepSpec,
    pending: Sequence[Tuple[int, int, RunSpec]],
    payloads: Sequence[Tuple[Dict[str, Any], bool]],
    workers: int,
    *,
    injector: Optional[FaultInjector] = None,
    retry_budget: int = DEFAULT_RETRY_BUDGET,
) -> Tuple[List[RunReport], RetryStats]:
    """Run pending replications on the shared pool.

    The distinct pending sources are interned and published once via
    shared memory; each worker attaches in its initializer, so per-task
    payloads stay spec dicts and no worker ever re-reads a source.  The
    segments are unlinked in a ``finally`` — success, worker failure and
    KeyboardInterrupt all clean up.  Sources fall back to per-worker
    resolution when shared memory is unavailable or a grid weight reads
    node labels.
    """
    populations: List[SharedEdgePopulation] = []
    current: Dict[str, SharedEdgePopulation] = {}
    edges_of: Dict[str, List[Tuple[int, int]]] = {}

    def publish(source: str) -> None:
        population = SharedEdgePopulation.publish(edges_of[source])
        populations.append(population)
        current[source] = population

    def descriptors() -> Tuple[Dict[str, Any]]:
        return ({src: pop.descriptor for src, pop in current.items()},)

    def refresh() -> Optional[Tuple[Dict[str, Any]]]:
        # Re-publish any source whose segment a platform cleanup took
        # with the crashed worker (a worker itself never unlinks).
        lost = []
        for source, population in current.items():
            try:
                SharedEdgePopulation.attach(population.descriptor)
            except (OSError, ValueError):
                lost.append(source)
        for source in lost:
            publish(source)
        return descriptors() if lost else None

    try:
        if shared_memory_available() and _grid_label_free(spec):
            for source in dict.fromkeys(rs.source for _, _, rs in pending):
                edges_of[source] = NodeInterner().intern_edges(
                    _resolve_edges(source, None)
                )
                publish(source)
        return run_resilient(
            _execute_payload,
            list(payloads),
            workers=workers,
            initializer=_sweep_pool_initializer,
            initargs=descriptors(),
            retry_budget=retry_budget,
            injector=injector,
            site="sweep",
            refresh=refresh,
        )
    finally:
        for population in populations:
            population.close()
            population.unlink()


def _resolve_workers(workers: Optional[int], pending: int) -> int:
    if pending <= 1:
        return 0
    if workers is None:
        return default_max_workers(pending)
    return min(workers, pending)


def _apply_budget_policy(
    spec: SweepSpec,
    cells: Tuple[SweepCell, ...],
    truths: Mapping[str, GraphStatistics],
) -> Tuple[Tuple[SweepCell, ...], Tuple[CellKey, ...]]:
    """Clip or skip cells whose budget exceeds the source's edge count."""
    if spec.budget_policy == "keep":
        return cells, ()
    kept: List[SweepCell] = []
    skipped: List[CellKey] = []
    seen: set = set()
    for cell in cells:
        edges = truths[cell.key.source].num_edges
        if cell.key.budget <= edges:
            if cell.key not in seen:
                seen.add(cell.key)
                kept.append(cell)
            continue
        if spec.budget_policy == "skip":
            skipped.append(cell.key)
            continue
        clipped = max(1, edges)
        if cell.key.shards > 1:
            # Keep the per-shard split exact: round down to a multiple
            # of the shard count (never below one edge per shard).
            clipped = max(cell.key.shards, clipped - clipped % cell.key.shards)
        clipped_key = dataclasses.replace(cell.key, budget=clipped)
        if clipped_key in seen:  # two budgets clip onto the same cell
            continue
        seen.add(clipped_key)
        kept.append(
            SweepCell(
                key=clipped_key,
                specs=tuple(
                    s.replace(budget=clipped_key.budget) for s in cell.specs
                ),
            )
        )
    return tuple(kept), tuple(skipped)


def _aggregate_cell(
    cell: SweepCell,
    reports: Sequence[RunReport],
    truth: GraphStatistics,
    cached_runs: int,
) -> CellResult:
    metrics = {
        name: MetricSummary.from_values([r.estimates[name] for r in reports])
        for name in reports[0].estimates
    }
    try:
        triangle_values = [r.triangle_estimate for r in reports]
    except KeyError:
        triangles = None
        relative_error = None
    else:
        triangles = MetricSummary.from_values(triangle_values)
        relative_error = absolute_relative_error(
            triangles.mean, truth.triangles
        )
    return CellResult(
        key=cell.key,
        reports=tuple(reports),
        metrics=metrics,
        ground_truth=truth,
        triangles=triangles,
        relative_error=relative_error,
        update_time=MetricSummary.from_values(
            [r.update_time_us for r in reports]
        ),
        cached_runs=cached_runs,
    )


__all__ = [
    "ANY",
    "BUDGET_POLICIES",
    "CellKey",
    "CellResult",
    "SweepCell",
    "SweepReport",
    "SweepSpec",
    "cell_report_key",
    "expand_for_execution",
    "run_sweep",
]
