"""``run(spec) -> RunReport``: the one interpreter of declarative specs.

Every entry point — CLI commands, the table/figure harnesses, the
examples — dispatches through this module, so the paper's experiment
shape (seeded stream permutation → budget-matched counter → engine-driven
pass → estimates with error bars) is implemented exactly once:

* **single pass** (default): one :class:`~repro.engine.StreamEngine`
  drive over the permuted stream, batched through ``process_many``;
* **tracking pass** (``spec.checkpoints > 0``): the engine runs in
  lockstep with an exact prefix counter and records a
  :class:`TrackPoint` at every mark;
* **replicated pass** (``spec.replications > 1``): the spec fans out
  across the :class:`~repro.engine.ReplicatedRunner` process pool —
  any registered method, not just GPS — and per-metric
  :class:`~repro.engine.MetricSummary` error bars come back.

The resulting :class:`RunReport` is uniform across modes and methods and
serialises to JSON for downstream tooling.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.registry import MethodSpec, get_method, get_weight
from repro.api.spec import RunSpec
from repro.core.compact import CompactInStreamEstimator
from repro.core.estimates import GraphEstimates
from repro.core.in_stream import InStreamEstimator
from repro.core.post_stream import PostStreamEstimator
from repro.core.weights import WeightFunction, is_label_free
from repro.engine.replication import MetricSummary, ReplicatedRunner
from repro.engine.stream_engine import EngineStats, StreamEngine
from repro.streams.chunks import DEFAULT_CHUNK_SIZE
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.exact import ExactStreamCounter
from repro.graph.io import iter_edge_list
from repro.streams.stream import EdgeStream
from repro.streams.transforms import simplify_edges

Edge = Tuple[Any, Any]

#: Counters exposing the in-stream estimate bundle (either GPS core).
IN_STREAM_TYPES = (InStreamEstimator, CompactInStreamEstimator)


# ----------------------------------------------------------------------
# Report containers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrackPoint:
    """State recorded at one tracking checkpoint."""

    position: int
    exact_triangles: int
    exact_clustering: float
    estimate: float
    in_stream: Optional[GraphEstimates] = None
    post_stream: Optional[GraphEstimates] = None

    @property
    def are(self) -> float:
        """Absolute relative triangle error at this checkpoint."""
        if self.exact_triangles == 0:
            return 0.0 if self.estimate == 0 else float("inf")
        return abs(self.estimate - self.exact_triangles) / self.exact_triangles


def _estimates_dict(estimates: GraphEstimates) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for stat in ("triangles", "wedges", "clustering"):
        est = getattr(estimates, stat)
        low, high = est.confidence_bounds()
        out[stat] = {
            "value": est.value,
            "variance": est.variance,
            "ci_low": low,
            "ci_high": high,
        }
    out["stream_position"] = estimates.stream_position
    out["sample_size"] = estimates.sample_size
    out["threshold"] = estimates.threshold
    return out


@dataclass(frozen=True)
class RunReport:
    """Uniform outcome of ``run(spec)`` across modes and methods.

    ``estimates`` always carries the method's final point estimates (for
    replicated runs: the across-replication means); ``metrics`` carries
    per-metric error bars for replicated runs; ``tracking`` the checkpoint
    series for tracking runs.  Timing fields are the engine pass for
    single/tracking runs; for replicated runs they cover the whole
    protocol wall-clock — including process-pool startup and aggregation
    — so they measure the study, not the per-edge update.  ``in_stream``/``post_stream`` hold the full
    GPS estimate bundles (with variances and bounds) when the method
    exposes them.  ``counter`` is the live counter object of single/track
    passes — handy for checkpointing — and is excluded from serialisation.
    """

    spec: RunSpec
    mode: str  # "single" | "track" | "replicate" | "sharded"
    edges: int
    estimates: Dict[str, float]
    metrics: Dict[str, MetricSummary] = field(default_factory=dict)
    tracking: Tuple[TrackPoint, ...] = ()
    elapsed_seconds: float = 0.0
    update_time_us: float = 0.0
    edges_per_second: float = 0.0
    replications: int = 1
    workers: int = 0
    sample_size: Optional[int] = None
    threshold: Optional[float] = None
    in_stream: Optional[GraphEstimates] = None
    post_stream: Optional[GraphEstimates] = None
    #: The pipeline that actually drove the pass: ``"chunked"`` only
    #: when the counter, weight and stream all supported the columnar
    #: gate; a spec asking for chunked may legitimately report
    #: ``"scalar"`` (label-reading weight, non-int labels, estimator
    #: counters …).  Results are bit-identical either way.
    pipeline: str = "scalar"
    #: Fault-tolerance cost of pooled dispatch: tasks resubmitted after
    #: worker failure / executors rebuilt after BrokenProcessPool (both
    #: zero for inline runs and fault-free pools).
    task_retries: int = 0
    pool_rebuilds: int = 0
    counter: Any = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict: specs round-trip, estimate bundles flatten.

        Example
        -------
        >>> from repro.api import RunSpec
        >>> report = RunReport(spec=RunSpec(source="a.txt"), mode="single",
        ...                    edges=3, estimates={"triangles": 1.0})
        >>> report.to_dict()["estimates"]
        {'triangles': 1.0}
        """
        out: Dict[str, Any] = {
            "spec": self.spec.to_dict(),
            "mode": self.mode,
            "method": self.spec.method,
            "edges": self.edges,
            "estimates": dict(self.estimates),
            "metrics": {k: v.to_dict() for k, v in self.metrics.items()},
            "elapsed_seconds": self.elapsed_seconds,
            "update_time_us": self.update_time_us,
            "edges_per_second": self.edges_per_second,
            "replications": self.replications,
            "workers": self.workers,
            "sample_size": self.sample_size,
            "threshold": self.threshold,
            "pipeline": self.pipeline,
            "task_retries": self.task_retries,
            "pool_rebuilds": self.pool_rebuilds,
        }
        if self.tracking:
            out["tracking"] = [
                {
                    "position": p.position,
                    "exact_triangles": p.exact_triangles,
                    "exact_clustering": p.exact_clustering,
                    "estimate": p.estimate,
                    "are": p.are if p.are != float("inf") else None,
                }
                for p in self.tracking
            ]
        if self.in_stream is not None:
            out["in_stream"] = _estimates_dict(self.in_stream)
        if self.post_stream is not None:
            out["post_stream"] = _estimates_dict(self.post_stream)
        return out

    def to_json(self, **kwargs: Any) -> str:
        """The report as JSON text (what ``--json`` prints on the CLI)."""
        kwargs.setdefault("indent", 2)
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` output (cache replay).

        Scalar fields, the spec, per-metric summaries and the tracking
        series round-trip; the live estimate-bundle objects
        (``in_stream``/``post_stream``) and the counter do not survive
        JSON flattening and come back as ``None``.  This is what the
        sweep cell cache replays on ``--resume``, where only the metric
        payload feeds aggregation.

        Example
        -------
        >>> from repro.api import RunSpec
        >>> report = RunReport(spec=RunSpec(source="a.txt"), mode="single",
        ...                    edges=3, estimates={"triangles": 1.0})
        >>> RunReport.from_dict(report.to_dict()).estimates
        {'triangles': 1.0}
        """
        return cls(
            spec=RunSpec.from_dict(data["spec"]),
            mode=data["mode"],
            edges=data["edges"],
            estimates=dict(data["estimates"]),
            metrics={
                name: MetricSummary(**summary)
                for name, summary in data.get("metrics", {}).items()
            },
            tracking=tuple(
                TrackPoint(
                    position=row["position"],
                    exact_triangles=row["exact_triangles"],
                    exact_clustering=row["exact_clustering"],
                    estimate=row["estimate"],
                )
                for row in data.get("tracking", ())
            ),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
            update_time_us=data.get("update_time_us", 0.0),
            edges_per_second=data.get("edges_per_second", 0.0),
            replications=data.get("replications", 1),
            workers=data.get("workers", 0),
            sample_size=data.get("sample_size"),
            threshold=data.get("threshold"),
            pipeline=data.get("pipeline", "scalar"),
            task_retries=data.get("task_retries", 0),
            pool_rebuilds=data.get("pool_rebuilds", 0),
        )

    @property
    def triangle_estimate(self) -> float:
        """The method's triangle point estimate, whatever it named it.

        Raises instead of defaulting so a method registered with an
        unconventional metric set fails loudly in harnesses that compare
        triangle counts (Table 2) rather than scoring a silent 100% ARE.
        """
        for key in ("triangles", "in_stream_triangles"):
            if key in self.estimates:
                return self.estimates[key]
        raise KeyError(
            f"method {self.spec.method!r} reports no triangle metric; "
            f"available metrics: {sorted(self.estimates)}"
        )


# ----------------------------------------------------------------------
# Source resolution
# ----------------------------------------------------------------------
def _resolve_edges(source: str, graph: Optional[Any]) -> List[Edge]:
    """The edge population a spec streams, in canonical (pre-shuffle) order.

    Resolution order: an explicitly passed graph/edge sequence wins, then
    a dataset-registry name, then an edge-list file path.  Graphs resolve
    to the same repr-sorted order :meth:`EdgeStream.from_graph` shuffles,
    so seeded permutations are bit-identical to the legacy entry points;
    files keep their arrival order (the stream seed then permutes it).
    """
    if graph is not None:
        if isinstance(graph, AdjacencyGraph):
            return EdgeStream.canonical_edges(graph)
        return list(graph)
    # Lazy import: repro.experiments.runner imports this module.
    from repro.experiments.datasets import DATASETS, make_graph

    if source in DATASETS:
        return EdgeStream.canonical_edges(make_graph(source))
    if os.path.exists(source):
        return list(simplify_edges(iter_edge_list(source)))
    raise ValueError(
        f"cannot resolve source {source!r}: not a registered dataset "
        f"and no such file"
    )


def _permute(edges: Sequence[Edge], stream_seed: Optional[int]) -> EdgeStream:
    """Seeded arrival permutation; ``None`` keeps the source order."""
    if stream_seed is None:
        return EdgeStream.from_edges(edges)
    order = list(edges)
    random.Random(stream_seed).shuffle(order)
    return EdgeStream(order)


def _resolve_weight(
    spec: RunSpec, method: MethodSpec, weight_fn: Optional[WeightFunction]
) -> Optional[WeightFunction]:
    requested = weight_fn if weight_fn is not None else (
        get_weight(spec.weight).factory() if spec.weight is not None else None
    )
    if requested is not None and not method.uses_weight:
        raise ValueError(
            f"method {spec.method!r} does not use a weight function; drop "
            f"the weight ({spec.weight or weight_fn!r}) or pick a "
            f"weight-aware method"
        )
    return requested


def _chunk_size_for(
    spec: RunSpec,
    method: MethodSpec,
    weight_fn: Optional[WeightFunction],
    counter: Any,
    stream: EdgeStream,
) -> Optional[int]:
    """The engine chunk size for this pass, or ``None`` for scalar.

    The chunked pipeline engages only when every layer consents: the
    spec asked for it, neither the method nor the weight reads node
    labels (mirroring the ``is_label_free`` gate of the shared-memory
    dispatch — a label-reading configuration must see the stream's
    original tuples), the counter's admission gate is actually
    vectorised (``chunk_vectorized``; false for e.g. the in-stream
    estimator, whose per-arrival snapshot leaves nothing to gate), and
    the stream columnarises — its labels already are int32 ints, so no
    relabelling ever happens on this path and samples, checkpoints and
    reports stay label-faithful.  Every fallback is bit-identical,
    just scalar-speed.
    """
    if spec.pipeline != "chunked":
        return None
    if method.reads_labels:
        return None
    if weight_fn is not None and not is_label_free(weight_fn):
        return None
    if not getattr(counter, "chunk_vectorized", False):
        return None
    if stream.columnar() is None:
        return None
    return DEFAULT_CHUNK_SIZE


def _lazy_file_stream(spec: RunSpec, method: MethodSpec, graph: Optional[Any]):
    """A lazy edge iterator when nothing forces materialisation, else None.

    A single unpermuted pass of a length-free method over an edge-list
    file never needs the population in memory — the counter is budget-
    bounded and the engine consumes any iterable — so ``sample`` on a
    multi-GB file keeps its streaming behaviour.
    """
    if (
        graph is not None
        or spec.stream_seed is not None
        or spec.checkpoints > 0
        or spec.replications > 1
        or spec.shards > 1
        or method.needs_stream_length
    ):
        return None
    from repro.experiments.datasets import DATASETS

    if spec.source in DATASETS or not os.path.exists(spec.source):
        return None  # datasets materialise anyway; bad paths error later
    return simplify_edges(iter_edge_list(spec.source))


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run(
    spec: RunSpec,
    *,
    graph: Optional[Any] = None,
    weight_fn: Optional[WeightFunction] = None,
    include_post: bool = False,
    faults: Optional[Any] = None,
) -> RunReport:
    """Execute one declarative spec and return its uniform report.

    Parameters
    ----------
    spec:
        The experiment description; its ``replications``/``checkpoints``
        fields select the replicated, tracking or single-pass mode.
    graph:
        Optional in-memory :class:`AdjacencyGraph` (or edge sequence)
        overriding ``spec.source`` resolution.
    weight_fn:
        Optional weight-function *instance* overriding ``spec.weight``
        (programmatic callers with unregistered weights).
    include_post:
        For tracking passes of GPS methods: also record the post-stream
        estimate bundle at every checkpoint (one Algorithm-2 evaluation
        per mark, so off by default).
    faults:
        Optional :class:`~repro.faults.FaultPlan` (or shared
        :class:`~repro.faults.FaultInjector`) consulted by pooled
        dispatch (replicated site ``"replication"``, sharded site
        ``"shard"``).  Chaos testing only; inline modes ignore it.

    Example
    -------
    >>> from repro.api import RunSpec, run
    >>> report = run(RunSpec(source="infra-roadNet-CA", method="triest",
    ...                      budget=2000))
    >>> report.mode, sorted(report.estimates)
    ('single', ['triangles'])
    """
    method = get_method(spec.method)
    resolved_weight = _resolve_weight(spec, method, weight_fn)

    lazy = _lazy_file_stream(spec, method, graph)
    if lazy is not None:
        # A lazy source cannot be pre-validated for the columnar gate
        # (a mid-stream fallback would have to replay consumed edges),
        # so the unpermuted file pass always drives scalar.
        counter = method.make(
            spec.budget, 0, spec.sampler_seed, weight_fn=resolved_weight,
            core=spec.core,
        )
        stats = StreamEngine(counter).run(lazy)
        return _finish_report(
            spec, mode="single", method=method, counter=counter, stats=stats
        )

    edges = _resolve_edges(spec.source, graph)

    if spec.shards > 1:
        return _run_sharded(spec, edges, resolved_weight, faults=faults)

    if spec.replications > 1:
        return _run_replicated(spec, edges, resolved_weight, faults=faults)

    stream = _permute(edges, spec.stream_seed)
    counter = method.make(
        spec.budget, len(stream), spec.sampler_seed, weight_fn=resolved_weight,
        core=spec.core,
    )
    chunk_size = _chunk_size_for(spec, method, resolved_weight, counter, stream)
    if spec.checkpoints > 0:
        return _run_tracking(
            spec, method, counter, stream, include_post, chunk_size
        )
    stats = StreamEngine(counter, chunk_size=chunk_size).run(stream)
    return _finish_report(
        spec, mode="single", method=method, counter=counter, stats=stats,
        pipeline="chunked" if chunk_size else "scalar",
    )


def replicate(
    spec: RunSpec,
    *,
    graph: Optional[Any] = None,
    weight_fn: Optional[WeightFunction] = None,
) -> RunReport:
    """Force the replicated (error-bar) pass, even for ``replications=1``.

    ``run(spec)`` treats a single replication as an ordinary pass; this
    entry point always returns a ``mode="replicate"`` report with
    per-metric summaries (a one-value :class:`MetricSummary` collapses to
    its point estimate), which is what ``python -m repro replicate -R 1``
    means.

    Example
    -------
    >>> from repro.api import RunSpec, replicate
    >>> report = replicate(RunSpec(source="infra-roadNet-CA",
    ...                            method="triest", budget=2000,
    ...                            replications=4, workers=0))
    >>> report.mode, report.metrics["triangles"].count
    ('replicate', 4)
    """
    if spec.stream_seed is None:
        raise ValueError(
            "replicated runs need a base stream_seed (replication i "
            "streams the permutation seeded stream_seed + i)"
        )
    if spec.checkpoints > 0:
        # Mirror the RunSpec R>1 rule: the replicated pass aggregates
        # final estimates only and would silently drop the schedule.
        raise ValueError(
            "checkpoints and replicated execution are mutually exclusive"
        )
    method = get_method(spec.method)
    resolved_weight = _resolve_weight(spec, method, weight_fn)
    edges = _resolve_edges(spec.source, graph)
    if spec.shards > 1:
        return _run_sharded(spec, edges, resolved_weight,
                            force_replicate=True)
    return _run_replicated(spec, edges, resolved_weight)


def _run_sharded(
    spec: RunSpec,
    edges: Sequence[Edge],
    weight_fn: Optional[WeightFunction],
    force_replicate: bool = False,
    faults: Optional[Any] = None,
) -> RunReport:
    """Sharded dispatch: route across ``spec.shards`` samplers and merge.

    One pass per replication; every replication ``i`` shifts the stream
    permutation (``stream_seed + i``) and the sampler-seed base
    (``sampler_seed + i``; shard ``s`` then seeds ``base·shards + s``)
    exactly like the replicated single-sampler protocol.
    """
    from repro.shard.runner import ShardedRunner
    from repro.shard.spec import ShardSpec

    runner = ShardedRunner.from_layout(
        edges,
        ShardSpec(shards=spec.shards),
        budget=spec.budget,
        method=spec.method,
        weight_fn=weight_fn,
        stream_seed=spec.stream_seed,
        sampler_seed=spec.sampler_seed,
        core=spec.core,
        pipeline=spec.pipeline,
        workers=spec.workers,
        faults=faults,
    )
    stats = ("triangles", "wedges", "clustering")
    if spec.replications > 1 or force_replicate:
        started = time.perf_counter()
        values: List[Dict[str, float]] = []
        workers_used = 0
        pipeline = "scalar"
        task_retries = 0
        pool_rebuilds = 0
        assert spec.stream_seed is not None  # spec validation enforces it
        for i in range(spec.replications):
            result = runner.run(
                stream_seed=spec.stream_seed + i,
                sampler_seed=spec.sampler_seed + i,
            )
            workers_used = max(workers_used, result.workers)
            pipeline = result.pipeline
            task_retries += result.task_retries
            pool_rebuilds += result.pool_rebuilds
            bundle = result.estimates
            values.append(
                {name: getattr(bundle, name).value for name in stats}
            )
        elapsed = time.perf_counter() - started
        metrics = {
            name: MetricSummary.from_values([v[name] for v in values])
            for name in stats
        }
        total = len(edges) * spec.replications
        return RunReport(
            spec=spec,
            mode="replicate",
            edges=len(edges),
            estimates={name: s.mean for name, s in metrics.items()},
            metrics=metrics,
            elapsed_seconds=elapsed,
            update_time_us=elapsed / max(1, total) * 1e6,
            edges_per_second=total / elapsed if elapsed > 0 else float("inf"),
            replications=spec.replications,
            workers=workers_used,
            pipeline=pipeline,
            task_retries=task_retries,
            pool_rebuilds=pool_rebuilds,
        )

    result = runner.run()
    bundle = result.estimates
    elapsed = result.elapsed_seconds
    return RunReport(
        spec=spec,
        mode="sharded",
        edges=result.edges,
        estimates={name: getattr(bundle, name).value for name in stats},
        elapsed_seconds=elapsed,
        update_time_us=elapsed / max(1, result.edges) * 1e6,
        edges_per_second=(
            result.edges / elapsed if elapsed > 0 else float("inf")
        ),
        workers=result.workers,
        sample_size=bundle.sample_size,
        threshold=bundle.threshold,
        post_stream=bundle,
        pipeline=result.pipeline,
        task_retries=result.task_retries,
        pool_rebuilds=result.pool_rebuilds,
    )


def _run_replicated(
    spec: RunSpec,
    edges: Sequence[Edge],
    weight_fn: Optional[WeightFunction],
    faults: Optional[Any] = None,
) -> RunReport:
    runner = ReplicatedRunner(
        edges,
        capacity=spec.budget,
        weight_fn=weight_fn,
        replications=spec.replications,
        max_workers=spec.workers,
        base_stream_seed=spec.stream_seed,
        base_sampler_seed=spec.sampler_seed,
        method=spec.method,
        core=spec.core,
        pipeline=spec.pipeline,
        faults=faults,
    )
    started = time.perf_counter()
    summary = runner.run()
    elapsed = time.perf_counter() - started
    total = len(edges) * spec.replications
    return RunReport(
        spec=spec,
        mode="replicate",
        edges=len(edges),
        estimates={name: s.mean for name, s in summary.metrics.items()},
        metrics=dict(summary.metrics),
        elapsed_seconds=elapsed,
        update_time_us=elapsed / max(1, total) * 1e6,
        edges_per_second=total / elapsed if elapsed > 0 else float("inf"),
        replications=summary.num_replications,
        workers=summary.workers,
        pipeline=summary.pipeline,
        task_retries=summary.task_retries,
        pool_rebuilds=summary.pool_rebuilds,
    )


def _run_tracking(
    spec: RunSpec,
    method: MethodSpec,
    counter: Any,
    stream: EdgeStream,
    include_post: bool,
    chunk_size: Optional[int] = None,
) -> RunReport:
    exact = ExactStreamCounter()
    points: List[TrackPoint] = []
    is_gps = isinstance(counter, IN_STREAM_TYPES)
    sampler = getattr(counter, "sampler", None)

    def record(position: int) -> None:
        points.append(
            TrackPoint(
                position=position,
                exact_triangles=exact.triangles,
                exact_clustering=exact.clustering,
                estimate=float(counter.triangle_estimate),
                in_stream=counter.estimates() if is_gps else None,
                post_stream=(
                    PostStreamEstimator(sampler).estimate()
                    if include_post and sampler is not None
                    else None
                ),
            )
        )

    engine = StreamEngine(counter, companions=(exact,), chunk_size=chunk_size)
    stats = engine.run(
        stream,
        checkpoints=stream.checkpoints(spec.checkpoints),
        on_checkpoint=record,
    )
    return _finish_report(
        spec, mode="track", method=method, counter=counter, stats=stats,
        tracking=tuple(points),
        pipeline="chunked" if chunk_size else "scalar",
    )


def _finish_report(
    spec: RunSpec,
    *,
    mode: str,
    method: MethodSpec,
    counter: Any,
    stats: EngineStats,
    tracking: Tuple[TrackPoint, ...] = (),
    pipeline: str = "scalar",
) -> RunReport:
    sampler = getattr(counter, "sampler", None)
    in_stream = (
        counter.estimates() if isinstance(counter, IN_STREAM_TYPES) else None
    )
    post_stream = (
        PostStreamEstimator(sampler).estimate()
        if sampler is not None and method.wants_post_stream
        else None
    )
    if method.from_bundles is not None and (
        in_stream is not None or post_stream is not None
    ):
        # Derive metrics from the bundles just computed instead of letting
        # the extractor re-run Algorithm 2 over the reservoir.
        estimates = method.from_bundles(in_stream, post_stream)
    else:
        estimates = method.extract(counter)
    return RunReport(
        spec=spec,
        mode=mode,
        edges=stats.edges,
        estimates=estimates,
        tracking=tracking,
        elapsed_seconds=stats.elapsed_seconds,
        update_time_us=stats.update_time_us,
        edges_per_second=stats.edges_per_second,
        sample_size=sampler.sample_size if sampler is not None else None,
        threshold=sampler.threshold if sampler is not None else None,
        in_stream=in_stream,
        post_stream=post_stream,
        pipeline=pipeline,
        counter=counter,
    )


__all__ = ["RunReport", "TrackPoint", "replicate", "run"]
