"""repro.api — the declarative experiment facade.

The paper's protocol (Sec. 6) is one experiment shape: a seeded stream
permutation drives a budget-matched counter through the
:class:`~repro.engine.StreamEngine`, and estimates come back with error
bars.  This package expresses that shape once, declaratively:

* :mod:`repro.api.registry` — ``@register_method`` / ``@register_weight``
  registries; each method carries its own budget interpretation
  ``(budget, stream_length, seed) -> counter`` and metric extractor, so
  new methods plug into every entry point at once.
* :mod:`repro.api.spec` — :class:`RunSpec`, a frozen value object with a
  lossless JSON round trip: experiments are data, not code.
* :mod:`repro.api.execution` — ``run(spec) -> RunReport`` dispatching a
  spec through single, tracking or replicated passes; any registered
  method replicates across the process pool.
* :mod:`repro.api.sweep` — :class:`SweepSpec`, a declarative grid of
  ``RunSpec``\\ s (methods × budgets × weights × sources × seeds);
  ``run_sweep(spec) -> SweepReport`` executes it over a shared process
  pool with cached ground truth and per-cell error summaries.
* :mod:`repro.api.ground_truth` — the content-addressed cache of exact
  statistics (and sweep cell reports) behind ``--resume``.

Quick start::

    from repro.api import RunSpec, SweepSpec, run, run_sweep
    report = run(RunSpec(source="infra-roadNet-CA", method="triest",
                         budget=2000, replications=8))
    print(report.metrics["triangles"].mean, report.to_json())
    grid = run_sweep(SweepSpec(sources=("infra-roadNet-CA",),
                               methods=("triest", "gps-post"),
                               budgets=(1000, 2000), runs=4))
    print(grid.error_matrix("infra-roadNet-CA"))

The CLI (``python -m repro``), the experiment harnesses
(:mod:`repro.experiments`) and the examples all route through this
facade; ``python -m repro methods`` lists what is registered.
"""

from repro.api.execution import RunReport, TrackPoint, replicate, run
from repro.api.ground_truth import GroundTruthCache
from repro.api.sweep import (
    ANY,
    CellKey,
    CellResult,
    SweepCell,
    SweepReport,
    SweepSpec,
    run_sweep,
)
from repro.api.registry import (
    GpsPostStreamAdapter,
    MethodSpec,
    WeightSpec,
    baseline_method_names,
    get_method,
    get_weight,
    method_names,
    method_specs,
    register_method,
    register_weight,
    weight_names,
    weight_specs,
)
from repro.api.spec import RunSpec

__all__ = [
    "ANY",
    "CellKey",
    "CellResult",
    "GpsPostStreamAdapter",
    "GroundTruthCache",
    "MethodSpec",
    "RunReport",
    "RunSpec",
    "SweepCell",
    "SweepReport",
    "SweepSpec",
    "TrackPoint",
    "WeightSpec",
    "baseline_method_names",
    "get_method",
    "get_weight",
    "method_names",
    "method_specs",
    "register_method",
    "register_weight",
    "replicate",
    "run",
    "run_sweep",
    "weight_names",
    "weight_specs",
]
