"""repro.api — the declarative experiment facade.

The paper's protocol (Sec. 6) is one experiment shape: a seeded stream
permutation drives a budget-matched counter through the
:class:`~repro.engine.StreamEngine`, and estimates come back with error
bars.  This package expresses that shape once, declaratively:

* :mod:`repro.api.registry` — ``@register_method`` / ``@register_weight``
  registries; each method carries its own budget interpretation
  ``(budget, stream_length, seed) -> counter`` and metric extractor, so
  new methods plug into every entry point at once.
* :mod:`repro.api.spec` — :class:`RunSpec`, a frozen value object with a
  lossless JSON round trip: experiments are data, not code.
* :mod:`repro.api.execution` — ``run(spec) -> RunReport`` dispatching a
  spec through single, tracking or replicated passes; any registered
  method replicates across the process pool.

Quick start::

    from repro.api import RunSpec, run
    report = run(RunSpec(source="infra-roadNet-CA", method="triest",
                         budget=2000, replications=8))
    print(report.metrics["triangles"].mean, report.to_json())

The CLI (``python -m repro``), the experiment harnesses
(:mod:`repro.experiments`) and the examples all route through this
facade; ``python -m repro methods`` lists what is registered.
"""

from repro.api.execution import RunReport, TrackPoint, replicate, run
from repro.api.registry import (
    GpsPostStreamAdapter,
    MethodSpec,
    WeightSpec,
    baseline_method_names,
    get_method,
    get_weight,
    method_names,
    method_specs,
    register_method,
    register_weight,
    weight_names,
    weight_specs,
)
from repro.api.spec import RunSpec

__all__ = [
    "GpsPostStreamAdapter",
    "MethodSpec",
    "RunReport",
    "RunSpec",
    "TrackPoint",
    "WeightSpec",
    "baseline_method_names",
    "get_method",
    "get_weight",
    "method_names",
    "method_specs",
    "register_method",
    "register_weight",
    "replicate",
    "run",
    "weight_names",
    "weight_specs",
]
