"""Method and weight registries: the extensible heart of :mod:`repro.api`.

Every stream-sampling method the harness can run is described by one
:class:`MethodSpec` registered under a stable name.  A registration
carries the method's *budget interpretation* — a factory
``(budget, stream_length, seed) -> counter`` that turns the paper's
common memory budget into that method's own parameterisation (reservoir
capacity for GPS/TRIEST, sampling probability ``budget/|K|`` for
MASCOT/gSH, estimator instances for NSAMP, split reservoirs for JSP) —
plus a metric extractor mapping the finished counter to named point
estimates.  Budget matching therefore stays per-method but open for
extension: third parties register new methods with
:func:`register_method` and every entry point (``run(spec)``, the CLI,
replication pools, the table harnesses) can drive them immediately.

Weight functions get the same treatment via :func:`register_weight`, so
``--weight`` choices and :class:`~repro.api.spec.RunSpec` fields are
names resolved here rather than dictionaries scattered through callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.baselines.buriol import BuriolSampler
from repro.baselines.jha import JhaSeshadhriPinar
from repro.baselines.mascot import Mascot, MascotBasic
from repro.baselines.neighborhood import NeighborhoodSampling
from repro.baselines.sample_hold import GraphSampleHold
from repro.baselines.triest import TriestBase, TriestImpr
from repro.core.compact import (
    DEFAULT_CORE,
    make_in_stream_estimator,
    make_priority_sampler,
)
from repro.core.in_stream import InStreamEstimator
from repro.core.post_stream import PostStreamEstimator
from repro.core.weights import (
    TriangleWeight,
    UniformWeight,
    WedgeWeight,
    WeightFunction,
)
from repro.graph.edge import Node

#: Budget-interpretation factory ``(budget, stream_length, seed) -> counter``.
#: Weight-aware methods (the GPS family) additionally accept a
#: ``weight_fn`` keyword; see :attr:`MethodSpec.uses_weight`.
MethodFactory = Callable[..., Any]

#: Maps a finished counter to named point estimates.
MetricExtractor = Callable[[Any], Dict[str, float]]

#: Derives the same point estimates from already-computed GPS bundles
#: ``(in_stream, post_stream)`` so report assembly never re-runs
#: Algorithm 2 (see :attr:`MethodSpec.from_bundles`).
BundleExtractor = Callable[[Any, Any], Dict[str, float]]


def _default_extract(counter: Any) -> Dict[str, float]:
    """Every protocol counter exposes at least its triangle estimate."""
    return {"triangles": float(counter.triangle_estimate)}


@dataclass(frozen=True)
class MethodSpec:
    """One registered stream-sampling method.

    Attributes
    ----------
    name:
        Stable registry key (CLI ``--method`` value, :class:`RunSpec` field).
    factory:
        Budget interpretation: ``(budget, stream_length, seed) -> counter``.
        When :attr:`uses_weight` is true the factory also accepts a
        ``weight_fn`` keyword (``None`` selects the method's default).
    description:
        One-line human summary for the ``methods`` listing command.
    uses_weight:
        Whether the factory understands the GPS weight-function family.
    extract:
        Metric extractor for finished counters; defaults to the triangle
        estimate under the ``"triangles"`` key.
    from_bundles:
        Optional alternative extractor ``(in_stream, post_stream) ->
        metrics`` fed with the estimate bundles the report already
        computed, so methods whose metrics are derivable from them (the
        GPS family) don't pay a second retrospective pass.  Must produce
        exactly the values :attr:`extract` would.
    needs_stream_length:
        Whether the factory's budget interpretation divides by the
        stream length (probability-matched methods).  Length-free
        methods can be driven over lazy streams of unknown size.
    wants_post_stream:
        Whether reports should carry the retrospective (Algorithm 2)
        estimate bundle; off for methods whose metrics never read it, so
        single passes don't pay an unused reservoir pass.
    supports_core:
        Whether the factory understands the ``core`` keyword selecting a
        GPS reservoir implementation (``"compact"`` slot arrays vs the
        ``"object"`` reference; see :mod:`repro.core.compact`).  The two
        cores produce bit-identical results under shared seeds, so the
        flag is purely a performance switch.  Methods without it ignore
        the spec's core selection.
    reads_labels:
        Whether the method's counter or metric extractor observes node
        *labels* (as opposed to just graph topology).  Every built-in
        method is label-free, which licenses the replication/sweep
        pools' interned (dense-``int32``) dispatch; a third-party method
        that e.g. reports per-label statistics must register with
        ``reads_labels=True`` to keep original labels (and pickled
        dispatch) in those pools.
    """

    name: str
    factory: MethodFactory
    description: str = ""
    uses_weight: bool = False
    extract: MetricExtractor = field(default=_default_extract)
    from_bundles: Optional[BundleExtractor] = None
    needs_stream_length: bool = False
    wants_post_stream: bool = False
    supports_core: bool = False
    reads_labels: bool = False

    def make(
        self,
        budget: int,
        stream_length: int,
        seed: Optional[int],
        weight_fn: Optional[WeightFunction] = None,
        core: Optional[str] = None,
    ) -> Any:
        """Instantiate the counter for one run (the budget interpretation)."""
        if budget <= 0:
            raise ValueError("budget must be positive")
        kwargs: Dict[str, Any] = {}
        if self.uses_weight:
            kwargs["weight_fn"] = weight_fn
        if self.supports_core and core is not None:
            kwargs["core"] = core
        return self.factory(budget, stream_length, seed, **kwargs)


@dataclass(frozen=True)
class WeightSpec:
    """One registered weight-function family member."""

    name: str
    factory: Callable[[], WeightFunction]
    description: str = ""


_METHODS: Dict[str, MethodSpec] = {}
_WEIGHTS: Dict[str, WeightSpec] = {}


def register_method(
    name: str,
    *,
    description: str = "",
    uses_weight: bool = False,
    extract: Optional[MetricExtractor] = None,
    from_bundles: Optional[BundleExtractor] = None,
    needs_stream_length: bool = False,
    wants_post_stream: bool = False,
    supports_core: bool = False,
    reads_labels: bool = False,
) -> Callable[[MethodFactory], MethodFactory]:
    """Class decorator/registration hook for stream-sampling methods.

    The decorated callable is the budget-interpretation factory
    ``(budget, stream_length, seed) -> counter``.  Registration is global
    and name-keyed; duplicate names are rejected so two modules cannot
    silently shadow each other's methods.

    Example
    -------
    >>> @register_method("my-reservoir", description="toy example")
    ... def _make(budget, stream_length, seed):
    ...     return TriestBase(budget, seed=seed)      # doctest: +SKIP

    The new name is immediately valid everywhere: ``RunSpec
    (method="my-reservoir")``, ``SweepSpec(methods=("my-reservoir",))``,
    ``python -m repro replicate --method my-reservoir`` …
    """

    def decorate(factory: MethodFactory) -> MethodFactory:
        if name in _METHODS:
            raise ValueError(f"method {name!r} is already registered")
        _METHODS[name] = MethodSpec(
            name=name,
            factory=factory,
            description=description,
            uses_weight=uses_weight,
            extract=extract or _default_extract,
            from_bundles=from_bundles,
            needs_stream_length=needs_stream_length,
            wants_post_stream=wants_post_stream,
            supports_core=supports_core,
            reads_labels=reads_labels,
        )
        return factory

    return decorate


def register_weight(
    name: str, *, description: str = ""
) -> Callable[[Callable[[], WeightFunction]], Callable[[], WeightFunction]]:
    """Decorator registering a zero-argument weight-function factory.

    Example
    -------
    >>> @register_weight("unit", description="constant weight")
    ... class UnitWeight(UniformWeight):
    ...     pass                                       # doctest: +SKIP

    The name then resolves anywhere a weight is named: ``--weight unit``,
    ``RunSpec(weight="unit")``, ``SweepSpec(weights=("unit",))``.
    """

    def decorate(factory: Callable[[], WeightFunction]):
        if name in _WEIGHTS:
            raise ValueError(f"weight {name!r} is already registered")
        _WEIGHTS[name] = WeightSpec(name=name, factory=factory, description=description)
        return factory

    return decorate


def get_method(name: str) -> MethodSpec:
    """Look a method up by name; unknown names raise with the known set.

    Example
    -------
    >>> get_method("triest").uses_weight
    False
    """
    try:
        return _METHODS[name]
    except KeyError:
        known = ", ".join(sorted(_METHODS))
        raise ValueError(f"unknown method {name!r}; known methods: {known}") from None


def get_weight(name: str) -> WeightSpec:
    """Look a weight up by name; unknown names raise with the known set.

    Example
    -------
    >>> get_weight("uniform").name
    'uniform'
    """
    try:
        return _WEIGHTS[name]
    except KeyError:
        known = ", ".join(sorted(_WEIGHTS))
        raise ValueError(f"unknown weight {name!r}; known weights: {known}") from None


def method_names() -> Tuple[str, ...]:
    """Registered method names in registration order.

    Example
    -------
    >>> "gps" in method_names() and "triest" in method_names()
    True
    """
    return tuple(_METHODS)


def weight_names() -> Tuple[str, ...]:
    """Registered weight names in registration order.

    Example
    -------
    >>> weight_names()
    ('triangle', 'uniform', 'wedge')
    """
    return tuple(_WEIGHTS)


def method_specs() -> Tuple[MethodSpec, ...]:
    """Registered :class:`MethodSpec` values in registration order.

    Example
    -------
    >>> [s.name for s in method_specs()][:2]
    ['gps', 'gps-post']
    """
    return tuple(_METHODS.values())


def weight_specs() -> Tuple[WeightSpec, ...]:
    """Registered :class:`WeightSpec` values in registration order.

    Example
    -------
    >>> [s.name for s in weight_specs()]
    ['triangle', 'uniform', 'wedge']
    """
    return tuple(_WEIGHTS.values())


def _markdown_escape(text: str) -> str:
    return text.replace("|", "\\|").replace("\n", " ")


def registry_markdown() -> str:
    """The method/weight catalog as Markdown, generated from the registry.

    This is the single source of ``docs/methods.md``:
    ``python -m repro methods --markdown`` emits it, a test (and a CI
    step) fails when the checked-in file drifts from the registry, so
    registering a method *is* documenting it.

    Example
    -------
    >>> "| gps " in registry_markdown()
    True
    """
    lines = [
        "# Method & weight catalog",
        "",
        "<!-- GENERATED FILE - DO NOT EDIT. -->",
        "<!-- Regenerate with: python -m repro methods --markdown > docs/methods.md -->",
        "",
        "Every method and weight the harness can drive, straight from the",
        "`repro.api.registry`. A registration carries the method's *budget*",
        "*interpretation* — how the paper's common memory budget `m` maps to",
        "its own parameterisation — so every entry below is runnable from",
        "`RunSpec`/`SweepSpec`, the CLI, and the replication pool with a",
        "matched budget.",
        "",
        "## Stream-sampling methods",
        "",
        "| name | weighted | budget ÷ stream length | description |",
        "|---|---|---|---|",
    ]
    for spec in method_specs():
        lines.append(
            "| {name} | {weighted} | {length} | {description} |".format(
                name=spec.name,
                weighted="yes" if spec.uses_weight else "no",
                length="yes" if spec.needs_stream_length else "no",
                description=_markdown_escape(spec.description),
            )
        )
    lines += [
        "",
        "`weighted` methods accept a `--weight` / `RunSpec.weight` from the",
        "table below; `budget ÷ stream length` marks probability-matched",
        "methods (`p = m/|K|`), which need the stream length up front and",
        "therefore cannot run over lazy file streams of unknown size.",
        "",
        "## Weight functions (GPS family)",
        "",
        "| name | description |",
        "|---|---|",
    ]
    for spec in weight_specs():
        lines.append(
            f"| {spec.name} | {_markdown_escape(spec.description)} |"
        )
    lines += [
        "",
        "Register your own with `@register_method(...)` /",
        "`@register_weight(...)` (see `docs/architecture.md`); it appears",
        "here, in `python -m repro methods`, and in every entry point at",
        "once.",
        "",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Built-in weights
# ----------------------------------------------------------------------
register_weight("triangle", description="W = 9·|△̂(k)| + 1, variance-optimal for triangles")(TriangleWeight)
register_weight("uniform", description="W ≡ 1: classic uniform reservoir sampling")(UniformWeight)
register_weight("wedge", description="W = deĝ(v1) + deĝ(v2) + 1, wedge-targeted")(WedgeWeight)


# ----------------------------------------------------------------------
# Built-in methods: the GPS family
# ----------------------------------------------------------------------
class GpsPostStreamAdapter:
    """Expose a bare GPS sampler through the counter protocol.

    ``triangle_estimate`` runs Algorithm 2 retrospectively over the
    current reservoir, so the adapter reports post-stream estimates at
    any point of the pass.  Works over either reservoir core (compact or
    object) — Algorithm 2 consumes the sample through the shared
    protocol.
    """

    __slots__ = ("sampler",)

    def __init__(self, sampler: Any) -> None:
        self.sampler = sampler

    def process(self, u: Node, v: Node) -> None:
        self.sampler.process(u, v)

    def process_many(self, edges) -> int:
        return self.sampler.process_many(edges)

    @property
    def chunk_vectorized(self) -> bool:
        """Whether the wrapped core gates columnar blocks vectorised."""
        return getattr(self.sampler, "chunk_vectorized", False)

    def process_chunk(self, us, vs) -> int:
        """Columnar block pass-through (scalar adapter on the object core)."""
        process_chunk = getattr(self.sampler, "process_chunk", None)
        if process_chunk is not None:
            return process_chunk(us, vs)
        from repro.streams.chunks import pairs_from_columns

        return self.sampler.process_many(pairs_from_columns(us, vs))

    def reset(self, seed=None) -> None:
        """Arena reuse hook; raises when the wrapped core has no reset."""
        self.sampler.reset(seed)

    @property
    def triangle_estimate(self) -> float:
        return PostStreamEstimator(self.sampler).estimate().triangles.value


def _gps_shared_extract(counter: InStreamEstimator) -> Dict[str, float]:
    """The paper's shared-sample metric set: both flavours, one reservoir."""
    post = PostStreamEstimator(counter.sampler).estimate()
    return {
        "in_stream_triangles": counter.triangle_estimate,
        "post_stream_triangles": post.triangles.value,
        "in_stream_wedges": counter.wedge_estimate,
        "in_stream_clustering": counter.clustering_estimate,
    }


def _gps_shared_from_bundles(in_stream, post_stream) -> Dict[str, float]:
    return {
        "in_stream_triangles": in_stream.triangles.value,
        "post_stream_triangles": post_stream.triangles.value,
        "in_stream_wedges": in_stream.wedges.value,
        "in_stream_clustering": in_stream.clustering.value,
    }


def _gps_in_stream_extract(counter: InStreamEstimator) -> Dict[str, float]:
    return {
        "triangles": counter.triangle_estimate,
        "wedges": counter.wedge_estimate,
        "clustering": counter.clustering_estimate,
    }


def _gps_in_stream_from_bundles(in_stream, post_stream) -> Dict[str, float]:
    return {
        "triangles": in_stream.triangles.value,
        "wedges": in_stream.wedges.value,
        "clustering": in_stream.clustering.value,
    }


def _gps_post_from_bundles(in_stream, post_stream) -> Dict[str, float]:
    return {"triangles": post_stream.triangles.value}


@register_method(
    "gps",
    description="GPS shared-sample pass: in-stream and post-stream estimates "
    "from one reservoir (paper Sec. 6 protocol)",
    uses_weight=True,
    extract=_gps_shared_extract,
    from_bundles=_gps_shared_from_bundles,
    wants_post_stream=True,
    supports_core=True,
    reads_labels=False,
)
def _make_gps(budget, stream_length, seed, weight_fn=None, core=DEFAULT_CORE):
    return make_in_stream_estimator(
        budget, weight_fn=weight_fn, seed=seed, core=core
    )


@register_method(
    "gps-post",
    description="GPS with retrospective (Algorithm 2) estimation only",
    uses_weight=True,
    from_bundles=_gps_post_from_bundles,
    wants_post_stream=True,
    supports_core=True,
    reads_labels=False,
)
def _make_gps_post(budget, stream_length, seed, weight_fn=None,
                   core=DEFAULT_CORE):
    return GpsPostStreamAdapter(
        make_priority_sampler(budget, weight_fn=weight_fn, seed=seed,
                              core=core)
    )


@register_method(
    "gps-in-stream",
    description="GPS with in-stream (Algorithm 3) snapshot estimation",
    uses_weight=True,
    extract=_gps_in_stream_extract,
    from_bundles=_gps_in_stream_from_bundles,
    supports_core=True,
    reads_labels=False,
)
def _make_gps_in_stream(budget, stream_length, seed, weight_fn=None,
                        core=DEFAULT_CORE):
    return make_in_stream_estimator(
        budget, weight_fn=weight_fn, seed=seed, core=core
    )


# ----------------------------------------------------------------------
# Built-in methods: the baselines (budget matched the way the paper does)
# ----------------------------------------------------------------------
def _probability(budget: int, stream_length: int) -> float:
    return min(1.0, budget / max(1, stream_length))


@register_method(
    "triest",
    description="TRIEST-BASE uniform reservoir (De Stefani et al., KDD 2016)",
    reads_labels=False,
)
def _make_triest(budget, stream_length, seed):
    return TriestBase(budget, seed=seed)


@register_method(
    "triest-impr",
    description="TRIEST-IMPR: never-decremented weighted estimate",
    reads_labels=False,
)
def _make_triest_impr(budget, stream_length, seed):
    return TriestImpr(budget, seed=seed)


@register_method(
    "mascot",
    description="MASCOT local+global with p = budget/|K| (Lim & Kang, KDD 2015)",
    needs_stream_length=True,
    reads_labels=False,
)
def _make_mascot(budget, stream_length, seed):
    return Mascot(_probability(budget, stream_length), seed=seed)


@register_method(
    "mascot-c",
    description="MASCOT-C basic variant with p = budget/|K|",
    needs_stream_length=True,
    reads_labels=False,
)
def _make_mascot_c(budget, stream_length, seed):
    return MascotBasic(_probability(budget, stream_length), seed=seed)


@register_method(
    "nsamp",
    description="NSAMP r-estimator array (Pavan et al., VLDB 2013)",
    reads_labels=False,
)
def _make_nsamp(budget, stream_length, seed):
    return NeighborhoodSampling(budget, seed=seed)


@register_method(
    "jsp",
    description="Jha–Seshadhri–Pinar wedge sampling; half edges, half wedges",
    reads_labels=False,
)
def _make_jsp(budget, stream_length, seed):
    half = max(2, budget // 2)
    return JhaSeshadhriPinar(half, half, seed=seed)


@register_method(
    "gsh",
    description="Graph sample-and-hold gSH(p, 2p) with p = budget/|K| "
    "(Ahmed et al., KDD 2014)",
    needs_stream_length=True,
    reads_labels=False,
)
def _make_gsh(budget, stream_length, seed):
    # Hold-everything-adjacent explodes memory; use q = 2p capped at 1.
    p = _probability(budget, stream_length)
    return GraphSampleHold(p, min(1.0, 2 * p), seed=seed)


@register_method(
    "buriol",
    description="Buriol et al. estimator array adapted to the adjacency model",
    reads_labels=False,
)
def _make_buriol(budget, stream_length, seed):
    return BuriolSampler(budget, seed=seed)


def baseline_method_names() -> Tuple[str, ...]:
    """Registry-derived method set the comparison harnesses iterate.

    Every registered method except the shared-sample ``gps`` meta-entry
    (which reports both estimation flavours at once and is exercised via
    ``run_gps``/its own sweep cells).

    Example
    -------
    >>> "gps" not in baseline_method_names()
    True
    """
    return tuple(name for name in _METHODS if name != "gps")


__all__ = [
    "GpsPostStreamAdapter",
    "MethodSpec",
    "WeightSpec",
    "baseline_method_names",
    "get_method",
    "get_weight",
    "method_names",
    "method_specs",
    "register_method",
    "register_weight",
    "registry_markdown",
    "weight_names",
    "weight_specs",
]
