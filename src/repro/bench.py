"""``python -m repro bench`` — the one way BENCH_*.json files are made.

Five targets, one JSON envelope::

    python -m repro bench engine       # → BENCH_engine.json
    python -m repro bench replication  # → BENCH_replication.json
    python -m repro bench sweep        # → BENCH_sweep.json
    python -m repro bench serve        # → BENCH_serve.json
    python -m repro bench shard        # → BENCH_shard.json

Every payload carries the same envelope — ``benchmark``, ``mode``
(``full``/``quick``), ``generated_by``, ``python``, ``params``,
``results`` — so the perf trajectory across PRs stays machine-diffable.
``--quick`` shrinks each target to CI-smoke size (same schema).

* **engine** measures the GPS sampler update loop: compact core vs the
  object reference core, uniform and triangle weights, best-of-N
  repeats with the GC collected between runs (allocation pressure from
  a previous measurement otherwise taxes the next one).  The two cores
  are asserted bit-identical under a shared seed before timing counts.
  A second ladder measures the **chunked pipeline** (columnar blocks
  through the vectorised uniform-weight admission gate) against the
  scalar compact and object cores over a chunk-size axis, on a
  steady-state stream (budget ≪ stream length — the regime GPS runs in
  and the gate targets) *and* on the legacy admit-heavy envelope, with
  the same shared-seed identity assert.
* **replication** measures worker fan-out setup vs graph size: the
  bytes and serialisation time of the legacy pickled per-worker payload
  (linear in |K|) against the shared-memory publish/attach path, whose
  per-task payload is a fixed-size descriptor; plus an end-to-end
  replicated run under both dispatches, asserted bit-identical.
* **sweep** measures the grid layer: a cold sweep into a fresh cache
  versus the same sweep resumed from it (ground truth and cell reports
  replayed, no recount).
* **serve** measures the live service: sustained ingestion over the
  steady-state uniform synthetic stream against a ladder of concurrent
  query-reader threads (queries/sec × edges/sec, per-query latency),
  with the final served estimates asserted bit-identical to a batch
  pass over the same stream.
* **shard** measures sharded GPS over the steady-state ladder: every
  shard's substream is driven *independently* (each shard is its own
  sampler over its own router partition, exactly what one host of an
  S-host fleet would run) and the fleet throughput is the full stream
  over the slowest shard's wall clock — the parallel capacity the
  seeded edge-hash router unlocks.  The single-process inline wall
  clock is recorded alongside, so a one-core box's numbers stay
  honest.  A second section replicates merged vs single-sampler
  estimates at equal *total* budget against exact triangle counts
  (relative error of the mean, per shard count).
"""

from __future__ import annotations

import argparse
import gc
import json
import pickle
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

TARGETS = ("engine", "replication", "sweep", "serve", "shard")

DEFAULT_OUTPUTS = {
    "engine": "BENCH_engine.json",
    "replication": "BENCH_replication.json",
    "sweep": "BENCH_sweep.json",
    "serve": "BENCH_serve.json",
    "shard": "BENCH_shard.json",
}


def _envelope(target: str, quick: bool, params: Dict, results: Dict) -> Dict:
    return {
        "benchmark": target,
        "mode": "quick" if quick else "full",
        "generated_by": f"python -m repro bench {target}",
        "python": platform.python_version(),
        "params": params,
        "results": results,
    }


def _bench_stream(quick: bool):
    """The shared benchmark stream: a heavy-tailed Chung–Lu graph."""
    from repro.graph.generators import chung_lu
    from repro.streams.stream import EdgeStream

    if quick:
        graph = chung_lu(2_000, 10_000, exponent=2.3, seed=42)
        capacity = 1_000
    else:
        graph = chung_lu(10_000, 50_000, exponent=2.3, seed=42)
        capacity = 4_000
    return list(EdgeStream.from_graph(graph, seed=0)), capacity


def _best_rate(
    make_counter: Callable[[], object],
    edges: Sequence[Tuple[int, int]],
    repeats: int,
) -> float:
    """Best-of-``repeats`` edges/sec, GC-collected between runs."""
    best = 0.0
    for _ in range(repeats):
        gc.collect()
        counter = make_counter()
        started = time.perf_counter()
        counter.process_many(edges)
        elapsed = time.perf_counter() - started
        best = max(best, len(edges) / elapsed)
        del counter
    return best


def _best_chunked_rate(
    make_counter: Callable[[], object],
    columns,
    chunk_size: int,
    repeats: int,
) -> float:
    """Best-of-``repeats`` edges/sec through ``process_chunk`` blocks."""
    u, v = columns
    n = len(u)
    best = 0.0
    for _ in range(repeats):
        gc.collect()
        counter = make_counter()
        process_chunk = counter.process_chunk
        started = time.perf_counter()
        for at in range(0, n, chunk_size):
            process_chunk(u[at:at + chunk_size], v[at:at + chunk_size])
        elapsed = time.perf_counter() - started
        best = max(best, n / elapsed)
        del counter
    return best


# ----------------------------------------------------------------------
# engine
# ----------------------------------------------------------------------
def bench_engine(quick: bool, repeats: Optional[int] = None) -> Dict:
    """Compact vs object GPS core throughput (uniform + triangle)."""
    from repro.core.compact import CompactGraphPrioritySampler
    from repro.core.priority_sampler import GraphPrioritySampler
    from repro.core.weights import TriangleWeight, UniformWeight

    edges, capacity = _bench_stream(quick)
    repeats = repeats if repeats is not None else (1 if quick else 3)

    # Shared-seed identity first: the comparison is meaningless unless
    # both cores select the very same sample.
    compact = CompactGraphPrioritySampler(
        capacity, weight_fn=TriangleWeight(), seed=11
    )
    reference = GraphPrioritySampler(
        capacity, weight_fn=TriangleWeight(), seed=11
    )
    compact.process_many(edges)
    reference.process_many(edges)
    assert compact.threshold == reference.threshold
    assert (
        compact.normalized_probabilities()
        == reference.normalized_probabilities()
    )
    del compact, reference

    results: Dict[str, Dict[str, float]] = {}
    for name, weight_cls in (("uniform", UniformWeight),
                             ("triangle", TriangleWeight)):
        fast = _best_rate(
            lambda: CompactGraphPrioritySampler(
                capacity, weight_fn=weight_cls(), seed=7
            ),
            edges, repeats,
        )
        slow = _best_rate(
            lambda: GraphPrioritySampler(
                capacity, weight_fn=weight_cls(), seed=7
            ),
            edges, repeats,
        )
        results[name] = {
            "compact_edges_per_sec": round(fast, 1),
            "object_edges_per_sec": round(slow, 1),
            "speedup": round(fast / slow, 3),
        }
        print(
            f"{name:<9} compact {fast:>12,.0f} e/s   "
            f"object {slow:>12,.0f} e/s   speedup {fast / slow:.2f}x"
        )
    results["chunked_uniform"] = _bench_chunked(quick, repeats)
    return _envelope(
        "engine", quick,
        params={"stream_edges": len(edges), "capacity": capacity,
                "repeats": repeats},
        results=results,
    )


def _bench_chunked(quick: bool, repeats: int) -> Dict:
    """The chunked-pipeline ladder: chunked vs compact vs object.

    Measured on two uniform-weight workloads: the *steady-state* regime
    (budget ≪ stream length, where arrivals are overwhelmingly
    rejections — the population the vectorised gate screens out in bulk)
    and the legacy admit-heavy envelope the historical compact/object
    numbers use, so both ends of the admission-rate spectrum stay on
    record.  Chunked results are asserted bit-identical to the scalar
    compact core under the shared seed before timing counts.
    """
    from repro.core.compact import CompactGraphPrioritySampler
    from repro.core.priority_sampler import GraphPrioritySampler
    from repro.core.weights import UniformWeight
    from repro.graph.generators import chung_lu
    from repro.streams.chunks import DEFAULT_CHUNK_SIZE
    from repro.streams.stream import EdgeStream

    if quick:
        regimes = [("steady_state", chung_lu(8_000, 40_000, exponent=2.3,
                                             seed=43), 1_000)]
        chunk_sizes = [DEFAULT_CHUNK_SIZE]
    else:
        regimes = [
            ("steady_state", chung_lu(40_000, 200_000, exponent=2.3,
                                      seed=43), 4_000),
            ("admit_heavy", chung_lu(10_000, 50_000, exponent=2.3,
                                     seed=42), 4_000),
        ]
        chunk_sizes = [4096, 8192, DEFAULT_CHUNK_SIZE, 32768]

    out: Dict[str, Dict] = {}
    for regime, graph, capacity in regimes:
        stream = EdgeStream.from_graph(graph, seed=0)
        edges = list(stream)
        columns = stream.columnar()

        scalar = CompactGraphPrioritySampler(
            capacity, weight_fn=UniformWeight(), seed=11
        )
        scalar.process_many(edges)
        chunked = CompactGraphPrioritySampler(
            capacity, weight_fn=UniformWeight(), seed=11
        )
        for at in range(0, len(edges), DEFAULT_CHUNK_SIZE):
            chunked.process_chunk(columns[0][at:at + DEFAULT_CHUNK_SIZE],
                                  columns[1][at:at + DEFAULT_CHUNK_SIZE])
        assert chunked.threshold == scalar.threshold
        assert (
            chunked.normalized_probabilities()
            == scalar.normalized_probabilities()
        )
        del scalar, chunked

        compact_rate = _best_rate(
            lambda: CompactGraphPrioritySampler(
                capacity, weight_fn=UniformWeight(), seed=7
            ),
            edges, repeats,
        )
        object_rate = _best_rate(
            lambda: GraphPrioritySampler(
                capacity, weight_fn=UniformWeight(), seed=7
            ),
            edges, repeats,
        )
        axis = {
            str(chunk): round(_best_chunked_rate(
                lambda: CompactGraphPrioritySampler(
                    capacity, weight_fn=UniformWeight(), seed=7
                ),
                columns, chunk, repeats,
            ), 1)
            for chunk in chunk_sizes
        }
        chunked_rate = max(axis.values())
        out[regime] = {
            "stream_edges": len(edges),
            "capacity": capacity,
            "chunked_edges_per_sec": chunked_rate,
            "compact_edges_per_sec": round(compact_rate, 1),
            "object_edges_per_sec": round(object_rate, 1),
            "chunk_size_axis": axis,
            "default_chunk_size": DEFAULT_CHUNK_SIZE,
            "speedup_vs_compact": round(chunked_rate / compact_rate, 3),
            "speedup_vs_object": round(chunked_rate / object_rate, 3),
        }
        print(
            f"chunked [{regime}] |K|={len(edges):,} m={capacity}: "
            f"chunked {chunked_rate:>12,.0f} e/s   "
            f"compact {compact_rate:>12,.0f} e/s   "
            f"object {object_rate:>12,.0f} e/s   "
            f"({chunked_rate / compact_rate:.2f}x vs compact)"
        )
    return out


# ----------------------------------------------------------------------
# replication
# ----------------------------------------------------------------------
def bench_replication(quick: bool) -> Dict:
    """Worker-dispatch setup cost vs graph size, plus end-to-end runs."""
    from repro.engine.replication import ReplicatedRunner
    from repro.engine.shared_edges import SharedEdgePopulation
    from repro.graph.generators import chung_lu
    from repro.streams.interner import NodeInterner
    from repro.streams.stream import EdgeStream

    sizes = [5_000, 20_000] if quick else [25_000, 50_000, 100_000, 200_000]
    ladder: List[Dict] = []
    for num_edges in sizes:
        graph = chung_lu(max(200, num_edges // 5), num_edges,
                         exponent=2.3, seed=42)
        edges = tuple(
            NodeInterner().intern_edges(EdgeStream.canonical_edges(graph))
        )
        gc.collect()
        # Legacy pickled dispatch: every worker deserialises the full
        # population (and under spawn the parent serialises it per
        # worker) — O(|K|) each way.
        started = time.perf_counter()
        payload = pickle.dumps(edges)
        pickle.loads(payload)
        pickle_seconds = time.perf_counter() - started
        # Shared dispatch: publish once, attach per worker; the per-task
        # payload is the fixed-size descriptor.
        started = time.perf_counter()
        population = SharedEdgePopulation.publish(edges)
        publish_seconds = time.perf_counter() - started
        try:
            descriptor = population.descriptor
            started = time.perf_counter()
            attached = SharedEdgePopulation.attach(descriptor)
            attach_seconds = time.perf_counter() - started
            assert attached == list(edges)
        finally:
            population.close()
            population.unlink()
        ladder.append({
            "edges": len(edges),
            "pickle_payload_bytes": len(payload),
            "pickle_roundtrip_seconds": round(pickle_seconds, 6),
            "shared_task_payload_bytes": len(pickle.dumps(descriptor)),
            "shared_publish_seconds": round(publish_seconds, 6),
            "shared_attach_seconds": round(attach_seconds, 6),
        })
        print(
            f"|K|={len(edges):>7,}  pickle {len(payload):>12,}B "
            f"{pickle_seconds * 1e3:8.2f}ms   shared task payload "
            f"{ladder[-1]['shared_task_payload_bytes']:>4}B  "
            f"publish {publish_seconds * 1e3:6.2f}ms  "
            f"attach {attach_seconds * 1e3:6.2f}ms"
        )

    # End-to-end: the same replicated study under both dispatches must
    # be bit-identical; report its throughput.
    graph = chung_lu(2_000 if quick else 10_000,
                     10_000 if quick else 50_000, exponent=2.3, seed=42)
    capacity = 1_000 if quick else 4_000
    replications = 2 if quick else 4
    end_to_end: Dict[str, Dict[str, float]] = {}
    summaries = {}
    for dispatch in ("shared", "pickle"):
        runner = ReplicatedRunner(
            graph, capacity=capacity, replications=replications,
            max_workers=1, method="gps-post", dispatch=dispatch,
        )
        gc.collect()
        started = time.perf_counter()
        summary = runner.run()
        elapsed = time.perf_counter() - started
        summaries[dispatch] = summary
        total = graph.num_edges * replications
        end_to_end[dispatch] = {
            "elapsed_seconds": round(elapsed, 4),
            "edges_per_sec": round(total / elapsed, 1),
        }
        print(f"end-to-end {dispatch:<7} {elapsed:6.2f}s  "
              f"{total / elapsed:>12,.0f} e/s")
    for name in summaries["shared"].metrics:
        assert (
            summaries["shared"].metrics[name].mean
            == summaries["pickle"].metrics[name].mean
        ), f"dispatch mismatch on {name}"
    return _envelope(
        "replication", quick,
        params={"sizes": sizes, "end_to_end_edges": graph.num_edges,
                "capacity": capacity, "replications": replications,
                "workers": 1, "method": "gps-post"},
        results={"setup_vs_size": ladder, "end_to_end": end_to_end},
    )


# ----------------------------------------------------------------------
# sweep
# ----------------------------------------------------------------------
def bench_sweep(quick: bool) -> Dict:
    """Cold grid vs cache-resumed grid (ground truth + cell replay)."""
    from repro.api.sweep import SweepSpec, run_sweep
    from repro.graph.generators import chung_lu
    from repro.graph.io import write_edge_list

    graph = (
        chung_lu(2_000, 10_000, exponent=2.3, seed=42)
        if quick
        else chung_lu(10_000, 50_000, exponent=2.3, seed=42)
    )
    with tempfile.TemporaryDirectory() as tmp:
        source = str(Path(tmp) / "bench_graph.txt")
        write_edge_list(graph, source)
        if quick:
            spec = SweepSpec(sources=(source,),
                             methods=("gps-post", "triest"),
                             budgets=(500, 1000), runs=2, workers=0)
        else:
            spec = SweepSpec(
                sources=(source,),
                methods=("gps-post", "gps-in-stream", "triest",
                         "triest-impr"),
                budgets=(1000, 2000, 4000), runs=4, workers=0,
            )
        cache = Path(tmp) / "cache"
        started = time.perf_counter()
        cold = run_sweep(spec, cache_dir=cache)
        cold_seconds = time.perf_counter() - started
        started = time.perf_counter()
        warm = run_sweep(spec, cache_dir=cache, resume=True)
        warm_seconds = time.perf_counter() - started

    # A resumed sweep must replay the very same numbers.
    assert warm.cell_cache_hits == sum(c.runs for c in warm.cells)
    assert warm.ground_truth_misses == 0
    for a, b in zip(cold.cells, warm.cells):
        assert a.triangles.mean == b.triangles.mean
        assert a.relative_error == b.relative_error

    replications = sum(c.runs for c in cold.cells)
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    print(
        f"{len(cold.cells)} cells / {replications} replications: "
        f"cold {cold_seconds:.3f}s, resumed {warm_seconds:.3f}s "
        f"({speedup:.1f}x)"
    )
    return _envelope(
        "sweep", quick,
        params={"stream_edges": graph.num_edges, "cells": len(cold.cells),
                "replications": replications},
        results={
            "cold_seconds": round(cold_seconds, 4),
            "resumed_seconds": round(warm_seconds, 4),
            "speedup": round(speedup, 2),
            "ground_truth_recounts_cold": cold.ground_truth_misses,
            "ground_truth_recounts_resumed": warm.ground_truth_misses,
            "cells_replayed_resumed": warm.cell_cache_hits,
        },
    )


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------
def bench_serve(quick: bool) -> Dict:
    """Sustained-load ladder: ingestion rate × concurrent query latency.

    Drives the live service over the steady-state uniform synthetic
    stream (the ≥1M-edges/sec regime: budget ≪ stream, vectorised
    admission gate) while ``readers`` threads hammer ``estimates``
    queries, and reports sustained edges/sec against per-query wall
    latency for each rung of the reader ladder.  A second rung serves
    the in-stream estimator (O(1) global answers, scalar fused
    ingestion).  Before any timing counts, the service's final snapshot
    is asserted bit-identical to a batch pass over the same stream —
    concurrency must never buy a different number.
    """
    import threading

    from repro.api.execution import _estimates_dict
    from repro.api.registry import get_method, get_weight
    from repro.serve import SamplingService, ServeSpec
    from repro.serve.source import SyntheticSource

    def batch_oracle(spec: ServeSpec) -> Dict:
        """The same spec's stream, run to completion without threads."""
        method = get_method(spec.method)
        weight_fn = (
            get_weight(spec.weight).factory()
            if spec.weight is not None else None
        )
        counter = method.factory(
            spec.budget, 0, spec.sampler_seed,
            weight_fn=weight_fn, core="compact",
        )
        for us, vs in SyntheticSource(
            spec.nodes, spec.stream_seed, chunk_size=spec.chunk_size,
            max_edges=spec.max_edges,
        ):
            counter.process_chunk(us, vs)
        estimates_fn = getattr(counter, "estimates", None)
        if estimates_fn is not None:
            return _estimates_dict(estimates_fn())
        from repro.core.post_stream import PostStreamEstimator

        sampler = getattr(counter, "sampler", counter)
        return _estimates_dict(PostStreamEstimator(sampler).estimate())

    def run_rung(spec: ServeSpec, readers: int) -> Dict:
        service = SamplingService(spec)
        done = threading.Event()
        latencies: List[List[float]] = [[] for _ in range(readers)]

        def read_loop(slot: List[float]) -> None:
            while not done.is_set():
                started = time.perf_counter()
                response = service.query({"op": "estimates"})
                slot.append(time.perf_counter() - started)
                assert response["ok"], response

        threads = [
            threading.Thread(target=read_loop, args=(slot,), daemon=True)
            for slot in latencies
        ]
        gc.collect()
        service.start()
        for thread in threads:
            thread.start()
        service.join()  # bounded source: pump runs the stream dry
        done.set()
        for thread in threads:
            thread.join()
        stats = service.stats
        assert stats is not None
        all_latencies = sorted(lat for slot in latencies for lat in slot)
        final = _estimates_dict(service.latest().estimates())
        rung = {
            "readers": readers,
            "ingest_edges_per_sec": round(
                spec.max_edges / stats.elapsed_seconds, 1
            ),
            "elapsed_seconds": round(stats.elapsed_seconds, 4),
            "queries": len(all_latencies),
            "backpressure_stalls": service.stalls,
        }
        if all_latencies:
            rung["queries_per_sec"] = round(
                len(all_latencies) / stats.elapsed_seconds, 1
            )
            rung["query_latency_ms"] = {
                "mean": round(
                    sum(all_latencies) / len(all_latencies) * 1e3, 4
                ),
                "p95": round(
                    all_latencies[int(0.95 * (len(all_latencies) - 1))]
                    * 1e3, 4
                ),
                "max": round(all_latencies[-1] * 1e3, 4),
            }
        return rung, final

    if quick:
        post_spec = ServeSpec(
            source="synthetic", method="gps-post", budget=600,
            weight="uniform", nodes=100_000, max_edges=500_000,
            stream_seed=0, sampler_seed=1,
        )
        in_spec = post_spec.replace(
            method="gps", budget=400, max_edges=120_000
        )
        ladders = [0, 2]
    else:
        post_spec = ServeSpec(
            source="synthetic", method="gps-post", budget=1000,
            weight="uniform", nodes=100_000, max_edges=4_000_000,
            stream_seed=0, sampler_seed=1,
        )
        in_spec = post_spec.replace(
            method="gps", budget=1000, max_edges=500_000
        )
        ladders = [0, 1, 4]

    # Correctness gate: concurrency must not change a single bit.
    oracle = batch_oracle(post_spec)
    results: Dict[str, Dict] = {"post_stream": {"ladder": []}}
    for readers in ladders:
        rung, final = run_rung(post_spec, readers)
        assert final == oracle, (
            f"served estimates diverged from the batch oracle at "
            f"readers={readers}"
        )
        results["post_stream"]["ladder"].append(rung)
        latency = rung.get("query_latency_ms", {}).get("mean", 0.0)
        print(
            f"serve [gps-post] readers={readers}: "
            f"{rung['ingest_edges_per_sec']:>12,.0f} e/s   "
            f"{rung['queries']:>6} queries   "
            f"mean latency {latency:.3f} ms   "
            f"stalls {rung['backpressure_stalls']}"
        )
    results["post_stream"]["bit_identical_to_batch"] = True

    in_oracle = batch_oracle(in_spec)
    rung, final = run_rung(in_spec, 2)
    assert final == in_oracle, "in-stream serve diverged from batch"
    results["in_stream"] = {
        "ladder": [rung],
        "bit_identical_to_batch": True,
    }
    print(
        f"serve [gps]      readers=2: "
        f"{rung['ingest_edges_per_sec']:>12,.0f} e/s   "
        f"{rung['queries']:>6} queries   "
        f"mean latency "
        f"{rung.get('query_latency_ms', {}).get('mean', 0.0):.3f} ms"
    )
    return _envelope(
        "serve", quick,
        params={
            "post_stream_spec": post_spec.to_dict(),
            "in_stream_spec": in_spec.to_dict(),
            "reader_ladder": ladders,
        },
        results=results,
    )


# ----------------------------------------------------------------------
# shard
# ----------------------------------------------------------------------
def bench_shard(quick: bool, repeats: Optional[int] = None) -> Dict:
    """Sharded GPS: fleet throughput per shard count + merged accuracy.

    Throughput rungs partition the steady-state uniform stream with the
    seeded router, then time every shard's chunked drive *independently*
    (best-of-``repeats``, GC between runs) — one shard ≙ one host of an
    S-host fleet, so the fleet ingests the whole stream in the slowest
    shard's wall clock.  ``speedup_vs_single`` is that fleet rate over
    the S=1 rung; the inline single-process wall clock (all shards
    sequentially on this machine) is recorded next to it.  The accuracy
    section replicates sharded and unsharded gps-post at equal *total*
    budget over seeded passes and reports the relative error of the
    mean merged triangle estimate against the exact count.
    """
    from repro.core.compact import CompactGraphPrioritySampler
    from repro.core.weights import UniformWeight
    from repro.graph.exact import compute_statistics
    from repro.graph.generators import chung_lu
    from repro.shard.router import shard_columns
    from repro.shard.runner import ShardedRunner
    from repro.streams.chunks import DEFAULT_CHUNK_SIZE
    from repro.streams.stream import EdgeStream

    if quick:
        graph = chung_lu(8_000, 40_000, exponent=2.3, seed=43)
        budget = 1_000
        ladder = (1, 2, 4)
        repeats = repeats if repeats is not None else 1
        accuracy_graph = chung_lu(2_000, 10_000, exponent=2.3, seed=44)
        accuracy_budget, replications = 800, 8
    else:
        graph = chung_lu(40_000, 200_000, exponent=2.3, seed=43)
        budget = 4_000
        ladder = (1, 2, 4, 8)
        repeats = repeats if repeats is not None else 3
        accuracy_graph = chung_lu(4_000, 20_000, exponent=2.3, seed=44)
        accuracy_budget, replications = 1_600, 24

    stream = EdgeStream.from_graph(graph, seed=0)
    edges = list(stream)
    us, vs = stream.columnar()

    # Warm-up drive (untimed): the first chunked pass pays numpy import
    # and allocator warm-up that would otherwise tax whichever rung runs
    # first and skew the S=1 baseline.
    warm = CompactGraphPrioritySampler(
        budget, weight_fn=UniformWeight(), seed=7
    )
    for at in range(0, len(us), DEFAULT_CHUNK_SIZE):
        warm.process_chunk(us[at:at + DEFAULT_CHUNK_SIZE],
                          vs[at:at + DEFAULT_CHUNK_SIZE])
    del warm

    throughput: List[Dict] = []
    single_rate = 0.0
    for shards in ladder:
        ids = shard_columns(us, vs, shards, seed=0)
        partitions = [
            (us[ids == s], vs[ids == s]) for s in range(shards)
        ] if shards > 1 else [(us, vs)]
        capacity = budget // shards
        per_shard_seconds: List[float] = []
        for shard_us, shard_vs in partitions:
            n = len(shard_us)
            best = float("inf")
            for _ in range(repeats):
                gc.collect()
                counter = CompactGraphPrioritySampler(
                    capacity, weight_fn=UniformWeight(), seed=7
                )
                started = time.perf_counter()
                for at in range(0, n, DEFAULT_CHUNK_SIZE):
                    counter.process_chunk(
                        shard_us[at:at + DEFAULT_CHUNK_SIZE],
                        shard_vs[at:at + DEFAULT_CHUNK_SIZE],
                    )
                best = min(best, time.perf_counter() - started)
                del counter
            per_shard_seconds.append(best)
        fleet_wall = max(per_shard_seconds)
        fleet_rate = len(edges) / fleet_wall
        if shards == 1:
            single_rate = fleet_rate
        runner = ShardedRunner(
            edges, shards=shards, budget=budget, method="gps-post",
            weight_fn=UniformWeight(), workers=0,
        )
        inline = runner.run()
        rung = {
            "shards": shards,
            "per_shard_edges": [len(p[0]) for p in partitions],
            "per_shard_seconds": [round(t, 6) for t in per_shard_seconds],
            "fleet_wall_seconds": round(fleet_wall, 6),
            "fleet_edges_per_sec": round(fleet_rate, 1),
            "speedup_vs_single": round(fleet_rate / single_rate, 3),
            "inline_wall_seconds": round(inline.elapsed_seconds, 6),
            "merged_sample_size": inline.estimates.sample_size,
        }
        throughput.append(rung)
        print(
            f"shard S={shards}: fleet {fleet_rate:>12,.0f} e/s "
            f"({rung['speedup_vs_single']:.2f}x vs single)   "
            f"inline wall {inline.elapsed_seconds:.3f}s"
        )

    exact = compute_statistics(accuracy_graph)
    accuracy_edges = EdgeStream.canonical_edges(accuracy_graph)
    accuracy: List[Dict] = []
    for shards in ladder:
        runner = ShardedRunner(
            accuracy_edges, shards=shards, budget=accuracy_budget,
            method="gps-post", workers=0,
        )
        estimates = [
            runner.run(stream_seed=i, sampler_seed=1 + i)
            .estimates.triangles.value
            for i in range(replications)
        ]
        mean = sum(estimates) / len(estimates)
        error = abs(mean - exact.triangles) / exact.triangles
        accuracy.append({
            "shards": shards,
            "mean_triangles": round(mean, 2),
            "relative_error": round(error, 4),
        })
        print(
            f"accuracy S={shards}: mean {mean:,.0f} vs exact "
            f"{exact.triangles:,} (rel err {error:.2%})"
        )

    return _envelope(
        "shard", quick,
        params={
            "stream_edges": len(edges), "budget": budget,
            "shard_ladder": list(ladder), "repeats": repeats,
            "router_seed": 0,
            "accuracy_edges": len(accuracy_edges),
            "accuracy_budget": accuracy_budget,
            "accuracy_replications": replications,
            "exact_triangles": exact.triangles,
        },
        results={"throughput": throughput, "accuracy": accuracy},
    )


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def run_target(
    target: str,
    quick: bool = False,
    repeats: Optional[int] = None,
    output: Optional[Path] = None,
) -> Path:
    """Run one benchmark target and write its JSON; returns the path."""
    if target == "engine":
        payload = bench_engine(quick, repeats=repeats)
    elif target == "replication":
        payload = bench_replication(quick)
    elif target == "sweep":
        payload = bench_sweep(quick)
    elif target == "serve":
        payload = bench_serve(quick)
    elif target == "shard":
        payload = bench_shard(quick, repeats=repeats)
    else:
        raise ValueError(
            f"unknown bench target {target!r}; known: {TARGETS}"
        )
    # Default next to wherever the command runs (the repo root in CI and
    # the documented workflow) — never relative to the installed package.
    path = output if output is not None else (
        Path.cwd() / DEFAULT_OUTPUTS[target]
    )
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")
    return path


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Regenerate the BENCH_*.json performance trajectories.",
    )
    parser.add_argument("target", choices=TARGETS)
    parser.add_argument("--quick", action="store_true",
                        help="CI-smoke sizes (same JSON schema)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repetitions (engine target)")
    parser.add_argument("-o", "--output", type=Path, default=None,
                        help="output path (default: BENCH_<target>.json "
                             "in the current directory)")
    args = parser.parse_args(argv)
    if args.repeats is not None and args.repeats < 1:
        parser.error("--repeats must be at least 1")
    run_target(args.target, quick=args.quick, repeats=args.repeats,
               output=args.output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
