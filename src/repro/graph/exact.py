"""Exact triangle / wedge / clustering computation (ground truth).

Every experiment in the paper reports estimator error against the true
statistic ``X`` of the full graph, so an exact counting substrate is a hard
requirement.  Two flavours are provided:

* Whole-graph counting via the classic degree-ordered neighbour-intersection
  algorithm (Chiba–Nishizeki style), O(a(G)·|K|) where ``a`` is arboricity —
  the same bound the paper quotes for Algorithm 2.
* :class:`ExactStreamCounter`, an incremental counter that maintains the
  exact cumulative triangle/wedge counts of the prefix graph as edges
  arrive.  This supplies the exact time series `(N_t(△), N_t(Λ))` needed by
  the tracking experiments (paper Table 3 and Figure 3) without recounting
  from scratch at every checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.edge import EdgeKey, Node, canonical_edge, is_self_loop


def triangle_count(graph: AdjacencyGraph) -> int:
    """Exact number of triangles in ``graph``.

    Uses the degree ordering ``u ≺ v  iff  (deg(u), u) < (deg(v), v)`` and
    counts, for every edge, common out-neighbours in the orientation induced
    by ``≺``.  Each triangle is counted exactly once.
    """
    order = _degree_order(graph)
    forward: Dict[Node, set] = {v: set() for v in graph.nodes()}
    for u, v in graph.edges():
        if order[u] < order[v]:
            forward[u].add(v)
        else:
            forward[v].add(u)
    total = 0
    for u, out_u in forward.items():
        for v in out_u:
            out_v = forward[v]
            if len(out_u) <= len(out_v):
                total += sum(1 for w in out_u if w in out_v)
            else:
                total += sum(1 for w in out_v if w in out_u)
    return total


def wedge_count(graph: AdjacencyGraph) -> int:
    """Exact number of wedges (paths of length 2): Σ_v C(deg(v), 2)."""
    return sum(d * (d - 1) // 2 for d in (graph.degree(v) for v in graph.nodes()))


def global_clustering(graph: AdjacencyGraph) -> float:
    """Global clustering coefficient α = 3·N(△)/N(Λ); 0 for wedge-free graphs."""
    wedges = wedge_count(graph)
    if wedges == 0:
        return 0.0
    return 3.0 * triangle_count(graph) / wedges


def per_edge_triangles(graph: AdjacencyGraph) -> Dict[EdgeKey, int]:
    """Triangles through each edge: |Γ(u) ∩ Γ(v)| per edge {u, v}."""
    return {
        (u, v): len(graph.common_neighbors(u, v)) for u, v in graph.edges()
    }


def per_node_triangles(graph: AdjacencyGraph) -> Dict[Node, int]:
    """Triangles incident to each node (each triangle counted at 3 nodes)."""
    counts: Dict[Node, int] = {v: 0 for v in graph.nodes()}
    order = _degree_order(graph)
    forward: Dict[Node, set] = {v: set() for v in graph.nodes()}
    for u, v in graph.edges():
        if order[u] < order[v]:
            forward[u].add(v)
        else:
            forward[v].add(u)
    for u, out_u in forward.items():
        for v in out_u:
            out_v = forward[v]
            small, large = (out_u, out_v) if len(out_u) <= len(out_v) else (out_v, out_u)
            for w in small:
                if w in large:
                    counts[u] += 1
                    counts[v] += 1
                    counts[w] += 1
    return counts


def local_clustering(graph: AdjacencyGraph, v: Node) -> float:
    """Local clustering coefficient of node ``v``."""
    d = graph.degree(v)
    if d < 2:
        return 0.0
    nbrs = graph.neighbors(v)
    links = 0
    for u in nbrs:
        nbrs_u = graph.neighbors(u)
        if len(nbrs_u) < len(nbrs):
            links += sum(1 for w in nbrs_u if w in nbrs and w != v)
        else:
            links += sum(1 for w in nbrs if w in nbrs_u and w != u)
    # every triangle through v counted twice in the loop above
    return links / (d * (d - 1))


@dataclass(frozen=True)
class GraphStatistics:
    """Exact summary statistics of a graph (the paper's 'ACTUAL' columns)."""

    num_nodes: int
    num_edges: int
    triangles: int
    wedges: int
    clustering: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "triangles": self.triangles,
            "wedges": self.wedges,
            "clustering": self.clustering,
        }


def compute_statistics(graph: AdjacencyGraph) -> GraphStatistics:
    """Exact node/edge/triangle/wedge/clustering statistics of ``graph``."""
    triangles = triangle_count(graph)
    wedges = wedge_count(graph)
    clustering = 3.0 * triangles / wedges if wedges else 0.0
    return GraphStatistics(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        triangles=triangles,
        wedges=wedges,
        clustering=clustering,
    )


class ExactStreamCounter:
    """Exact cumulative subgraph counts of a growing edge stream.

    Processing edge ``{u, v}`` updates, in O(min degree):

    * triangles:  +|Γ_t(u) ∩ Γ_t(v)| (new triangles closed by the edge);
    * wedges:     +deg_t(u) + deg_t(v) (new paths of length 2 centred at
      either endpoint), where degrees/neighbourhoods are taken *before* the
      edge is added.

    Used for the exact time series in the tracking experiments.
    """

    __slots__ = ("_graph", "_triangles", "_wedges", "_edges_seen")

    def __init__(self) -> None:
        self._graph = AdjacencyGraph()
        self._triangles = 0
        self._wedges = 0
        self._edges_seen = 0

    def process(self, u: Node, v: Node) -> bool:
        """Account for edge ``{u, v}``; returns False for dup/self-loop."""
        if is_self_loop(u, v) or self._graph.has_edge(u, v):
            return False
        self._triangles += self._graph.triangles_through(u, v)
        self._wedges += self._graph.degree(u) + self._graph.degree(v)
        self._graph.add_edge(u, v)
        self._edges_seen += 1
        return True

    def process_many(self, edges: Iterable[Tuple[Node, Node]]) -> None:
        for u, v in edges:
            self.process(u, v)

    @property
    def triangles(self) -> int:
        return self._triangles

    @property
    def wedges(self) -> int:
        return self._wedges

    @property
    def edges_seen(self) -> int:
        return self._edges_seen

    @property
    def clustering(self) -> float:
        if self._wedges == 0:
            return 0.0
        return 3.0 * self._triangles / self._wedges

    @property
    def graph(self) -> AdjacencyGraph:
        """The prefix graph accumulated so far (live; do not mutate)."""
        return self._graph


def _degree_order(graph: AdjacencyGraph) -> Dict[Node, Tuple[int, int]]:
    """Total order on nodes by (degree, stable index)."""
    return {
        v: (graph.degree(v), idx) for idx, v in enumerate(sorted(graph.nodes(), key=repr))
    }
