"""From-scratch random graph generators.

The paper evaluates on 50 real graphs from networkrepository.com (social,
web, tech, citation, infrastructure).  Those downloads are not available
offline, so the experiment harness substitutes synthetic graphs whose family
matches each domain (see DESIGN.md Sec. 5):

* social / collaboration  → :func:`powerlaw_cluster` (heavy tail + high
  clustering, Holme–Kim);
* web / tech              → :func:`chung_lu` with a power-law weight
  sequence (heavy tail, moderate clustering);
* facebook school graphs  → dense :func:`stochastic_block_model`;
* citation graphs         → :func:`barabasi_albert` (heavy tail, low
  clustering);
* road networks           → :func:`road_grid` (bounded degree, near-zero
  clustering).

All generators take an explicit ``seed`` and are deterministic given it.
Deterministic families (complete/star/cycle/path/grid) are included for
unit tests with hand-computable triangle/wedge counts.

Every generator emits dense ``0..n-1`` integer node labels (``road_grid``
flattens its lattice coordinates), so generated graphs are already in the
interned form the compact core and the shared-memory replication fan-out
run on — :meth:`repro.streams.EdgeStream.interned` is the identity
relabelling for them.  Keep that property when adding generators; streams
from arbitrary-labelled sources intern via
:class:`repro.streams.NodeInterner` instead.
"""

from __future__ import annotations

import random
from itertools import accumulate
from typing import List, Optional, Sequence

from repro.graph.adjacency import AdjacencyGraph


def complete_graph(n: int) -> AdjacencyGraph:
    """K_n: C(n,3) triangles, 3·C(n,3) wedges, clustering 1."""
    graph = AdjacencyGraph()
    for u in range(n):
        graph.add_node(u)
        for v in range(u + 1, n):
            graph.add_edge(u, v)
    return graph


def star_graph(n_leaves: int) -> AdjacencyGraph:
    """Hub node 0 with ``n_leaves`` leaves: 0 triangles, C(n,2) wedges."""
    graph = AdjacencyGraph()
    graph.add_node(0)
    for leaf in range(1, n_leaves + 1):
        graph.add_edge(0, leaf)
    return graph


def cycle_graph(n: int) -> AdjacencyGraph:
    """C_n: one triangle iff n == 3, n wedges for n ≥ 3."""
    graph = AdjacencyGraph()
    if n == 1:
        graph.add_node(0)
        return graph
    for u in range(n):
        graph.add_edge(u, (u + 1) % n)
    return graph


def path_graph(n: int) -> AdjacencyGraph:
    """P_n on ``n`` nodes: 0 triangles, n−2 wedges."""
    graph = AdjacencyGraph()
    if n >= 1:
        graph.add_node(0)
    for u in range(n - 1):
        graph.add_edge(u, u + 1)
    return graph


def erdos_renyi_gnm(n: int, num_edges: int, seed: Optional[int] = None) -> AdjacencyGraph:
    """Uniform random simple graph G(n, M) with exactly ``num_edges`` edges."""
    max_edges = n * (n - 1) // 2
    if num_edges > max_edges:
        raise ValueError(f"cannot place {num_edges} edges on {n} nodes (max {max_edges})")
    rng = random.Random(seed)
    graph = AdjacencyGraph()
    for v in range(n):
        graph.add_node(v)
    while graph.num_edges < num_edges:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            graph.add_edge(u, v)
    return graph


def barabasi_albert(n: int, attach: int, seed: Optional[int] = None) -> AdjacencyGraph:
    """Barabási–Albert preferential attachment with ``attach`` edges per node.

    Implemented with the repeated-nodes list so endpoint selection is
    proportional to degree.  Starts from a star on ``attach + 1`` nodes.
    """
    if attach < 1 or n <= attach:
        raise ValueError("need n > attach >= 1")
    rng = random.Random(seed)
    graph = AdjacencyGraph()
    repeated: List[int] = []
    for v in range(attach):
        graph.add_edge(v, attach)
        repeated.extend((v, attach))
    for new_node in range(attach + 1, n):
        targets: set = set()
        while len(targets) < attach:
            targets.add(repeated[rng.randrange(len(repeated))])
        for target in targets:
            graph.add_edge(new_node, target)
            repeated.extend((new_node, target))
    return graph


def powerlaw_cluster(
    n: int, attach: int, triangle_prob: float, seed: Optional[int] = None
) -> AdjacencyGraph:
    """Holme–Kim power-law graph with tunable clustering.

    Like Barabási–Albert, but after each preferential attachment step a
    triad-closing step runs with probability ``triangle_prob``: the new node
    also links to a random neighbour of the node it just attached to,
    closing a triangle.  High ``triangle_prob`` yields the heavy-tailed,
    highly clustered structure of social/co-appearance networks.
    """
    if not 0.0 <= triangle_prob <= 1.0:
        raise ValueError("triangle_prob must be in [0, 1]")
    if attach < 1 or n <= attach:
        raise ValueError("need n > attach >= 1")
    rng = random.Random(seed)
    graph = AdjacencyGraph()
    repeated: List[int] = []
    for v in range(attach):
        graph.add_edge(v, attach)
        repeated.extend((v, attach))
    for new_node in range(attach + 1, n):
        placed = 0
        last_target: Optional[int] = None
        while placed < attach:
            close_triad = (
                last_target is not None
                and rng.random() < triangle_prob
                and graph.degree(last_target) > 0
            )
            if close_triad:
                nbrs = list(graph.neighbors(last_target))
                candidate = nbrs[rng.randrange(len(nbrs))]
            else:
                candidate = repeated[rng.randrange(len(repeated))]
            if candidate != new_node and graph.add_edge(new_node, candidate):
                repeated.extend((new_node, candidate))
                placed += 1
                last_target = candidate
    return graph


def chung_lu(
    n: int,
    target_edges: int,
    exponent: float = 2.3,
    min_weight: float = 1.0,
    seed: Optional[int] = None,
) -> AdjacencyGraph:
    """Chung–Lu style graph with a power-law expected-degree sequence.

    Node weights are drawn deterministically from a discretised power law
    with tail ``exponent``; edges are sampled by picking both endpoints
    proportionally to weight until ``target_edges`` distinct non-loop edges
    exist.  Produces heavy-tailed graphs resembling web/tech networks.
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    rng = random.Random(seed)
    # Deterministic power-law weights via the inverse-CDF at node quantiles.
    weights = [
        min_weight * (1.0 - (idx + 0.5) / n) ** (-1.0 / (exponent - 1.0))
        for idx in range(n)
    ]
    cumulative = list(accumulate(weights))
    total = cumulative[-1]
    graph = AdjacencyGraph()
    for v in range(n):
        graph.add_node(v)
    max_edges = n * (n - 1) // 2
    target_edges = min(target_edges, max_edges)
    nodes = range(n)
    attempts = 0
    attempt_budget = 100 * target_edges + 1000
    while graph.num_edges < target_edges and attempts < attempt_budget:
        need = target_edges - graph.num_edges
        batch = rng.choices(nodes, cum_weights=cumulative, k=2 * need)
        attempts += need
        for i in range(0, len(batch), 2):
            u, v = batch[i], batch[i + 1]
            if u != v:
                graph.add_edge(u, v)
            if graph.num_edges >= target_edges:
                break
    return graph


def watts_strogatz(
    n: int, k: int, rewire_prob: float, seed: Optional[int] = None
) -> AdjacencyGraph:
    """Watts–Strogatz small world: ring lattice with random rewiring."""
    if k % 2 or k >= n:
        raise ValueError("k must be even and < n")
    rng = random.Random(seed)
    graph = AdjacencyGraph()
    for v in range(n):
        graph.add_node(v)
    for v in range(n):
        for offset in range(1, k // 2 + 1):
            graph.add_edge(v, (v + offset) % n)
    for v in range(n):
        for offset in range(1, k // 2 + 1):
            if rng.random() < rewire_prob:
                old = (v + offset) % n
                if not graph.has_edge(v, old) or graph.degree(v) >= n - 1:
                    continue
                # Rejection-sample a non-neighbour endpoint (O(1) expected
                # for sparse graphs; bounded attempts keep worst case sane).
                for _attempt in range(64):
                    w = rng.randrange(n)
                    if w != v and not graph.has_edge(v, w):
                        graph.remove_edge(v, old)
                        graph.add_edge(v, w)
                        break
    return graph


def stochastic_block_model(
    sizes: Sequence[int],
    p_in: float,
    p_out: float,
    seed: Optional[int] = None,
) -> AdjacencyGraph:
    """Planted-partition graph: dense within blocks, sparse across.

    Stand-in for the dense, highly clustered Facebook school graphs
    (socfb-Penn94 / socfb-Texas84) in the experiment registry.
    """
    rng = random.Random(seed)
    graph = AdjacencyGraph()
    boundaries = [0]
    for size in sizes:
        boundaries.append(boundaries[-1] + size)
    n = boundaries[-1]
    for v in range(n):
        graph.add_node(v)
    block_of = []
    for block, size in enumerate(sizes):
        block_of.extend([block] * size)
    for u in range(n):
        for v in range(u + 1, n):
            prob = p_in if block_of[u] == block_of[v] else p_out
            if prob > 0.0 and rng.random() < prob:
                graph.add_edge(u, v)
    return graph


def road_grid(
    rows: int,
    cols: int,
    diagonal_prob: float = 0.03,
    seed: Optional[int] = None,
) -> AdjacencyGraph:
    """Planar-ish road network: grid plus occasional diagonal short-cuts.

    Grids have zero triangles; the rare diagonals close a handful, giving
    the near-zero clustering typical of road networks (infra-roadNet-CA).
    """
    rng = random.Random(seed)
    graph = AdjacencyGraph()

    def node(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                graph.add_edge(node(r, c), node(r, c + 1))
            if r + 1 < rows:
                graph.add_edge(node(r, c), node(r + 1, c))
            if (
                r + 1 < rows
                and c + 1 < cols
                and diagonal_prob > 0.0
                and rng.random() < diagonal_prob
            ):
                graph.add_edge(node(r, c), node(r + 1, c + 1))
    return graph
