"""Hash-based undirected simple graph.

:class:`AdjacencyGraph` is the static-graph substrate used throughout the
library: ground-truth computation, synthetic dataset generation and the
sources of edge streams.  It stores a dict-of-sets adjacency structure, the
same shape the paper assumes for O(min-degree) common-neighbour queries
(Sec. 3.2, property S4).

Self loops are rejected and parallel edges collapse, matching the paper's
"undirected, unweighted, simplified graph without self loops".
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.graph.edge import EdgeKey, Node, canonical_edge, is_self_loop


class AdjacencyGraph:
    """Undirected simple graph backed by a dict-of-sets adjacency map."""

    __slots__ = ("_adj", "_num_edges")

    def __init__(self, edges: Iterable[Tuple[Node, Node]] = ()) -> None:
        self._adj: Dict[Node, Set[Node]] = {}
        self._num_edges = 0
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------
    def add_node(self, v: Node) -> None:
        """Ensure ``v`` exists (possibly with no incident edges)."""
        self._adj.setdefault(v, set())

    def add_edge(self, u: Node, v: Node) -> bool:
        """Add edge ``{u, v}``; returns True if the edge was new.

        Self loops are ignored (returns False), duplicates collapse.
        """
        if is_self_loop(u, v):
            return False
        nbrs_u = self._adj.setdefault(u, set())
        if v in nbrs_u:
            return False
        nbrs_u.add(v)
        self._adj.setdefault(v, set()).add(u)
        self._num_edges += 1
        return True

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove edge ``{u, v}``; raises KeyError when absent."""
        try:
            self._adj[u].remove(v)
            self._adj[v].remove(u)
        except KeyError:
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph") from None
        self._num_edges -= 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, v: Node) -> bool:
        return v in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def degree(self, v: Node) -> int:
        return len(self._adj.get(v, ()))

    def neighbors(self, v: Node) -> Set[Node]:
        """The neighbour set of ``v`` (a live view; do not mutate)."""
        return self._adj.get(v, _EMPTY_SET)

    def nodes(self) -> Iterator[Node]:
        return iter(self._adj)

    def edges(self) -> Iterator[EdgeKey]:
        """Iterate each undirected edge exactly once, in canonical form."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                edge = canonical_edge(u, v)
                if edge[0] == u:
                    yield edge

    def edge_list(self) -> List[EdgeKey]:
        """All edges as a list (canonical, deterministic per dict order)."""
        return list(self.edges())

    def common_neighbors(self, u: Node, v: Node) -> Set[Node]:
        """Nodes adjacent to both ``u`` and ``v``; O(min degree)."""
        nbrs_u = self._adj.get(u, _EMPTY_SET)
        nbrs_v = self._adj.get(v, _EMPTY_SET)
        if len(nbrs_u) > len(nbrs_v):
            nbrs_u, nbrs_v = nbrs_v, nbrs_u
        return {w for w in nbrs_u if w in nbrs_v}

    def triangles_through(self, u: Node, v: Node) -> int:
        """Number of triangles the edge ``{u, v}`` would close/participate in."""
        return len(self.common_neighbors(u, v))

    def subgraph(self, nodes: Iterable[Node]) -> "AdjacencyGraph":
        """Induced subgraph on ``nodes`` (copies edges)."""
        keep = set(nodes)
        sub = AdjacencyGraph()
        for v in keep:
            sub.add_node(v)
        for u, v in self.edges():
            if u in keep and v in keep:
                sub.add_edge(u, v)
        return sub

    def copy(self) -> "AdjacencyGraph":
        out = AdjacencyGraph()
        out._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        out._num_edges = self._num_edges
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AdjacencyGraph(nodes={self.num_nodes}, edges={self.num_edges})"


_EMPTY_SET: Set[Node] = frozenset()  # type: ignore[assignment]
