"""Static-graph substrate: adjacency structure, exact counting, generators, I/O.

The paper's experiments measure estimator error against exact triangle and
wedge counts on graphs from many domains.  This package supplies everything
needed for that on the substrate side:

* :class:`~repro.graph.adjacency.AdjacencyGraph` — hash-based undirected
  simple graph (the paper's "undirected, unweighted, simplified graph
  without self loops").
* :mod:`repro.graph.exact` — exact triangle/wedge/clustering counting used
  as ground truth, including an incremental counter for time-series ground
  truth.
* :mod:`repro.graph.generators` — from-scratch random graph models standing
  in for the paper's network-repository datasets.
* :mod:`repro.graph.io` — edge-list readers/writers for running on real
  downloaded graphs.
"""

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.edge import canonical_edge, is_self_loop
from repro.graph.exact import (
    ExactStreamCounter,
    GraphStatistics,
    compute_statistics,
    global_clustering,
    triangle_count,
    wedge_count,
)

__all__ = [
    "AdjacencyGraph",
    "canonical_edge",
    "is_self_loop",
    "ExactStreamCounter",
    "GraphStatistics",
    "compute_statistics",
    "global_clustering",
    "triangle_count",
    "wedge_count",
]
