"""Exact counting of connected 4-node motifs (non-induced occurrences).

Ground truth for the generalised motif estimators in
:mod:`repro.core.motifs`.  Counts are **non-induced** edge-subset
occurrences — the natural population for Horvitz-Thompson subgraph
estimation, where a motif instance is a set of edges ``J ⊂ K`` (paper
Sec. 3.1) regardless of any further edges among its nodes.

Implemented motifs and the counting identities used:

* ``path4``    — paths on 4 nodes (3 edges):
  ``Σ_{(u,v)∈K} (d_u−1)(d_v−1) − 3·N(△)`` (the subtracted term removes
  end-edge pairs that meet in a common neighbour, which form triangles);
* ``star4``    — 3-stars (a centre with 3 leaf edges): ``Σ_v C(d_v, 3)``;
* ``cycle4``   — 4-cycles: ``½ Σ_{{u,w}} C(codeg(u,w), 2)`` over unordered
  node pairs, accumulated by enumerating wedges;
* ``tailed_triangle`` — triangle + pendant edge:
  ``Σ_△ (d_a + d_b + d_c − 6)``;
* ``diamond``  — two triangles sharing an edge (5-edge subset):
  ``Σ_{(u,v)∈K} C(|Γ(u)∩Γ(v)|, 2)``;
* ``clique4``  — K4 (6-edge subset), by degree-ordered enumeration.

All run in O(wedges) or O(a(G)·|K|) time — fine for the experiment-scale
graphs; the test suite cross-validates every identity against brute-force
enumeration on small random graphs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.edge import Node, canonical_edge
from repro.graph.exact import triangle_count

MOTIF_NAMES = (
    "path4",
    "star4",
    "cycle4",
    "tailed_triangle",
    "diamond",
    "clique4",
)


@dataclass(frozen=True)
class MotifCounts:
    """Exact non-induced counts of the six connected 4-node motifs."""

    path4: int
    star4: int
    cycle4: int
    tailed_triangle: int
    diamond: int
    clique4: int

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in MOTIF_NAMES}


def count_paths4(graph: AdjacencyGraph) -> int:
    """Non-induced 4-node paths (3-edge paths)."""
    total = 0
    for u, v in graph.edges():
        total += (graph.degree(u) - 1) * (graph.degree(v) - 1)
    return total - 3 * triangle_count(graph)


def count_stars4(graph: AdjacencyGraph) -> int:
    """3-stars: centres with any 3 of their incident edges."""
    total = 0
    for v in graph.nodes():
        d = graph.degree(v)
        total += d * (d - 1) * (d - 2) // 6
    return total


def count_cycles4(graph: AdjacencyGraph) -> int:
    """Non-induced 4-cycles via co-degree accumulation over wedges."""
    codeg: Dict[Tuple[Node, Node], int] = defaultdict(int)
    for center in graph.nodes():
        neighbors = sorted(graph.neighbors(center), key=repr)
        for i in range(len(neighbors)):
            for j in range(i + 1, len(neighbors)):
                codeg[canonical_edge(neighbors[i], neighbors[j])] += 1
    # Each 4-cycle has two diagonal pairs, each counted once per common
    # neighbour pair: Σ C(codeg, 2) counts every cycle exactly twice.
    total = sum(c * (c - 1) // 2 for c in codeg.values())
    return total // 2


def count_tailed_triangles(graph: AdjacencyGraph) -> int:
    """Triangles with one pendant edge attached at any corner."""
    total = 0
    for u, v in graph.edges():
        for w in graph.common_neighbors(u, v):
            # Each triangle {u, v, w} is found once per edge (3 times);
            # crediting only the tail at the opposite corner w counts each
            # (triangle, tail) pair exactly once.
            total += graph.degree(w) - 2
    return total


def count_diamonds(graph: AdjacencyGraph) -> int:
    """Pairs of triangles sharing an edge (5-edge subgraphs)."""
    total = 0
    for u, v in graph.edges():
        shared = len(graph.common_neighbors(u, v))
        total += shared * (shared - 1) // 2
    return total


def count_cliques4(graph: AdjacencyGraph) -> int:
    """K4 count by degree-ordered forward-neighbour enumeration."""
    order = {
        v: (graph.degree(v), idx)
        for idx, v in enumerate(sorted(graph.nodes(), key=repr))
    }
    forward: Dict[Node, set] = {v: set() for v in graph.nodes()}
    for u, v in graph.edges():
        if order[u] < order[v]:
            forward[u].add(v)
        else:
            forward[v].add(u)
    total = 0
    for a in graph.nodes():
        out_a = forward[a]
        for b in out_a:
            common_ab = out_a & forward[b]
            for c in common_ab:
                out_c = forward[c]
                total += sum(1 for d in common_ab if d in out_c and order[c] < order[d])
    return total


def count_motifs(graph: AdjacencyGraph) -> MotifCounts:
    """All six connected 4-node motif counts in one bundle."""
    return MotifCounts(
        path4=count_paths4(graph),
        star4=count_stars4(graph),
        cycle4=count_cycles4(graph),
        tailed_triangle=count_tailed_triangles(graph),
        diamond=count_diamonds(graph),
        clique4=count_cliques4(graph),
    )
