"""Edge-list I/O.

Lets users run every experiment on real downloaded graphs (e.g. the
network-repository datasets the paper uses) instead of the synthetic
stand-ins.  Supported format: one edge per line, two node tokens separated
by whitespace or an explicit delimiter, ``#``/``%`` comment lines, optional
gzip (by ``.gz`` extension).  Extra columns (timestamps, weights) are
ignored unless requested.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Optional, Tuple, Union

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.edge import Node

PathLike = Union[str, Path]

_COMMENT_PREFIXES = ("#", "%", "//")


def _open_text(path: PathLike, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def iter_edge_list(
    path: PathLike,
    delimiter: Optional[str] = None,
    node_type: Callable[[str], Node] = int,
    interner: Optional["NodeInterner"] = None,
) -> Iterator[Tuple[Node, Node]]:
    """Yield ``(u, v)`` pairs from an edge-list file, skipping comments.

    ``delimiter=None`` splits on arbitrary whitespace.  Lines with fewer
    than two tokens are skipped; extra tokens beyond the first two are
    ignored (timestamps/weights in temporal edge lists).  Passing a
    :class:`~repro.streams.interner.NodeInterner` interns the labels to
    dense ``int32`` ids at parse time (first-encounter order), so the
    rest of the pipeline runs on machine integers; the interner keeps
    the id → label mapping.
    """
    with _open_text(path, "r") as handle:
        if interner is not None:
            intern = interner.intern
            for line in handle:
                line = line.strip()
                if not line or line.startswith(_COMMENT_PREFIXES):
                    continue
                parts = line.split(delimiter)
                if len(parts) < 2:
                    continue
                yield intern(node_type(parts[0])), intern(node_type(parts[1]))
            return
        for line in handle:
            line = line.strip()
            if not line or line.startswith(_COMMENT_PREFIXES):
                continue
            parts = line.split(delimiter)
            if len(parts) < 2:
                continue
            yield node_type(parts[0]), node_type(parts[1])


def iter_edge_chunks(
    path: PathLike,
    size: Optional[int] = None,
    delimiter: Optional[str] = None,
    node_type: Callable[[str], Node] = int,
    interner: Optional["NodeInterner"] = None,
):
    """Read an edge-list file as columnar ``int32`` blocks.

    The chunk-shaped sibling of :func:`iter_edge_list` — same parsing
    (comment/short lines skipped, ``delimiter``/``node_type``
    honoured), but the lines arrive as ``(u, v)`` int32 array pairs of
    at most ``size`` edges (default
    :data:`repro.streams.chunks.DEFAULT_CHUNK_SIZE`): the input shape
    of the compact core's ``process_chunk``, without ever
    materialising the whole stream.  With the default ``node_type=int``
    labels pass through unchanged; non-int labels need an interner
    (same contract as :meth:`repro.streams.EdgeStream.chunks`).

    Note the executor's file passes stay scalar on purpose (duplicate
    handling differs from the simplified stream contract, and a lazy
    source cannot be pre-validated for the columnar gate); this is the
    programmatic surface for driving ``process_chunk`` over files
    directly.
    """
    from repro.streams.chunks import DEFAULT_CHUNK_SIZE, iter_chunks

    return iter_chunks(
        iter_edge_list(path, delimiter=delimiter, node_type=node_type),
        size=size if size is not None else DEFAULT_CHUNK_SIZE,
        interner=interner,
    )


def read_edge_list(
    path: PathLike,
    delimiter: Optional[str] = None,
    node_type: Callable[[str], Node] = int,
    interner: Optional["NodeInterner"] = None,
) -> AdjacencyGraph:
    """Read an edge-list file into an :class:`AdjacencyGraph` (simplified)."""
    return AdjacencyGraph(
        iter_edge_list(
            path, delimiter=delimiter, node_type=node_type, interner=interner
        )
    )


def write_edge_list(
    edges: Union[AdjacencyGraph, Iterable[Tuple[Node, Node]]],
    path: PathLike,
    delimiter: str = " ",
    header: Optional[str] = None,
) -> int:
    """Write edges (or a graph's edges) to a file; returns edge count."""
    if isinstance(edges, AdjacencyGraph):
        edges = edges.edges()
    count = 0
    with _open_text(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for u, v in edges:
            handle.write(f"{u}{delimiter}{v}\n")
            count += 1
    return count


def relabel_consecutive(
    edges: Iterable[Tuple[Node, Node]],
) -> Tuple[List[Tuple[int, int]], dict]:
    """Relabel arbitrary node ids to 0..n-1; returns (edges, mapping).

    Thin wrapper over :class:`~repro.streams.interner.NodeInterner`
    (kept for its historical ``(edges, {label: id})`` return shape).
    """
    from repro.streams.interner import NodeInterner

    interner = NodeInterner()
    out = interner.intern_edges(edges)
    return out, {label: i for i, label in enumerate(interner.labels)}
