"""Canonical undirected-edge helpers.

The stream model identifies each undirected edge with an unordered node
pair.  Everything downstream (reservoir membership, duplicate detection,
exact counters) relies on a single canonical representation, defined here.
"""

from __future__ import annotations

from typing import Hashable, Tuple

Node = Hashable
EdgeKey = Tuple[Node, Node]


def canonical_edge(u: Node, v: Node) -> EdgeKey:
    """Return the canonical (ordered) key for the undirected edge ``{u, v}``.

    Nodes of mixed non-comparable types fall back to ordering on ``repr``,
    so any hashable node labels can be used.

    >>> canonical_edge(3, 1)
    (1, 3)
    >>> canonical_edge("b", "a")
    ('a', 'b')
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


def is_self_loop(u: Node, v: Node) -> bool:
    """True when both endpoints are the same node (edge must be dropped)."""
    return u == v
