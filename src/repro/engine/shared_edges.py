"""Zero-copy publication of interned edge populations to worker pools.

The replication protocol is embarrassingly parallel, but its per-worker
*setup* used to scale with the graph: every worker received the full
edge population as pickled Python tuples (O(|K|) bytes serialised,
shipped and rebuilt per worker — and per task in the sweep pool, which
re-resolved the source file for every cell replication).  This module
removes that scaling term:

* the parent interns the population to dense ``int32`` ids
  (:mod:`repro.streams.interner`) and publishes the flat id array
  **once** through :mod:`multiprocessing.shared_memory`;
* each worker attaches to the segment by name — the only thing that
  crosses the process boundary is a ``(segment name, edge count)``
  descriptor of a few dozen bytes — copies the ids out, and closes its
  mapping;
* per-task payloads stay seed pairs, so replication setup time is flat
  in graph size (``BENCH_replication.json`` tracks this).

Estimates are unaffected: interning is a relabelling, every metric in
the repo is label-free, and workers permute the interned array with the
same seeded shuffle they applied to label tuples — so shared-memory
results are bit-identical to the pickled path (enforced by
``tests/test_shared_edges.py``).  Weight functions that *do* read labels
(:class:`~repro.core.weights.AttributeWeight`, custom callables) are
detected via :func:`repro.core.weights.is_label_free` and keep the
pickled dispatch.

Lifecycle: the publishing side owns the segment and must
:meth:`~SharedEdgePopulation.unlink` it (use the context manager — it
unlinks on success, failure and KeyboardInterrupt alike).  Attaching
sides never unlink.  On Python < 3.13 an attach also registers with the
``resource_tracker``; under the default ``fork`` start method parent and
workers share one tracker, so the registrations coalesce and the
parent's unlink retires them all.
"""

from __future__ import annotations

from array import array
from itertools import chain
from typing import List, Sequence, Tuple

try:  # pragma: no cover - absent only on exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: 4-byte signed int typecode ("i" on every mainstream CPython build).
_TYPECODE = "i" if array("i").itemsize == 4 else "l"
_ITEMSIZE = array(_TYPECODE).itemsize

InternedEdge = Tuple[int, int]

#: What crosses the process boundary: ``(segment name, edge count)``.
Descriptor = Tuple[str, int]


def shared_memory_available() -> bool:
    """Whether :mod:`multiprocessing.shared_memory` is usable here."""
    return _shared_memory is not None


class SharedEdgePopulation:
    """One published edge population: create → hand out descriptor → unlink.

    Examples
    --------
    >>> with SharedEdgePopulation.publish([(0, 1), (1, 2)]) as shared:
    ...     edges = SharedEdgePopulation.attach(shared.descriptor)
    >>> edges
    [(0, 1), (1, 2)]
    """

    __slots__ = ("_shm", "_edges")

    def __init__(self, shm, num_edges: int) -> None:
        self._shm = shm
        self._edges = num_edges

    # ------------------------------------------------------------------
    # Publishing side
    # ------------------------------------------------------------------
    @classmethod
    def publish(
        cls, edges: Sequence[InternedEdge]
    ) -> "SharedEdgePopulation":
        """Copy ``edges`` (interned int pairs) into a new shared segment."""
        if _shared_memory is None:  # pragma: no cover
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        flat = array(_TYPECODE, chain.from_iterable(edges))
        num_edges, remainder = divmod(len(flat), 2)
        if remainder:
            raise ValueError("edges must be (u, v) pairs")
        shm = _shared_memory.SharedMemory(
            create=True, size=max(1, len(flat) * _ITEMSIZE)
        )
        shm.buf[: len(flat) * _ITEMSIZE] = flat.tobytes()
        return cls(shm, num_edges)

    @property
    def descriptor(self) -> Descriptor:
        """The picklable ``(segment name, edge count)`` worker payload."""
        return (self._shm.name, self._edges)

    @property
    def num_edges(self) -> int:
        return self._edges

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (publisher-only; idempotent)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass

    def __enter__(self) -> "SharedEdgePopulation":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
        self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedEdgePopulation(name={self._shm.name!r}, "
            f"edges={self._edges})"
        )

    # ------------------------------------------------------------------
    # Attaching side (workers)
    # ------------------------------------------------------------------
    @staticmethod
    def attach(descriptor: Descriptor) -> List[InternedEdge]:
        """Rebuild the edge list from a published segment.

        Copies the ids out and closes the mapping immediately, so the
        worker holds no reference to the segment afterwards.
        """
        if _shared_memory is None:  # pragma: no cover
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        name, num_edges = descriptor
        shm = _shared_memory.SharedMemory(name=name)
        try:
            flat = array(_TYPECODE)
            flat.frombytes(shm.buf[: 2 * num_edges * _ITEMSIZE])
        finally:
            shm.close()
        return list(zip(flat[0::2], flat[1::2]))

    @staticmethod
    def attach_columnar(descriptor: Descriptor):
        """Rebuild the population as ``(u, v)`` int32 numpy columns.

        The chunked-pipeline sibling of :meth:`attach`: the published
        flat array maps straight onto the columnar block shape
        ``process_chunk`` consumes, so a worker on the chunked pipeline
        never materialises Python tuples at all.  Returns ``None`` when
        numpy is unavailable (callers then :meth:`attach` tuples).
        Like :meth:`attach`, the ids are copied out and the mapping is
        closed immediately.
        """
        if _shared_memory is None:  # pragma: no cover
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        try:
            import numpy as np
        except ImportError:  # pragma: no cover
            return None
        name, num_edges = descriptor
        shm = _shared_memory.SharedMemory(name=name)
        try:
            # bytes() copies out of the segment, so no numpy view keeps
            # the mapping alive past close() (which would BufferError).
            payload = bytes(shm.buf[: 2 * num_edges * _ITEMSIZE])
        finally:
            shm.close()
        dtype = np.int32 if _ITEMSIZE == 4 else np.int64
        pairs = np.frombuffer(payload, dtype=dtype).reshape(num_edges, 2)
        return (
            np.ascontiguousarray(pairs[:, 0], dtype=np.int32),
            np.ascontiguousarray(pairs[:, 1], dtype=np.int32),
        )


__all__ = [
    "Descriptor",
    "SharedEdgePopulation",
    "shared_memory_available",
]
