"""The throughput-oriented stream-driving loop.

Every experiment in the repo used to hand-roll the same pattern: iterate
an :class:`~repro.streams.stream.EdgeStream`, feed each arrival to one or
more counters, and record state at checkpoint positions.
:class:`StreamEngine` centralises that loop and makes it fast:

* when the driven counter exposes ``process_many`` (the GPS sampler and
  :class:`~repro.core.in_stream.InStreamEstimator` do) and no lockstep
  companions are attached, edges are fed in checkpoint-to-checkpoint
  batches through the hoisted fast path instead of one Python call per
  arrival;
* otherwise the engine falls back to a per-edge loop with the bound
  methods hoisted once.

Checkpoint callbacks receive the 1-based stream position; they close over
whatever counters they want to read, so the engine stays agnostic of what
is being estimated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import islice
from typing import Callable, Iterable, Optional, Sequence, Tuple

from repro.graph.edge import Node

#: Anything consumable by the engine: ``.process(u, v)`` per arrival,
#: optionally ``.process_many(edges) -> int`` for the batched fast path.
Counter = object

CheckpointCallback = Callable[[int], None]


@dataclass(frozen=True)
class EngineStats:
    """Timing summary of one :meth:`StreamEngine.run` pass."""

    edges: int
    elapsed_seconds: float
    checkpoints: Tuple[int, ...] = ()

    @property
    def edges_per_second(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return float("inf")
        return self.edges / self.elapsed_seconds

    @property
    def update_time_us(self) -> float:
        """Mean wall-clock cost per arrival, in microseconds."""
        return self.elapsed_seconds / max(1, self.edges) * 1e6


class StreamEngine:
    """Drive a counter (plus optional lockstep companions) over a stream.

    Parameters
    ----------
    counter:
        The primary consumer; each arrival is fed to it first.
    companions:
        Extra consumers processed in lockstep after the primary one —
        e.g. an :class:`~repro.graph.exact.ExactStreamCounter` supplying
        ground truth at every checkpoint.  Attaching companions disables
        the batched fast path (lockstep requires per-edge interleaving).

    Examples
    --------
    >>> from repro.core.priority_sampler import GraphPrioritySampler
    >>> engine = StreamEngine(GraphPrioritySampler(capacity=8, seed=3))
    >>> stats = engine.run([(0, 1), (1, 2), (0, 2)])
    >>> stats.edges
    3
    """

    __slots__ = ("_counter", "_companions")

    def __init__(self, counter: Counter, companions: Sequence[Counter] = ()) -> None:
        self._counter = counter
        self._companions = tuple(companions)

    @property
    def counter(self) -> Counter:
        return self._counter

    @property
    def companions(self) -> Tuple[Counter, ...]:
        return self._companions

    def run(
        self,
        stream: Iterable[Tuple[Node, Node]],
        checkpoints: Optional[Sequence[int]] = None,
        on_checkpoint: Optional[CheckpointCallback] = None,
    ) -> EngineStats:
        """Feed ``stream`` through the counter(s), firing checkpoints.

        ``checkpoints`` are strictly increasing 1-based arrival positions
        (as produced by :meth:`repro.streams.EdgeStream.checkpoints`);
        ``on_checkpoint(t)`` runs after arrival ``t`` has been processed.
        Checkpoint positions beyond the end of the stream never fire.
        Returns wall-clock :class:`EngineStats` for the whole pass.
        """
        marks: Tuple[int, ...] = tuple(checkpoints or ())
        if any(b <= a for a, b in zip(marks, marks[1:])):
            raise ValueError("checkpoints must be strictly increasing")
        if marks and marks[0] <= 0:
            raise ValueError("checkpoints are 1-based positive positions")

        batched = not self._companions and hasattr(self._counter, "process_many")
        started = time.perf_counter()
        if batched:
            edges = self._run_batched(stream, marks, on_checkpoint)
        else:
            edges = self._run_lockstep(stream, marks, on_checkpoint)
        elapsed = time.perf_counter() - started
        fired = tuple(m for m in marks if m <= edges)
        return EngineStats(edges=edges, elapsed_seconds=elapsed, checkpoints=fired)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _run_batched(
        self,
        stream: Iterable[Tuple[Node, Node]],
        marks: Sequence[int],
        on_checkpoint: Optional[CheckpointCallback],
    ) -> int:
        process_many = self._counter.process_many
        it = iter(stream)
        position = 0
        for mark in marks:
            consumed = process_many(islice(it, mark - position))
            position += consumed
            if position < mark:  # stream ended before the checkpoint
                return position
            if on_checkpoint is not None:
                on_checkpoint(position)
        return position + process_many(it)

    def _run_lockstep(
        self,
        stream: Iterable[Tuple[Node, Node]],
        marks: Sequence[int],
        on_checkpoint: Optional[CheckpointCallback],
    ) -> int:
        consumers = [self._counter.process]
        consumers.extend(c.process for c in self._companions)
        mark_iter = iter(marks)
        next_mark = next(mark_iter, 0)
        t = 0
        if len(consumers) == 1:
            process = consumers[0]
            for u, v in stream:
                process(u, v)
                t += 1
                if t == next_mark:
                    if on_checkpoint is not None:
                        on_checkpoint(t)
                    next_mark = next(mark_iter, 0)
            return t
        for u, v in stream:
            for process in consumers:
                process(u, v)
            t += 1
            if t == next_mark:
                if on_checkpoint is not None:
                    on_checkpoint(t)
                next_mark = next(mark_iter, 0)
        return t


__all__ = ["StreamEngine", "EngineStats", "CheckpointCallback"]
