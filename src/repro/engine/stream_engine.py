"""The throughput-oriented stream-driving loop.

Every experiment in the repo used to hand-roll the same pattern: iterate
an :class:`~repro.streams.stream.EdgeStream`, feed each arrival to one or
more counters, and record state at checkpoint positions.
:class:`StreamEngine` centralises that loop and makes it fast, picking
the quickest drive the attached counters support:

* **chunked** — when a ``chunk_size`` is configured and the primary
  counter exposes ``process_chunk``, the stream is consumed as columnar
  ``int32`` blocks (:meth:`repro.streams.EdgeStream.chunks`, or
  :func:`repro.streams.chunks.iter_chunks` for plain iterables) and
  blocks are split *exactly* at checkpoint marks, so checkpointed state
  is identical to a per-edge drive;
* **batched** — otherwise, when the primary counter exposes
  ``process_many``, edges are fed in checkpoint-to-checkpoint batches
  instead of one Python call per arrival;
* **lockstep** — the per-edge fallback, used only when a counter (or a
  companion) demands per-edge hooks.

Companions no longer disable batching wholesale: a companion that
exposes ``process_many`` is driven at chunk/batch granularity too (each
consumer sees the same edges in the same order, and the only
synchronisation points — the checkpoints — fire at the same positions,
so results are identical); only a companion without ``process_many``
forces the per-edge lockstep.

Checkpoint callbacks receive the 1-based stream position; they close over
whatever counters they want to read, so the engine stays agnostic of what
is being estimated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import islice
from typing import Callable, Iterable, Optional, Sequence, Tuple

from repro.graph.edge import Node

#: Selectable stream pipelines (the default comes first): ``"chunked"``
#: drives columnar blocks through ``process_chunk`` where the counter
#: supports it, ``"scalar"`` keeps the tuple-at-a-time paths.  The two
#: are bit-identical under shared seeds — the pipeline is purely a
#: performance switch, mirroring the ``core`` flag of
#: :mod:`repro.core.compact`.
PIPELINES = ("chunked", "scalar")
DEFAULT_PIPELINE = "chunked"


def validate_pipeline(pipeline: str) -> str:
    """Check a pipeline name; unknown names raise with the known set."""
    if pipeline not in PIPELINES:
        raise ValueError(
            f"unknown pipeline {pipeline!r}; known pipelines: {PIPELINES}"
        )
    return pipeline


#: Edges per materialised batch after the last checkpoint (bounds the
#: memory of the batched-companions drive over unbounded streams).
_TAIL_BATCH = 65536

#: Anything consumable by the engine: ``.process(u, v)`` per arrival,
#: optionally ``.process_many(edges) -> int`` for the batched fast path
#: and ``.process_chunk(u_col, v_col) -> int`` for columnar blocks.
Counter = object

CheckpointCallback = Callable[[int], None]
ChunkObserver = Callable[[int], None]


@dataclass(frozen=True)
class EngineStats:
    """Timing summary of one :meth:`StreamEngine.run` pass."""

    edges: int
    elapsed_seconds: float
    checkpoints: Tuple[int, ...] = ()

    @property
    def edges_per_second(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return float("inf")
        return self.edges / self.elapsed_seconds

    @property
    def update_time_us(self) -> float:
        """Mean wall-clock cost per arrival, in microseconds."""
        return self.elapsed_seconds / max(1, self.edges) * 1e6


class StreamEngine:
    """Drive a counter (plus optional companions) over a stream.

    Parameters
    ----------
    counter:
        The primary consumer; each arrival is fed to it first.
    companions:
        Extra consumers processed after the primary one between
        checkpoints — e.g. an
        :class:`~repro.graph.exact.ExactStreamCounter` supplying ground
        truth at every checkpoint.  Companions exposing ``process_many``
        ride the batched/chunked drives; only a companion without it
        forces the per-edge lockstep.
    chunk_size:
        Enable the columnar drive with blocks of this many edges
        (``None`` — the default — keeps the scalar drives).  Takes
        effect only when the counter exposes ``process_chunk``; the
        stream must then either be an :class:`~repro.streams.EdgeStream`
        or an iterable of int-labelled pairs.

    Examples
    --------
    >>> from repro.core.priority_sampler import GraphPrioritySampler
    >>> engine = StreamEngine(GraphPrioritySampler(capacity=8, seed=3))
    >>> stats = engine.run([(0, 1), (1, 2), (0, 2)])
    >>> stats.edges
    3
    """

    __slots__ = ("_counter", "_companions", "_chunk_size", "_on_chunk")

    def __init__(
        self,
        counter: Counter,
        companions: Sequence[Counter] = (),
        chunk_size: Optional[int] = None,
    ) -> None:
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError("chunk_size must be positive (or None)")
        self._counter = counter
        self._companions = tuple(companions)
        self._chunk_size = chunk_size
        self._on_chunk: Tuple[ChunkObserver, ...] = ()

    def on_chunk(self, callback: "ChunkObserver") -> "ChunkObserver":
        """Subscribe ``callback(position)`` to segment boundaries.

        Fires after every contiguous segment the engine feeds to the
        counter(s) — each columnar block (and each checkpoint split) in
        the chunked drive, each materialised batch in the batched
        drive, each arrival in the per-edge lockstep — with the 1-based
        stream position processed so far.  Unlike ``checkpoints``, no
        positions need to be predeclared: observers (the serving
        layer's snapshot publisher, metrics sinks) see every natural
        pause point of whatever drive the engine picked.

        Observers are ordinary Python callbacks on the driving thread;
        they must not feed the counters.  When no observer is
        registered the drives skip the dispatch entirely (a no-op cost
        guarantee the regression tests pin down: hooks never perturb
        RNG state or counts).  Returns ``callback`` so the method works
        as a decorator.
        """
        self._on_chunk += (callback,)
        return callback

    @property
    def counter(self) -> Counter:
        return self._counter

    @property
    def companions(self) -> Tuple[Counter, ...]:
        return self._companions

    @property
    def chunk_size(self) -> Optional[int]:
        return self._chunk_size

    def run(
        self,
        stream: Iterable[Tuple[Node, Node]],
        checkpoints: Optional[Sequence[int]] = None,
        on_checkpoint: Optional[CheckpointCallback] = None,
    ) -> EngineStats:
        """Feed ``stream`` through the counter(s), firing checkpoints.

        ``checkpoints`` are strictly increasing 1-based arrival positions
        (as produced by :meth:`repro.streams.EdgeStream.checkpoints`);
        ``on_checkpoint(t)`` runs after arrival ``t`` has been processed.
        Checkpoint positions beyond the end of the stream never fire.
        Returns wall-clock :class:`EngineStats` for the whole pass.
        """
        marks: Tuple[int, ...] = tuple(checkpoints or ())
        if any(b <= a for a, b in zip(marks, marks[1:])):
            raise ValueError("checkpoints must be strictly increasing")
        if marks and marks[0] <= 0:
            raise ValueError("checkpoints are 1-based positive positions")

        batchable = hasattr(self._counter, "process_many") and all(
            hasattr(c, "process_many") for c in self._companions
        )
        chunked = (
            self._chunk_size is not None
            and batchable
            and hasattr(self._counter, "process_chunk")
        )
        started = time.perf_counter()
        if chunked:
            edges = self._run_chunked(stream, marks, on_checkpoint)
        elif batchable:
            edges = self._run_batched(stream, marks, on_checkpoint)
        else:
            edges = self._run_lockstep(stream, marks, on_checkpoint)
        elapsed = time.perf_counter() - started
        fired = tuple(m for m in marks if m <= edges)
        return EngineStats(edges=edges, elapsed_seconds=elapsed, checkpoints=fired)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _run_chunked(
        self,
        stream: Iterable[Tuple[Node, Node]],
        marks: Sequence[int],
        on_checkpoint: Optional[CheckpointCallback],
    ) -> int:
        """Columnar drive: blocks split exactly at checkpoint marks."""
        size = self._chunk_size
        if hasattr(stream, "chunks"):
            blocks = stream.chunks(size)
        else:
            from repro.streams.chunks import iter_chunks

            blocks = iter_chunks(stream, size)
        process_chunk = self._counter.process_chunk
        companions = [c.process_many for c in self._companions]
        hooks = self._on_chunk
        mark_iter = iter(marks)
        next_mark = next(mark_iter, 0)
        position = 0
        for cu, cv in blocks:
            offset = 0
            block_len = len(cu)
            while next_mark and next_mark - position <= block_len - offset:
                cut = offset + (next_mark - position)
                su, sv = cu[offset:cut], cv[offset:cut]
                process_chunk(su, sv)
                if companions:
                    pairs = list(zip(su.tolist(), sv.tolist()))
                    for feed in companions:
                        feed(pairs)
                position = next_mark
                offset = cut
                if on_checkpoint is not None:
                    on_checkpoint(position)
                for hook in hooks:
                    hook(position)
                next_mark = next(mark_iter, 0)
            if offset < block_len:
                su, sv = cu[offset:], cv[offset:]
                process_chunk(su, sv)
                if companions:
                    pairs = list(zip(su.tolist(), sv.tolist()))
                    for feed in companions:
                        feed(pairs)
                position += block_len - offset
                for hook in hooks:
                    hook(position)
        return position

    def _run_batched(
        self,
        stream: Iterable[Tuple[Node, Node]],
        marks: Sequence[int],
        on_checkpoint: Optional[CheckpointCallback],
    ) -> int:
        process_many = self._counter.process_many
        hooks = self._on_chunk
        it = iter(stream)
        position = 0
        if not self._companions:
            # Feed islice views straight through: nothing is ever
            # materialised, so lazy file streams stay lazy.
            for mark in marks:
                consumed = process_many(islice(it, mark - position))
                position += consumed
                if position < mark:  # stream ended before the checkpoint
                    if consumed:
                        for hook in hooks:
                            hook(position)
                    return position
                if on_checkpoint is not None:
                    on_checkpoint(position)
                for hook in hooks:
                    hook(position)
            if not hooks:
                return position + process_many(it)
            # Observers want segment boundaries: bound the tail into
            # _TAIL_BATCH slices so they keep firing past the last mark.
            while True:
                consumed = process_many(islice(it, _TAIL_BATCH))
                if not consumed:
                    return position
                position += consumed
                for hook in hooks:
                    hook(position)
        # Companions replay each batch, so batches are materialised —
        # checkpoint-to-checkpoint, then bounded tail blocks.
        companions = [c.process_many for c in self._companions]

        def feed(batch) -> None:
            process_many(batch)
            for consume in companions:
                consume(batch)

        for mark in marks:
            batch = list(islice(it, mark - position))
            feed(batch)
            position += len(batch)
            if position < mark:
                if batch:
                    for hook in hooks:
                        hook(position)
                return position
            if on_checkpoint is not None:
                on_checkpoint(position)
            for hook in hooks:
                hook(position)
        while True:
            batch = list(islice(it, _TAIL_BATCH))
            if not batch:
                return position
            feed(batch)
            position += len(batch)
            for hook in hooks:
                hook(position)

    def _run_lockstep(
        self,
        stream: Iterable[Tuple[Node, Node]],
        marks: Sequence[int],
        on_checkpoint: Optional[CheckpointCallback],
    ) -> int:
        consumers = [self._counter.process]
        consumers.extend(c.process for c in self._companions)
        hooks = self._on_chunk
        mark_iter = iter(marks)
        next_mark = next(mark_iter, 0)
        t = 0
        if len(consumers) == 1 and not hooks:
            process = consumers[0]
            for u, v in stream:
                process(u, v)
                t += 1
                if t == next_mark:
                    if on_checkpoint is not None:
                        on_checkpoint(t)
                    next_mark = next(mark_iter, 0)
            return t
        for u, v in stream:
            for process in consumers:
                process(u, v)
            t += 1
            if t == next_mark:
                if on_checkpoint is not None:
                    on_checkpoint(t)
                next_mark = next(mark_iter, 0)
            # Lockstep's natural segment is one arrival.
            for hook in hooks:
                hook(t)
        return t


__all__ = [
    "DEFAULT_PIPELINE",
    "PIPELINES",
    "StreamEngine",
    "EngineStats",
    "CheckpointCallback",
    "ChunkObserver",
    "validate_pipeline",
]
