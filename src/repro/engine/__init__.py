"""repro.engine — the high-throughput stream-driving subsystem.

``StreamEngine`` is the one loop that feeds arrivals to counters (batched
through ``process_many`` fast paths where available) and fires checkpoint
callbacks; ``ReplicatedRunner`` fans independent multi-seed replications
of any registered method across worker processes and aggregates mean /
variance / confidence intervals — the paper's error-bar protocol.  The
edge population reaches workers zero-copy through
:mod:`repro.engine.shared_edges`: interned once, published once via
shared memory, attached per worker — per-task payloads stay seed pairs.
"""

from repro.engine.replication import (
    MetricSummary,
    ReplicatedRunner,
    ReplicatedSummary,
    ReplicationResult,
    default_max_workers,
)
from repro.engine.resilient import (
    DEFAULT_REBUILD_BUDGET,
    DEFAULT_RETRY_BUDGET,
    RetryStats,
    run_resilient,
)
from repro.engine.shared_edges import (
    SharedEdgePopulation,
    shared_memory_available,
)
from repro.engine.stream_engine import (
    DEFAULT_PIPELINE,
    PIPELINES,
    EngineStats,
    StreamEngine,
    validate_pipeline,
)

__all__ = [
    "DEFAULT_PIPELINE",
    "DEFAULT_REBUILD_BUDGET",
    "DEFAULT_RETRY_BUDGET",
    "PIPELINES",
    "EngineStats",
    "validate_pipeline",
    "MetricSummary",
    "ReplicatedRunner",
    "ReplicatedSummary",
    "ReplicationResult",
    "RetryStats",
    "SharedEdgePopulation",
    "StreamEngine",
    "default_max_workers",
    "run_resilient",
    "shared_memory_available",
]
