"""repro.engine — the high-throughput stream-driving subsystem.

``StreamEngine`` is the one loop that feeds arrivals to counters (batched
through ``process_many`` fast paths where available) and fires checkpoint
callbacks; ``ReplicatedRunner`` fans independent multi-seed replications
of a GPS run across worker processes and aggregates mean / variance /
confidence intervals — the paper's error-bar protocol.
"""

from repro.engine.replication import (
    MetricSummary,
    ReplicatedRunner,
    ReplicatedSummary,
    ReplicationResult,
)
from repro.engine.stream_engine import EngineStats, StreamEngine

__all__ = [
    "EngineStats",
    "MetricSummary",
    "ReplicatedRunner",
    "ReplicatedSummary",
    "ReplicationResult",
    "StreamEngine",
]
