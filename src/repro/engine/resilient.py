"""Fault-tolerant process-pool execution shared by every fan-out layer.

:func:`run_resilient` is the one place the codebase touches a
:class:`~concurrent.futures.ProcessPoolExecutor` when it wants to
survive worker death.  It submits tasks individually, catches
``BrokenProcessPool`` (a killed worker poisons the whole executor),
rebuilds the pool — letting the caller re-publish a shared-memory
population whose segment died with the run via ``refresh`` — and
resubmits the unfinished tasks under a bounded budget.  Per-task
exceptions retry the same way without a rebuild.

Retries are *free* correctness-wise: every task in this codebase is a
pure function of its seeds, so the resubmitted task returns bit-for-bit
the result the crashed worker would have produced.  The layer preserves
submission order in its results, which keeps downstream aggregation
(ordered float accumulation) bit-identical too.

Fault injection enters here through an explicit hook: the parent asks
the :class:`~repro.faults.FaultInjector` for an instruction per
``(task, attempt)`` and ships it inside the payload, so the burn-down
state lives where a crashing worker cannot take it along — the retry of
a once-crashed task deterministically succeeds.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.faults.injector import FaultInjected, FaultInjector

#: Default per-task resubmission budget (beyond the first attempt).
DEFAULT_RETRY_BUDGET = 2

#: Default pool-rebuild budget per run.
DEFAULT_REBUILD_BUDGET = 2

#: Exit code of an injected worker crash (visible in core-dump triage).
_CRASH_EXIT = 13


@dataclass
class RetryStats:
    """What fault tolerance cost one fan-out.

    Attributes
    ----------
    task_retries:
        Tasks resubmitted, for any reason — their own exception or
        collateral loss to a pool break.
    pool_rebuilds:
        Times the executor was torn down and rebuilt after
        ``BrokenProcessPool``.
    """

    task_retries: int = 0
    pool_rebuilds: int = 0


def _faulted_entry(payload: Tuple[Optional[str], Callable[[Any], Any], Any]) -> Any:
    """Worker entry: obey the parent's fault instruction, then work."""
    instruction, fn, task = payload
    if instruction == "crash":
        # A real SIGKILL/OOM does not unwind: bypass all cleanup.
        os._exit(_CRASH_EXIT)
    if instruction == "raise":
        raise FaultInjected("injected task fault")
    return fn(task)


def run_resilient(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    *,
    workers: int,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[Any, ...] = (),
    retry_budget: int = DEFAULT_RETRY_BUDGET,
    rebuild_budget: int = DEFAULT_REBUILD_BUDGET,
    injector: Optional[FaultInjector] = None,
    site: str = "",
    refresh: Optional[Callable[[], Optional[Tuple[Any, ...]]]] = None,
) -> Tuple[List[Any], RetryStats]:
    """Run ``fn`` over ``tasks`` in a pool that survives worker death.

    Parameters
    ----------
    fn:
        Module-level task function (picklable), pure in its task.
    workers:
        Pool size (must be >= 1; inline dispatch is the caller's
        business).
    initializer / initargs:
        Forwarded to every (re)built executor.
    retry_budget:
        Resubmissions allowed per task beyond its first attempt for
        the task's *own* exception; exhausting it re-raises.
    rebuild_budget:
        Pool rebuilds allowed per run; exhausting it re-raises the
        triggering ``BrokenProcessPool``.
    injector / site:
        Fault-injection hook: consulted per ``(task, attempt)`` in the
        parent, instruction shipped inside the payload.
    refresh:
        Called once per rebuild, before the new executor exists.  May
        return replacement ``initargs`` (e.g. a re-published shared
        segment's descriptor) or ``None`` to keep the current ones.

    Returns
    -------
    (results, stats):
        ``results`` in submission order, and the :class:`RetryStats`
        the run accumulated.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1 for pooled dispatch")
    if retry_budget < 0 or rebuild_budget < 0:
        raise ValueError("retry budgets must be non-negative")

    stats = RetryStats()
    results: Dict[int, Any] = {}
    pending: List[Tuple[int, int]] = [(i, 0) for i in range(len(tasks))]
    current_initargs = tuple(initargs)

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=initializer,
            initargs=current_initargs,
        )

    pool = make_pool()
    try:
        while pending:
            in_flight: List[Tuple[int, int, Future[Any]]] = []
            next_pending: List[Tuple[int, int]] = []
            broken: Optional[BaseException] = None
            try:
                for index, attempt in pending:
                    instruction = (
                        injector.task_fault(site, index, attempt)
                        if injector is not None
                        else None
                    )
                    in_flight.append(
                        (
                            index,
                            attempt,
                            pool.submit(
                                _faulted_entry,
                                (instruction, fn, tasks[index]),
                            ),
                        )
                    )
            except BrokenProcessPool as exc:
                # The pool died mid-submission; everything not yet
                # submitted keeps its attempt count for the next round.
                broken = exc
                submitted = {index for index, _, _ in in_flight}
                next_pending.extend(
                    entry for entry in pending if entry[0] not in submitted
                )
            for index, attempt, future in in_flight:
                try:
                    results[index] = future.result()
                except BrokenProcessPool as exc:
                    broken = broken or exc
                    next_pending.append((index, attempt + 1))
                    stats.task_retries += 1
                except Exception:
                    if attempt >= retry_budget:
                        raise
                    next_pending.append((index, attempt + 1))
                    stats.task_retries += 1
            if broken is not None:
                stats.pool_rebuilds += 1
                if stats.pool_rebuilds > rebuild_budget:
                    raise broken
                pool.shutdown(wait=False, cancel_futures=True)
                if refresh is not None:
                    refreshed = refresh()
                    if refreshed is not None:
                        current_initargs = tuple(refreshed)
                pool = make_pool()
            next_pending.sort()
            pending = next_pending
    finally:
        # Wait like the old `with ProcessPoolExecutor(...)` did: callers
        # unlink shared segments right after this returns, and a clean
        # worker exit keeps the resource tracker quiet.
        pool.shutdown(wait=True, cancel_futures=True)
    return [results[i] for i in range(len(tasks))], stats


__all__ = [
    "DEFAULT_REBUILD_BUDGET",
    "DEFAULT_RETRY_BUDGET",
    "RetryStats",
    "run_resilient",
]
