"""Parallel multi-seed replication of any registered method.

The paper's error bars come from repeating each experiment over many
independent ``(stream permutation, sampler uniforms)`` seed pairs.  A
sequential for-loop over full stream passes is the slowest part of any
such study, and the replications are embarrassingly parallel — each one
is a pure function of ``(edges, budget, weight_fn, method, stream_seed,
sampler_seed)``.  :class:`ReplicatedRunner` fans them out over a
:class:`concurrent.futures.ProcessPoolExecutor` and aggregates the
per-replication estimates into mean / variance / normal confidence
intervals via Welford's algorithm.

Counters come from the :mod:`repro.api.registry` method registry, so the
same pool replicates GPS *and* every baseline (``method="triest-impr"``
works exactly like the default shared-sample ``"gps"``); each method's
registration supplies the budget interpretation and the metric set that
gets aggregated.  Methods registered by third-party modules are visible
to forked workers; under a spawn start method the registering module
must be importable by workers.

Worker dispatch is zero-copy by default: the runner interns the edge
population to dense ``int32`` ids and publishes the flat array once via
:mod:`multiprocessing.shared_memory`
(:mod:`repro.engine.shared_edges`); workers attach by name and permute
locally, so per-worker setup no longer scales with graph size and
per-task payloads stay seed pairs.  Interning is a pure relabelling —
every aggregated metric is label-free — so the results are bit-identical
to the legacy pickled dispatch, which remains available as
``dispatch="pickle"`` and is selected automatically for weight functions
that read node labels (:func:`repro.core.weights.is_label_free`) and for
methods registered with ``reads_labels=True``.
``max_workers=0`` runs everything inline in the calling process — the
results are identical (each replication is deterministic given its seed
pair), which the test suite exploits.

Two further per-worker reuses keep replication setup flat: each process
holds a **warm arena** (:class:`_WorkerArena`) — the compact GPS
counters expose ``reset(seed)`` restoring freshly-constructed state
bit-identically, so slot arrays, heap and adjacency are allocated once
and reused across every task — and the population is held as a lazy
dual view (:class:`_Population`) whose columnar ``int32`` shape feeds
the chunked pipeline (``pipeline="chunked"``, the default): workers
shuffle an index permutation (the same Fisher–Yates RNG consumption as
shuffling tuples), gather the columns, and drive
``process_chunk`` blocks through the vectorised admission gate.

This pool parallelises *within one configuration* (R replications of a
single ``(source, method, budget, weight)``).  Grids of configurations
are the :mod:`repro.api.sweep` layer's job: its shared pool
parallelises *across cells*, and its expanded specs always carry
``replications=1``, so the two pools never nest.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.compact import DEFAULT_CORE, validate_core
from repro.core.weights import WeightFunction, is_label_free
from repro.engine.resilient import (
    DEFAULT_RETRY_BUDGET,
    RetryStats,
    run_resilient,
)
from repro.engine.shared_edges import (
    Descriptor,
    SharedEdgePopulation,
    shared_memory_available,
)
from repro.engine.stream_engine import (
    DEFAULT_PIPELINE,
    PIPELINES,
    validate_pipeline,
)
from repro.faults.injector import FaultInjector, coerce_injector
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.edge import Node
from repro.stats.confidence import confidence_interval
from repro.stats.running import RunningMoments
from repro.streams.chunks import (
    DEFAULT_CHUNK_SIZE,
    columnar_or_none,
    numpy_or_none,
)
from repro.streams.interner import NodeInterner
from repro.streams.stream import EdgeStream

Edge = Tuple[Node, Node]
SeedPair = Tuple[int, int]

#: The default method: the GPS shared-sample pass whose metric set
#: (in-stream + post-stream, one reservoir) matches the paper's protocol.
DEFAULT_METHOD = "gps"

#: Worker dispatch mechanisms (``None`` on the runner means auto).
DISPATCHES = ("shared", "pickle")


def _get_method(name: str):
    """Lazy registry lookup: repro.api imports this module at load time."""
    from repro.api.registry import get_method

    return get_method(name)


@dataclass(frozen=True)
class ReplicationResult:
    """Estimates from one independent ``(stream, sampler)`` seed pair.

    ``metrics`` carries the replicated method's named point estimates
    (the registry's extractor output); the GPS shared-sample metric names
    are also readable through the legacy attribute properties.
    """

    stream_seed: int
    sampler_seed: int
    metrics: Dict[str, float]
    sample_size: int = 0
    threshold: float = 0.0

    # Legacy GPS accessors (method="gps" metric names).
    @property
    def in_stream_triangles(self) -> float:
        return self.metrics["in_stream_triangles"]

    @property
    def post_stream_triangles(self) -> float:
        return self.metrics["post_stream_triangles"]

    @property
    def in_stream_wedges(self) -> float:
        return self.metrics["in_stream_wedges"]

    @property
    def in_stream_clustering(self) -> float:
        return self.metrics["in_stream_clustering"]


@dataclass(frozen=True)
class MetricSummary:
    """Mean / variance / normal CI of one metric across replications."""

    mean: float
    variance: float
    std_error: float
    ci_low: float
    ci_high: float
    count: int

    def to_dict(self) -> Dict[str, float]:
        """JSON-safe form; ``MetricSummary(**d)`` inverts it.

        The one serialiser every report layer shares
        (:class:`~repro.api.execution.RunReport`,
        :class:`~repro.api.sweep.CellResult`), so the JSON schema cannot
        fork between them.
        """
        return {
            "mean": self.mean,
            "variance": self.variance,
            "std_error": self.std_error,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "count": self.count,
        }

    @classmethod
    def from_values(
        cls, values: Sequence[float], level: float = 0.95
    ) -> "MetricSummary":
        moments = RunningMoments()
        moments.extend(values)
        std_error = moments.std_error
        low, high = confidence_interval(moments.mean, std_error**2, level=level)
        return cls(
            mean=moments.mean,
            variance=moments.variance,
            std_error=std_error,
            ci_low=low,
            ci_high=high,
            count=moments.count,
        )


@dataclass(frozen=True)
class ReplicatedSummary:
    """Aggregated outcome of :meth:`ReplicatedRunner.run`.

    ``metrics`` maps each of the method's metric names to its
    :class:`MetricSummary`; the GPS names are also readable through the
    legacy attribute properties.  ``dispatch`` records how workers
    received the edge population (``"shared"``/``"pickle"``; ``"inline"``
    when no pool ran).
    """

    replications: Tuple[ReplicationResult, ...]
    metrics: Dict[str, MetricSummary]
    workers: int
    method: str = DEFAULT_METHOD
    dispatch: str = "inline"
    #: The pipeline replications actually drove (``"scalar"`` when the
    #: configuration cannot use the columnar gate, whatever was asked).
    pipeline: str = "scalar"
    #: Fault-tolerance cost: tasks resubmitted after worker failure.
    task_retries: int = 0
    #: Fault-tolerance cost: executors rebuilt after BrokenProcessPool.
    pool_rebuilds: int = 0

    @property
    def num_replications(self) -> int:
        return len(self.replications)

    # Legacy GPS accessors (method="gps" metric names).
    @property
    def in_stream_triangles(self) -> MetricSummary:
        return self.metrics["in_stream_triangles"]

    @property
    def post_stream_triangles(self) -> MetricSummary:
        return self.metrics["post_stream_triangles"]

    @property
    def in_stream_wedges(self) -> MetricSummary:
        return self.metrics["in_stream_wedges"]

    @property
    def in_stream_clustering(self) -> MetricSummary:
        return self.metrics["in_stream_clustering"]


@dataclass(frozen=True)
class _ReplicationTask:
    """Everything a worker process needs (must stay picklable)."""

    edges: Sequence[Edge]
    capacity: int
    weight_fn: Optional[WeightFunction]
    stream_seed: int
    sampler_seed: int
    method: str = DEFAULT_METHOD
    core: str = DEFAULT_CORE
    pipeline: str = DEFAULT_PIPELINE


class _Population:
    """One edge population, viewable as tuples and as int32 columns.

    Both views are derived lazily and cached, so a worker on the
    chunked pipeline never materialises Python tuples (its population
    arrives as columns straight from the shared segment) while a worker
    driving a tuple-only method never pays the columnar conversion —
    and either way the conversion happens once per process, not per
    replication.
    """

    __slots__ = ("_edges", "_columns", "_columns_tried")

    def __init__(self, edges=None, columns=None) -> None:
        if edges is None and columns is None:
            raise ValueError("a population needs edges or columns")
        self._edges = edges
        self._columns = columns
        self._columns_tried = columns is not None

    def __len__(self) -> int:
        if self._edges is not None:
            return len(self._edges)
        return len(self._columns[0])

    def __iter__(self):
        return iter(self.tuples())

    def tuples(self) -> Sequence[Edge]:
        """The population as ``(u, v)`` tuples of plain Python ints."""
        if self._edges is None:
            u, v = self._columns
            self._edges = list(zip(u.tolist(), v.tolist()))
        return self._edges

    def columns(self):
        """``(u, v)`` int32 columns, or ``None`` when not int-labelled."""
        if not self._columns_tried:
            self._columns_tried = True
            self._columns = columnar_or_none(self._edges)
        return self._columns


class _WorkerArena:
    """Per-process reusable state: a warm counter plus its population.

    Replication tasks within one pool share ``(method, capacity,
    weight_fn, core)``, and the compact GPS counters expose ``reset``
    restoring freshly-constructed state bit-identically — so the slot
    arrays, heap list, adjacency dict and chunk buffers are allocated
    once per process and reused across every replication instead of
    being rebuilt per task.  Counters without ``reset`` (the object
    core, the baselines) are simply rebuilt; the arena then only
    caches the population's columnar view.
    """

    __slots__ = (
        "method", "capacity", "core", "weight_fn", "counter", "resettable",
    )

    def __init__(self, method, capacity, core, weight_fn, counter) -> None:
        self.method = method
        self.capacity = capacity
        self.core = core
        self.weight_fn = weight_fn
        self.counter = counter
        self.resettable = hasattr(counter, "reset")


_ARENA: Optional[_WorkerArena] = None


def _release_arena() -> None:
    """Drop the warm arena (inline runs call this so the main process
    does not retain capacity-sized arrays after a study finishes;
    worker arenas die with their pool)."""
    global _ARENA
    _ARENA = None


def _acquire_counter(task: _ReplicationTask, stream_length: int):
    """A counter for ``task`` — arena-reset when possible, else fresh.

    The weight function is compared by identity (the arena holds the
    reference, so the check cannot alias a recycled object); any
    configuration mismatch rebuilds the arena.
    """
    global _ARENA
    arena = _ARENA
    matches = (
        arena is not None
        and arena.method == task.method
        and arena.capacity == task.capacity
        and arena.core == task.core
        and arena.weight_fn is task.weight_fn
    )
    if matches and arena.resettable:
        try:
            arena.counter.reset(task.sampler_seed)
            return arena.counter
        except AttributeError:
            # A wrapper advertised reset but its inner counter has none
            # (gps-post over the object core); the memo below makes the
            # probe happen once per configuration, not once per task.
            arena.resettable = False
    counter = _get_method(task.method).make(
        task.capacity, stream_length, task.sampler_seed,
        weight_fn=task.weight_fn, core=task.core,
    )
    if matches:
        arena.counter = counter  # keep the arena (and its memo)
    else:
        _ARENA = _WorkerArena(
            task.method, task.capacity, task.core, task.weight_fn, counter
        )
    return counter


# Shared per-worker state: the edge population is identical across a
# runner's replications, so it is delivered once per worker — through a
# shared-memory attach (descriptor in the initargs) or, on the legacy
# pickled path, through the initargs themselves — never per task.
_WORKER_STATE: Optional[
    Tuple[_Population, int, Optional[WeightFunction], str, str, str]
] = None


def _pool_initializer(
    edges: Tuple[Edge, ...],
    capacity: int,
    weight_fn: Optional[WeightFunction],
    method: str,
    core: str,
    pipeline: str,
) -> None:
    """Pickled dispatch: the population arrives serialised per worker."""
    global _WORKER_STATE
    _WORKER_STATE = (
        _Population(edges=edges), capacity, weight_fn, method, core, pipeline,
    )


def _pool_initializer_shared(
    descriptor: Descriptor,
    capacity: int,
    weight_fn: Optional[WeightFunction],
    method: str,
    core: str,
    pipeline: str,
) -> None:
    """Shared dispatch: attach to the published segment and copy out.

    On the chunked pipeline the attach is columnar — the worker's
    population lands directly in the ``process_chunk`` input shape and
    tuples are only ever built if a scalar method asks for them.
    """
    global _WORKER_STATE
    population = None
    if pipeline == "chunked" and numpy_or_none() is not None:
        columns = SharedEdgePopulation.attach_columnar(descriptor)
        if columns is not None:
            population = _Population(columns=columns)
    if population is None:
        population = _Population(edges=SharedEdgePopulation.attach(descriptor))
    _WORKER_STATE = (population, capacity, weight_fn, method, core, pipeline)


def _run_seed_pair(pair: SeedPair) -> ReplicationResult:
    """Worker entry point: task payload is just the seed pair."""
    population, capacity, weight_fn, method, core, pipeline = _WORKER_STATE
    return _run_replication(
        _ReplicationTask(
            edges=population,
            capacity=capacity,
            weight_fn=weight_fn,
            stream_seed=pair[0],
            sampler_seed=pair[1],
            method=method,
            core=core,
            pipeline=pipeline,
        )
    )


def _run_replication(task: _ReplicationTask) -> ReplicationResult:
    """One full pass of the task's method; module-level so pools pickle it."""
    population = (
        task.edges if isinstance(task.edges, _Population)
        else _Population(edges=task.edges)
    )
    n = len(population)
    counter = _acquire_counter(task, n)
    columns = None
    if task.pipeline == "chunked" and getattr(
        counter, "chunk_vectorized", False
    ):
        columns = population.columns()
    if columns is not None:
        # Shuffling an index permutation consumes the very same RNG
        # sequence as shuffling the edge list (Fisher–Yates swaps are
        # value-blind), so the columnar drive streams the identical
        # arrival order — and the fancy-indexed gather is vectorised.
        np = numpy_or_none()
        perm = list(range(n))
        random.Random(task.stream_seed).shuffle(perm)
        idx = np.asarray(perm, dtype=np.intp)
        us = columns[0][idx]
        vs = columns[1][idx]
        process_chunk = counter.process_chunk
        for at in range(0, n, DEFAULT_CHUNK_SIZE):
            process_chunk(
                us[at:at + DEFAULT_CHUNK_SIZE],
                vs[at:at + DEFAULT_CHUNK_SIZE],
            )
    else:
        order = list(population)
        random.Random(task.stream_seed).shuffle(order)
        process_many = getattr(counter, "process_many", None)
        if process_many is not None:
            process_many(order)
        else:
            process = counter.process
            for u, v in order:
                process(u, v)
    spec = _get_method(task.method)
    sampler = getattr(counter, "sampler", None)
    return ReplicationResult(
        stream_seed=task.stream_seed,
        sampler_seed=task.sampler_seed,
        metrics=spec.extract(counter),
        sample_size=sampler.sample_size if sampler is not None else 0,
        threshold=sampler.threshold if sampler is not None else 0.0,
    )


def default_max_workers(tasks: int, cpu_count: Optional[int] = None) -> int:
    """The auto-sized pool: ``min(tasks, cpu, 8)``, floored at 2 when the
    machine has at least 2 cores so aggregation is exercised in parallel
    by default — but never more processes than cores (a single-CPU
    machine gets 1, not a forced 2-process pool)."""
    cpu = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    return max(min(2, cpu), min(tasks, cpu, 8))


class ReplicatedRunner:
    """Fan R independent replications of one method across processes.

    Parameters
    ----------
    graph:
        The fixed edge population; each replication streams an
        independent random permutation of it.  An explicit edge sequence
        is accepted in place of an :class:`AdjacencyGraph`.
    capacity:
        The common memory budget ``m``; the method's registration
        interprets it (reservoir capacity, probability, instances …).
    weight_fn:
        Shared weight function for weight-aware (GPS) methods (must be
        picklable for ``max_workers`` ≥ 1; every weight class in
        :mod:`repro.core.weights` is).  Ignored by weight-free baselines.
    replications:
        Number of independent ``(stream_seed, sampler_seed)`` pairs, R.
    max_workers:
        Size of the process pool; ``0`` (or 1 replication) runs inline in
        the calling process.  ``None`` picks ``min(R, cpu, 8)``, floored
        at 2 only when the machine has ≥ 2 cores (see
        :func:`default_max_workers`).
    base_stream_seed / base_sampler_seed:
        Replication ``i`` uses seeds ``(base_stream_seed + i,
        base_sampler_seed + i)``; override ``seed_pairs`` for full control.
    method:
        Registered method name (:mod:`repro.api.registry`); the default
        ``"gps"`` runs the paper's shared-sample GPS pass.
    core:
        GPS reservoir core for core-aware methods (``"compact"``
        default / ``"object"`` reference); bit-identical results.
    pipeline:
        Stream pipeline inside each replication: ``"chunked"``
        (default) drives columnar blocks through the compact core's
        vectorised ``process_chunk`` when the counter supports it
        (uniform-family weights), ``"scalar"`` keeps the tuple loop.
        Bit-identical results either way — a pure performance switch.
    dispatch:
        How pooled workers receive the edge population: ``"shared"``
        (zero-copy shared memory, requires a label-free weight) or
        ``"pickle"`` (legacy serialised initargs).  ``None`` picks
        shared whenever it is applicable.  Inline runs ignore it.

    Examples
    --------
    >>> from repro.graph.generators import erdos_renyi_gnm
    >>> runner = ReplicatedRunner(
    ...     erdos_renyi_gnm(30, 60, seed=0), capacity=20,
    ...     replications=3, max_workers=0, method="triest-impr",
    ... )
    >>> summary = runner.run()
    >>> summary.metrics["triangles"].count
    3
    """

    __slots__ = (
        "_edges",
        "_population",
        "_capacity",
        "_weight_fn",
        "_seed_pairs",
        "_max_workers",
        "_method",
        "_core",
        "_pipeline",
        "_dispatch",
        "_interner",
        "_injector",
        "_retry_budget",
    )

    def __init__(
        self,
        graph,
        capacity: int,
        weight_fn: Optional[WeightFunction] = None,
        replications: int = 8,
        max_workers: Optional[int] = None,
        base_stream_seed: int = 0,
        base_sampler_seed: int = 10_000,
        seed_pairs: Optional[Sequence[SeedPair]] = None,
        method: str = DEFAULT_METHOD,
        core: str = DEFAULT_CORE,
        pipeline: str = DEFAULT_PIPELINE,
        dispatch: Optional[str] = None,
        faults=None,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if retry_budget < 0:
            raise ValueError("retry_budget must be non-negative")
        self._injector: Optional[FaultInjector] = coerce_injector(faults)
        self._retry_budget = retry_budget
        method_spec = _get_method(method)  # fail fast on unknown names
        validate_core(core)
        validate_pipeline(pipeline)
        if dispatch is not None and dispatch not in DISPATCHES:
            raise ValueError(
                f"dispatch must be one of {DISPATCHES} (or None for auto), "
                f"got {dispatch!r}"
            )
        if isinstance(graph, AdjacencyGraph):
            # Same canonical order EdgeStream.from_graph shuffles, so a
            # replication with stream_seed s reproduces that exact stream.
            edges = EdgeStream.canonical_edges(graph)
        else:
            edges = list(graph)
        # Intern whenever nothing can observe the labels: interning is a
        # pure relabelling, and it makes the population a flat int array
        # the shared-memory dispatch can publish.  Weight functions or
        # methods that read labels (``MethodSpec.reads_labels``) keep
        # the original tuples (and pickled dispatch).
        label_free = not method_spec.reads_labels and (
            weight_fn is None or is_label_free(weight_fn)
        )
        self._interner: Optional[NodeInterner]
        if label_free:
            self._interner = NodeInterner()
            self._edges: Tuple[Edge, ...] = tuple(
                self._interner.intern_edges(edges)
            )
        else:
            self._interner = None
            self._edges = tuple(edges)
        if dispatch == "shared":
            if self._interner is None:
                raise ValueError(
                    "dispatch='shared' needs a label-free weight function "
                    "and method (the interned dispatch cannot preserve "
                    "node labels); use dispatch='pickle'"
                )
            if not shared_memory_available():  # pragma: no cover
                raise ValueError(
                    "dispatch='shared' is unavailable on this platform"
                )
        # One lazy dual-view shared by every inline task, so the
        # columnar conversion happens at most once per runner.
        self._population = _Population(edges=self._edges)
        self._capacity = capacity
        self._weight_fn = weight_fn
        self._method = method
        self._core = core
        self._pipeline = pipeline
        self._dispatch = dispatch
        if seed_pairs is not None:
            pairs = [(int(s), int(t)) for s, t in seed_pairs]
        else:
            if replications <= 0:
                raise ValueError("need at least one replication")
            pairs = [
                (base_stream_seed + i, base_sampler_seed + i)
                for i in range(replications)
            ]
        if not pairs:
            raise ValueError("need at least one replication")
        if len(set(pairs)) != len(pairs):
            raise ValueError("seed pairs must be distinct")
        self._seed_pairs: List[SeedPair] = pairs
        if max_workers is None:
            max_workers = default_max_workers(len(pairs))
        if max_workers < 0:
            raise ValueError("max_workers must be >= 0")
        self._max_workers = max_workers

    @property
    def seed_pairs(self) -> Tuple[SeedPair, ...]:
        return tuple(self._seed_pairs)

    @property
    def max_workers(self) -> int:
        return self._max_workers

    @property
    def method(self) -> str:
        return self._method

    @property
    def core(self) -> str:
        return self._core

    @property
    def pipeline(self) -> str:
        return self._pipeline

    @property
    def interner(self) -> Optional[NodeInterner]:
        """Id → label mapping of the interned population (None when the
        weight function forced label dispatch)."""
        return self._interner

    def resolved_dispatch(self) -> str:
        """The dispatch a pooled run will use (auto resolved)."""
        if self._dispatch is not None:
            return self._dispatch
        if self._interner is not None and shared_memory_available():
            return "shared"
        return "pickle"

    def resolved_pipeline(self) -> str:
        """The pipeline replications will actually drive.

        Mirrors the per-task decision in ``_run_replication`` — chunked
        only when the method's counter has a vectorised gate
        (``chunk_vectorized``) and the population columnarises — so the
        summary reports what ran, not what was asked.
        """
        if self._pipeline != "chunked":
            return "scalar"
        # chunk_vectorized depends only on the weight family, so probe
        # with a unit budget instead of allocating real slot arrays;
        # methods with a minimum budget (TRIEST needs >= 3) get the
        # real one — they are scalar-only anyway, so the answer stands.
        make = _get_method(self._method).make
        try:
            probe = make(1, len(self._edges), 0,
                         weight_fn=self._weight_fn, core=self._core)
        # Safe probe fallback: a method refusing the unit budget is
        # answered by building the real counter instead — no failure is
        # swallowed, the except IS the answer.
        except Exception:  # repro-lint: disable=exception-discipline
            probe = make(self._capacity, len(self._edges), 0,
                         weight_fn=self._weight_fn, core=self._core)
        if not getattr(probe, "chunk_vectorized", False):
            return "scalar"
        # An interned population is dense ints by construction; only a
        # label-preserving one needs the actual columnar probe.
        if self._interner is None and self._population.columns() is None:
            return "scalar"
        return "chunked"

    def run(self) -> ReplicatedSummary:
        """Execute all replications and aggregate their estimates."""
        pairs = self._seed_pairs
        if self._max_workers == 0 or len(pairs) == 1:
            try:
                results = [
                    _run_replication(
                        _ReplicationTask(
                            edges=self._population,
                            capacity=self._capacity,
                            weight_fn=self._weight_fn,
                            stream_seed=stream_seed,
                            sampler_seed=sampler_seed,
                            method=self._method,
                            core=self._core,
                            pipeline=self._pipeline,
                        )
                    )
                    for stream_seed, sampler_seed in pairs
                ]
            finally:
                _release_arena()
            workers = 0
            dispatch = "inline"
            stats = RetryStats()
        else:
            workers = min(self._max_workers, len(pairs))
            dispatch = self.resolved_dispatch()
            if dispatch == "shared":
                results, stats = self._run_pool_shared(workers, pairs)
            else:
                results, stats = self._run_pool_pickled(workers, pairs)
        metric_names = list(results[0].metrics)
        return ReplicatedSummary(
            replications=tuple(results),
            metrics={
                name: MetricSummary.from_values([r.metrics[name] for r in results])
                for name in metric_names
            },
            workers=workers,
            method=self._method,
            dispatch=dispatch,
            pipeline=self.resolved_pipeline(),
            task_retries=stats.task_retries,
            pool_rebuilds=stats.pool_rebuilds,
        )

    # ------------------------------------------------------------------
    # Pool drivers
    # ------------------------------------------------------------------
    def _run_pool_shared(
        self, workers: int, pairs: Sequence[SeedPair]
    ) -> Tuple[List[ReplicationResult], RetryStats]:
        """Publish once, attach per worker; every published generation
        is always unlinked — on success, worker failure (including a
        pool rebuild after a crashed worker) and KeyboardInterrupt."""
        published = [SharedEdgePopulation.publish(self._edges)]

        def initargs_of(shared: SharedEdgePopulation) -> Tuple:
            return (shared.descriptor, self._capacity, self._weight_fn,
                    self._method, self._core, self._pipeline)

        def refresh() -> Optional[Tuple]:
            # A dead worker cannot unlink the parent's segment, but a
            # hostile platform cleanup can; probe, republish if gone.
            try:
                SharedEdgePopulation.attach(published[-1].descriptor)
                return None
            except (OSError, ValueError):
                published.append(SharedEdgePopulation.publish(self._edges))
                return initargs_of(published[-1])

        try:
            return run_resilient(
                _run_seed_pair,
                list(pairs),
                workers=workers,
                initializer=_pool_initializer_shared,
                initargs=initargs_of(published[0]),
                retry_budget=self._retry_budget,
                injector=self._injector,
                site="replication",
                refresh=refresh,
            )
        finally:
            for shared in published:
                shared.close()
                shared.unlink()

    def _run_pool_pickled(
        self, workers: int, pairs: Sequence[SeedPair]
    ) -> Tuple[List[ReplicationResult], RetryStats]:
        return run_resilient(
            _run_seed_pair,
            list(pairs),
            workers=workers,
            initializer=_pool_initializer,
            initargs=(self._edges, self._capacity, self._weight_fn,
                      self._method, self._core, self._pipeline),
            retry_budget=self._retry_budget,
            injector=self._injector,
            site="replication",
        )


__all__ = [
    "DEFAULT_METHOD",
    "DISPATCHES",
    "MetricSummary",
    "ReplicatedRunner",
    "ReplicatedSummary",
    "ReplicationResult",
    "default_max_workers",
]
