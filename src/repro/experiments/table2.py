"""Table 2 — baseline comparison: accuracy and per-edge update time.

Paper: at a common ≈100K-edge budget, GPS post-stream estimation is
compared against NSAMP (Pavan et al.), TRIEST (De Stefani et al.) and
MASCOT (Lim & Kang) on cit-Patents, higgs-soc-net and infra-roadNet-CA.
Reported: triangle-count ARE and average update time (µs/edge).

Shapes to reproduce: GPS is the most accurate method and NSAMP is by far
the slowest per edge (its per-arrival work touches every estimator
instance).  We additionally report GPS in-stream (not in the paper's
table): at our reduced scale the post-stream estimator's advantage over
MASCOT narrows (see EXPERIMENTS.md), while in-stream retains the paper's
clear accuracy lead.  Absolute µs/edge depends on host and language; the
ordering and the accuracy gap are the reproduction target.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from math import sqrt
from typing import List, Optional, Sequence

from repro.api.sweep import SweepSpec, run_sweep
from repro.experiments.datasets import TABLE2_DATASETS
from repro.experiments.reporting import format_table

DEFAULT_BUDGET = 2000
DEFAULT_METHODS = ("nsamp", "triest", "mascot", "gps-post", "gps-in-stream")
DEFAULT_RUNS = 10

# Paper Table 2 (ARE at ~100K samples) for side-by-side reporting.
PAPER_ARE = {
    ("cit-Patents", "nsamp"): 0.192,
    ("cit-Patents", "triest"): 0.401,
    ("cit-Patents", "mascot"): 0.65,
    ("cit-Patents", "gps-post"): 0.008,
    ("higgs-social-network", "nsamp"): 0.079,
    ("higgs-social-network", "triest"): 0.174,
    ("higgs-social-network", "mascot"): 0.209,
    ("higgs-social-network", "gps-post"): 0.011,
    ("infra-roadNet-CA", "nsamp"): 0.165,
    ("infra-roadNet-CA", "triest"): 0.301,
    ("infra-roadNet-CA", "mascot"): 0.39,
    ("infra-roadNet-CA", "gps-post"): 0.013,
}


@dataclass(frozen=True)
class Table2Row:
    dataset: str
    method: str
    are: float
    rel_std: float
    update_time_us: float
    paper_are: Optional[float]
    runs: int


def build_table2(
    datasets: Sequence[str] = TABLE2_DATASETS,
    methods: Sequence[str] = DEFAULT_METHODS,
    budget: int = DEFAULT_BUDGET,
    runs: int = DEFAULT_RUNS,
    base_seed: int = 0,
) -> List[Table2Row]:
    """ARE of the mean estimate over ``runs`` (paper's |E[X̂]−X|/X) + µs/edge.

    The whole table is one :class:`~repro.api.sweep.SweepSpec` grid —
    datasets × methods at a common budget, ``runs`` seed replications per
    cell — so ground truth is resolved once per dataset and every cell's
    ARE/σ comes from the sweep's per-cell summaries.
    """
    report = run_sweep(
        SweepSpec(
            sources=tuple(datasets),
            methods=tuple(methods),
            budgets=(budget,),
            runs=runs,
            base_stream_seed=base_seed,
            base_sampler_seed=base_seed + 100,
            workers=0,
        )
    )
    return [
        Table2Row(
            dataset=cell.key.source,
            method=cell.key.method,
            are=cell.relative_error,
            rel_std=sqrt(cell.triangles.variance)
            / max(1, cell.ground_truth.triangles),
            update_time_us=cell.update_time.mean,
            paper_are=PAPER_ARE.get((cell.key.source, cell.key.method)),
            runs=cell.runs,
        )
        for cell in report.cells
    ]


def format_table2(rows: Sequence[Table2Row]) -> str:
    body = [
        [
            r.dataset,
            r.method,
            f"{r.are:.3f}",
            "-" if r.paper_are is None else f"{r.paper_are:.3f}",
            f"{r.rel_std:.3f}",
            f"{r.update_time_us:.2f}",
        ]
        for r in rows
    ]
    return format_table(
        headers=["graph", "method", "ARE (ours)", "ARE (paper)", "rel σ", "µs/edge"],
        rows=body,
        title="Table 2 — baseline comparison",
        align_left=(0, 1),
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=DEFAULT_BUDGET)
    parser.add_argument("--runs", type=int, default=DEFAULT_RUNS)
    parser.add_argument("--datasets", nargs="*", default=TABLE2_DATASETS)
    parser.add_argument("--methods", nargs="*", default=list(DEFAULT_METHODS))
    args = parser.parse_args(argv)
    rows = build_table2(
        datasets=args.datasets,
        methods=args.methods,
        budget=args.budget,
        runs=args.runs,
    )
    print(format_table2(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
