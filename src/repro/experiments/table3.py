"""Table 3 — tracking error of triangle counts over time (MARE / max-ARE).

Paper: m = 80K; TRIEST, TRIEST-IMPR, GPS post-stream and GPS in-stream
tracked over the whole stream on 4 graphs; reported: maximum and mean
absolute relative error of the triangle-count time series.

Shape to reproduce (paper's ordering, every graph):

    TRIEST  >  TRIEST-IMPR  >  GPS POST  >~  GPS IN-STREAM
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.api.sweep import SweepSpec, run_sweep
from repro.experiments.datasets import TABLE3_DATASETS
from repro.experiments.reporting import format_table
from repro.stats.metrics import (
    max_absolute_relative_error,
    mean_absolute_relative_error,
)

DEFAULT_CAPACITY = 4000
DEFAULT_CHECKPOINTS = 24

# Paper Table 3 values (MARE at m = 80K) for side-by-side reporting.
PAPER_MARE = {
    ("ca-hollywood-2009", "triest"): 0.211,
    ("ca-hollywood-2009", "triest-impr"): 0.018,
    ("ca-hollywood-2009", "gps-post"): 0.020,
    ("ca-hollywood-2009", "gps-in-stream"): 0.003,
    ("tech-as-skitter", "triest"): 0.249,
    ("tech-as-skitter", "triest-impr"): 0.048,
    ("tech-as-skitter", "gps-post"): 0.035,
    ("tech-as-skitter", "gps-in-stream"): 0.014,
    ("infra-roadNet-CA", "triest"): 0.47,
    ("infra-roadNet-CA", "triest-impr"): 0.09,
    ("infra-roadNet-CA", "gps-post"): 0.05,
    ("infra-roadNet-CA", "gps-in-stream"): 0.02,
    ("soc-youtube-snap", "triest"): 0.119,
    ("soc-youtube-snap", "triest-impr"): 0.016,
    ("soc-youtube-snap", "gps-post"): 0.009,
    ("soc-youtube-snap", "gps-in-stream"): 0.008,
}

METHOD_ORDER = ("triest", "triest-impr", "gps-post", "gps-in-stream")


@dataclass(frozen=True)
class Table3Row:
    dataset: str
    method: str
    max_are: float
    mare: float
    paper_mare: Optional[float]


def build_table3(
    datasets: Sequence[str] = TABLE3_DATASETS,
    capacity: int = DEFAULT_CAPACITY,
    num_checkpoints: int = DEFAULT_CHECKPOINTS,
    runs: int = 3,
    stream_seed: int = 0,
    seed: int = 1,
) -> List[Table3Row]:
    """Track all four methods over each dataset's stream.

    Tracking error is a noisy per-run quantity, so MARE and max-ARE are
    averaged over ``runs`` independent stream orders / sampler seeds (the
    paper reports a single tracked run on graphs large enough that one
    run is already concentrated).

    One tracking :class:`~repro.api.sweep.SweepSpec` covers the whole
    table: the shared-sample ``gps`` cell supplies *both* GPS rows
    (in-stream and post-stream series come from the same reservoir,
    ``include_post=True``), the TRIEST variants get their own cells.
    """
    sweep = run_sweep(
        SweepSpec(
            sources=tuple(datasets),
            methods=("gps", "triest", "triest-impr"),
            budgets=(capacity,),
            runs=runs,
            base_stream_seed=stream_seed,
            base_sampler_seed=seed,
            checkpoints=num_checkpoints,
            include_post=True,
            workers=0,
        )
    )
    rows: List[Table3Row] = []
    for dataset in datasets:
        mare_sums: Dict[str, float] = {m: 0.0 for m in METHOD_ORDER}
        max_sums: Dict[str, float] = {m: 0.0 for m in METHOD_ORDER}

        for run in range(runs):
            series: Dict[str, tuple] = {}
            gps = sweep.cell(dataset, "gps").reports[run]
            exact = [float(p.exact_triangles) for p in gps.tracking]
            series["gps-in-stream"] = (
                exact, [p.in_stream.triangles.value for p in gps.tracking]
            )
            series["gps-post"] = (
                exact, [p.post_stream.triangles.value for p in gps.tracking]
            )

            for method in ("triest", "triest-impr"):
                report = sweep.cell(dataset, method).reports[run]
                series[method] = (
                    [float(p.exact_triangles) for p in report.tracking],
                    [p.estimate for p in report.tracking],
                )

            for method in METHOD_ORDER:
                actuals, estimates = series[method]
                mare_sums[method] += mean_absolute_relative_error(estimates, actuals)
                max_sums[method] += max_absolute_relative_error(estimates, actuals)

        for method in METHOD_ORDER:
            rows.append(
                Table3Row(
                    dataset=dataset,
                    method=method,
                    max_are=max_sums[method] / runs,
                    mare=mare_sums[method] / runs,
                    paper_mare=PAPER_MARE.get((dataset, method)),
                )
            )
    return rows


def format_table3(rows: Sequence[Table3Row]) -> str:
    body = [
        [
            r.dataset,
            r.method,
            f"{r.max_are:.3f}",
            f"{r.mare:.3f}",
            "-" if r.paper_mare is None else f"{r.paper_mare:.3f}",
        ]
        for r in rows
    ]
    return format_table(
        headers=["graph", "method", "max ARE", "MARE (ours)", "MARE (paper)"],
        rows=body,
        title="Table 3 — triangle tracking error vs time",
        align_left=(0, 1),
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--capacity", type=int, default=DEFAULT_CAPACITY)
    parser.add_argument("--checkpoints", type=int, default=DEFAULT_CHECKPOINTS)
    parser.add_argument("--runs", type=int, default=3)
    parser.add_argument("--datasets", nargs="*", default=TABLE3_DATASETS)
    args = parser.parse_args(argv)
    rows = build_table3(
        datasets=args.datasets,
        capacity=args.capacity,
        num_checkpoints=args.checkpoints,
        runs=args.runs,
    )
    print(format_table3(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
