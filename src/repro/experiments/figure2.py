"""Figure 2 — convergence of x̂/x with confidence bounds vs sample size.

Paper: 12 panels (one per graph); x-axis sample size 10K–1M, y-axis the
ratio x̂/x for triangle counts with 95% LB/UB, GPS in-stream.  Ratios
converge to 1 and bounds tighten as m grows.

We sweep a geometric grid of capacities per dataset and emit one
(m, ratio, lb/x, ub/x) row per point — the numeric content of each panel.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.api.sweep import SweepSpec, run_sweep
from repro.experiments.datasets import FIGURE2_DATASETS
from repro.experiments.reporting import format_table

DEFAULT_CAPACITIES = (500, 1000, 2000, 4000, 8000, 16000)


@dataclass(frozen=True)
class Figure2Point:
    dataset: str
    capacity: int
    fraction: float
    ratio: float
    lower_ratio: float
    upper_ratio: float

    @property
    def interval_width(self) -> float:
        return self.upper_ratio - self.lower_ratio


def build_figure2(
    datasets: Sequence[str] = FIGURE2_DATASETS,
    capacities: Sequence[int] = DEFAULT_CAPACITIES,
    stream_seed: int = 0,
    sampler_seed: int = 1,
) -> List[Figure2Point]:
    """One GPS cell per (dataset, capacity); ``budget_policy="skip"``
    drops capacities beyond a graph's edge count, as the panels do."""
    sweep = run_sweep(
        SweepSpec(
            sources=tuple(datasets),
            methods=("gps",),
            budgets=tuple(capacities),
            base_stream_seed=stream_seed,
            base_sampler_seed=sampler_seed,
            budget_policy="skip",
            workers=0,
        )
    )
    points: List[Figure2Point] = []
    for cell in sweep.cells:
        exact = cell.ground_truth
        report = cell.reports[0]
        estimate = report.in_stream.triangles
        lb, ub = estimate.confidence_bounds()
        points.append(
            Figure2Point(
                dataset=cell.key.source,
                capacity=cell.key.budget,
                fraction=report.sample_size / max(1, exact.num_edges),
                ratio=estimate.value / exact.triangles,
                lower_ratio=lb / exact.triangles,
                upper_ratio=ub / exact.triangles,
            )
        )
    return points


def format_figure2(points: Sequence[Figure2Point]) -> str:
    body = [
        [
            p.dataset,
            p.capacity,
            f"{p.fraction:.4f}",
            f"{p.lower_ratio:.3f}",
            f"{p.ratio:.3f}",
            f"{p.upper_ratio:.3f}",
            f"{p.interval_width:.3f}",
        ]
        for p in points
    ]
    return format_table(
        headers=["graph", "m", "|K̂|/|K|", "LB/x", "x̂/x", "UB/x", "width"],
        rows=body,
        title="Figure 2 — triangle-count convergence with 95% bounds (in-stream)",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--capacities", nargs="*", type=int, default=list(DEFAULT_CAPACITIES)
    )
    parser.add_argument("--datasets", nargs="*", default=FIGURE2_DATASETS)
    args = parser.parse_args(argv)
    points = build_figure2(datasets=args.datasets, capacities=args.capacities)
    print(format_figure2(points))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
