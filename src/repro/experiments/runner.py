"""Experiment orchestration: single-configuration runs and tracking.

Implements the paper's experimental protocol (Sec. 6):

* streams are seeded random permutations of a graph's edge set;
* GPS post-stream and in-stream estimation run on *the same sample* —
  one :class:`~repro.core.in_stream.InStreamEstimator` pass supplies both
  (post-stream estimates are computed from its reservoir), exactly the
  "same set of edges with the same random seeds" setup;
* baselines are driven through the shared
  :class:`~repro.baselines.base.StreamingTriangleCounter` protocol with
  matched memory budgets;
* tracking runs record estimates at fixed checkpoints alongside exact
  prefix counts from the incremental counter.

All stream driving goes through :class:`repro.engine.StreamEngine`, so
every run here benefits from the batched ``process_many`` fast path and
reports wall-clock throughput consistently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.baselines.jha import JhaSeshadhriPinar
from repro.baselines.mascot import Mascot, MascotBasic
from repro.baselines.neighborhood import NeighborhoodSampling
from repro.baselines.sample_hold import GraphSampleHold
from repro.baselines.triest import TriestBase, TriestImpr
from repro.core.estimates import GraphEstimates
from repro.core.in_stream import InStreamEstimator
from repro.core.post_stream import PostStreamEstimator
from repro.core.priority_sampler import GraphPrioritySampler
from repro.core.weights import WeightFunction
from repro.engine.stream_engine import StreamEngine
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.exact import ExactStreamCounter, GraphStatistics
from repro.stats.metrics import absolute_relative_error
from repro.streams.stream import EdgeStream


@dataclass(frozen=True)
class GpsRunResult:
    """One shared-sample GPS run: in-stream + post-stream estimates."""

    capacity: int
    exact: GraphStatistics
    in_stream: GraphEstimates
    post_stream: GraphEstimates
    update_time_us: float
    dataset: Optional[str] = None

    @property
    def sample_fraction(self) -> float:
        return self.in_stream.sample_size / max(1, self.exact.num_edges)


def run_gps(
    graph: AdjacencyGraph,
    exact: GraphStatistics,
    capacity: int,
    stream_seed: int = 0,
    sampler_seed: int = 1,
    weight_fn: Optional[WeightFunction] = None,
    dataset: Optional[str] = None,
) -> GpsRunResult:
    """One full GPS pass; returns both estimation flavours on one sample."""
    stream = EdgeStream.from_graph(graph, seed=stream_seed)
    estimator = InStreamEstimator(capacity, weight_fn=weight_fn, seed=sampler_seed)
    stats = StreamEngine(estimator).run(stream)
    in_stream = estimator.estimates()
    post_stream = PostStreamEstimator(estimator.sampler).estimate()
    return GpsRunResult(
        capacity=capacity,
        exact=exact,
        in_stream=in_stream,
        post_stream=post_stream,
        update_time_us=stats.update_time_us,
        dataset=dataset,
    )


# ----------------------------------------------------------------------
# Baselines (Table 2)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BaselineRunResult:
    """A baseline's final triangle estimate against the exact count."""

    method: str
    estimate: float
    actual: float
    update_time_us: float
    memory_edges: int

    @property
    def are(self) -> float:
        return absolute_relative_error(self.estimate, self.actual)


BASELINE_METHODS = (
    "gps-post",
    "gps-in-stream",
    "triest",
    "triest-impr",
    "mascot",
    "mascot-c",
    "nsamp",
    "jsp",
    "gsh",
)


def run_baseline(
    method: str,
    graph: AdjacencyGraph,
    exact: GraphStatistics,
    budget: int,
    stream_seed: int = 0,
    seed: int = 1,
) -> BaselineRunResult:
    """Drive one method over one stream with a ``budget``-edge memory.

    ``budget`` is interpreted per method the way the paper matches them:
    reservoir capacity (GPS/TRIEST), estimator instances (NSAMP), expected
    sample size (MASCOT/gSH: probability = budget/|K|), split reservoirs
    (JSP: half edges, half wedges).

    ``update_time_us`` reflects each method's best available driving path:
    GPS goes through its batched ``process_many`` fast path, baselines
    through the per-edge loop (they expose no batched entry point) — i.e.
    it measures implementations, not a call-overhead-matched protocol.
    """
    stream = EdgeStream.from_graph(graph, seed=stream_seed)
    counter, memory = _make_counter(method, budget, len(stream), exact, seed)
    stats = StreamEngine(counter).run(stream)
    if method == "gps-post":
        estimate = PostStreamEstimator(counter.sampler).estimate().triangles.value
    else:
        estimate = counter.triangle_estimate
    return BaselineRunResult(
        method=method,
        estimate=estimate,
        actual=exact.triangles,
        update_time_us=stats.update_time_us,
        memory_edges=memory,
    )


class _GpsCounterAdapter(InStreamEstimator):
    """InStreamEstimator already satisfies the counter protocol."""


def _make_counter(
    method: str,
    budget: int,
    stream_length: int,
    exact: GraphStatistics,
    seed: int,
):
    probability = min(1.0, budget / max(1, stream_length))
    if method == "gps-post":
        sampler = GraphPrioritySampler(budget, seed=seed)
        return _SamplerAdapter(sampler), budget
    if method == "gps-in-stream":
        return _GpsCounterAdapter(budget, seed=seed), budget
    if method == "triest":
        return TriestBase(budget, seed=seed), budget
    if method == "triest-impr":
        return TriestImpr(budget, seed=seed), budget
    if method == "mascot":
        return Mascot(probability, seed=seed), budget
    if method == "mascot-c":
        return MascotBasic(probability, seed=seed), budget
    if method == "nsamp":
        return NeighborhoodSampling(budget, seed=seed), budget
    if method == "jsp":
        half = max(2, budget // 2)
        return JhaSeshadhriPinar(half, half, seed=seed), budget
    if method == "gsh":
        # Hold-everything-adjacent explodes memory; use q = 2p capped at 1.
        return GraphSampleHold(probability, min(1.0, 2 * probability), seed=seed), budget
    raise ValueError(f"unknown method {method!r}; known: {BASELINE_METHODS}")


class _SamplerAdapter:
    """Expose a bare GPS sampler through the counter protocol."""

    __slots__ = ("sampler",)

    def __init__(self, sampler: GraphPrioritySampler) -> None:
        self.sampler = sampler

    def process(self, u, v) -> None:
        self.sampler.process(u, v)

    def process_many(self, edges) -> int:
        return self.sampler.process_many(edges)

    @property
    def triangle_estimate(self) -> float:
        return PostStreamEstimator(self.sampler).estimate().triangles.value


# ----------------------------------------------------------------------
# Tracking (Table 3, Figure 3)
# ----------------------------------------------------------------------
@dataclass
class TrackedSeries:
    """Aligned time series from one tracking run."""

    checkpoints: List[int] = field(default_factory=list)
    exact_triangles: List[int] = field(default_factory=list)
    exact_clustering: List[float] = field(default_factory=list)
    in_stream: List[GraphEstimates] = field(default_factory=list)
    post_stream: List[GraphEstimates] = field(default_factory=list)

    @property
    def in_stream_triangles(self) -> List[float]:
        return [e.triangles.value for e in self.in_stream]

    @property
    def post_stream_triangles(self) -> List[float]:
        return [e.triangles.value for e in self.post_stream]


def track_gps(
    graph: AdjacencyGraph,
    capacity: int,
    num_checkpoints: int = 20,
    stream_seed: int = 0,
    sampler_seed: int = 1,
    weight_fn: Optional[WeightFunction] = None,
    include_post: bool = True,
) -> TrackedSeries:
    """Track GPS in-stream (and optionally post-stream) estimates vs time.

    Exact prefix counts come from the O(min-degree) incremental counter, so
    ground truth is available at every checkpoint without recounting.
    """
    stream = EdgeStream.from_graph(graph, seed=stream_seed)
    estimator = InStreamEstimator(capacity, weight_fn=weight_fn, seed=sampler_seed)
    exact = ExactStreamCounter()
    series = TrackedSeries()
    post = PostStreamEstimator(estimator.sampler)

    def record(t: int) -> None:
        series.checkpoints.append(t)
        series.exact_triangles.append(exact.triangles)
        series.exact_clustering.append(exact.clustering)
        series.in_stream.append(estimator.estimates())
        if include_post:
            series.post_stream.append(post.estimate())

    engine = StreamEngine(estimator, companions=(exact,))
    engine.run(stream, checkpoints=stream.checkpoints(num_checkpoints),
               on_checkpoint=record)
    return series


def track_counter(
    counter,
    graph: AdjacencyGraph,
    num_checkpoints: int = 20,
    stream_seed: int = 0,
) -> tuple:
    """Track any protocol counter; returns (checkpoints, exact, estimates)."""
    stream = EdgeStream.from_graph(graph, seed=stream_seed)
    exact = ExactStreamCounter()
    checkpoints: List[int] = []
    exact_series: List[int] = []
    estimate_series: List[float] = []

    def record(t: int) -> None:
        checkpoints.append(t)
        exact_series.append(exact.triangles)
        estimate_series.append(counter.triangle_estimate)

    engine = StreamEngine(counter, companions=(exact,))
    engine.run(stream, checkpoints=stream.checkpoints(num_checkpoints),
               on_checkpoint=record)
    return checkpoints, exact_series, estimate_series
