"""Experiment orchestration: thin shims over the :mod:`repro.api` facade.

Implements the paper's experimental protocol (Sec. 6):

* streams are seeded random permutations of a graph's edge set;
* GPS post-stream and in-stream estimation run on *the same sample* —
  one :class:`~repro.core.in_stream.InStreamEstimator` pass supplies both
  (post-stream estimates are computed from its reservoir), exactly the
  "same set of edges with the same random seeds" setup;
* baselines are resolved through the :mod:`repro.api.registry` method
  registry with matched memory budgets;
* tracking runs record estimates at fixed checkpoints alongside exact
  prefix counts from the incremental counter.

``run_gps``/``run_baseline``/``track_gps`` delegate to
``repro.api.run(spec)`` — they are kept as the historical call-sites so
existing imports and result dataclasses keep working, while each run
executes through the declarative facade and thus the batched
:class:`repro.engine.StreamEngine` path.  (The one exception is
:func:`track_counter`, which drives an *ad-hoc*, unregistered counter
through the engine directly.)  New code should build
:class:`~repro.api.spec.RunSpec` values — or, for whole grids,
:class:`~repro.api.sweep.SweepSpec` values, which is how the table and
figure harnesses run since the sweep layer landed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.api.execution import run as run_spec
from repro.api.registry import baseline_method_names
from repro.api.spec import RunSpec
from repro.core.estimates import GraphEstimates
from repro.core.weights import WeightFunction
from repro.engine.stream_engine import StreamEngine
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.exact import ExactStreamCounter, GraphStatistics
from repro.stats.metrics import absolute_relative_error
from repro.streams.stream import EdgeStream

#: Provenance marker for specs executed against an in-memory graph.
_IN_MEMORY = "<in-memory>"


@dataclass(frozen=True)
class GpsRunResult:
    """One shared-sample GPS run: in-stream + post-stream estimates."""

    capacity: int
    exact: GraphStatistics
    in_stream: GraphEstimates
    post_stream: GraphEstimates
    update_time_us: float
    dataset: Optional[str] = None

    @property
    def sample_fraction(self) -> float:
        return self.in_stream.sample_size / max(1, self.exact.num_edges)


def run_gps(
    graph: AdjacencyGraph,
    exact: GraphStatistics,
    capacity: int,
    stream_seed: int = 0,
    sampler_seed: int = 1,
    weight_fn: Optional[WeightFunction] = None,
    dataset: Optional[str] = None,
) -> GpsRunResult:
    """One full GPS pass; returns both estimation flavours on one sample."""
    spec = RunSpec(
        source=dataset or _IN_MEMORY,
        method="gps",
        budget=capacity,
        stream_seed=stream_seed,
        sampler_seed=sampler_seed,
    )
    report = run_spec(spec, graph=graph, weight_fn=weight_fn)
    return GpsRunResult(
        capacity=capacity,
        exact=exact,
        in_stream=report.in_stream,
        post_stream=report.post_stream,
        update_time_us=report.update_time_us,
        dataset=dataset,
    )


# ----------------------------------------------------------------------
# Baselines (Table 2)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BaselineRunResult:
    """A baseline's final triangle estimate against the exact count."""

    method: str
    estimate: float
    actual: float
    update_time_us: float
    memory_edges: int

    @property
    def are(self) -> float:
        return absolute_relative_error(self.estimate, self.actual)


def __getattr__(name: str):
    # Live view of the registry (minus the shared-sample ``gps``
    # meta-entry), so methods registered after import are still visible
    # to consumers reading ``runner.BASELINE_METHODS``.
    if name == "BASELINE_METHODS":
        return baseline_method_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def run_baseline(
    method: str,
    graph: AdjacencyGraph,
    exact: GraphStatistics,
    budget: int,
    stream_seed: int = 0,
    seed: int = 1,
) -> BaselineRunResult:
    """Drive one registered method over one stream with a common budget.

    ``budget`` is interpreted per method by its registry entry, the way
    the paper matches them: reservoir capacity (GPS/TRIEST), estimator
    instances (NSAMP/Buriol), expected sample size (MASCOT/gSH:
    probability = budget/|K|), split reservoirs (JSP: half edges, half
    wedges).

    ``update_time_us`` reflects each method's engine-driven pass through
    its ``process_many`` batch path (baselines inherit the default batch
    mixin); it measures implementations, not a call-overhead-matched
    protocol.
    """
    spec = RunSpec(
        source=_IN_MEMORY,
        method=method,
        budget=budget,
        stream_seed=stream_seed,
        sampler_seed=seed,
    )
    report = run_spec(spec, graph=graph)
    return BaselineRunResult(
        method=method,
        estimate=report.triangle_estimate,
        actual=exact.triangles,
        update_time_us=report.update_time_us,
        memory_edges=budget,
    )


# ----------------------------------------------------------------------
# Tracking (Table 3, Figure 3)
# ----------------------------------------------------------------------
@dataclass
class TrackedSeries:
    """Aligned time series from one tracking run."""

    checkpoints: List[int] = field(default_factory=list)
    exact_triangles: List[int] = field(default_factory=list)
    exact_clustering: List[float] = field(default_factory=list)
    in_stream: List[GraphEstimates] = field(default_factory=list)
    post_stream: List[GraphEstimates] = field(default_factory=list)

    @property
    def in_stream_triangles(self) -> List[float]:
        return [e.triangles.value for e in self.in_stream]

    @property
    def post_stream_triangles(self) -> List[float]:
        return [e.triangles.value for e in self.post_stream]


def track_gps(
    graph: AdjacencyGraph,
    capacity: int,
    num_checkpoints: int = 20,
    stream_seed: int = 0,
    sampler_seed: int = 1,
    weight_fn: Optional[WeightFunction] = None,
    include_post: bool = True,
) -> TrackedSeries:
    """Track GPS in-stream (and optionally post-stream) estimates vs time.

    Exact prefix counts come from the O(min-degree) incremental counter, so
    ground truth is available at every checkpoint without recounting.
    """
    spec = RunSpec(
        source=_IN_MEMORY,
        method="gps",
        budget=capacity,
        stream_seed=stream_seed,
        sampler_seed=sampler_seed,
        checkpoints=num_checkpoints,
    )
    report = run_spec(
        spec, graph=graph, weight_fn=weight_fn, include_post=include_post
    )
    series = TrackedSeries()
    for point in report.tracking:
        series.checkpoints.append(point.position)
        series.exact_triangles.append(point.exact_triangles)
        series.exact_clustering.append(point.exact_clustering)
        series.in_stream.append(point.in_stream)
        if include_post:
            series.post_stream.append(point.post_stream)
    return series


def track_counter(
    counter,
    graph: AdjacencyGraph,
    num_checkpoints: int = 20,
    stream_seed: int = 0,
) -> tuple:
    """Track an already-instantiated protocol counter over a stream.

    Returns ``(checkpoints, exact, estimates)``.  For *registered*
    methods, prefer a tracking :class:`~repro.api.spec.RunSpec`
    (``checkpoints > 0``) — this helper remains for ad-hoc counters that
    bypass the registry.
    """
    stream = EdgeStream.from_graph(graph, seed=stream_seed)
    exact = ExactStreamCounter()
    checkpoints: List[int] = []
    exact_series: List[int] = []
    estimate_series: List[float] = []

    def record(t: int) -> None:
        checkpoints.append(t)
        exact_series.append(exact.triangles)
        estimate_series.append(counter.triangle_estimate)

    engine = StreamEngine(counter, companions=(exact,))
    engine.run(stream, checkpoints=stream.checkpoints(num_checkpoints),
               on_checkpoint=record)
    return checkpoints, exact_series, estimate_series
