"""ASCII reporting: fixed-width tables and human-readable numbers.

The harness prints paper-style tables to stdout and writes them next to
the benchmark logs; no plotting dependency is required (figures are
rendered as aligned numeric series, which is what the assertions and
EXPERIMENTS.md consume anyway).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

Cell = Union[str, float, int, None]


def human_count(value: Optional[float]) -> str:
    """Format a count the way the paper's tables do: 4.9B, 667.1K, 83M.

    >>> human_count(4.9e9)
    '4.9B'
    >>> human_count(667100)
    '667.1K'
    """
    if value is None:
        return "-"
    magnitude = abs(value)
    for threshold, suffix in ((1e12, "T"), (1e9, "B"), (1e6, "M"), (1e3, "K")):
        if magnitude >= threshold:
            scaled = value / threshold
            text = f"{scaled:.1f}".rstrip("0").rstrip(".")
            return f"{text}{suffix}"
    if magnitude >= 100 or value == int(value):
        return f"{value:.0f}"
    return f"{value:.3g}"


def format_fraction(value: Optional[float], digits: int = 4) -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: Optional[str] = None,
    align_left: Sequence[int] = (0,),
) -> str:
    """Render a fixed-width table; column 0 left-aligned by default."""
    rendered: List[List[str]] = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    left = set(align_left)

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for idx, cell in enumerate(cells):
            if idx in left:
                parts.append(cell.ljust(widths[idx]))
            else:
                parts.append(cell.rjust(widths[idx]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


def save_report(text: str, path: Union[str, Path]) -> Path:
    """Write a report next to the benchmark logs; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text + "\n", encoding="utf-8")
    return path


def _render(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)
