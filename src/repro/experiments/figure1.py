"""Figure 1 — x̂/x for triangles and wedges across datasets (in-stream).

Paper: scatter of (triangle ratio, wedge ratio) per graph at 100K sampled
edges, all points within ±0.6% of (1, 1).  We print the coordinate list
(the information content of the scatter) and summary statistics; points
near (1, 1) with tight spread is the reproduction target.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.api.sweep import SweepSpec, run_sweep
from repro.experiments.datasets import FIGURE1_DATASETS
from repro.experiments.reporting import format_table

DEFAULT_CAPACITY = 8000


@dataclass(frozen=True)
class Figure1Point:
    dataset: str
    triangle_ratio: float
    wedge_ratio: float
    fraction: float

    @property
    def max_deviation(self) -> float:
        return max(abs(self.triangle_ratio - 1.0), abs(self.wedge_ratio - 1.0))


def build_figure1(
    datasets: Sequence[str] = FIGURE1_DATASETS,
    capacity: int = DEFAULT_CAPACITY,
    stream_seed: int = 0,
    sampler_seed: int = 1,
) -> List[Figure1Point]:
    """One GPS cell per dataset; ``budget_policy="clip"`` caps the budget
    at each graph's edge count the way the hand-rolled loop used to."""
    sweep = run_sweep(
        SweepSpec(
            sources=tuple(datasets),
            methods=("gps",),
            budgets=(capacity,),
            base_stream_seed=stream_seed,
            base_sampler_seed=sampler_seed,
            budget_policy="clip",
            workers=0,
        )
    )
    points: List[Figure1Point] = []
    for cell in sweep.cells:
        exact = cell.ground_truth
        report = cell.reports[0]
        points.append(
            Figure1Point(
                dataset=cell.key.source,
                triangle_ratio=report.in_stream.triangles.value / exact.triangles,
                wedge_ratio=report.in_stream.wedges.value / exact.wedges,
                fraction=report.sample_size / max(1, exact.num_edges),
            )
        )
    return points


def format_figure1(points: Sequence[Figure1Point]) -> str:
    body = [
        [
            p.dataset,
            f"{p.fraction:.4f}",
            f"{p.triangle_ratio:.4f}",
            f"{p.wedge_ratio:.4f}",
            f"{p.max_deviation:.4f}",
        ]
        for p in points
    ]
    worst = max(p.max_deviation for p in points) if points else 0.0
    table = format_table(
        headers=["graph", "|K̂|/|K|", "tri x̂/x", "wedge x̂/x", "max dev"],
        rows=body,
        title="Figure 1 — x̂/x for triangles and wedges (GPS in-stream)",
    )
    return f"{table}\n\nworst deviation from 1.0 across datasets: {worst:.4f}"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--capacity", type=int, default=DEFAULT_CAPACITY)
    parser.add_argument("--datasets", nargs="*", default=FIGURE1_DATASETS)
    args = parser.parse_args(argv)
    points = build_figure1(datasets=args.datasets, capacity=args.capacity)
    print(format_figure1(points))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
