"""Dataset registry: synthetic stand-ins for the paper's evaluation graphs.

The paper evaluates on 50 real graphs from networkrepository.com (up to
265M edges).  Offline, we substitute seeded synthetic graphs whose *family*
matches each graph's domain (DESIGN.md Sec. 5): heavy-tailed + clustered
for social/collaboration, heavy-tailed for web/tech, dense blocks for the
Facebook school graphs, preferential attachment for citations, and a grid
for the road network.  Each spec carries the paper-reported statistics so
harness output and EXPERIMENTS.md can show paper-vs-ours side by side.

Graphs and their exact statistics are cached per process: the registry is
deterministic (fixed seeds), so every experiment and benchmark sees
identical graphs.

To run the experiments on the *real* datasets instead, download them from
networkrepository.com and register them here with
:func:`register_edge_list_dataset`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.exact import GraphStatistics, compute_statistics
from repro.graph.generators import (
    barabasi_albert,
    chung_lu,
    powerlaw_cluster,
    road_grid,
    stochastic_block_model,
    watts_strogatz,
)
from repro.graph.io import read_edge_list


@dataclass(frozen=True)
class PaperReference:
    """Numbers the paper reports for the corresponding real graph.

    ``are_*`` are the triangle-count absolute relative errors from Table 1
    (m = 200K edges).  ``fraction`` is the paper's |K̂|/|K| there.  Missing
    values (graphs outside Table 1) are None.
    """

    edges: float
    fraction: Optional[float] = None
    triangles: Optional[float] = None
    wedges: Optional[float] = None
    clustering: Optional[float] = None
    are_in_stream: Optional[float] = None
    are_post: Optional[float] = None


@dataclass(frozen=True)
class DatasetSpec:
    """A named stand-in graph: generator + provenance documentation."""

    name: str
    domain: str
    description: str
    factory: Callable[[], AdjacencyGraph]
    paper: Optional[PaperReference] = None


_B = 1e9
_M = 1e6
_K = 1e3

DATASETS: Dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    if spec.name in DATASETS:
        raise ValueError(f"duplicate dataset name {spec.name!r}")
    DATASETS[spec.name] = spec


_register(DatasetSpec(
    name="ca-hollywood-2009",
    domain="collaboration",
    description=(
        "Co-starring network stand-in: Holme-Kim powerlaw-cluster graph "
        "(heavy tail, very high clustering)."
    ),
    factory=lambda: powerlaw_cluster(5000, 10, 0.8, seed=101),
    paper=PaperReference(
        edges=56.3e6, fraction=0.0036, triangles=4.9 * _B, wedges=47.6 * _B,
        clustering=0.31, are_in_stream=0.0009, are_post=0.0036,
    ),
))

_register(DatasetSpec(
    name="com-amazon",
    domain="co-purchase",
    description=(
        "Product co-purchase stand-in: small-world lattice with rewiring "
        "(bounded degree, high local clustering)."
    ),
    factory=lambda: watts_strogatz(9000, 8, 0.15, seed=102),
    paper=PaperReference(
        edges=925.8e3, fraction=0.216, triangles=667.1e3, wedges=9.7 * _M,
        clustering=0.205, are_in_stream=0.0001, are_post=0.0004,
    ),
))

_register(DatasetSpec(
    name="higgs-social-network",
    domain="social",
    description=(
        "Twitter-interaction stand-in: heavy-tailed Chung-Lu graph with "
        "low clustering but hub-driven triangle mass (the real graph has "
        "6.6 triangles per edge at clustering 0.009)."
    ),
    factory=lambda: chung_lu(12000, 45000, exponent=2.15, seed=103),
    paper=PaperReference(
        edges=12.5e6, fraction=0.016, triangles=83 * _M, wedges=28.7 * _B,
        clustering=0.009, are_in_stream=0.0043, are_post=0.0031,
    ),
))

_register(DatasetSpec(
    name="soc-livejournal",
    domain="social",
    description="Blog-friendship stand-in: Chung-Lu power-law graph.",
    factory=lambda: chung_lu(12000, 55000, exponent=2.4, seed=104),
    paper=PaperReference(
        edges=27.9e6, fraction=0.0072, triangles=83.5 * _M, wedges=1.7 * _B,
        clustering=0.139, are_in_stream=0.0043, are_post=0.0244,
    ),
))

_register(DatasetSpec(
    name="soc-orkut",
    domain="social",
    description="Orkut friendship stand-in: dense Chung-Lu power-law graph.",
    factory=lambda: chung_lu(11000, 65000, exponent=2.5, seed=105),
    paper=PaperReference(
        edges=117.1e6, fraction=0.0017, triangles=627.5 * _M,
        wedges=45.6 * _B, clustering=0.041,
        are_in_stream=0.0028, are_post=0.0203,
    ),
))

_register(DatasetSpec(
    name="soc-twitter-2010",
    domain="social",
    description=(
        "Twitter follower stand-in: large Chung-Lu graph with a very "
        "heavy tail (the paper's headline 265M-edge graph)."
    ),
    factory=lambda: chung_lu(15000, 90000, exponent=2.2, seed=106),
    paper=PaperReference(
        edges=265e6, fraction=0.0008, triangles=17.2 * _B, wedges=1.8e12,
        clustering=0.028, are_in_stream=0.0009, are_post=0.0027,
    ),
))

_register(DatasetSpec(
    name="soc-youtube-snap",
    domain="social",
    description="YouTube friendship stand-in: sparse Chung-Lu graph.",
    factory=lambda: chung_lu(11000, 35000, exponent=2.3, seed=107),
    paper=PaperReference(
        edges=2.9e6, fraction=0.0669, triangles=3 * _M, wedges=1.4 * _B,
        clustering=0.006, are_in_stream=0.0004, are_post=0.0003,
    ),
))

_register(DatasetSpec(
    name="socfb-Penn94",
    domain="social (school)",
    description=(
        "Facebook school stand-in: stochastic block model (dense "
        "communities, near-uniform degrees)."
    ),
    factory=lambda: stochastic_block_model(
        [300] * 6, p_in=0.08, p_out=0.012, seed=108
    ),
    paper=PaperReference(
        edges=1.3e6, fraction=0.1468, triangles=7.2 * _M, wedges=220.1 * _M,
        clustering=0.098, are_in_stream=0.0063, are_post=0.0044,
    ),
))

_register(DatasetSpec(
    name="socfb-Texas84",
    domain="social (school)",
    description="Facebook school stand-in: stochastic block model.",
    factory=lambda: stochastic_block_model(
        [360] * 5, p_in=0.09, p_out=0.012, seed=109
    ),
    paper=PaperReference(
        edges=1.5e6, fraction=0.1257, triangles=11.1 * _M, wedges=335.7 * _M,
        clustering=0.1, are_in_stream=0.0011, are_post=0.0013,
    ),
))

_register(DatasetSpec(
    name="tech-as-skitter",
    domain="technological",
    description=(
        "Internet-topology stand-in: Chung-Lu graph with a very heavy "
        "tail and low clustering."
    ),
    factory=lambda: chung_lu(13000, 45000, exponent=2.1, seed=110),
    paper=PaperReference(
        edges=11e6, fraction=0.018, triangles=28.7 * _M, wedges=16 * _B,
        clustering=0.005, are_in_stream=0.0081, are_post=0.0141,
    ),
))

_register(DatasetSpec(
    name="web-google",
    domain="web",
    description=(
        "Web-graph stand-in: Holme-Kim powerlaw-cluster graph with "
        "moderate triadic closure."
    ),
    factory=lambda: powerlaw_cluster(10000, 4, 0.35, seed=111),
    paper=PaperReference(
        edges=4.3e6, fraction=0.0463, triangles=13.3 * _M, wedges=727.4 * _M,
        clustering=0.055, are_in_stream=0.0034, are_post=0.0078,
    ),
))

_register(DatasetSpec(
    name="web-BerkStan",
    domain="web",
    description="Web-graph stand-in (Figures 1-2): clustered power law.",
    factory=lambda: powerlaw_cluster(8000, 6, 0.55, seed=112),
    paper=PaperReference(edges=7.6e6),
))

_register(DatasetSpec(
    name="cit-Patents",
    domain="citation",
    description=(
        "Patent-citation stand-in: power-law graph with mild triadic "
        "closure (the real graph has 0.45 triangles per edge)."
    ),
    factory=lambda: powerlaw_cluster(12000, 4, 0.45, seed=113),
    paper=PaperReference(edges=16.5e6),
))

_register(DatasetSpec(
    name="infra-roadNet-CA",
    domain="infrastructure",
    description=(
        "California road-network stand-in: grid with diagonal short-cuts "
        "(bounded degree, low clustering).  The diagonal rate is raised "
        "above the real graph's triangle density so the absolute triangle "
        "count is large enough to sample at our reduced scale; see "
        "EXPERIMENTS.md."
    ),
    factory=lambda: road_grid(145, 145, diagonal_prob=0.25, seed=114),
    paper=PaperReference(edges=2.8e6),
))


# ----------------------------------------------------------------------
# Experiment groupings (paper Sec. 6)
# ----------------------------------------------------------------------
TABLE1_DATASETS: List[str] = [
    "ca-hollywood-2009",
    "com-amazon",
    "higgs-social-network",
    "soc-livejournal",
    "soc-orkut",
    "soc-twitter-2010",
    "soc-youtube-snap",
    "socfb-Penn94",
    "socfb-Texas84",
    "tech-as-skitter",
    "web-google",
]

TABLE2_DATASETS: List[str] = [
    "cit-Patents",
    "higgs-social-network",
    "infra-roadNet-CA",
]

TABLE3_DATASETS: List[str] = [
    "ca-hollywood-2009",
    "tech-as-skitter",
    "infra-roadNet-CA",
    "soc-youtube-snap",
]

FIGURE1_DATASETS: List[str] = [
    "ca-hollywood-2009",
    "com-amazon",
    "higgs-social-network",
    "soc-youtube-snap",
    "socfb-Penn94",
    "socfb-Texas84",
    "tech-as-skitter",
    "web-BerkStan",
    "web-google",
    "soc-livejournal",
    "soc-orkut",
    "soc-twitter-2010",
]

FIGURE2_DATASETS: List[str] = [
    "socfb-Texas84",
    "socfb-Penn94",
    "soc-twitter-2010",
    "soc-youtube-snap",
    "soc-orkut",
    "soc-livejournal",
    "higgs-social-network",
    "cit-Patents",
    "web-BerkStan",
    "com-amazon",
    "tech-as-skitter",
    "web-google",
]

FIGURE3_DATASETS: List[str] = ["soc-orkut", "tech-as-skitter"]


# ----------------------------------------------------------------------
# Access (cached: the registry is deterministic)
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def make_graph(name: str) -> AdjacencyGraph:
    """Build (once per process) the stand-in graph for ``name``."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    return spec.factory()


@lru_cache(maxsize=None)
def get_statistics(name: str) -> GraphStatistics:
    """Exact ground-truth statistics of the stand-in graph (cached)."""
    return compute_statistics(make_graph(name))


def register_edge_list_dataset(
    name: str,
    path: Path,
    domain: str = "user",
    description: str = "user-registered edge list",
    paper: Optional[PaperReference] = None,
) -> DatasetSpec:
    """Register a real downloaded graph so the harness can use it by name."""
    spec = DatasetSpec(
        name=name,
        domain=domain,
        description=description,
        factory=lambda: read_edge_list(path),
        paper=paper,
    )
    _register(spec)
    return spec
