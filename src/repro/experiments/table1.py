"""Table 1 — estimates, relative error and 95% bounds at a fixed capacity.

Paper: 11 graphs, m = 200K edges; columns for triangles, wedges and global
clustering: actual X, then for GPS in-stream and post-stream the estimate
X̂, ARE |X − X̂|/X, and 95% lower/upper confidence bounds.  Both estimation
flavours use the *same sample* (shared seeds).

Stand-ins are smaller, so the default capacity is scaled to keep sampling
fractions in the paper's regime; the shape to verify is: both methods
within a few percent, and in-stream bounds tighter than post-stream
bounds.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.estimates import GraphEstimates, SubgraphEstimate
from repro.experiments.datasets import (
    DATASETS,
    TABLE1_DATASETS,
    get_statistics,
    make_graph,
)
from repro.experiments.reporting import format_table, human_count
from repro.experiments.runner import GpsRunResult, run_gps

DEFAULT_CAPACITY = 8000


@dataclass(frozen=True)
class Table1Row:
    """One (dataset, statistic) row of Table 1."""

    dataset: str
    statistic: str  # "triangles" | "wedges" | "clustering"
    edges: int
    fraction: float
    actual: float
    in_stream: SubgraphEstimate
    post_stream: SubgraphEstimate
    paper_are_in_stream: Optional[float] = None
    paper_are_post: Optional[float] = None

    @property
    def are_in_stream(self) -> float:
        return self.in_stream.relative_error(self.actual)

    @property
    def are_post(self) -> float:
        return self.post_stream.relative_error(self.actual)


def rows_from_runs(results: Sequence[GpsRunResult], dataset: str) -> List[Table1Row]:
    """Collapse repeated GPS runs into the three statistic rows.

    Estimates and variance estimates are averaged over runs, matching the
    paper's ARE metric ``|E[X̂] − X| / X`` (Sec. 6, step 3); confidence
    bounds then reflect the mean single-sample variance.
    """
    if not results:
        raise ValueError("need at least one run")
    spec = DATASETS[dataset]
    exact = results[0].exact
    actuals = {
        "triangles": float(exact.triangles),
        "wedges": float(exact.wedges),
        "clustering": exact.clustering,
    }
    paper_ares = {
        "triangles": (
            (spec.paper.are_in_stream, spec.paper.are_post) if spec.paper else (None, None)
        ),
        "wedges": (None, None),
        "clustering": (None, None),
    }

    def mean_estimate(
        pick: str, flavour: str
    ) -> SubgraphEstimate:
        values = [getattr(getattr(r, flavour), pick).value for r in results]
        variances = [getattr(getattr(r, flavour), pick).variance for r in results]
        return SubgraphEstimate(
            value=sum(values) / len(values),
            variance=sum(variances) / len(variances),
        )

    rows = []
    for statistic in ("triangles", "wedges", "clustering"):
        paper_in, paper_post = paper_ares[statistic]
        rows.append(
            Table1Row(
                dataset=dataset,
                statistic=statistic,
                edges=exact.num_edges,
                fraction=results[0].sample_fraction,
                actual=actuals[statistic],
                in_stream=mean_estimate(statistic, "in_stream"),
                post_stream=mean_estimate(statistic, "post_stream"),
                paper_are_in_stream=paper_in,
                paper_are_post=paper_post,
            )
        )
    return rows


def build_table1(
    datasets: Sequence[str] = TABLE1_DATASETS,
    capacity: int = DEFAULT_CAPACITY,
    runs: int = 3,
    stream_seed: int = 0,
    sampler_seed: int = 1,
) -> List[Table1Row]:
    """Run the Table 1 experiment over ``datasets`` at one capacity."""
    rows: List[Table1Row] = []
    for dataset in datasets:
        graph = make_graph(dataset)
        exact = get_statistics(dataset)
        results = [
            run_gps(
                graph,
                exact,
                capacity=min(capacity, exact.num_edges),
                stream_seed=stream_seed + run,
                sampler_seed=sampler_seed + run,
                dataset=dataset,
            )
            for run in range(runs)
        ]
        rows.extend(rows_from_runs(results, dataset))
    return rows


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render rows in the paper's Table 1 layout (grouped by statistic)."""
    sections = []
    for statistic in ("triangles", "wedges", "clustering"):
        section_rows = [r for r in rows if r.statistic == statistic]
        if not section_rows:
            continue
        body = []
        for r in section_rows:
            in_lb, in_ub = r.in_stream.confidence_bounds()
            post_lb, post_ub = r.post_stream.confidence_bounds()
            body.append(
                [
                    r.dataset,
                    human_count(r.edges),
                    f"{r.fraction:.4f}",
                    human_count(r.actual),
                    human_count(r.in_stream.value),
                    f"{r.are_in_stream:.4f}",
                    human_count(in_lb),
                    human_count(in_ub),
                    human_count(r.post_stream.value),
                    f"{r.are_post:.4f}",
                    human_count(post_lb),
                    human_count(post_ub),
                ]
            )
        sections.append(
            format_table(
                headers=[
                    "graph",
                    "|K|",
                    "|K̂|/|K|",
                    "X",
                    "X̂ (in)",
                    "ARE (in)",
                    "LB",
                    "UB",
                    "X̂ (post)",
                    "ARE (post)",
                    "LB",
                    "UB",
                ],
                rows=body,
                title=f"Table 1 — {statistic.upper()}",
            )
        )
    return "\n\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--capacity", type=int, default=DEFAULT_CAPACITY)
    parser.add_argument("--runs", type=int, default=3)
    parser.add_argument("--datasets", nargs="*", default=TABLE1_DATASETS)
    parser.add_argument("--stream-seed", type=int, default=0)
    parser.add_argument("--sampler-seed", type=int, default=1)
    args = parser.parse_args(argv)
    rows = build_table1(
        datasets=args.datasets,
        capacity=args.capacity,
        runs=args.runs,
        stream_seed=args.stream_seed,
        sampler_seed=args.sampler_seed,
    )
    print(format_table1(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
