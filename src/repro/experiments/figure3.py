"""Figure 3 — real-time tracking: estimates vs actual over the stream.

Paper: m = 80K on soc-orkut and tech-as-skitter; triangle counts and
global clustering tracked as the stream progresses, with 95% bounds.  The
estimate curve is "indistinguishable from the actual values".

We emit the aligned (t, actual, estimate, LB, UB) series for both
statistics per dataset — the numeric content of the four panels.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.datasets import FIGURE3_DATASETS, make_graph
from repro.experiments.reporting import format_table, human_count
from repro.experiments.runner import TrackedSeries, track_gps

DEFAULT_CAPACITY = 4000
DEFAULT_CHECKPOINTS = 20


@dataclass(frozen=True)
class Figure3Series:
    dataset: str
    capacity: int
    series: TrackedSeries

    def triangle_rows(self) -> List[list]:
        rows = []
        for idx, t in enumerate(self.series.checkpoints):
            estimate = self.series.in_stream[idx].triangles
            lb, ub = estimate.confidence_bounds()
            rows.append(
                [
                    t,
                    human_count(self.series.exact_triangles[idx]),
                    human_count(estimate.value),
                    human_count(lb),
                    human_count(ub),
                ]
            )
        return rows

    def clustering_rows(self) -> List[list]:
        rows = []
        for idx, t in enumerate(self.series.checkpoints):
            estimate = self.series.in_stream[idx].clustering
            lb, ub = estimate.confidence_bounds()
            rows.append(
                [
                    t,
                    f"{self.series.exact_clustering[idx]:.4f}",
                    f"{estimate.value:.4f}",
                    f"{lb:.4f}",
                    f"{ub:.4f}",
                ]
            )
        return rows


def build_figure3(
    datasets: Sequence[str] = FIGURE3_DATASETS,
    capacity: int = DEFAULT_CAPACITY,
    num_checkpoints: int = DEFAULT_CHECKPOINTS,
    stream_seed: int = 0,
    sampler_seed: int = 1,
) -> List[Figure3Series]:
    out: List[Figure3Series] = []
    for dataset in datasets:
        graph = make_graph(dataset)
        tracked = track_gps(
            graph,
            capacity=capacity,
            num_checkpoints=num_checkpoints,
            stream_seed=stream_seed,
            sampler_seed=sampler_seed,
            include_post=False,
        )
        out.append(Figure3Series(dataset=dataset, capacity=capacity, series=tracked))
    return out


def format_figure3(series_list: Sequence[Figure3Series]) -> str:
    sections = []
    for entry in series_list:
        sections.append(
            format_table(
                headers=["t", "actual", "estimate", "LB", "UB"],
                rows=entry.triangle_rows(),
                title=f"Figure 3 — {entry.dataset}: triangles vs time (m={entry.capacity})",
            )
        )
        sections.append(
            format_table(
                headers=["t", "actual", "estimate", "LB", "UB"],
                rows=entry.clustering_rows(),
                title=f"Figure 3 — {entry.dataset}: clustering vs time (m={entry.capacity})",
            )
        )
    return "\n\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--capacity", type=int, default=DEFAULT_CAPACITY)
    parser.add_argument("--checkpoints", type=int, default=DEFAULT_CHECKPOINTS)
    parser.add_argument("--datasets", nargs="*", default=FIGURE3_DATASETS)
    args = parser.parse_args(argv)
    series = build_figure3(
        datasets=args.datasets,
        capacity=args.capacity,
        num_checkpoints=args.checkpoints,
    )
    print(format_figure3(series))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
