"""Experiment harness: regenerate every table and figure of the paper.

* :mod:`repro.experiments.datasets` — registry of synthetic stand-ins for
  the paper's network-repository graphs, with the paper-reported statistics
  attached for side-by-side comparison.
* :mod:`repro.experiments.runner` — single-configuration orchestration
  (shared-seed GPS runs, baseline drivers, time-series tracking).
* :mod:`repro.experiments.table1` … :mod:`repro.experiments.figure3` —
  one builder per paper artefact; each has a CLI
  (``python -m repro.experiments.table1``) and a
  ``build_*``/``format_*`` API used by the benchmark suite.
* :mod:`repro.experiments.reporting` — fixed-width ASCII tables and
  human-readable number formatting.
"""

from repro.experiments.datasets import (
    DATASETS,
    DatasetSpec,
    get_statistics,
    make_graph,
)
from repro.experiments.runner import (
    BaselineRunResult,
    GpsRunResult,
    run_baseline,
    run_gps,
    track_gps,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "get_statistics",
    "make_graph",
    "BaselineRunResult",
    "GpsRunResult",
    "run_baseline",
    "run_gps",
    "track_gps",
]
