"""A durable, file-based cell work-queue over the sweep cache directory.

The queue is nothing but files under the shared cache root — no broker,
no sockets — so any process that can see the directory can join the
fleet, and every transition survives a SIGKILL at any instruction:

* **Tasks** are ``<root>/tasks/<key>.json`` payloads
  (:class:`~repro.distrib.spec.CellTask`), written once by the
  coordinator with ``mkstemp`` + ``rename``.
* **Results** are the existing content-addressed cell entries
  (``<cells>/<key>.json``, :class:`~repro.api.ground_truth.\
ContentAddressedStore`).  A task is *done* exactly when its result
  entry exists — there is no separate completion record to get out of
  sync.
* **Leases** are ``<cells>/<key>.lease`` siblings of the result they
  guard.  A claim is an ``O_EXCL`` create (atomic on every platform we
  care about) carrying the worker id and pid; holding a lease means
  touching its mtime (:meth:`CellQueue.heartbeat`) more often than
  ``lease_timeout``.  A lease whose mtime has gone quiet is **stale**
  and may be reclaimed: the reclaimer first *renames* it to a private
  tombstone — ``rename`` is atomic, so exactly one contender wins —
  and only then re-creates it with ``O_EXCL``.

Double executions are possible by design (a stolen lease, a worker
that died after writing its result but before releasing) and harmless:
results are content-addressed and every cell is a pure function of its
spec, so the second writer publishes byte-identical payload to the same
address.  That at-least-once + idempotence argument is the whole
correctness story — see ``docs/distributed.md``.

All timestamps flow through an *injected* clock (default
:func:`time.time`): staleness compares ``clock() - lease mtime`` where
the mtime itself was set from the same clock via ``os.utime``, so the
lease lifecycle tests drive time explicitly instead of sleeping.
"""

from __future__ import annotations

import itertools
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro.api.ground_truth import ContentAddressedStore
from repro.distrib.spec import CellTask, DistribSpec
from repro.faults.injector import FaultInjector

#: Manifest schema version; bump when the queue layout changes.
_QUEUE_FORMAT = 1

#: Suffix of lease files parked next to their result entries.
LEASE_SUFFIX = ".lease"

#: Injection-site label the queue and workers consult.
DISTRIB_SITE = "distrib"


def _atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    """Publish ``payload`` at ``path`` via ``mkstemp`` + ``rename``."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=f".{path.stem[:16]}-", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(json.dumps(payload, indent=1))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class Claim:
    """A held lease: the ticket a worker executes one task under."""

    task: CellTask
    worker: str
    lease_path: Path
    #: True when this claim reclaimed a stale (or stolen) lease —
    #: executing it is the at-least-once re-execution the counters
    #: surface.
    reclaimed: bool = False

    @property
    def key(self) -> str:
        return self.task.key


class CellQueue:
    """File-based work queue with lease claims over a cells directory.

    Construct via :meth:`create` (coordinator, writes the manifest) or
    :meth:`open` (workers, reads it).  One instance is *not* thread-safe
    for concurrent :meth:`claim` calls sharing mutable counters, but the
    on-disk protocol is safe across any number of processes — the tests
    hammer it from threads and processes alike.
    """

    def __init__(
        self,
        root: Path,
        cells_dir: Path,
        spec: DistribSpec,
        *,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._root = Path(root)
        self._cells_dir = Path(cells_dir)
        self._spec = spec
        self._clock = clock
        self._store = ContentAddressedStore(self._cells_dir)
        self._nonce = itertools.count()
        #: Fresh-lease encounters during claim scans (steal-fault index).
        self._steal_probes = 0
        #: Successful claims / stale reclaims / releases by this instance.
        self.claims = 0
        self.reclaimed = 0
        self.released = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        root: Path,
        cells_dir: Path,
        spec: Optional[DistribSpec] = None,
        *,
        clock: Callable[[], float] = time.time,
    ) -> "CellQueue":
        """Initialise the queue layout under ``root`` and return it.

        Idempotent: re-creating over an existing queue keeps its tasks
        and results (that is what lets a crashed coordinator be rerun
        as a plain resume).
        """
        root = Path(root)
        cells_dir = Path(cells_dir)
        spec = spec or DistribSpec()
        (root / "tasks").mkdir(parents=True, exist_ok=True)
        (root / "workers").mkdir(parents=True, exist_ok=True)
        cells_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(
            root / "manifest.json",
            {
                "version": _QUEUE_FORMAT,
                "cells_dir": str(cells_dir),
                "spec": spec.to_dict(),
            },
        )
        return cls(root, cells_dir, spec, clock=clock)

    @classmethod
    def open(
        cls, root: Path, *, clock: Callable[[], float] = time.time
    ) -> "CellQueue":
        """Attach to a queue created by :meth:`create`."""
        root = Path(root)
        manifest = json.loads((root / "manifest.json").read_text())
        if manifest.get("version") != _QUEUE_FORMAT:
            raise ValueError(
                f"queue at {root} has manifest version "
                f"{manifest.get('version')!r}; this build expects "
                f"{_QUEUE_FORMAT}"
            )
        return cls(
            root,
            Path(manifest["cells_dir"]),
            DistribSpec.from_dict(manifest["spec"]),
            clock=clock,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        return self._root

    @property
    def cells_dir(self) -> Path:
        return self._cells_dir

    @property
    def spec(self) -> DistribSpec:
        return self._spec

    @property
    def store(self) -> ContentAddressedStore:
        """The shared result store (``<cells>/<key>.json`` entries)."""
        return self._store

    def lease_path(self, key: str) -> Path:
        return self._cells_dir / f"{key}{LEASE_SUFFIX}"

    def task_keys(self) -> Tuple[str, ...]:
        """All enqueued task keys, sorted (the shared scan order)."""
        tasks = self._root / "tasks"
        if not tasks.is_dir():
            return ()
        return tuple(
            sorted(
                path.stem
                for path in tasks.iterdir()
                if path.suffix == ".json" and not path.name.startswith(".")
            )
        )

    def load_task(self, key: str) -> CellTask:
        return CellTask.from_json(
            (self._root / "tasks" / f"{key}.json").read_text()
        )

    def done(self, key: str) -> bool:
        """Whether ``key``'s result entry is durable.

        Existence, not validity: a corrupt entry is the resume scan's
        problem (it quarantines and recounts inline), not the fleet's.
        """
        path = self._store.path_for(key)
        return path is not None and path.exists()

    def pending_keys(self) -> Tuple[str, ...]:
        """Tasks with no durable result yet (leased or not), sorted."""
        return tuple(key for key in self.task_keys() if not self.done(key))

    # ------------------------------------------------------------------
    # The lease protocol
    # ------------------------------------------------------------------
    def enqueue(self, task: CellTask) -> None:
        """Durably add ``task``; re-enqueueing the same key is a no-op."""
        path = self._root / "tasks" / f"{task.key}.json"
        if path.exists():
            return
        _atomic_write_json(path, task.to_dict())

    def claim(
        self,
        worker: str,
        *,
        injector: Optional[FaultInjector] = None,
        site: str = DISTRIB_SITE,
    ) -> Optional[Claim]:
        """Claim the first available pending task, or ``None``.

        Scans tasks in sorted order, skipping done tasks and tasks
        under a fresh lease; a stale lease is reclaimed (single winner
        via the tombstone rename).  An armed ``steal-lease`` fault
        forces the reclaim path on a *fresh* lease — the deliberate
        double-claim chaos case.
        """
        for key in self.task_keys():
            if self.done(key):
                continue
            acquired, reclaimed = self._acquire(
                key, worker, injector=injector, site=site
            )
            if not acquired:
                continue
            self.claims += 1
            if reclaimed:
                self.reclaimed += 1
            return Claim(
                task=self.load_task(key),
                worker=worker,
                lease_path=self.lease_path(key),
                reclaimed=reclaimed,
            )
        return None

    def _acquire(
        self,
        key: str,
        worker: str,
        *,
        injector: Optional[FaultInjector],
        site: str,
    ) -> Tuple[bool, bool]:
        """Try to take ``key``'s lease; returns ``(acquired, reclaimed)``."""
        lease = self.lease_path(key)
        if self._create_exclusive(lease, worker):
            return True, False
        # Lease exists: fresh means hands off (unless a steal-lease
        # fault forces the reclaim path), stale means tombstone it.
        stale = self._stale(lease)
        if stale is None:
            # Vanished between O_EXCL and stat (released or reclaimed
            # by someone else); one immediate retry, then give up and
            # let the next scan see the fresh state.
            if self._create_exclusive(lease, worker):
                return True, False
            return False, False
        if not stale:
            probe = self._steal_probes
            self._steal_probes += 1
            if injector is None or not injector.steal_lease(site, probe):
                return False, False
        tombstone = lease.with_name(
            f".{lease.name}.reclaim-{worker}-{os.getpid()}"
            f"-{next(self._nonce)}"
        )
        try:
            os.rename(lease, tombstone)
        except FileNotFoundError:
            return False, False  # another contender won the rename
        except OSError:
            return False, False
        try:
            os.unlink(tombstone)
        except OSError:
            pass
        if self._create_exclusive(lease, worker):
            return True, True
        return False, False

    def _create_exclusive(self, lease: Path, worker: str) -> bool:
        """Atomically create ``lease``; True only for the single winner."""
        lease.parent.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(lease, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        now = self._clock()
        with os.fdopen(fd, "w") as handle:
            handle.write(
                json.dumps(
                    {"worker": worker, "pid": os.getpid(), "claimed_at": now}
                )
            )
        try:
            os.utime(lease, (now, now))
        except OSError:
            pass
        return True

    def _stale(self, lease: Path) -> Optional[bool]:
        """Staleness of ``lease``; ``None`` when it no longer exists."""
        try:
            mtime = os.stat(lease).st_mtime
        except FileNotFoundError:
            return None
        except OSError:
            return None
        return (self._clock() - mtime) > self._spec.lease_timeout

    def heartbeat(self, claim: Claim) -> bool:
        """Touch the lease mtime; False when the lease was lost.

        Ownership is re-checked first: after a reclaim the lease file
        at the same path belongs to the *new* holder, and a zombie
        refreshing it would keep someone else's lease alive forever.
        A lost lease means a reclaimer took the cell — the worker keeps
        executing anyway, because its eventual content-addressed write
        is byte-identical to the thief's.
        """
        try:
            payload = json.loads(claim.lease_path.read_text())
        except FileNotFoundError:
            return False
        except (OSError, json.JSONDecodeError):
            return False  # mid-rewrite by a reclaimer: not ours anymore
        if (
            payload.get("worker") != claim.worker
            or payload.get("pid") != os.getpid()
        ):
            return False
        now = self._clock()
        try:
            os.utime(claim.lease_path, (now, now))
        except FileNotFoundError:
            return False
        except OSError:
            return False
        return True

    def release(self, claim: Claim) -> None:
        """Drop the lease after the result write (missing is fine)."""
        try:
            os.unlink(claim.lease_path)
        except FileNotFoundError:
            pass
        except OSError:
            pass
        self.released += 1

    def reap_stale(self) -> int:
        """Remove every stale lease (coordinator cleanup); returns count.

        Uses the same single-winner tombstone rename as :meth:`claim`,
        so a reap racing a reclaim never double-counts one lease.
        """
        reaped = 0
        if not self._cells_dir.is_dir():
            return 0
        for path in sorted(self._cells_dir.iterdir()):
            if path.suffix != LEASE_SUFFIX or path.name.startswith("."):
                continue
            if not self._stale(path):
                continue
            tombstone = path.with_name(
                f".{path.name}.reap-{os.getpid()}-{next(self._nonce)}"
            )
            try:
                os.rename(path, tombstone)
            except OSError:
                continue
            try:
                os.unlink(tombstone)
            except OSError:
                pass
            reaped += 1
        return reaped

    # ------------------------------------------------------------------
    # Worker summaries (crash-durable progress accounting)
    # ------------------------------------------------------------------
    def write_worker_summary(self, payload: Dict[str, Any]) -> None:
        """Atomically publish one worker's running totals.

        Written after *every* completed cell, so a worker killed later
        still has its reclaim/re-execution counts on disk for the
        coordinator to aggregate.
        """
        worker = str(payload["worker"])
        _atomic_write_json(
            self._root / "workers" / f"{worker}.json", payload
        )

    def worker_summaries(self) -> Tuple[Dict[str, Any], ...]:
        """Every published worker summary, sorted by worker id."""
        workers = self._root / "workers"
        if not workers.is_dir():
            return ()
        out = []
        for path in sorted(workers.iterdir()):
            if path.suffix != ".json" or path.name.startswith("."):
                continue
            try:
                out.append(json.loads(path.read_text()))
            except (OSError, json.JSONDecodeError):
                continue
        return tuple(out)


__all__ = ["Claim", "CellQueue", "DISTRIB_SITE", "LEASE_SUFFIX"]
