"""The ``sweep --distributed N`` coordinator: enqueue, spawn, assemble.

:func:`run_distributed_sweep` drives one sweep grid through a worker
fleet instead of an in-process pool:

1. expand the grid exactly like :func:`~repro.api.sweep.run_sweep`
   (same ground-truth cache, same budget policy, same content
   addresses), and enqueue one :class:`~repro.distrib.spec.CellTask`
   per replication;
2. spawn ``N`` local ``python -m repro sweep-worker`` processes over
   the queue and monitor them;
3. if the whole fleet dies with tasks still pending, reap the stale
   leases and drain the remainder inline — completion does not depend
   on any worker surviving;
4. assemble the final :class:`~repro.api.sweep.SweepReport` by running
   the inline sweep in ``resume`` mode over the now-populated cell
   store.  Every replication is served from cache, and because cell
   reports are pure functions of their seeds and JSON float repr
   round-trips exactly, the assembled report's cells are bit-identical
   to a fault-free ``workers=0`` inline run.

The report's ``distributed_workers`` / ``leases_reclaimed`` /
``cells_reexecuted`` counters aggregate the workers' crash-durable
summaries, so a chaos run can *prove* a SIGKILLed worker's cell was
reclaimed and re-executed by a survivor.

``fault_plans`` maps worker index to a :class:`~repro.faults.FaultPlan`
shipped to that worker via a plan file (chaos suite only): each worker
owns its burn-down state, so fleet-level fault schedules stay
deterministic per worker regardless of claim interleaving.
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from repro.api.ground_truth import GroundTruthCache
from repro.api.sweep import (
    SweepReport,
    SweepSpec,
    cell_report_key,
    expand_for_execution,
    run_sweep,
)
from repro.distrib.queue import CellQueue
from repro.distrib.spec import CellTask, DistribSpec
from repro.distrib.worker import run_worker
from repro.faults.spec import FaultPlan

#: How long the coordinator waits for a worker that should be exiting
#: (the queue it saw drain is empty) before terminating it.
_JOIN_TIMEOUT = 30.0


def _worker_env() -> Dict[str, str]:
    """Subprocess env able to ``import repro`` even without an install."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parent.parent.parent)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src_root + os.pathsep + existing if existing else src_root
    )
    return env


def enqueue_grid(
    spec: SweepSpec, queue: CellQueue, gt_cache: GroundTruthCache
) -> int:
    """Enqueue every replication of ``spec``; returns the task count."""
    cells, _, _ = expand_for_execution(spec, gt_cache)
    count = 0
    for cell in cells:
        for run_spec in cell.specs:
            key = cell_report_key(
                run_spec, spec.include_post, gt_cache.key_for(run_spec.source)
            )
            queue.enqueue(
                CellTask(
                    key=key, spec=run_spec, include_post=spec.include_post
                )
            )
            count += 1
    return count


def run_distributed_sweep(
    spec: SweepSpec,
    *,
    cache_dir: os.PathLike,
    distrib: Optional[DistribSpec] = None,
    resume: bool = False,
    ground_truth: Optional[GroundTruthCache] = None,
    fault_plans: Optional[Mapping[int, FaultPlan]] = None,
) -> SweepReport:
    """Execute ``spec`` through a local worker fleet over ``cache_dir``.

    Parameters
    ----------
    spec:
        The grid description (its ``workers`` field is ignored — cell
        replications run one-per-claim inside the fleet).
    cache_dir:
        Root of the shared cache; required, because the queue *is* the
        cache directory (tasks under ``queue/``, leases and results
        under ``cells/``).
    distrib:
        Fleet and lease-protocol parameters (defaults:
        :class:`~repro.distrib.spec.DistribSpec`).
    resume:
        Cosmetic here: distributed execution always has resume
        semantics over the cells store (a task with a durable result is
        never claimed), exactly the "``--resume`` as free fault
        tolerance" design.  The flag is accepted for CLI symmetry.
    ground_truth:
        Inject a pre-warmed cache (tests); defaults to one rooted at
        ``cache_dir``.
    fault_plans:
        Optional per-worker-index :class:`~repro.faults.FaultPlan`,
        written to a plan file and passed to that worker's
        ``sweep-worker --faults`` (chaos suite only).
    """
    if cache_dir is None:
        raise ValueError("distributed sweeps require a cache directory")
    del resume  # always-on over the cells store; see the docstring
    distrib = distrib or DistribSpec()
    root = Path(cache_dir)
    gt_cache = ground_truth or GroundTruthCache(root)
    queue = CellQueue.create(root / "queue", root / "cells", distrib)
    enqueue_grid(spec, queue, gt_cache)

    plans = dict(fault_plans or {})
    env = _worker_env()
    procs: List[subprocess.Popen] = []
    logs = []
    try:
        for index in range(distrib.workers):
            worker_id = f"w{index}"
            cmd = [
                sys.executable, "-m", "repro", "sweep-worker",
                "--queue", str(queue.root), "--worker-id", worker_id,
            ]
            if index in plans:
                plan_path = queue.root / f"faults-{worker_id}.json"
                plan_path.write_text(plans[index].to_json())
                cmd += ["--faults", str(plan_path)]
            log = open(queue.root / f"{worker_id}.log", "w")
            logs.append(log)
            procs.append(
                subprocess.Popen(
                    cmd, env=env, stdout=log, stderr=subprocess.STDOUT
                )
            )

        # Monitor: survivors reclaim stale leases themselves at claim
        # time (that is the acceptance path); the coordinator only
        # steps in when the *whole* fleet is gone with work pending.
        # The drain worker publishes a "coordinator" summary, so its
        # reclaims/re-executions aggregate like any other worker's.
        while queue.pending_keys():
            if all(proc.poll() is not None for proc in procs):
                queue.reap_stale()
                run_worker(queue.root, "coordinator")
                break
            time.sleep(distrib.poll_interval)

        # No wall-clock reads (nondet-ban): bounded blocking waits only.
        for proc in procs:
            try:
                proc.wait(timeout=_JOIN_TIMEOUT)
            except subprocess.TimeoutExpired:
                proc.terminate()
                proc.wait()
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        for log in logs:
            log.close()

    # Orphaned leases (a worker that died between result write and
    # release, or was terminated above) are stale garbage by now.
    orphans_reaped = queue.reap_stale()

    summaries = queue.worker_summaries()
    leases_reclaimed = (
        sum(int(s.get("reclaimed", 0)) for s in summaries) + orphans_reaped
    )
    cells_reexecuted = sum(
        int(s.get("reexecuted", 0)) for s in summaries
    )

    report = run_sweep(
        spec, cache_dir=cache_dir, resume=True, ground_truth=gt_cache
    )
    return dataclasses.replace(
        report,
        distributed_workers=distrib.workers,
        leases_reclaimed=leases_reclaimed,
        cells_reexecuted=cells_reexecuted,
    )


__all__ = ["enqueue_grid", "run_distributed_sweep"]
