"""Durable distributed sweep fabric: lease-based cell work-queue.

ROADMAP item 2b: shard the content-addressed sweep cells across
independent worker processes over one shared cache directory, with
``--resume`` semantics as free fault tolerance.  The protocol is
files-only (``O_EXCL`` lease claims, mtime heartbeats, tombstone-rename
reclamation, ``mkstemp``+``rename`` publication), execution is
at-least-once, and results are idempotent because every cell is a pure
function of its content-addressed spec.  See ``docs/distributed.md``.
"""

from repro.distrib.coordinator import enqueue_grid, run_distributed_sweep
from repro.distrib.queue import DISTRIB_SITE, CellQueue, Claim
from repro.distrib.spec import CellTask, DistribSpec
from repro.distrib.worker import Heartbeat, WorkerStats, run_worker

__all__ = [
    "CellQueue",
    "CellTask",
    "Claim",
    "DISTRIB_SITE",
    "DistribSpec",
    "Heartbeat",
    "WorkerStats",
    "enqueue_grid",
    "run_distributed_sweep",
    "run_worker",
]
