"""Frozen value objects of the distributed sweep fabric.

:class:`DistribSpec` freezes the fleet and lease-protocol parameters —
worker count, ``lease_timeout``, heartbeat and poll cadence — into a
hashable spec with the same lossless JSON round trip as
:class:`~repro.api.spec.RunSpec`.  :class:`CellTask` is one unit of
queue work: a content-addressed report key plus the
:class:`~repro.api.spec.RunSpec` replication it names, shipped to
workers as JSON.  Both are *identities*, not runtime state; the live
lease/claim machinery lives in :mod:`repro.distrib.queue`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping

from repro.api.spec import RunSpec


@dataclass(frozen=True)
class DistribSpec:
    """Fleet and lease-protocol parameters of one distributed sweep.

    Attributes
    ----------
    workers:
        Local worker processes the coordinator spawns.
    lease_timeout:
        Seconds without a heartbeat touch after which a lease is
        considered stale and may be reclaimed by a survivor.  Must
        comfortably exceed ``heartbeat_interval`` (the validator
        enforces a factor of two) or live workers get robbed.
    heartbeat_interval:
        Seconds between mtime touches on a held lease.
    poll_interval:
        Seconds an idle worker (and the coordinator monitor) sleeps
        between queue scans.

    Example
    -------
    >>> spec = DistribSpec(workers=2, lease_timeout=10.0)
    >>> DistribSpec.from_json(spec.to_json()) == spec
    True
    """

    workers: int = 2
    lease_timeout: float = 30.0
    heartbeat_interval: float = 1.0
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if not isinstance(self.workers, int) or self.workers < 1:
            raise ValueError("workers must be an integer >= 1")
        if self.lease_timeout <= 0.0:
            raise ValueError("lease_timeout must be positive")
        if self.heartbeat_interval <= 0.0:
            raise ValueError("heartbeat_interval must be positive")
        if self.lease_timeout < 2.0 * self.heartbeat_interval:
            raise ValueError(
                "lease_timeout must be at least twice heartbeat_interval "
                "(a single delayed touch must not look like a death)"
            )
        if self.poll_interval <= 0.0:
            raise ValueError("poll_interval must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DistribSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown DistribSpec fields: {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**dict(data))

    @classmethod
    def from_json(cls, text: str) -> "DistribSpec":
        return cls.from_dict(json.loads(text))

    def replace(self, **changes: Any) -> "DistribSpec":
        """A copy with ``changes`` applied (validation re-runs)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class CellTask:
    """One queue unit: a content-addressed replication of a sweep cell.

    ``key`` is the :func:`~repro.api.sweep.cell_report_key` content
    address of the replication's report — it names the task file, the
    lease file *and* the result entry, which is what makes execution
    idempotent: however many workers run the task, they all write the
    same payload to the same address.

    Example
    -------
    >>> from repro.api.spec import RunSpec
    >>> task = CellTask(key="0" * 64,
    ...                 spec=RunSpec(source="g.txt", budget=10))
    >>> CellTask.from_dict(task.to_dict()) == task
    True
    """

    key: str
    spec: RunSpec
    include_post: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.key, str) or not self.key:
            raise ValueError("key must be a non-empty content address")
        if not isinstance(self.spec, RunSpec):
            raise ValueError(f"spec must be a RunSpec, got {self.spec!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "spec": self.spec.to_dict(),
            "include_post": self.include_post,
        }

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellTask":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown CellTask fields: {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        payload = dict(data)
        spec = payload.pop("spec")
        if not isinstance(spec, RunSpec):
            spec = RunSpec.from_dict(spec)
        return cls(spec=spec, **payload)

    @classmethod
    def from_json(cls, text: str) -> "CellTask":
        return cls.from_dict(json.loads(text))

    def replace(self, **changes: Any) -> "CellTask":
        """A copy with ``changes`` applied (validation re-runs)."""
        return dataclasses.replace(self, **changes)


__all__ = ["CellTask", "DistribSpec"]
