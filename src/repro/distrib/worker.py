"""The sweep-worker loop: claim, execute, publish, release.

``python -m repro sweep-worker --queue DIR`` runs :func:`run_worker`:
claim a cell from the :class:`~repro.distrib.queue.CellQueue`, execute
it through the exact :func:`repro.api.execution.run` path the inline
sweep uses, write the report to the shared content-addressed store,
release the lease, repeat until no task lacks a result.  A background
:class:`Heartbeat` thread touches the held lease's mtime so a slow cell
is not mistaken for a dead worker.

After every completed cell the worker atomically publishes its running
totals (claims, reclaims, re-executions) to ``<queue>/workers/<id>.json``
— the coordinator aggregates those into the
:class:`~repro.api.sweep.SweepReport` counters, and because the file is
rewritten per cell the numbers survive the worker being SIGKILLed later.

Fault hooks (site ``"distrib"``, chaos suite only): a
``crash-worker-midcell`` fault SIGKILLs the process *after* the claim
and *before* the result write — the worst possible moment, leaving a
live lease for survivors to reclaim; ``stall-heartbeat`` skips mtime
touches so a held lease goes stale under its owner.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.api.execution import run
from repro.distrib.queue import DISTRIB_SITE, CellQueue, Claim
from repro.faults.injector import FaultInjector, coerce_injector


@dataclass
class WorkerStats:
    """Running totals of one worker's queue session (JSON-safe)."""

    worker: str
    pid: int = 0
    claims: int = 0
    executed: int = 0
    reclaimed: int = 0
    reexecuted: int = 0
    heartbeats: int = 0
    heartbeats_skipped: int = 0
    #: Error channel: message per failed cell (the failure re-raises
    #: after being recorded here and in the on-disk summary).
    errors: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class Heartbeat:
    """Periodic mtime touches on a held lease, one thread per claim.

    :meth:`beat` is a single touch — the unit the lease-lifecycle tests
    drive directly with a fake clock; :meth:`start` runs it on a daemon
    thread every ``heartbeat_interval`` seconds for real workers.  An
    armed ``stall-heartbeat`` fault makes :meth:`beat` skip ``times``
    touches, letting the lease cross ``lease_timeout`` while its owner
    is alive.
    """

    def __init__(
        self,
        queue: CellQueue,
        claim: Claim,
        *,
        injector: Optional[FaultInjector] = None,
        site: str = DISTRIB_SITE,
    ) -> None:
        self._queue = queue
        self._claim = claim
        self._injector = injector
        self._site = site
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._index = 0
        self._skip = 0
        #: Touches applied / skipped / attempted on a lost lease.
        self.touched = 0
        self.skipped = 0
        self.lost = 0

    def beat(self) -> bool:
        """One heartbeat tick; True when the lease mtime was touched."""
        index = self._index
        self._index += 1
        if self._skip == 0 and self._injector is not None:
            self._skip = self._injector.heartbeat_stalls(self._site, index)
        if self._skip > 0:
            self._skip -= 1
            self.skipped += 1
            return False
        if self._queue.heartbeat(self._claim):
            self.touched += 1
            return True
        self.lost += 1
        return False

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{self._claim.key[:8]}",
            daemon=True,
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._queue.spec.heartbeat_interval):
            self.beat()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None


def _midcell_crash() -> None:
    """Die as hard as the platform allows (no cleanup, no release)."""
    if hasattr(signal, "SIGKILL"):
        os.kill(os.getpid(), signal.SIGKILL)
    os._exit(1)  # pragma: no cover - non-POSIX fallback


def run_worker(
    queue_root: os.PathLike,
    worker_id: str,
    *,
    faults: Any = None,
    max_cells: Optional[int] = None,
    queue: Optional[CellQueue] = None,
) -> WorkerStats:
    """Drain the queue at ``queue_root``; returns this worker's totals.

    The loop exits when every enqueued task has a durable result (not
    merely when nothing is claimable: tasks under a fresh lease of a
    worker that later dies must be waited on, reclaimed and executed).
    ``max_cells`` bounds executions for tests; ``queue`` injects an
    already-open :class:`CellQueue` (e.g. one with a fake clock).

    A failed cell records its error in the worker summary, releases the
    lease and re-raises — fail loud, never mark done.  The released
    task is then claimable by a peer; a deterministic failure will fail
    the whole fleet and surface through the coordinator's final drain.
    """
    if queue is None:
        queue = CellQueue.open(Path(queue_root))
    injector = coerce_injector(faults)
    stats = WorkerStats(worker=worker_id, pid=os.getpid())
    while True:
        if max_cells is not None and stats.executed >= max_cells:
            break
        claim = queue.claim(worker_id, injector=injector)
        if claim is None:
            if not queue.pending_keys():
                break
            time.sleep(queue.spec.poll_interval)
            continue
        index = stats.claims
        stats.claims += 1
        if claim.reclaimed:
            stats.reclaimed += 1
        if injector is not None and injector.midcell_fault(
            DISTRIB_SITE, index
        ):
            _midcell_crash()
        heartbeat = Heartbeat(queue, claim, injector=injector)
        heartbeat.start()
        try:
            report = run(
                claim.task.spec, include_post=claim.task.include_post
            )
            queue.store.write(
                claim.key,
                dataclasses.replace(report, counter=None).to_dict(),
            )
        except Exception as exc:
            stats.errors.append(f"{claim.key[:16]}: {exc!r}")
            queue.write_worker_summary(stats.to_dict())
            raise
        finally:
            heartbeat.stop()
            stats.heartbeats += heartbeat.touched
            stats.heartbeats_skipped += heartbeat.skipped
            queue.release(claim)
        stats.executed += 1
        if claim.reclaimed:
            stats.reexecuted += 1
        queue.write_worker_summary(stats.to_dict())
    queue.write_worker_summary(stats.to_dict())
    return stats


__all__ = ["Heartbeat", "WorkerStats", "run_worker"]
