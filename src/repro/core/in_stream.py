"""Algorithm 3 — in-stream (snapshot) estimation.

Post-stream estimation re-derives every subgraph's probability from the
*final* threshold; in-stream estimation instead freezes ("snapshots") each
subgraph estimator at a stopping time — the instant just before its closing
edge arrives — and accumulates the frozen values.  Snapshots are stopped
martingales, hence still unbiased (Theorem 4), and empirically have lower
variance because early subgraphs are frozen while inclusion probabilities
are still high (paper Sec. 6).

Mechanics on the arrival of edge ``k`` (before the sampler update):

* every sampled triangle ``(k1, k2, k)`` completed by ``k`` contributes
  ``1/(q1·q2)`` with ``qi = min{1, w(ki)/z*}`` at the *current* threshold
  (``k`` itself participates with probability 1 at its own arrival);
* every sampled edge ``j`` adjacent to ``k`` forms a wedge, contributing
  ``1/q_j``;
* variance and triangle–wedge covariance are maintained with per-edge
  accumulators ``C̃_k(△), C̃_k(Λ)`` (Theorem 7): the covariance between two
  snapshots that share edge ``e`` is a product of each snapshot's other
  factors with ``(1/p_{e,T} − 1)`` at the earlier stopping time — exactly
  what the accumulators carry forward.  Evicting an edge drops its
  accumulators (it can close no further sampled subgraphs).

The estimator never revises a frozen contribution, so tracked estimates are
monotone non-decreasing and can be read at any time in O(1).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple

from repro.core.estimates import GraphEstimates
from repro.core.priority_sampler import GraphPrioritySampler, UpdateResult
from repro.core.weights import WeightFunction
from repro.graph.edge import Node, is_self_loop


class InStreamEstimator:
    """GPS with in-stream triangle/wedge/clustering estimation (Algorithm 3).

    Owns a :class:`GraphPrioritySampler`; create it with the same
    ``capacity``/``weight_fn``/``seed`` as a post-stream run to obtain the
    paper's shared-sample comparison (the underlying sampler is exposed via
    :attr:`sampler`, so post-stream estimates can be computed from the very
    same reservoir).

    Examples
    --------
    >>> est = InStreamEstimator(capacity=100, seed=1)
    >>> for edge in [(0, 1), (1, 2), (0, 2)]:
    ...     _ = est.process(*edge)
    >>> est.triangle_estimate
    1.0
    """

    __slots__ = (
        "_sampler",
        "_triangles",
        "_triangle_var",
        "_wedges",
        "_wedge_var",
        "_cross_cov",
    )

    def __init__(
        self,
        capacity: int,
        weight_fn: Optional[WeightFunction] = None,
        seed: Optional[int] = None,
        sampler: Optional[GraphPrioritySampler] = None,
    ) -> None:
        if sampler is not None:
            self._sampler = sampler
        else:
            self._sampler = GraphPrioritySampler(
                capacity, weight_fn=weight_fn, seed=seed
            )
        self._triangles = 0.0
        self._triangle_var = 0.0
        self._wedges = 0.0
        self._wedge_var = 0.0
        self._cross_cov = 0.0

    # ------------------------------------------------------------------
    # Stream processing
    # ------------------------------------------------------------------
    def process(self, u: Node, v: Node) -> UpdateResult:
        """Snapshot the subgraphs ``(u, v)`` closes, then update the sample."""
        sampler = self._sampler
        if is_self_loop(u, v) or sampler.contains_edge(u, v):
            # Keep estimation and sampling in lockstep: arrivals the
            # sampler drops must not leave snapshot contributions behind.
            return sampler.process(u, v)

        sample = sampler.sample
        threshold = sampler.threshold

        # --- triangles completed by k (lines 9–19) ---------------------
        for _w, rec1, rec2 in sample.triangles_with(u, v):
            q1 = rec1.inclusion_probability(threshold)
            q2 = rec2.inclusion_probability(threshold)
            inv_prod = 1.0 / (q1 * q2)
            self._triangles += inv_prod
            self._triangle_var += (inv_prod - 1.0) * inv_prod
            self._triangle_var += 2.0 * (rec1.cov_triangle + rec2.cov_triangle) * inv_prod
            self._cross_cov += (rec1.cov_wedge + rec2.cov_wedge) * inv_prod
            rec1.cov_triangle += (1.0 / q1 - 1.0) / q2
            rec2.cov_triangle += (1.0 / q2 - 1.0) / q1

        # --- wedges completed by k (lines 20–27) ------------------------
        for endpoint, other in ((u, v), (v, u)):
            for rec in sample.incident_records(endpoint, exclude=other):
                q = rec.inclusion_probability(threshold)
                inv = 1.0 / q
                self._wedges += inv
                self._wedge_var += inv * (inv - 1.0)
                self._wedge_var += 2.0 * rec.cov_wedge * inv
                self._cross_cov += rec.cov_triangle * inv
                rec.cov_wedge += inv - 1.0

        # --- sampler update (lines 29–40) --------------------------------
        # Fresh records start with zeroed accumulators; eviction removes
        # the evicted record (and thus its accumulators) from play.
        return sampler.process(u, v)

    def process_many(self, edges: Iterable[Tuple[Node, Node]]) -> int:
        """Batched :meth:`process`: snapshot + sampler update per arrival.

        Hoists the sampler/sample attribute lookups and the estimator
        accumulators out of the per-edge loop; equivalent to calling
        :meth:`process` on every edge in order.  Returns the number of
        edges consumed from ``edges`` (including skipped arrivals).
        """
        sampler = self._sampler
        sample = sampler.sample
        contains_edge = sampler.contains_edge
        sampler_process = sampler.process
        triangles_with = sample.triangles_with
        incident_records = sample.incident_records
        triangles = self._triangles
        triangle_var = self._triangle_var
        wedges = self._wedges
        wedge_var = self._wedge_var
        cross_cov = self._cross_cov
        consumed = 0
        try:
            for u, v in edges:
                consumed += 1
                if u == v or contains_edge(u, v):
                    sampler_process(u, v)
                    continue
                threshold = sampler._threshold

                for _w, rec1, rec2 in triangles_with(u, v):
                    q1 = rec1.inclusion_probability(threshold)
                    q2 = rec2.inclusion_probability(threshold)
                    inv_prod = 1.0 / (q1 * q2)
                    triangles += inv_prod
                    triangle_var += (inv_prod - 1.0) * inv_prod
                    triangle_var += (
                        2.0 * (rec1.cov_triangle + rec2.cov_triangle) * inv_prod
                    )
                    cross_cov += (rec1.cov_wedge + rec2.cov_wedge) * inv_prod
                    rec1.cov_triangle += (1.0 / q1 - 1.0) / q2
                    rec2.cov_triangle += (1.0 / q2 - 1.0) / q1

                for endpoint, other in ((u, v), (v, u)):
                    for rec in incident_records(endpoint, exclude=other):
                        q = rec.inclusion_probability(threshold)
                        inv = 1.0 / q
                        wedges += inv
                        wedge_var += inv * (inv - 1.0)
                        wedge_var += 2.0 * rec.cov_wedge * inv
                        cross_cov += rec.cov_triangle * inv
                        rec.cov_wedge += inv - 1.0

                sampler_process(u, v)
        finally:
            self._triangles = triangles
            self._triangle_var = triangle_var
            self._wedges = wedges
            self._wedge_var = wedge_var
            self._cross_cov = cross_cov
        return consumed

    def process_stream(self, edges: Iterable[Tuple[Node, Node]]) -> None:
        self.process_many(edges)

    def track(
        self,
        edges: Iterable[Tuple[Node, Node]],
        checkpoints: Sequence[int],
    ) -> Iterator[Tuple[int, GraphEstimates]]:
        """Process ``edges``, yielding ``(t, estimates)`` at each checkpoint.

        ``checkpoints`` are 1-based arrival indices (as produced by
        :meth:`repro.streams.EdgeStream.checkpoints`); they must be sorted.
        This powers the real-time tracking experiments (Figure 3, Table 3).
        """
        marks = list(checkpoints)
        next_idx = 0
        t = 0
        for u, v in edges:
            self.process(u, v)
            t += 1
            while next_idx < len(marks) and marks[next_idx] == t:
                yield t, self.estimates()
                next_idx += 1

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def sampler(self) -> GraphPrioritySampler:
        """The underlying GPS reservoir (shared-sample protocol)."""
        return self._sampler

    @property
    def triangle_estimate(self) -> float:
        return self._triangles

    @property
    def wedge_estimate(self) -> float:
        return self._wedges

    @property
    def clustering_estimate(self) -> float:
        if self._wedges == 0:
            return 0.0
        return 3.0 * self._triangles / self._wedges

    def estimates(self) -> GraphEstimates:
        """Current snapshot estimates with variances and bounds; O(1)."""
        sampler = self._sampler
        return GraphEstimates.from_raw(
            triangle_count=self._triangles,
            triangle_variance=self._triangle_var,
            wedge_count=self._wedges,
            wedge_variance=self._wedge_var,
            tri_wedge_covariance=self._cross_cov,
            stream_position=sampler.stream_position,
            sample_size=sampler.sample_size,
            threshold=sampler.threshold,
        )
