"""Graph Priority Sampling core: the paper's primary contribution.

Public API:

* :class:`~repro.core.priority_sampler.GraphPrioritySampler` — Algorithm 1,
  the GPS(m) reservoir.
* Weight functions in :mod:`repro.core.weights` — the ``W(k, K̂)`` family
  (uniform, triangle-minimising, wedge, attribute, linear combinations).
* :class:`~repro.core.post_stream.PostStreamEstimator` — Algorithm 2,
  retrospective unbiased triangle/wedge/clustering estimation with
  unbiased variances and confidence bounds.
* :class:`~repro.core.in_stream.InStreamEstimator` — Algorithm 3, snapshot
  (stopped-martingale) estimation updated during stream processing.
* :mod:`repro.core.compact` — the slot-based struct-of-arrays
  implementations of Algorithms 1 and 3 (the default ``core="compact"``
  of the API layer); bit-identical to the reference classes above under
  shared seeds, several times faster.
* :mod:`repro.core.subgraphs` — generalised post-stream estimation of
  k-cliques and k-stars from the same sample.
"""

from repro.core.adaptive import AdaptiveTriangleWeight
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.compact import (
    CORES,
    DEFAULT_CORE,
    CompactGraphPrioritySampler,
    CompactInStreamEstimator,
    CompactSample,
    make_in_stream_estimator,
    make_priority_sampler,
)
from repro.core.estimates import GraphEstimates, SubgraphEstimate
from repro.core.in_stream import InStreamEstimator
from repro.core.local import LocalTriangleEstimator
from repro.core.motifs import MotifCensusEstimator
from repro.core.post_stream import PostStreamEstimator
from repro.core.priority_sampler import GraphPrioritySampler, UpdateResult
from repro.core.records import EdgeRecord
from repro.core.reservoir import SampledGraph
from repro.core.snapshot_counters import InStreamCliqueCounter
from repro.core.subgraphs import CliqueEstimator, StarEstimator
from repro.core.weights import (
    AttributeWeight,
    LinearCombinationWeight,
    TriangleWeight,
    UniformWeight,
    WedgeWeight,
)

__all__ = [
    "AdaptiveTriangleWeight",
    "CORES",
    "DEFAULT_CORE",
    "CompactGraphPrioritySampler",
    "CompactInStreamEstimator",
    "CompactSample",
    "make_in_stream_estimator",
    "make_priority_sampler",
    "load_checkpoint",
    "save_checkpoint",
    "LocalTriangleEstimator",
    "MotifCensusEstimator",
    "InStreamCliqueCounter",
    "GraphEstimates",
    "SubgraphEstimate",
    "InStreamEstimator",
    "PostStreamEstimator",
    "GraphPrioritySampler",
    "UpdateResult",
    "EdgeRecord",
    "SampledGraph",
    "CliqueEstimator",
    "StarEstimator",
    "AttributeWeight",
    "LinearCombinationWeight",
    "TriangleWeight",
    "UniformWeight",
    "WedgeWeight",
]
