"""Local (per-node) subgraph estimation from a GPS sample.

The global counts of Algorithm 2 decompose into per-node contributions,
and the same HT algebra yields unbiased *local* estimates — the quantity
MASCOT [27] targets and a natural GPS query: for each node ``v``,

* local triangle count  ``N̂_v(△) = Σ_{△ ∋ v, △ ⊂ K̂} Ŝ_△``;
* local wedge count     ``N̂_v(Λ) = e₂(inverse probabilities at v)``
  (wedges centred at ``v``);
* local clustering      ``ĉ_v = N̂_v(△) / N̂_v(Λ)`` (plug-in ratio).

Each sampled triangle is credited to its three corners, enumerated once
per sampled edge and divided by 3 exactly as in the global estimator.
With no reservoir overflow the estimates equal the exact per-node counts
(:func:`repro.graph.exact.per_node_triangles`).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

from repro.core.priority_sampler import GraphPrioritySampler
from repro.core.reservoir import snapshot_view
from repro.core.subgraphs import _elementary_symmetric
from repro.graph.edge import Node


class LocalTriangleEstimator:
    """Per-node triangle/wedge/clustering estimation (post-stream)."""

    __slots__ = ("_sampler",)

    def __init__(self, sampler: GraphPrioritySampler) -> None:
        self._sampler = sampler

    def node_triangles(self) -> Dict[Node, float]:
        """Unbiased per-node triangle counts for all sampled nodes.

        Nodes appearing in the reservoir but in no sampled triangle get an
        explicit 0.0 entry (their estimate, not a missing value).
        """
        sample = snapshot_view(self._sampler.sample)
        threshold = self._sampler.threshold
        counts: Dict[Node, float] = defaultdict(float)
        for record in sample.records():
            counts.setdefault(record.u, 0.0)
            counts.setdefault(record.v, 0.0)
            inv_uv = 1.0 / record.inclusion_probability(threshold)
            for w, rec_uw, rec_vw in sample.triangles_with(record.u, record.v):
                estimate = (
                    inv_uv
                    / rec_uw.inclusion_probability(threshold)
                    / rec_vw.inclusion_probability(threshold)
                )
                # Found once per triangle edge: credit each corner 1/3 of
                # the three findings => each corner nets one full Ŝ_△.
                counts[record.u] += estimate / 3.0
                counts[record.v] += estimate / 3.0
                counts[w] += estimate / 3.0
        return dict(counts)

    def node_wedges(self) -> Dict[Node, float]:
        """Unbiased per-node (centred) wedge counts."""
        sample = snapshot_view(self._sampler.sample)
        threshold = self._sampler.threshold
        wedges: Dict[Node, float] = {}
        seen = set()
        for record in sample.records():
            for node in (record.u, record.v):
                if node in seen:
                    continue
                seen.add(node)
                inv = [
                    1.0 / rec.inclusion_probability(threshold)
                    for rec in sample.incident_records(node)
                ]
                wedges[node] = _elementary_symmetric(inv, 2)
        return wedges

    def local_clustering(self) -> Dict[Node, float]:
        """Plug-in per-node clustering ``triangles / wedges`` (0 when no
        wedge mass is sampled at the node).  Ratio estimates are biased
        but consistent, mirroring the paper's global α̂ treatment."""
        triangles = self.node_triangles()
        wedges = self.node_wedges()
        out: Dict[Node, float] = {}
        for node, wedge_mass in wedges.items():
            if wedge_mass > 0.0:
                out[node] = triangles.get(node, 0.0) / wedge_mass
            else:
                out[node] = 0.0
        return out

    def top_nodes(self, count: int = 10) -> list:
        """Nodes with the largest estimated triangle counts (heavy hitters)."""
        counts = self.node_triangles()
        return sorted(counts.items(), key=lambda kv: (-kv[1], repr(kv[0])))[:count]
