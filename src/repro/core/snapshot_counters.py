"""In-stream snapshot counting of larger cliques (paper Sec. 5 extension).

Section 5 of the paper observes that in-stream estimation generalises
beyond triangles: "each time a subgraph that matches a specified motif
appears (e.g. a triangle or other clique) we take a snapshot of the
subgraph estimator ... it suffices to add the inverse probability of each
matching subgraph to a counter."  This module implements exactly that for
k-cliques:

When edge ``k = (u, v)`` arrives and the sampled graph contains a
(c−2)-clique ``C`` inside ``Γ̂(u) ∩ Γ̂(v)``, the arrival completes the
c-clique ``C ∪ {u, v}``; the snapshot contribution is the product of the
inverse probabilities of all its *already sampled* edges at the current
threshold (the arriving edge participates with probability 1 at its own
arrival).  Unbiasedness is Theorem 4/6 applied to the clique's edge set.

Also included: :class:`InStreamTriangleReference` — a deliberately simple
triangle counter built on the generic :class:`~repro.core.martingale.Snapshot`
objects.  It recomputes what Algorithm 3 maintains incrementally and is
used by the test-suite to cross-validate the optimised implementation.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, List, Optional, Tuple

from repro.core.martingale import Snapshot
from repro.core.priority_sampler import GraphPrioritySampler, UpdateResult
from repro.core.weights import WeightFunction
from repro.graph.edge import Node, is_self_loop


class InStreamCliqueCounter:
    """Unbiased in-stream count of c-cliques (c ≥ 3) via snapshots."""

    __slots__ = ("_sampler", "size", "_count", "_snapshots_taken")

    def __init__(
        self,
        capacity: int,
        size: int = 4,
        weight_fn: Optional[WeightFunction] = None,
        seed: Optional[int] = None,
        sampler: Optional[GraphPrioritySampler] = None,
    ) -> None:
        if size < 3:
            raise ValueError("clique size must be at least 3")
        self.size = size
        if sampler is not None:
            self._sampler = sampler
        else:
            self._sampler = GraphPrioritySampler(
                capacity, weight_fn=weight_fn, seed=seed
            )
        self._count = 0.0
        self._snapshots_taken = 0

    def process(self, u: Node, v: Node) -> UpdateResult:
        """Snapshot the cliques ``(u, v)`` completes, then sample the edge."""
        sampler = self._sampler
        if is_self_loop(u, v) or sampler.contains_edge(u, v):
            return sampler.process(u, v)
        sample = sampler.sample
        threshold = sampler.threshold
        common = [
            w for w, _r1, _r2 in sample.triangles_with(u, v)
        ]
        need = self.size - 2
        if len(common) >= need:
            for nodes in combinations(sorted(common, key=repr), need):
                if not _is_sampled_clique(sample, nodes):
                    continue
                value = 1.0
                members: Tuple[Node, ...] = nodes + (u, v)
                for a, b in combinations(members, 2):
                    record = sample.record(a, b)
                    if record is None:
                        continue  # the arriving edge (u, v): probability 1
                    value *= 1.0 / record.inclusion_probability(threshold)
                self._count += value
                self._snapshots_taken += 1
        return sampler.process(u, v)

    def process_stream(self, edges: Iterable[Tuple[Node, Node]]) -> None:
        for u, v in edges:
            self.process(u, v)

    @property
    def clique_estimate(self) -> float:
        return self._count

    @property
    def snapshots_taken(self) -> int:
        return self._snapshots_taken

    @property
    def sampler(self) -> GraphPrioritySampler:
        return self._sampler


def _is_sampled_clique(sample, nodes) -> bool:
    return all(
        sample.has_edge(a, b) for a, b in combinations(nodes, 2)
    )


class InStreamTriangleReference:
    """Reference in-stream triangle counter on explicit Snapshot objects.

    Semantically identical to Algorithm 3's count (not its variance
    accumulators): at each closing edge it captures a
    :class:`~repro.core.martingale.Snapshot` of the two earlier edges and
    sums the frozen values.  O(snapshots) memory — use only in tests.
    """

    __slots__ = ("_sampler", "_snapshots", "_time")

    def __init__(
        self,
        capacity: int,
        weight_fn: Optional[WeightFunction] = None,
        seed: Optional[int] = None,
    ) -> None:
        self._sampler = GraphPrioritySampler(capacity, weight_fn=weight_fn, seed=seed)
        self._snapshots: List[Snapshot] = []
        self._time = 0

    def process(self, u: Node, v: Node) -> None:
        sampler = self._sampler
        if is_self_loop(u, v) or sampler.contains_edge(u, v):
            sampler.process(u, v)
            return
        self._time += 1
        threshold = sampler.threshold
        for _w, rec1, rec2 in sampler.sample.triangles_with(u, v):
            self._snapshots.append(
                Snapshot.capture([rec1, rec2], threshold, self._time)
            )
        sampler.process(u, v)

    @property
    def triangle_estimate(self) -> float:
        return sum(snapshot.value for snapshot in self._snapshots)

    @property
    def snapshots(self) -> List[Snapshot]:
        return list(self._snapshots)

    @property
    def sampler(self) -> GraphPrioritySampler:
        return self._sampler
