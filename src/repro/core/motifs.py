"""Post-stream estimation of connected 4-node motifs from a GPS sample.

The paper positions GPS as a *general-purpose* framework whose samples
support "arbitrary graph subsets (i.e., triangles, cliques, stars,
subgraphs with particular attributes)".  This module delivers that claim
for the full census of connected 4-node motifs: every motif instance is an
edge subset ``J``, its estimator is the product ``Ŝ_J = Π_{e∈J} 1/p(e)``
(Theorem 2), and the census evaluates the same aggregation identities as
the exact counters in :mod:`repro.graph.motifs`, with HT weights in place
of unit weights:

* ``path4``           Σ_e inv_e·[(D_u−inv_e)(D_v−inv_e) − T_e]
* ``star4``           Σ_v e₃(incident inverse probabilities)
* ``cycle4``          ½ Σ_{node pairs} (S₁² − S₂)/2 over weighted co-wedges
* ``tailed_triangle`` Σ_△ Ŝ_△ · (D_tail-corner − its two triangle edges)
* ``diamond``         Σ_e inv_e · (S₁² − S₂)/2 over triangles through e
* ``clique4``         ordered clique enumeration (via CliqueEstimator)

where ``D_v`` sums inverse probabilities of edges at ``v`` and the
``S``-accumulators carry first/second powers so both the estimate and the
diagonal variance ``Σ_J Ŝ_J(Ŝ_J − 1)`` (Theorem 3(iii)) come out of one
pass.  Reported variances are diagonal-only lower bounds (pairwise
covariances are non-negative by Theorem 3(ii)) except ``clique4``, which
includes shared-edge covariance terms.

Exactness invariant: with no reservoir overflow every probability is 1 and
the census equals :func:`repro.graph.motifs.count_motifs` with zero
variance — property-tested against the exact counters.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Tuple

from repro.core.estimates import SubgraphEstimate
from repro.core.priority_sampler import GraphPrioritySampler
from repro.core.reservoir import snapshot_view
from repro.core.subgraphs import CliqueEstimator, _elementary_symmetric
from repro.graph.edge import Node, canonical_edge
from repro.graph.motifs import MOTIF_NAMES


class MotifCensusEstimator:
    """HT census of the six connected 4-node motifs over a GPS sample."""

    __slots__ = ("_sampler",)

    def __init__(self, sampler: GraphPrioritySampler) -> None:
        self._sampler = sampler

    @property
    def sampler(self) -> GraphPrioritySampler:
        return self._sampler

    def estimate(self) -> Dict[str, SubgraphEstimate]:
        """All six motif estimates (value + diagonal-variance bound)."""
        sample = snapshot_view(self._sampler.sample)
        threshold = self._sampler.threshold

        # Per-node sums of inverse probabilities (first and second powers).
        inv_sum: Dict[Node, float] = defaultdict(float)
        inv_sq_sum: Dict[Node, float] = defaultdict(float)
        inv_of: Dict[Tuple[Node, Node], float] = {}
        for record in sample.records():
            inv = 1.0 / record.inclusion_probability(threshold)
            inv_of[record.key] = inv
            inv_sum[record.u] += inv
            inv_sum[record.v] += inv
            inv_sq_sum[record.u] += inv * inv
            inv_sq_sum[record.v] += inv * inv

        estimates = {
            "path4": self._paths4(sample, threshold, inv_sum, inv_sq_sum),
            "star4": self._stars4(sample, threshold),
            "cycle4": self._cycles4(sample, threshold),
            "tailed_triangle": self._tailed(
                sample, threshold, inv_sum, inv_sq_sum
            ),
            "diamond": self._diamonds(sample, threshold),
            "clique4": CliqueEstimator(self._sampler, size=4).estimate(),
        }
        assert set(estimates) == set(MOTIF_NAMES)
        return estimates

    # ------------------------------------------------------------------
    @staticmethod
    def _paths4(sample, threshold, inv_sum, inv_sq_sum) -> SubgraphEstimate:
        value = 0.0
        square_sum = 0.0
        for record in sample.records():
            u, v = record.u, record.v
            inv = 1.0 / record.inclusion_probability(threshold)
            ends_u = inv_sum[u] - inv
            ends_v = inv_sum[v] - inv
            ends2_u = inv_sq_sum[u] - inv * inv
            ends2_v = inv_sq_sum[v] - inv * inv
            shared = 0.0
            shared2 = 0.0
            for _w, rec1, rec2 in sample.triangles_with(u, v):
                pair = (
                    1.0
                    / rec1.inclusion_probability(threshold)
                    / rec2.inclusion_probability(threshold)
                )
                shared += pair
                shared2 += pair * pair
            value += inv * (ends_u * ends_v - shared)
            square_sum += (inv * inv) * (ends2_u * ends2_v - shared2)
        return SubgraphEstimate(value=value, variance=max(0.0, square_sum - value))

    @staticmethod
    def _stars4(sample, threshold) -> SubgraphEstimate:
        value = 0.0
        square_sum = 0.0
        seen = set()
        for record in sample.records():
            for node in (record.u, record.v):
                if node in seen:
                    continue
                seen.add(node)
                inv = [
                    1.0 / rec.inclusion_probability(threshold)
                    for rec in sample.incident_records(node)
                ]
                if len(inv) < 3:
                    continue
                value += _elementary_symmetric(inv, 3)
                square_sum += _elementary_symmetric([x * x for x in inv], 3)
        return SubgraphEstimate(value=value, variance=max(0.0, square_sum - value))

    @staticmethod
    def _cycles4(sample, threshold) -> SubgraphEstimate:
        # Weighted co-wedge accumulation: for each unordered node pair
        # (u, w), S1/S2/S4 accumulate Σ t, Σ t², Σ t⁴ of the wedge weights
        # t = inv(u,x)·inv(x,w) over common neighbours x.
        s1: Dict[Tuple[Node, Node], float] = defaultdict(float)
        s2: Dict[Tuple[Node, Node], float] = defaultdict(float)
        s4: Dict[Tuple[Node, Node], float] = defaultdict(float)
        # Dict, not set: iteration below accumulates floats per pair
        # key, so the visit order must be insertion order, not hash
        # order.
        centers: Dict[Node, None] = {}
        for record in sample.records():
            centers[record.u] = None
            centers[record.v] = None
        for center in centers:
            incident = [
                (rec.other_endpoint(center), 1.0 / rec.inclusion_probability(threshold))
                for rec in sample.incident_records(center)
            ]
            for i in range(len(incident)):
                node_i, inv_i = incident[i]
                for j in range(i + 1, len(incident)):
                    node_j, inv_j = incident[j]
                    weight = inv_i * inv_j
                    key = canonical_edge(node_i, node_j)
                    s1[key] += weight
                    s2[key] += weight * weight
                    s4[key] += weight ** 4
        value = 0.0
        square_sum = 0.0
        for key in s1:
            value += (s1[key] * s1[key] - s2[key]) / 2.0
            square_sum += (s2[key] * s2[key] - s4[key]) / 2.0
        value /= 2.0
        square_sum /= 2.0
        return SubgraphEstimate(value=value, variance=max(0.0, square_sum - value))

    @staticmethod
    def _tailed(sample, threshold, inv_sum, inv_sq_sum) -> SubgraphEstimate:
        value = 0.0
        square_sum = 0.0
        for record in sample.records():
            u, v = record.u, record.v
            inv_uv = 1.0 / record.inclusion_probability(threshold)
            for w, rec_uw, rec_vw in sample.triangles_with(u, v):
                inv_uw = 1.0 / rec_uw.inclusion_probability(threshold)
                inv_vw = 1.0 / rec_vw.inclusion_probability(threshold)
                triangle = inv_uv * inv_uw * inv_vw
                tails = inv_sum[w] - inv_uw - inv_vw
                tails2 = inv_sq_sum[w] - inv_uw * inv_uw - inv_vw * inv_vw
                value += triangle * tails
                square_sum += triangle * triangle * tails2
        return SubgraphEstimate(value=value, variance=max(0.0, square_sum - value))

    @staticmethod
    def _diamonds(sample, threshold) -> SubgraphEstimate:
        value = 0.0
        square_sum = 0.0
        for record in sample.records():
            inv_e = 1.0 / record.inclusion_probability(threshold)
            s1 = 0.0
            s2 = 0.0
            s4 = 0.0
            for _w, rec1, rec2 in sample.triangles_with(record.u, record.v):
                pair = (
                    1.0
                    / rec1.inclusion_probability(threshold)
                    / rec2.inclusion_probability(threshold)
                )
                s1 += pair
                s2 += pair * pair
                s4 += pair ** 4
            value += inv_e * (s1 * s1 - s2) / 2.0
            square_sum += inv_e * inv_e * (s2 * s2 - s4) / 2.0
        return SubgraphEstimate(value=value, variance=max(0.0, square_sum - value))
