"""Sampled-edge records.

Each edge retained in the GPS reservoir carries its endpoints, the weight
``w(k) = W(k, K̂)`` computed at arrival, the priority ``r(k) = w(k)/u(k)``,
its position in the priority min-heap, and the in-stream covariance
accumulators ``C̃_k(△)`` / ``C̃_k(Λ)`` of Algorithm 3 (zero and unused for
post-stream-only sampling).

``__slots__`` keeps the per-edge footprint small: the reservoir stores
exactly one record per sampled edge (paper property S4, O(|V̂| + m) space).
"""

from __future__ import annotations

from repro.graph.edge import EdgeKey, Node, canonical_edge


class EdgeRecord:
    """One edge in the GPS reservoir (heap item + HT metadata)."""

    __slots__ = (
        "u",
        "v",
        "weight",
        "priority",
        "heap_pos",
        "arrival",
        "cov_triangle",
        "cov_wedge",
    )

    def __init__(
        self,
        u: Node,
        v: Node,
        weight: float,
        priority: float,
        arrival: int = 0,
    ) -> None:
        self.u = u
        self.v = v
        self.weight = weight
        self.priority = priority
        self.heap_pos = -1
        self.arrival = arrival
        self.cov_triangle = 0.0
        self.cov_wedge = 0.0

    @property
    def key(self) -> EdgeKey:
        """Canonical undirected-edge key."""
        return canonical_edge(self.u, self.v)

    def other_endpoint(self, node: Node) -> Node:
        """The endpoint that is not ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ValueError(f"{node!r} is not an endpoint of {self!r}")

    def inclusion_probability(self, threshold: float) -> float:
        """Conditional HT probability ``min(1, w/z*)`` given ``threshold``.

        While the reservoir has never overflowed the threshold is 0 and
        every retained edge has probability 1 (the sample is the whole
        prefix graph).
        """
        if threshold <= 0.0:
            return 1.0
        ratio = self.weight / threshold
        return ratio if ratio < 1.0 else 1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EdgeRecord(({self.u!r}, {self.v!r}), w={self.weight:.4g}, "
            f"r={self.priority:.4g})"
        )
