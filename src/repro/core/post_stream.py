"""Algorithm 2 — post-stream (retrospective) estimation.

At any point in the stream, the reservoir plus the threshold ``z*`` suffice
to compute unbiased estimates of triangle count, wedge count, their
variances (Eqs. 9–10 in the localised forms of Eqs. 13–14), the
triangle–wedge covariance (Eq. 12) and the global clustering coefficient
with its delta-method variance (Eq. 11).

The computation is localised per sampled edge: for edge ``k = (v1, v2)``
(``v1`` the endpoint of smaller sampled degree) we enumerate sampled
triangles through ``k`` and sampled wedges centred at each endpoint, and
maintain the cumulative sums the paper uses to fold pairwise covariance
terms into a single pass (Algorithm 2 lines 14–15, 19–20, 27–28).  Total
cost is O(Σ_k min-degree) = O(a(K̂)·m) ≤ O(m^{3/2}).

Every subgraph estimator below is an *edge product* ``Ŝ_J = Π 1/p(e)``
over the subgraph's sampled edges (Theorem 2), with
``p(e) = min{1, w(e)/z*}``; pairs of subgraphs sharing an edge contribute
the covariance ``Ŝ_{J1∪J2}(Ŝ_{J1∩J2} − 1)`` (Theorem 3).
"""

from __future__ import annotations

from repro.core.estimates import GraphEstimates
from repro.core.priority_sampler import GraphPrioritySampler
from repro.core.reservoir import snapshot_view


class PostStreamEstimator:
    """Retrospective triangle/wedge/clustering estimation (Algorithm 2)."""

    __slots__ = ("_sampler",)

    def __init__(self, sampler: GraphPrioritySampler) -> None:
        self._sampler = sampler

    @property
    def sampler(self) -> GraphPrioritySampler:
        return self._sampler

    def estimate(self) -> GraphEstimates:
        """Run Algorithm 2 against the sampler's current state."""
        sampler = self._sampler
        sample = snapshot_view(sampler.sample)
        threshold = sampler.threshold

        triangle_sum = 0.0      # Σ_k N̂_k(△)   (each triangle counted 3×)
        triangle_var = 0.0      # Σ_k V̂_k(△)   (diagonal terms, 3× each)
        triangle_cov = 0.0      # Σ_k Ĉ_k(△)   (pairs sharing edge k, 1× each)
        wedge_sum = 0.0         # Σ_k N̂_k(Λ)   (each wedge counted 2×)
        wedge_var = 0.0         # Σ_k V̂_k(Λ)
        wedge_cov = 0.0         # Σ_k Ĉ_k(Λ)
        cross_cov = 0.0         # V̂(△, Λ), Eq. 12, each (τ, λ) pair once

        for record in sample.records():
            inv_q = 1.0 / record.inclusion_probability(threshold)
            v1, v2 = record.u, record.v
            if sample.degree(v1) > sample.degree(v2):
                v1, v2 = v2, v1

            tri_cum = 0.0        # c△: Σ (q1·q2)^{-1} of triangles seen at k
            wedge_cum = 0.0      # cΛ: Σ q_other^{-1} of wedges seen at k
            tri_pair = 0.0       # Σ ordered-pair products for triangles at k
            wedge_pair = 0.0     # Σ ordered-pair products for wedges at k
            tri_local = 0.0
            tri_var_local = 0.0
            wedge_local = 0.0
            wedge_var_local = 0.0
            contained_sub = 0.0  # Σ_τ (q1q2)^{-1}(q1^{-1}+q2^{-1})
            contained_cov = 0.0  # wedge-inside-triangle covariance (opposite wedge)

            neighbors_v2 = sample.neighbors(v2)
            for v3, rec1 in sample.neighbors(v1).items():
                if v3 == v2:
                    continue
                inv1 = 1.0 / rec1.inclusion_probability(threshold)
                rec2 = neighbors_v2.get(v3)
                if rec2 is not None:
                    # Triangle (k1, k2, k) through edge k.
                    inv2 = 1.0 / rec2.inclusion_probability(threshold)
                    pair_prod = inv1 * inv2
                    estimate = inv_q * pair_prod
                    tri_local += estimate
                    tri_var_local += estimate * (estimate - 1.0)
                    tri_pair += tri_cum * pair_prod
                    tri_cum += pair_prod
                    contained_sub += pair_prod * (inv1 + inv2)
                    # Wedge (k1, k2) ⊂ τ opposite to k:  Ŝ_τ (Ŝ_λ − 1).
                    contained_cov += estimate * (pair_prod - 1.0)
                # Wedge (v3, v1, v2): edges (k1, k), centred at v1.
                wedge_estimate = inv_q * inv1
                wedge_local += wedge_estimate
                wedge_var_local += wedge_estimate * (wedge_estimate - 1.0)
                wedge_pair += wedge_cum * inv1
                wedge_cum += inv1

            for v3, rec2 in neighbors_v2.items():
                if v3 == v1:
                    continue
                # Wedge (v1, v2, v3): edges (k2, k), centred at v2.
                inv2 = 1.0 / rec2.inclusion_probability(threshold)
                wedge_estimate = inv_q * inv2
                wedge_local += wedge_estimate
                wedge_var_local += wedge_estimate * (wedge_estimate - 1.0)
                wedge_pair += wedge_cum * inv2
                wedge_cum += inv2

            shared_factor = inv_q * (inv_q - 1.0)
            triangle_sum += tri_local
            triangle_var += tri_var_local
            triangle_cov += 2.0 * shared_factor * tri_pair
            wedge_sum += wedge_local
            wedge_var += wedge_var_local
            wedge_cov += 2.0 * shared_factor * wedge_pair
            # Triangle–wedge pairs sharing exactly edge k (excluding wedges
            # contained in the triangle, which share two edges) ...
            cross_cov += shared_factor * (tri_cum * wedge_cum - contained_sub)
            # ... plus wedge-inside-triangle pairs, one (opposite) wedge per
            # enumeration so each contained pair is counted exactly once.
            cross_cov += contained_cov

        return GraphEstimates.from_raw(
            triangle_count=triangle_sum / 3.0,
            triangle_variance=triangle_var / 3.0 + triangle_cov,
            wedge_count=wedge_sum / 2.0,
            wedge_variance=wedge_var / 2.0 + wedge_cov,
            tri_wedge_covariance=cross_cov,
            stream_position=sampler.stream_position,
            sample_size=sampler.sample_size,
            threshold=threshold,
        )
