"""Checkpointing: persist and resume GPS sampler / estimator state.

Production streams do not pause for process restarts.  This module
serialises the complete state of a :class:`GraphPrioritySampler` (and the
running totals of an :class:`InStreamEstimator`) to a JSON document so a
sampling job can be stopped, stored, shipped and resumed *bit-for-bit*:
resuming a checkpoint and continuing the stream yields exactly the state a
single uninterrupted run would have reached, because the RNG state is
captured alongside the reservoir.

Limits: node labels must be JSON-representable scalars (int/str/float);
weight functions are not serialised (they are code) — the caller supplies
the same weight function on restore, and a fingerprint of its repr guards
against accidental mismatches.  Stateful weight functions (e.g.
:class:`~repro.core.adaptive.AdaptiveTriangleWeight`) restart their
internal adaptation on restore; estimates remain unbiased (the
measurability condition still holds), only the adaptation warm-up repeats.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.core.compact import (
    CompactGraphPrioritySampler,
    CompactInStreamEstimator,
)
from repro.core.in_stream import InStreamEstimator
from repro.core.priority_sampler import GraphPrioritySampler
from repro.core.records import EdgeRecord
from repro.core.weights import WeightFunction

FORMAT_VERSION = 1
PathLike = Union[str, Path]


def sampler_state(sampler) -> dict:
    """Snapshot a sampler's full state as a JSON-compatible dict.

    Accepts either reservoir core — the checkpoint format is
    core-neutral (records sorted by arrival, RNG state alongside), and
    both cores expose the same state attributes.
    """
    records = sorted(sampler.records(), key=lambda r: r.arrival)
    return {
        "version": FORMAT_VERSION,
        "kind": "sampler",
        "capacity": sampler.capacity,
        "threshold": sampler.threshold,
        "arrivals": sampler.stream_position,
        "duplicates": sampler.duplicates_skipped,
        "self_loops": sampler.self_loops_skipped,
        "weight_fingerprint": repr(sampler._weight_fn),
        "rng_state": _encode_rng_state(sampler._rng.getstate()),
        "records": [
            {
                "u": record.u,
                "v": record.v,
                "weight": record.weight,
                "priority": record.priority,
                "arrival": record.arrival,
                "cov_triangle": record.cov_triangle,
                "cov_wedge": record.cov_wedge,
            }
            for record in records
        ],
    }


def restore_sampler(
    state: dict, weight_fn: Optional[WeightFunction] = None
) -> GraphPrioritySampler:
    """Rebuild a sampler from :func:`sampler_state` output.

    ``weight_fn`` must be (behaviourally) the function used originally;
    a differing repr fingerprint raises to catch silent mismatches.
    """
    if state.get("kind") != "sampler":
        raise ValueError(f"not a sampler checkpoint: kind={state.get('kind')!r}")
    if state.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version {state.get('version')!r}")
    sampler = GraphPrioritySampler(state["capacity"], weight_fn=weight_fn)
    fingerprint = repr(sampler._weight_fn)
    if fingerprint != state["weight_fingerprint"]:
        raise ValueError(
            "weight function mismatch: checkpoint was created with "
            f"{state['weight_fingerprint']}, restore got {fingerprint}"
        )
    sampler._rng.setstate(_decode_rng_state(state["rng_state"]))
    sampler._threshold = state["threshold"]
    sampler._arrivals = state["arrivals"]
    sampler._duplicates = state["duplicates"]
    sampler._self_loops = state["self_loops"]
    for entry in state["records"]:
        record = EdgeRecord(
            _node(entry["u"]),
            _node(entry["v"]),
            weight=entry["weight"],
            priority=entry["priority"],
            arrival=entry["arrival"],
        )
        record.cov_triangle = entry["cov_triangle"]
        record.cov_wedge = entry["cov_wedge"]
        sampler._sample.add(record)
        sampler._heap.push(record)
    return sampler


def estimator_state(estimator) -> dict:
    """Snapshot an in-stream estimator (sampler + running totals).

    Accepts either core's estimator; the totals attributes are shared.
    """
    return {
        "version": FORMAT_VERSION,
        "kind": "in_stream",
        "totals": {
            "triangles": estimator._triangles,
            "triangle_var": estimator._triangle_var,
            "wedges": estimator._wedges,
            "wedge_var": estimator._wedge_var,
            "cross_cov": estimator._cross_cov,
        },
        "sampler": sampler_state(estimator.sampler),
    }


def restore_estimator(
    state: dict, weight_fn: Optional[WeightFunction] = None
) -> InStreamEstimator:
    """Rebuild an in-stream estimator from :func:`estimator_state` output."""
    if state.get("kind") != "in_stream":
        raise ValueError(f"not an in-stream checkpoint: kind={state.get('kind')!r}")
    sampler = restore_sampler(state["sampler"], weight_fn=weight_fn)
    estimator = InStreamEstimator(sampler.capacity, sampler=sampler)
    totals = state["totals"]
    estimator._triangles = totals["triangles"]
    estimator._triangle_var = totals["triangle_var"]
    estimator._wedges = totals["wedges"]
    estimator._wedge_var = totals["wedge_var"]
    estimator._cross_cov = totals["cross_cov"]
    return estimator


# ----------------------------------------------------------------------
# File round-trip
# ----------------------------------------------------------------------
def save_checkpoint(obj, path: PathLike) -> Path:
    """Write a sampler or in-stream estimator checkpoint to ``path``."""
    if isinstance(obj, (InStreamEstimator, CompactInStreamEstimator)):
        state = estimator_state(obj)
    elif isinstance(obj, (GraphPrioritySampler, CompactGraphPrioritySampler)):
        state = sampler_state(obj)
    else:
        raise TypeError(f"cannot checkpoint object of type {type(obj).__name__}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(state), encoding="utf-8")
    return path


def load_checkpoint(
    path: PathLike, weight_fn: Optional[WeightFunction] = None
):
    """Load a checkpoint file; returns a sampler or in-stream estimator.

    Restoration always rebuilds on the object (reference) core: the two
    cores are bit-identical under shared state, so a checkpoint written
    by a compact pass resumes to exactly the same stream behaviour.
    """
    state = json.loads(Path(path).read_text(encoding="utf-8"))
    if state.get("kind") == "in_stream":
        return restore_estimator(state, weight_fn=weight_fn)
    return restore_sampler(state, weight_fn=weight_fn)


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _encode_rng_state(state) -> list:
    """random.Random state → JSON-compatible nested lists."""
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def _decode_rng_state(encoded) -> tuple:
    version, internal, gauss_next = encoded
    return (version, tuple(internal), gauss_next)


def _node(value):
    """JSON round-trips int/str/float node labels unchanged."""
    return value
