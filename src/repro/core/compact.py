"""The compact slot-based GPS core: struct-of-arrays, no boxed records.

The reference ("object") core in :mod:`repro.core.priority_sampler` keeps
one heap-allocated :class:`~repro.core.records.EdgeRecord` per sampled
edge and pays CPython object tax on every arrival: an allocation, a
weight-function call, and attribute-chasing heap sifts.  This module is
the same Algorithm 1 / Algorithm 3 machinery re-laid-out for throughput:

* every sampled edge lives in a *slot* ``s`` of parallel slot-indexed
  arrays (``u``, ``v``, ``weight``, ``priority``, ``arrival``,
  ``cov_triangle``, ``cov_wedge``) — plain Python lists, whose indexed
  reads are the cheapest CPython offers (an ``array``/numpy read would
  re-box a float per access on this pure-Python hot path);
* the priority min-heap orders slot indices as ``(priority, slot)``
  pairs (:class:`~repro.heap.slot_heap.SlotMinHeap`) so every sift runs
  in C via :mod:`heapq`; the eviction step overwrites the root slot's
  fields in place and replaces its heap entry with one
  ``heapreplace`` — no push+pop, no per-arrival allocation;
* the adjacency maps ``node → {neighbour → slot}`` so weight functions
  and the in-stream snapshot loops do their neighbourhood work on machine
  integers (interned ids, see :mod:`repro.streams.interner`) or whatever
  hashable labels the stream carries;
* the three registered weight families (uniform / triangle / wedge) are
  recognised by exact type and inlined into the update loop — zero
  Python calls per arrival on the common configurations.  Unrecognised
  weight functions still work through a live
  :class:`~repro.core.reservoir.SampledGraph`-protocol view.

**Bit-exactness contract.**  Given the same ``(capacity, weight_fn,
seed)`` and the same stream, the compact core draws its uniforms in the
same order and performs the same float operations in the same order as
the object core, and mirrors the object core's dict insertion/deletion
sequences — so samples, thresholds, and in-/post-stream estimates are
identical bit for bit.  The test matrix in ``tests/test_compact_core.py``
enforces this for every registered weight; the object core stays in the
tree as the readable reference implementation.
"""

from __future__ import annotations

import random
from heapq import heappush, heapreplace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

try:  # pragma: no cover - numpy is a declared dependency, but the
    import numpy as _np  # scalar loops stay fully functional without it
except ImportError:  # pragma: no cover
    _np = None

from repro.core.estimates import GraphEstimates
from repro.core.records import EdgeRecord
from repro.core.weights import (
    TriangleWeight,
    UniformWeight,
    WedgeWeight,
    WeightFunction,
)
from repro.graph.edge import EdgeKey, Node, canonical_edge
from repro.heap.slot_heap import SlotMinHeap

#: Selectable GPS core implementations (the default comes first).
CORES = ("compact", "object")
DEFAULT_CORE = "compact"

# Weight families the update loop inlines (matched by exact type, so a
# subclass with an overridden __call__ still takes the generic path).
_W_GENERIC = 0
_W_UNIFORM = 1
_W_TRIANGLE = 2
_W_WEDGE = 3

# Canonical-edge packing for the chunk screen: code = min·2³² + max.
# Sound only for labels in [0, 2³¹) — dense interned ids and the
# synthetic generators always are; anything else falls back to the
# scalar loop (addition, not bit-ors, so the maths stays exact).
_CODE_BASE = 2**32
_CODE_LIMIT = 2**31


def _classify_weight(weight_fn: WeightFunction) -> Tuple[int, float, float]:
    """(kind, coef, default) for the inlined weight families."""
    kind = type(weight_fn)
    if kind is UniformWeight:
        return _W_UNIFORM, 0.0, weight_fn.constant
    if kind is TriangleWeight:
        return _W_TRIANGLE, weight_fn.coef, weight_fn.default
    if kind is WedgeWeight:
        return _W_WEDGE, weight_fn.coef, weight_fn.default
    return _W_GENERIC, 0.0, 0.0


class CompactSample:
    """Live :class:`~repro.core.reservoir.SampledGraph`-protocol view.

    Weight functions outside the inlined families, Algorithm 2, and the
    retrospective estimators (:mod:`repro.core.subgraphs`,
    :mod:`repro.core.motifs`, :mod:`repro.core.local`) all consume the
    sample through this protocol.  Topology queries (``degree``,
    ``common_neighbor_count``, ``has_edge``) read the slot adjacency
    directly; record-yielding queries materialise
    :class:`~repro.core.records.EdgeRecord` values on demand — a
    cold-path convenience, not something the update loop ever does.
    Materialised records are snapshots: mutating them does not write back
    into the reservoir.
    """

    __slots__ = ("_sampler",)

    def __init__(self, sampler: "CompactGraphPrioritySampler") -> None:
        self._sampler = sampler

    # -- topology (hot-path safe) --------------------------------------
    @property
    def num_edges(self) -> int:
        return len(self._sampler._heap)

    @property
    def num_nodes(self) -> int:
        return len(self._sampler._adj)

    def has_edge(self, u: Node, v: Node) -> bool:
        nbrs = self._sampler._adj.get(u)
        return nbrs is not None and v in nbrs

    def degree(self, v: Node) -> int:
        return len(self._sampler._adj.get(v, ()))

    def common_neighbor_count(self, u: Node, v: Node) -> int:
        adj = self._sampler._adj
        nbrs_u = adj.get(u, _EMPTY)
        nbrs_v = adj.get(v, _EMPTY)
        if len(nbrs_u) > len(nbrs_v):
            nbrs_u, nbrs_v = nbrs_v, nbrs_u
        return sum(1 for w in nbrs_u if w in nbrs_v)

    # -- record materialisation (cold path) ----------------------------
    def record(self, u: Node, v: Node) -> Optional[EdgeRecord]:
        nbrs = self._sampler._adj.get(u)
        if nbrs is None:
            return None
        slot = nbrs.get(v)
        if slot is None:
            return None
        return self._sampler._materialize(slot)

    def neighbors(self, v: Node) -> Dict[Node, EdgeRecord]:
        """Neighbour → record map of ``v`` (materialised snapshot)."""
        materialize = self._sampler._materialize
        return {
            w: materialize(slot)
            for w, slot in self._sampler._adj.get(v, _EMPTY).items()
        }

    def records(self) -> Iterator[EdgeRecord]:
        """Each sampled edge once, in the object core's iteration order."""
        materialize = self._sampler._materialize
        seen_at_u = set()
        for u, nbrs in self._sampler._adj.items():
            seen_at_u.add(u)
            for v, slot in nbrs.items():
                if v not in seen_at_u:
                    yield materialize(slot)

    def triangles_with(
        self, u: Node, v: Node
    ) -> Iterator[Tuple[Node, EdgeRecord, EdgeRecord]]:
        adj = self._sampler._adj
        materialize = self._sampler._materialize
        nbrs_u = adj.get(u, _EMPTY)
        nbrs_v = adj.get(v, _EMPTY)
        if len(nbrs_u) <= len(nbrs_v):
            for w, slot_uw in nbrs_u.items():
                slot_vw = nbrs_v.get(w)
                if slot_vw is not None:
                    yield w, materialize(slot_uw), materialize(slot_vw)
        else:
            for w, slot_vw in nbrs_v.items():
                slot_uw = nbrs_u.get(w)
                if slot_uw is not None:
                    yield w, materialize(slot_uw), materialize(slot_vw)

    def incident_records(
        self, v: Node, exclude: Optional[Node] = None
    ) -> Iterator[EdgeRecord]:
        materialize = self._sampler._materialize
        for w, slot in self._sampler._adj.get(v, _EMPTY).items():
            if w != exclude:
                yield materialize(slot)

    def materialize(self):
        """One-shot object-core snapshot with identical iteration orders.

        Builds a real :class:`~repro.core.reservoir.SampledGraph` whose
        outer and inner dict orders copy the slot adjacency exactly,
        with one shared :class:`EdgeRecord` per slot — so Algorithm 2
        and the other retrospective estimators traverse it in the very
        order the object core would (bit-identical accumulation) while
        paying O(m) materialisation once, instead of allocating fresh
        records on every :meth:`neighbors` call inside their loops.
        """
        from repro.core.reservoir import SampledGraph

        sampler = self._sampler
        materialize = sampler._materialize
        records: Dict[int, EdgeRecord] = {}
        adj: Dict[Node, Dict[Node, EdgeRecord]] = {}
        for u, nbrs in sampler._adj.items():
            row: Dict[Node, EdgeRecord] = {}
            for v, slot in nbrs.items():
                record = records.get(slot)
                if record is None:
                    record = records[slot] = materialize(slot)
                row[v] = record
            adj[u] = row
        return SampledGraph.from_adjacency(adj, len(records))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompactSample(nodes={self.num_nodes}, edges={self.num_edges})"


_EMPTY: Dict[Node, int] = {}


class SlotArrays:
    """Dtype-pinned copy of the live slot prefix plus the heap root.

    The cheap snapshot shape: where :meth:`CompactSample.materialize`
    builds an O(m) object graph (one :class:`EdgeRecord` per slot plus
    two dict levels), this is five flat ``float64``/``int64`` column
    copies, two label lists and three scalars — the raw material the
    serving layer's :class:`~repro.serve.snapshot.SampleSnapshot`
    captures at every chunk boundary and materialises lazily only when
    a retrospective query actually arrives.

    Only the first :attr:`size` entries of each column are live (slots
    are allocated densely: admissions fill ``0..size-1`` and evictions
    overwrite in place, so the live slots are exactly that prefix).
    Columns are numpy arrays of length :attr:`capacity` when numpy is
    available (so instances can be recycled as double buffers via the
    ``out=`` parameter of :meth:`CompactGraphPrioritySampler.
    snapshot_arrays`) and plain list copies otherwise.  Instances are
    value containers, not views: mutating the sampler afterwards never
    changes a snapshot, and vice versa.
    """

    __slots__ = (
        "size",
        "capacity",
        "u",
        "v",
        "weight",
        "priority",
        "arrival",
        "cov_triangle",
        "cov_wedge",
        "heap_root",
        "threshold",
        "stream_position",
    )

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.size = 0
        self.u: List[Node] = []
        self.v: List[Node] = []
        if _np is not None:
            self.weight = _np.empty(capacity, dtype=_np.float64)
            self.priority = _np.empty(capacity, dtype=_np.float64)
            self.arrival = _np.empty(capacity, dtype=_np.int64)
            self.cov_triangle = _np.empty(capacity, dtype=_np.float64)
            self.cov_wedge = _np.empty(capacity, dtype=_np.float64)
        else:  # pragma: no cover - numpy is a declared dependency
            self.weight = []
            self.priority = []
            self.arrival = []
            self.cov_triangle = []
            self.cov_wedge = []
        self.heap_root: Optional[Tuple[float, int]] = None
        self.threshold = 0.0
        self.stream_position = 0

    def record(self, slot: int) -> EdgeRecord:
        """Materialise one slot as an :class:`EdgeRecord` (cold path).

        Numpy scalars are unboxed back to plain Python floats/ints so a
        record built from a snapshot is field-for-field ``==`` (and
        bit-identical in float payloads) to one built live by
        :meth:`CompactGraphPrioritySampler._materialize`.
        """
        record = EdgeRecord(
            self.u[slot],
            self.v[slot],
            weight=float(self.weight[slot]),
            priority=float(self.priority[slot]),
            arrival=int(self.arrival[slot]),
        )
        record.cov_triangle = float(self.cov_triangle[slot])
        record.cov_wedge = float(self.cov_wedge[slot])
        return record


class CompactGraphPrioritySampler:
    """GPS(m) on slot-indexed parallel arrays (Algorithm 1, compact core).

    Drop-in behavioural equivalent of
    :class:`~repro.core.priority_sampler.GraphPrioritySampler` — same
    constructor, same sampling distribution, bit-identical samples under
    shared seeds — minus the per-arrival :class:`UpdateResult` reporting:
    :meth:`process` returns ``None`` (materialising an outcome object per
    edge is exactly the tax this core removes).  Callers that need
    per-arrival outcomes use the object core.

    Examples
    --------
    >>> sampler = CompactGraphPrioritySampler(capacity=2, seed=7)
    >>> sampler.process_many([(1, 2), (2, 3), (1, 3), (3, 4)])
    4
    >>> sampler.sample_size
    2
    """

    __slots__ = (
        "_capacity",
        "_weight_fn",
        "_wkind",
        "_wcoef",
        "_wdefault",
        "_rng",
        "_adj",
        "_su",
        "_sv",
        "_weight",
        "_priority",
        "_arrival",
        "_cov_tri",
        "_cov_wedge",
        "_heap",
        "_threshold",
        "_arrivals",
        "_duplicates",
        "_self_loops",
        "_view",
        "_slot_codes",
        "_codes_stale",
        "_mt",
        "_mt_rs",
    )

    #: Below this many draws the list comprehension beats the MT19937
    #: state-transplant fixed cost (~170 µs per bulk call).
    _BULK_DRAW_MIN = 2048

    def __init__(
        self,
        capacity: int,
        weight_fn: Optional[WeightFunction] = None,
        seed: Optional[int] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._weight_fn: WeightFunction = weight_fn or TriangleWeight()
        self._wkind, self._wcoef, self._wdefault = _classify_weight(
            self._weight_fn
        )
        self._rng = random.Random(seed)
        # Slot-indexed parallel arrays, preallocated to capacity.
        self._su: List[Node] = [None] * capacity
        self._sv: List[Node] = [None] * capacity
        self._weight: List[float] = [0.0] * capacity
        self._priority: List[float] = [0.0] * capacity
        self._arrival: List[int] = [0] * capacity
        self._cov_tri: List[float] = [0.0] * capacity
        self._cov_wedge: List[float] = [0.0] * capacity
        self._heap = SlotMinHeap()
        self._adj: Dict[Node, Dict[Node, int]] = {}
        self._threshold = 0.0
        self._arrivals = 0
        self._duplicates = 0
        self._self_loops = 0
        self._view = CompactSample(self)
        # Per-slot canonical-edge codes for the chunked screen: built
        # lazily on the first process_chunk, maintained by its admits,
        # and invalidated whenever a scalar loop may have touched slots.
        self._slot_codes = None
        self._codes_stale = True
        # Lazily-built numpy MT19937 twin of self._rng for bulk draws.
        self._mt = None
        self._mt_rs = None

    def reset(self, seed: Optional[int] = None) -> None:
        """Restore freshly-constructed state (same capacity and weight).

        Bit-identical to building a new sampler with the same
        ``(capacity, weight_fn, seed)``: the RNG is reseeded, the heap,
        adjacency and counters are cleared, and the slot arrays are
        reused in place — the reuse that keeps replication-worker
        arenas warm across tasks (:mod:`repro.engine.replication`).

        >>> sampler = CompactGraphPrioritySampler(capacity=4, seed=1)
        >>> sampler.process_many([(0, 1), (1, 2)])
        2
        >>> sampler.reset(seed=1); sampler.sample_size, sampler.stream_position
        (0, 0)
        """
        self._rng.seed(seed)
        self._adj.clear()
        del self._heap._heap[:]
        self._threshold = 0.0
        self._arrivals = 0
        self._duplicates = 0
        self._self_loops = 0
        self._codes_stale = True

    # ------------------------------------------------------------------
    # Stream processing (procedure GPSUpdate, slot edition)
    # ------------------------------------------------------------------
    def process(self, u: Node, v: Node) -> None:
        """Process one arrival (returns None; see the class docstring)."""
        self.process_many(((u, v),))

    def process_many(self, edges: Iterable[Tuple[Node, Node]]) -> int:
        """Feed a batch of arrivals through the slot update loop.

        Draws its uniforms in the same order and performs the same float
        operations as the object core, so shared-seed samples are
        bit-for-bit identical.  Returns the number of edges consumed
        (including skipped self-loops/duplicates).

        Dispatches once per batch to a loop specialised for the weight
        family — the deliberate code duplication below buys the removal
        of every per-arrival branch and Python call from the common
        configurations.
        """
        # Scalar admits don't maintain the chunk screen's slot codes;
        # the next process_chunk rebuilds them once.
        self._codes_stale = True
        wkind = self._wkind
        if wkind == _W_TRIANGLE:
            return self._process_many_triangle(edges)
        if wkind == _W_UNIFORM:
            return self._process_many_uniform(edges)
        return self._process_many_generic(edges)

    def _process_many_triangle(
        self, edges: Iterable[Tuple[Node, Node]]
    ) -> int:
        """Specialised loop: W = coef·|△̂(k)| + default, inlined."""
        adj = self._adj
        adj_get = adj.get
        su = self._su
        sv = self._sv
        wts = self._weight
        prio = self._priority
        arr = self._arrival
        cov_tri = self._cov_tri
        cov_wedge = self._cov_wedge
        heap_arr = self._heap._heap
        hpush = heappush
        hreplace = heapreplace
        rand = self._rng.random
        capacity = self._capacity
        coef = self._wcoef
        default = self._wdefault
        size = len(heap_arr)
        root_prio = heap_arr[0][0] if size else 0.0
        threshold = self._threshold
        arrivals = self._arrivals
        duplicates = self._duplicates
        self_loops = self._self_loops
        consumed = 0
        try:
            for u, v in edges:
                consumed += 1
                if u == v:
                    self_loops += 1
                    continue
                nu = adj_get(u)
                if nu is None:
                    # u has no sampled edges: no duplicate, no closure.
                    w = default
                else:
                    if v in nu:
                        duplicates += 1
                        continue
                    nv = adj_get(v)
                    if nv is None:
                        w = default
                    else:
                        if len(nu) > len(nv):
                            small = nv
                            big = nu
                        else:
                            small = nu
                            big = nv
                        closed = 0
                        for x in small:
                            if x in big:
                                closed += 1
                        # coef·0 + default == default exactly, so the
                        # short-circuit is bit-neutral.
                        w = coef * closed + default if closed else default
                arrivals += 1
                r = w / (1.0 - rand())
                if size < capacity:
                    s = size
                    size += 1
                    su[s] = u
                    sv[s] = v
                    wts[s] = w
                    prio[s] = r
                    arr[s] = arrivals
                    cov_tri[s] = 0.0
                    cov_wedge[s] = 0.0
                    nu = adj_get(u)
                    if nu is None:
                        adj[u] = {v: s}
                    else:
                        nu[v] = s
                    nv = adj_get(v)
                    if nv is None:
                        adj[v] = {u: s}
                    else:
                        nv[u] = s
                    hpush(heap_arr, (r, s))
                    root_prio = heap_arr[0][0]
                elif root_prio < r:
                    s = heap_arr[0][1]
                    if root_prio > threshold:
                        threshold = root_prio
                    eu = su[s]
                    ev = sv[s]
                    d = adj[eu]
                    del d[ev]
                    if not d:
                        del adj[eu]
                    d = adj[ev]
                    del d[eu]
                    if not d:
                        del adj[ev]
                    su[s] = u
                    sv[s] = v
                    wts[s] = w
                    prio[s] = r
                    arr[s] = arrivals
                    cov_tri[s] = 0.0
                    cov_wedge[s] = 0.0
                    nu = adj_get(u)
                    if nu is None:
                        adj[u] = {v: s}
                    else:
                        nu[v] = s
                    nv = adj_get(v)
                    if nv is None:
                        adj[v] = {u: s}
                    else:
                        nv[u] = s
                    hreplace(heap_arr, (r, s))
                    root_prio = heap_arr[0][0]
                elif r > threshold:
                    threshold = r
        finally:
            self._threshold = threshold
            self._arrivals = arrivals
            self._duplicates = duplicates
            self._self_loops = self_loops
        return consumed

    def _process_many_uniform(
        self, edges: Iterable[Tuple[Node, Node]]
    ) -> int:
        """Specialised loop: W ≡ constant — no topology reads at all."""
        adj = self._adj
        adj_get = adj.get
        su = self._su
        sv = self._sv
        wts = self._weight
        prio = self._priority
        arr = self._arrival
        cov_tri = self._cov_tri
        cov_wedge = self._cov_wedge
        heap_arr = self._heap._heap
        hpush = heappush
        hreplace = heapreplace
        rand = self._rng.random
        capacity = self._capacity
        constant = self._wdefault
        size = len(heap_arr)
        root_prio = heap_arr[0][0] if size else 0.0
        threshold = self._threshold
        arrivals = self._arrivals
        duplicates = self._duplicates
        self_loops = self._self_loops
        consumed = 0
        try:
            for u, v in edges:
                consumed += 1
                if u == v:
                    self_loops += 1
                    continue
                nu = adj_get(u)
                if nu is not None and v in nu:
                    duplicates += 1
                    continue
                arrivals += 1
                r = constant / (1.0 - rand())
                if size < capacity:
                    s = size
                    size += 1
                    su[s] = u
                    sv[s] = v
                    wts[s] = constant
                    prio[s] = r
                    arr[s] = arrivals
                    cov_tri[s] = 0.0
                    cov_wedge[s] = 0.0
                    if nu is None:
                        adj[u] = {v: s}
                    else:
                        nu[v] = s
                    nv = adj_get(v)
                    if nv is None:
                        adj[v] = {u: s}
                    else:
                        nv[u] = s
                    hpush(heap_arr, (r, s))
                    root_prio = heap_arr[0][0]
                elif root_prio < r:
                    s = heap_arr[0][1]
                    if root_prio > threshold:
                        threshold = root_prio
                    eu = su[s]
                    ev = sv[s]
                    d = adj[eu]
                    del d[ev]
                    if not d:
                        del adj[eu]
                    d = adj[ev]
                    del d[eu]
                    if not d:
                        del adj[ev]
                    su[s] = u
                    sv[s] = v
                    wts[s] = constant
                    prio[s] = r
                    arr[s] = arrivals
                    cov_tri[s] = 0.0
                    cov_wedge[s] = 0.0
                    nu = adj_get(u)
                    if nu is None:
                        adj[u] = {v: s}
                    else:
                        nu[v] = s
                    nv = adj_get(v)
                    if nv is None:
                        adj[v] = {u: s}
                    else:
                        nv[u] = s
                    hreplace(heap_arr, (r, s))
                    root_prio = heap_arr[0][0]
                elif r > threshold:
                    threshold = r
        finally:
            self._threshold = threshold
            self._arrivals = arrivals
            self._duplicates = duplicates
            self._self_loops = self_loops
        return consumed

    def _process_many_generic(
        self, edges: Iterable[Tuple[Node, Node]]
    ) -> int:
        """Wedge-weight and arbitrary weight functions (via the view)."""
        adj = self._adj
        adj_get = adj.get
        su = self._su
        sv = self._sv
        wts = self._weight
        prio = self._priority
        arr = self._arrival
        cov_tri = self._cov_tri
        cov_wedge = self._cov_wedge
        heap_arr = self._heap._heap
        hpush = heappush
        hreplace = heapreplace
        rand = self._rng.random
        capacity = self._capacity
        wkind = self._wkind
        coef = self._wcoef
        default = self._wdefault
        weight_fn = self._weight_fn
        view = self._view
        size = len(heap_arr)
        root_prio = heap_arr[0][0] if size else 0.0
        threshold = self._threshold
        arrivals = self._arrivals
        duplicates = self._duplicates
        self_loops = self._self_loops
        consumed = 0
        try:
            for u, v in edges:
                consumed += 1
                if u == v:
                    self_loops += 1
                    continue
                nu = adj_get(u)
                if nu is not None and v in nu:
                    duplicates += 1
                    continue
                arrivals += 1
                if wkind == _W_WEDGE:
                    nv = adj_get(v)
                    w = coef * (
                        (len(nu) if nu is not None else 0)
                        + (len(nv) if nv is not None else 0)
                    ) + default
                else:
                    w = weight_fn(u, v, view)
                    if not w > 0.0:
                        raise ValueError(
                            f"weight function returned non-positive {w!r}"
                        )
                r = w / (1.0 - rand())
                # --- admit / evict / bounce ----------------------------
                if size < capacity:
                    s = size
                    size += 1
                    su[s] = u
                    sv[s] = v
                    wts[s] = w
                    prio[s] = r
                    arr[s] = arrivals
                    cov_tri[s] = 0.0
                    cov_wedge[s] = 0.0
                    nu = adj_get(u)
                    if nu is None:
                        adj[u] = {v: s}
                    else:
                        nu[v] = s
                    nv = adj_get(v)
                    if nv is None:
                        adj[v] = {u: s}
                    else:
                        nv[u] = s
                    hpush(heap_arr, (r, s))
                    root_prio = heap_arr[0][0]
                elif root_prio < r:
                    # Evict the root slot and reuse it for the arrival:
                    # the heap array keeps the same slot id at position 0,
                    # so one sift restores the invariant.
                    s = heap_arr[0][1]
                    if root_prio > threshold:
                        threshold = root_prio
                    eu = su[s]
                    ev = sv[s]
                    d = adj[eu]
                    del d[ev]
                    if not d:
                        del adj[eu]
                    d = adj[ev]
                    del d[eu]
                    if not d:
                        del adj[ev]
                    su[s] = u
                    sv[s] = v
                    wts[s] = w
                    prio[s] = r
                    arr[s] = arrivals
                    cov_tri[s] = 0.0
                    cov_wedge[s] = 0.0
                    nu = adj_get(u)
                    if nu is None:
                        adj[u] = {v: s}
                    else:
                        nu[v] = s
                    nv = adj_get(v)
                    if nv is None:
                        adj[v] = {u: s}
                    else:
                        nv[u] = s
                    hreplace(heap_arr, (r, s))
                    root_prio = heap_arr[0][0]
                elif r > threshold:
                    # Bounce: the arriving edge is itself the eviction.
                    threshold = r
        finally:
            self._threshold = threshold
            self._arrivals = arrivals
            self._duplicates = duplicates
            self._self_loops = self_loops
        return consumed

    def process_stream(self, edges: Iterable[Tuple[Node, Node]]) -> None:
        """Feed a whole stream through the sampler."""
        self.process_many(edges)

    # ------------------------------------------------------------------
    # Chunked (columnar) processing — the vectorised admission pre-pass
    # ------------------------------------------------------------------
    @property
    def chunk_vectorized(self) -> bool:
        """Whether :meth:`process_chunk` has a vectorised gate here.

        True exactly for the uniform weight family with numpy present:
        uniform ranks are a pure function of the RNG draw, so a whole
        block screens against the heap root in a few array operations.
        The topology-reading families (triangle/wedge/generic) must
        inspect the evolving sample per arrival — both for admits and
        for the exact bounced priorities that feed ``z*`` — so their
        scalar family-specialised loops already are the fast path and
        :meth:`process_chunk` simply adapts the columnar block.
        """
        return _np is not None and self._wkind == _W_UNIFORM

    def process_chunk(self, us, vs) -> int:
        """Feed one columnar block ``(u column, v column)`` of arrivals.

        Bit-exact equivalent of ``process_many(zip(us, vs))`` — same
        uniform draws in the same order, same float operations, same
        dict mutation sequences — taken the vectorised way when
        :attr:`chunk_vectorized` holds and the block is *clean* (no
        self-loops, no within-block repeats, no edge already sampled);
        anything else falls back to the scalar loop for that block.

        The vectorised gate exploits two structural facts of GPS order
        sampling: once the reservoir is full its heap root is
        non-decreasing, so every arrival whose rank fails the root *at
        block start* is a guaranteed loser wherever it sits in the
        block; and losers never mutate the reservoir — their only trace
        is a max-fold of their priorities into the threshold ``z*``,
        which is order-independent.  So one boolean mask routes just
        the block's survivors into the scalar admit-or-evict path.

        >>> sampler = CompactGraphPrioritySampler(capacity=2, seed=7)
        >>> import numpy as np
        >>> sampler.process_chunk(np.array([1, 2, 1], dtype=np.int32),
        ...                       np.array([2, 3, 3], dtype=np.int32))
        3
        >>> sampler.sample_size
        2
        """
        n = len(us)
        if len(vs) != n:
            raise ValueError("u and v columns must have equal length")
        if n == 0:
            return 0
        if _np is None or self._wkind != _W_UNIFORM:
            return self._process_chunk_scalar(us, vs)
        return self._process_chunk_uniform(
            _np.asarray(us), _np.asarray(vs), n
        )

    def _process_chunk_scalar(self, us, vs) -> int:
        """Columnar block → scalar loop (plain-int pairs, bit-identical)."""
        from repro.streams.chunks import pairs_from_columns

        return self.process_many(pairs_from_columns(us, vs))

    def _bulk_uniforms(self, n: int):
        """``n`` doubles bit-identical to ``n`` ``self._rng.random()`` calls.

        CPython's :class:`random.Random` and numpy's legacy
        ``RandomState`` share both the MT19937 core and the 53-bit
        double construction ``((a >> 5)·2²⁶ + (b >> 6)) / 2⁵³``, so the
        624-word Mersenne state can be transplanted into numpy, the
        block drawn in one C call, and the advanced state transplanted
        back — ``self._rng`` stays the single authoritative generator
        (checkpointing and scalar interludes read it directly) while
        the per-draw Python call disappears.  Below
        :data:`_BULK_DRAW_MIN` draws the transplant's fixed cost loses
        to a plain list comprehension, which is used instead.
        """
        rng = self._rng
        if n < self._BULK_DRAW_MIN:
            rand = rng.random
            return _np.array([rand() for _ in range(n)], dtype=_np.float64)
        version, internal, gauss = rng.getstate()
        mt = self._mt
        if mt is None:
            # State is transplanted from self._rng below before any
            # draw, so the construction-time seed is never observed.
            mt = self._mt = _np.random.MT19937()  # repro-lint: disable=rng-discipline
            self._mt_rs = _np.random.RandomState(mt)
        mt.state = {
            "bit_generator": "MT19937",
            "state": {
                "key": _np.asarray(internal[:-1], dtype=_np.uint32),
                "pos": internal[-1],
            },
        }
        out = self._mt_rs.random_sample(n)
        advanced = mt.state["state"]
        rng.setstate((
            version,
            tuple(advanced["key"].tolist()) + (int(advanced["pos"]),),
            gauss,
        ))
        return out

    def _rebuild_slot_codes(self, size: int) -> bool:
        """Recompute every live slot's canonical code; False = can't.

        Runs once after any scalar interlude (process_many marks the
        codes stale).  Fails — sending the caller to the scalar loop —
        when a sampled label is not an int in ``[0, 2³¹)``.
        """
        codes = self._slot_codes
        if codes is None:
            codes = self._slot_codes = _np.empty(
                self._capacity, dtype=_np.int64
            )
        su = self._su
        sv = self._sv
        for s in range(size):
            u = su[s]
            v = sv[s]
            if type(u) is not int or type(v) is not int:
                return False
            if not (0 <= u < _CODE_LIMIT and 0 <= v < _CODE_LIMIT):
                return False
            codes[s] = (
                u * _CODE_BASE + v if u < v else v * _CODE_BASE + u
            )
        self._codes_stale = False
        return True

    def _process_chunk_uniform(self, us, vs, n: int) -> int:
        """The vectorised uniform-weight gate (see :meth:`process_chunk`)."""
        heap_arr = self._heap._heap
        size = len(heap_arr)
        # --- screen: only clean int blocks take the vectorised path ---
        if us.dtype.kind != "i" or vs.dtype.kind != "i":
            return self._process_chunk_scalar(us, vs)
        lo = _np.minimum(us, vs)
        hi = _np.maximum(us, vs)
        if int(lo.min()) < 0 or int(hi.max()) >= _CODE_LIMIT:
            return self._process_chunk_scalar(us, vs)
        if bool((lo == hi).any()):  # self-loops present
            return self._process_chunk_scalar(us, vs)
        codes = lo.astype(_np.int64) * _CODE_BASE + hi
        ordered = _np.sort(codes)
        if bool((ordered[1:] == ordered[:-1]).any()):
            # An edge repeats within the block.
            return self._process_chunk_scalar(us, vs)
        if size:
            if self._codes_stale and not self._rebuild_slot_codes(size):
                return self._process_chunk_scalar(us, vs)
            live = self._slot_codes[:size]
            pos = _np.searchsorted(ordered, live)
            inside = pos < n
            if bool(inside.any()) and bool(
                (ordered[pos[inside]] == live[inside]).any()
            ):  # a block edge is currently sampled (would be a duplicate)
                return self._process_chunk_scalar(us, vs)
        elif self._codes_stale:
            if self._slot_codes is None:
                self._slot_codes = _np.empty(
                    self._capacity, dtype=_np.int64
                )
            self._codes_stale = False  # empty reservoir: nothing stale

        adj = self._adj
        adj_get = adj.get
        su = self._su
        sv = self._sv
        wts = self._weight
        prio = self._priority
        arr = self._arrival
        cov_tri = self._cov_tri
        cov_wedge = self._cov_wedge
        slot_codes = self._slot_codes
        hpush = heappush
        hreplace = heapreplace
        rand = self._rng.random
        capacity = self._capacity
        constant = self._wdefault
        threshold = self._threshold
        arrivals = self._arrivals

        # --- fill phase: below capacity every clean arrival admits ----
        start = 0
        if size < capacity:
            fill = min(capacity - size, n)
            u_fill = us[:fill].tolist()
            v_fill = vs[:fill].tolist()
            code_fill = codes[:fill].tolist()
            for i in range(fill):
                u = u_fill[i]
                v = v_fill[i]
                arrivals += 1
                r = constant / (1.0 - rand())
                s = size
                size += 1
                su[s] = u
                sv[s] = v
                wts[s] = constant
                prio[s] = r
                arr[s] = arrivals
                cov_tri[s] = 0.0
                cov_wedge[s] = 0.0
                slot_codes[s] = code_fill[i]
                nu = adj_get(u)
                if nu is None:
                    adj[u] = {v: s}
                else:
                    nu[v] = s
                nv = adj_get(v)
                if nv is None:
                    adj[v] = {u: s}
                else:
                    nv[u] = s
                hpush(heap_arr, (r, s))
            start = fill
            if start == n:
                self._threshold = threshold
                self._arrivals = arrivals
                return n

        # --- vectorised gate over the full-reservoir remainder --------
        rest = n - start
        ranks = constant / (1.0 - self._bulk_uniforms(rest))
        root_prio = heap_arr[0][0]
        mask = ranks > root_prio
        survivors = _np.flatnonzero(mask)
        loser_max = None
        if survivors.size < rest:
            loser_max = float(ranks[~mask].max())
        base = arrivals  # arrival index of block edge i is base + i + 1
        # Batch-extract the survivors' fields once: per-item numpy
        # scalar indexing inside the loop would cost more than the
        # admit itself, and tolist() yields plain Python ints/floats —
        # the exact values the scalar loop would have computed.
        surv_idx = survivors.tolist()
        surv_r = ranks[survivors].tolist()
        abs_idx = survivors + start
        surv_u = us[abs_idx].tolist()
        surv_v = vs[abs_idx].tolist()
        surv_code = codes[abs_idx].tolist()
        for k in range(len(surv_idx)):
            r = surv_r[k]
            if root_prio < r:
                s = heap_arr[0][1]
                if root_prio > threshold:
                    threshold = root_prio
                eu = su[s]
                ev = sv[s]
                d = adj[eu]
                del d[ev]
                if not d:
                    del adj[eu]
                d = adj[ev]
                del d[eu]
                if not d:
                    del adj[ev]
                u = surv_u[k]
                v = surv_v[k]
                su[s] = u
                sv[s] = v
                wts[s] = constant
                prio[s] = r
                arr[s] = base + surv_idx[k] + 1
                cov_tri[s] = 0.0
                cov_wedge[s] = 0.0
                slot_codes[s] = surv_code[k]
                nu = adj_get(u)
                if nu is None:
                    adj[u] = {v: s}
                else:
                    nu[v] = s
                nv = adj_get(v)
                if nv is None:
                    adj[v] = {u: s}
                else:
                    nv[u] = s
                hreplace(heap_arr, (r, s))
                root_prio = heap_arr[0][0]
            elif r > threshold:
                # A block survivor outpaced by an earlier admit: a
                # bounce, exactly as the scalar loop would score it.
                threshold = r
        if loser_max is not None and loser_max > threshold:
            threshold = loser_max
        self._threshold = threshold
        self._arrivals = base + rest
        return n

    # ------------------------------------------------------------------
    # Sample access and HT normalisation (procedure GPSNormalize)
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def sample(self) -> CompactSample:
        """The sampled graph K̂ as a live protocol view."""
        return self._view

    @property
    def sample_size(self) -> int:
        return len(self._heap)

    @property
    def threshold(self) -> float:
        """z*: the largest priority evicted so far (0 before overflow)."""
        return self._threshold

    @property
    def stream_position(self) -> int:
        """Number of unique, loop-free arrivals processed."""
        return self._arrivals

    @property
    def duplicates_skipped(self) -> int:
        return self._duplicates

    @property
    def self_loops_skipped(self) -> int:
        return self._self_loops

    def _materialize(self, slot: int) -> EdgeRecord:
        """A fresh :class:`EdgeRecord` snapshot of ``slot``'s fields."""
        record = EdgeRecord(
            self._su[slot],
            self._sv[slot],
            weight=self._weight[slot],
            priority=self._priority[slot],
            arrival=self._arrival[slot],
        )
        record.cov_triangle = self._cov_tri[slot]
        record.cov_wedge = self._cov_wedge[slot]
        return record

    def snapshot_arrays(
        self, out: Optional[SlotArrays] = None
    ) -> SlotArrays:
        """Cheap state snapshot: dtype-pinned slot columns + heap root.

        O(m) flat copies (no per-edge allocation, no dict walk) of the
        live slot prefix — the fields :meth:`CompactSample.materialize`
        would box into records, as five ``float64``/``int64`` columns,
        the ``u``/``v`` label lists, the heap root ``(priority, slot)``
        pair, the threshold ``z*`` and the stream position.  Pass a
        previous snapshot as ``out`` to overwrite its columns in place
        (the serving layer's double-buffer recycling); the caller owns
        the guarantee that no reader still holds it.

        >>> sampler = CompactGraphPrioritySampler(capacity=4, seed=1)
        >>> sampler.process_many([(0, 1), (1, 2)])
        2
        >>> snap = sampler.snapshot_arrays()
        >>> snap.size, snap.stream_position
        (2, 2)
        """
        size = len(self._heap)
        heap_arr = self._heap._heap
        if (
            out is None
            or out.capacity != self._capacity
            or (_np is not None and not isinstance(out.weight, _np.ndarray))
        ):
            out = SlotArrays(self._capacity)
        if _np is not None:
            out.weight[:size] = self._weight[:size]
            out.priority[:size] = self._priority[:size]
            out.arrival[:size] = self._arrival[:size]
            out.cov_triangle[:size] = self._cov_tri[:size]
            out.cov_wedge[:size] = self._cov_wedge[:size]
        else:  # pragma: no cover - numpy is a declared dependency
            out.weight = self._weight[:size]
            out.priority = self._priority[:size]
            out.arrival = self._arrival[:size]
            out.cov_triangle = self._cov_tri[:size]
            out.cov_wedge = self._cov_wedge[:size]
        out.u = self._su[:size]
        out.v = self._sv[:size]
        out.size = size
        out.heap_root = heap_arr[0] if size else None
        out.threshold = self._threshold
        out.stream_position = self._arrivals
        return out

    def snapshot_adjacency(self) -> Dict[Node, Dict[Node, int]]:
        """Order-preserving copy of the slot adjacency (node → nbr → slot).

        The companion of :meth:`snapshot_arrays` for consumers that
        need bit-identical *retrospective* estimates: the adjacency's
        dict insertion orders determine the float accumulation order of
        Algorithm 2 and every other retrospective estimator, and the
        slot columns alone cannot recover them.  The copy is two dict
        levels deep — mutating the sampler afterwards never changes it.
        """
        return {u: dict(nbrs) for u, nbrs in self._adj.items()}

    def records(self) -> Iterator[EdgeRecord]:
        """Records of all currently sampled edges (materialised views)."""
        return self._view.records()

    def inclusion_probability(self, record: EdgeRecord) -> float:
        """Conditional HT probability ``min{1, w/z*}`` of ``record``."""
        return record.inclusion_probability(self._threshold)

    def edge_probability(self, u: Node, v: Node) -> float:
        """HT probability of a sampled edge, or 0.0 when not sampled."""
        nbrs = self._adj.get(u)
        if nbrs is None:
            return 0.0
        slot = nbrs.get(v)
        if slot is None:
            return 0.0
        threshold = self._threshold
        if threshold <= 0.0:
            return 1.0
        ratio = self._weight[slot] / threshold
        return ratio if ratio < 1.0 else 1.0

    def normalized_probabilities(self) -> Dict[EdgeKey, float]:
        """GPSNormalize: canonical edge key → min{1, w/z*}."""
        threshold = self._threshold
        weight = self._weight
        out: Dict[EdgeKey, float] = {}
        su = self._su
        sv = self._sv
        for slot in self._heap:
            if threshold <= 0.0:
                p = 1.0
            else:
                ratio = weight[slot] / threshold
                p = ratio if ratio < 1.0 else 1.0
            out[canonical_edge(su[slot], sv[slot])] = p
        return out

    def sampled_edges(self) -> Iterator[EdgeKey]:
        for slot in self._heap:
            yield canonical_edge(self._su[slot], self._sv[slot])

    def contains_edge(self, u: Node, v: Node) -> bool:
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompactGraphPrioritySampler(m={self._capacity}, "
            f"t={self._arrivals}, |K̂|={self.sample_size}, "
            f"z*={self._threshold:.4g})"
        )


class CompactInStreamEstimator:
    """Algorithm 3 fused with the compact update loop.

    Behavioural equivalent of
    :class:`~repro.core.in_stream.InStreamEstimator` over a
    :class:`CompactGraphPrioritySampler`: the snapshot phase (triangles
    and wedges the arriving edge closes, with the covariance
    accumulators of Theorem 7) runs directly over the slot arrays at the
    pre-update threshold, then the same loop performs the sampler
    update — one pass, zero per-arrival allocations, bit-identical
    estimates to the object core under shared seeds.

    Examples
    --------
    >>> est = CompactInStreamEstimator(capacity=100, seed=1)
    >>> est.process_many([(0, 1), (1, 2), (0, 2)])
    3
    >>> est.triangle_estimate
    1.0
    """

    __slots__ = (
        "_sampler",
        "_triangles",
        "_triangle_var",
        "_wedges",
        "_wedge_var",
        "_cross_cov",
    )

    def __init__(
        self,
        capacity: int,
        weight_fn: Optional[WeightFunction] = None,
        seed: Optional[int] = None,
        sampler: Optional[CompactGraphPrioritySampler] = None,
    ) -> None:
        if sampler is not None:
            self._sampler = sampler
        else:
            self._sampler = CompactGraphPrioritySampler(
                capacity, weight_fn=weight_fn, seed=seed
            )
        self._triangles = 0.0
        self._triangle_var = 0.0
        self._wedges = 0.0
        self._wedge_var = 0.0
        self._cross_cov = 0.0

    # ------------------------------------------------------------------
    # Stream processing
    # ------------------------------------------------------------------
    def process(self, u: Node, v: Node) -> None:
        """Snapshot the subgraphs ``(u, v)`` closes, then update."""
        self.process_many(((u, v),))

    def process_many(self, edges: Iterable[Tuple[Node, Node]]) -> int:
        """Fused snapshot + update per arrival over the slot arrays.

        Equivalent to the object core's estimator pass edge for edge
        (same accumulation order, same uniform draws).  Returns the
        number of edges consumed (including skipped arrivals).
        """
        sampler = self._sampler
        sampler._codes_stale = True  # this loop admits past the screen
        adj = sampler._adj
        adj_get = adj.get
        su = sampler._su
        sv = sampler._sv
        wts = sampler._weight
        prio = sampler._priority
        arr = sampler._arrival
        cov_tri = sampler._cov_tri
        cov_wedge = sampler._cov_wedge
        heap_arr = sampler._heap._heap
        hpush = heappush
        hreplace = heapreplace
        rand = sampler._rng.random
        capacity = sampler._capacity
        wkind = sampler._wkind
        coef = sampler._wcoef
        default = sampler._wdefault
        weight_fn = sampler._weight_fn
        view = sampler._view
        size = len(heap_arr)
        root_prio = heap_arr[0][0] if size else 0.0
        threshold = sampler._threshold
        arrivals = sampler._arrivals
        duplicates = sampler._duplicates
        self_loops = sampler._self_loops
        triangles = self._triangles
        triangle_var = self._triangle_var
        wedges = self._wedges
        wedge_var = self._wedge_var
        cross_cov = self._cross_cov
        consumed = 0
        try:
            for u, v in edges:
                consumed += 1
                if u == v:
                    self_loops += 1
                    continue
                nu = adj_get(u)
                if nu is not None and v in nu:
                    # Lockstep skip: estimation and sampling drop the
                    # same arrivals (no snapshot, no uniform draw).
                    duplicates += 1
                    continue
                nv = adj_get(v)
                closed = 0

                # --- triangles completed by k (Alg. 3 lines 9–19) ------
                # rec1 is always the u-side edge, rec2 the v-side, like
                # SampledGraph.triangles_with.
                if nu is not None and nv is not None:
                    if len(nu) <= len(nv):
                        for x, s1 in nu.items():
                            s2 = nv.get(x)
                            if s2 is None:
                                continue
                            closed += 1
                            if threshold <= 0.0:
                                q1 = 1.0
                            else:
                                q1 = wts[s1] / threshold
                                if q1 >= 1.0:
                                    q1 = 1.0
                            if threshold <= 0.0:
                                q2 = 1.0
                            else:
                                q2 = wts[s2] / threshold
                                if q2 >= 1.0:
                                    q2 = 1.0
                            inv_prod = 1.0 / (q1 * q2)
                            triangles += inv_prod
                            triangle_var += (inv_prod - 1.0) * inv_prod
                            triangle_var += (
                                2.0 * (cov_tri[s1] + cov_tri[s2]) * inv_prod
                            )
                            cross_cov += (
                                cov_wedge[s1] + cov_wedge[s2]
                            ) * inv_prod
                            cov_tri[s1] += (1.0 / q1 - 1.0) / q2
                            cov_tri[s2] += (1.0 / q2 - 1.0) / q1
                    else:
                        for x, s2 in nv.items():
                            s1 = nu.get(x)
                            if s1 is None:
                                continue
                            closed += 1
                            if threshold <= 0.0:
                                q1 = 1.0
                            else:
                                q1 = wts[s1] / threshold
                                if q1 >= 1.0:
                                    q1 = 1.0
                            if threshold <= 0.0:
                                q2 = 1.0
                            else:
                                q2 = wts[s2] / threshold
                                if q2 >= 1.0:
                                    q2 = 1.0
                            inv_prod = 1.0 / (q1 * q2)
                            triangles += inv_prod
                            triangle_var += (inv_prod - 1.0) * inv_prod
                            triangle_var += (
                                2.0 * (cov_tri[s1] + cov_tri[s2]) * inv_prod
                            )
                            cross_cov += (
                                cov_wedge[s1] + cov_wedge[s2]
                            ) * inv_prod
                            cov_tri[s1] += (1.0 / q1 - 1.0) / q2
                            cov_tri[s2] += (1.0 / q2 - 1.0) / q1

                # --- wedges completed by k (lines 20–27) ----------------
                # (u, v) is not sampled (duplicate check above), so the
                # object core's exclude filter can never trigger here.
                if nu is not None:
                    for s in nu.values():
                        if threshold <= 0.0:
                            q = 1.0
                        else:
                            q = wts[s] / threshold
                            if q >= 1.0:
                                q = 1.0
                        inv = 1.0 / q
                        wedges += inv
                        wedge_var += inv * (inv - 1.0)
                        wedge_var += 2.0 * cov_wedge[s] * inv
                        cross_cov += cov_tri[s] * inv
                        cov_wedge[s] += inv - 1.0
                if nv is not None:
                    for s in nv.values():
                        if threshold <= 0.0:
                            q = 1.0
                        else:
                            q = wts[s] / threshold
                            if q >= 1.0:
                                q = 1.0
                        inv = 1.0 / q
                        wedges += inv
                        wedge_var += inv * (inv - 1.0)
                        wedge_var += 2.0 * cov_wedge[s] * inv
                        cross_cov += cov_tri[s] * inv
                        cov_wedge[s] += inv - 1.0

                # --- sampler update (lines 29–40) -----------------------
                arrivals += 1
                if wkind == _W_TRIANGLE:
                    # The snapshot's triangle enumeration already counted
                    # |△̂(k)| — reuse it instead of re-intersecting.
                    # coef·0 + default == default exactly.
                    w = coef * closed + default if closed else default
                elif wkind == _W_UNIFORM:
                    w = default
                elif wkind == _W_WEDGE:
                    w = coef * (
                        (len(nu) if nu is not None else 0)
                        + (len(nv) if nv is not None else 0)
                    ) + default
                else:
                    w = weight_fn(u, v, view)
                    if not w > 0.0:
                        raise ValueError(
                            f"weight function returned non-positive {w!r}"
                        )
                r = w / (1.0 - rand())
                if size < capacity:
                    s = size
                    size += 1
                    su[s] = u
                    sv[s] = v
                    wts[s] = w
                    prio[s] = r
                    arr[s] = arrivals
                    cov_tri[s] = 0.0
                    cov_wedge[s] = 0.0
                    nu = adj_get(u)
                    if nu is None:
                        adj[u] = {v: s}
                    else:
                        nu[v] = s
                    nv = adj_get(v)
                    if nv is None:
                        adj[v] = {u: s}
                    else:
                        nv[u] = s
                    hpush(heap_arr, (r, s))
                    root_prio = heap_arr[0][0]
                elif root_prio < r:
                    s = heap_arr[0][1]
                    if root_prio > threshold:
                        threshold = root_prio
                    eu = su[s]
                    ev = sv[s]
                    d = adj[eu]
                    del d[ev]
                    if not d:
                        del adj[eu]
                    d = adj[ev]
                    del d[eu]
                    if not d:
                        del adj[ev]
                    su[s] = u
                    sv[s] = v
                    wts[s] = w
                    prio[s] = r
                    arr[s] = arrivals
                    cov_tri[s] = 0.0
                    cov_wedge[s] = 0.0
                    nu = adj_get(u)
                    if nu is None:
                        adj[u] = {v: s}
                    else:
                        nu[v] = s
                    nv = adj_get(v)
                    if nv is None:
                        adj[v] = {u: s}
                    else:
                        nv[u] = s
                    hreplace(heap_arr, (r, s))
                    root_prio = heap_arr[0][0]
                elif r > threshold:
                    threshold = r
        finally:
            sampler._threshold = threshold
            sampler._arrivals = arrivals
            sampler._duplicates = duplicates
            sampler._self_loops = self_loops
            self._triangles = triangles
            self._triangle_var = triangle_var
            self._wedges = wedges
            self._wedge_var = wedge_var
            self._cross_cov = cross_cov
        return consumed

    def process_stream(self, edges: Iterable[Tuple[Node, Node]]) -> None:
        self.process_many(edges)

    #: Algorithm 3 snapshots every arrival against the live adjacency —
    #: winners and losers alike contribute wedge/triangle closures — so
    #: there is no loser population a vectorised gate could skip.
    chunk_vectorized = False

    def process_chunk(self, us, vs) -> int:
        """Columnar block → the fused scalar loop (bit-exact adapter).

        Exists so chunk-producing drivers can feed either counter shape;
        see :attr:`chunk_vectorized` for why no gate applies here.
        """
        from repro.streams.chunks import pairs_from_columns

        return self.process_many(pairs_from_columns(us, vs))

    def reset(self, seed: Optional[int] = None) -> None:
        """Restore freshly-constructed state (see the sampler's reset)."""
        self._sampler.reset(seed)
        self._triangles = 0.0
        self._triangle_var = 0.0
        self._wedges = 0.0
        self._wedge_var = 0.0
        self._cross_cov = 0.0

    def track(
        self,
        edges: Iterable[Tuple[Node, Node]],
        checkpoints,
    ) -> Iterator[Tuple[int, GraphEstimates]]:
        """Process ``edges``, yielding ``(t, estimates)`` at checkpoints."""
        marks = list(checkpoints)
        next_idx = 0
        t = 0
        for u, v in edges:
            self.process_many(((u, v),))
            t += 1
            while next_idx < len(marks) and marks[next_idx] == t:
                yield t, self.estimates()
                next_idx += 1

    def snapshot_arrays(
        self, out: Optional[SlotArrays] = None
    ) -> SlotArrays:
        """The sampler's slot snapshot (see the sampler's method).

        The estimator's own Algorithm-3 accumulators are already O(1)
        to read (:meth:`estimates` assembles them without touching the
        slots), so the reservoir columns are the only state worth a
        bulk copy.
        """
        return self._sampler.snapshot_arrays(out)

    def snapshot_adjacency(self) -> Dict[Node, Dict[Node, int]]:
        """Order-preserving slot-adjacency copy (see the sampler's method)."""
        return self._sampler.snapshot_adjacency()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def sampler(self) -> CompactGraphPrioritySampler:
        """The underlying compact reservoir (shared-sample protocol)."""
        return self._sampler

    @property
    def triangle_estimate(self) -> float:
        return self._triangles

    @property
    def wedge_estimate(self) -> float:
        return self._wedges

    @property
    def clustering_estimate(self) -> float:
        if self._wedges == 0:
            return 0.0
        return 3.0 * self._triangles / self._wedges

    def estimates(self) -> GraphEstimates:
        """Current snapshot estimates with variances and bounds; O(1)."""
        sampler = self._sampler
        return GraphEstimates.from_raw(
            triangle_count=self._triangles,
            triangle_variance=self._triangle_var,
            wedge_count=self._wedges,
            wedge_variance=self._wedge_var,
            tri_wedge_covariance=self._cross_cov,
            stream_position=sampler.stream_position,
            sample_size=sampler.sample_size,
            threshold=sampler.threshold,
        )


# ----------------------------------------------------------------------
# Core selection
# ----------------------------------------------------------------------
def validate_core(core: str) -> str:
    """Check a core name; unknown names raise with the known set."""
    if core not in CORES:
        raise ValueError(f"unknown core {core!r}; known cores: {CORES}")
    return core


def make_priority_sampler(
    capacity: int,
    weight_fn: Optional[WeightFunction] = None,
    seed: Optional[int] = None,
    core: str = DEFAULT_CORE,
):
    """Build a GPS sampler on the selected core.

    ``core="compact"`` (default) returns the slot-based
    :class:`CompactGraphPrioritySampler`; ``core="object"`` the boxed
    reference :class:`~repro.core.priority_sampler.GraphPrioritySampler`.
    Both select bit-identical samples under shared seeds.

    Example
    -------
    >>> make_priority_sampler(8, seed=1, core="object").sample_size
    0
    """
    from repro.core.priority_sampler import GraphPrioritySampler

    validate_core(core)
    cls = (
        CompactGraphPrioritySampler if core == "compact"
        else GraphPrioritySampler
    )
    return cls(capacity, weight_fn=weight_fn, seed=seed)


def make_in_stream_estimator(
    capacity: int,
    weight_fn: Optional[WeightFunction] = None,
    seed: Optional[int] = None,
    core: str = DEFAULT_CORE,
):
    """Build an in-stream estimator on the selected core.

    Example
    -------
    >>> est = make_in_stream_estimator(8, seed=1)
    >>> type(est).__name__
    'CompactInStreamEstimator'
    """
    from repro.core.in_stream import InStreamEstimator

    validate_core(core)
    cls = (
        CompactInStreamEstimator if core == "compact" else InStreamEstimator
    )
    return cls(capacity, weight_fn=weight_fn, seed=seed)


__all__ = [
    "CORES",
    "DEFAULT_CORE",
    "CompactGraphPrioritySampler",
    "CompactInStreamEstimator",
    "CompactSample",
    "SlotArrays",
    "make_in_stream_estimator",
    "make_priority_sampler",
    "validate_core",
]
