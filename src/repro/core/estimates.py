"""Estimate containers returned by the GPS estimators.

A :class:`SubgraphEstimate` pairs a Horvitz–Thompson point estimate with
its *unbiased variance estimate* and derives normal confidence bounds the
way the paper reports them (``X̂ ± 1.96·sqrt(Var̂)``, Sec. 6 step 4).
:class:`GraphEstimates` bundles the triangle/wedge/clustering triple that
Tables 1 and 3 and Figures 1–3 are built from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.stats.confidence import confidence_interval
from repro.stats.variance import clustering_variance


@dataclass(frozen=True)
class SubgraphEstimate:
    """Point estimate + unbiased variance estimate for one subgraph count."""

    value: float
    variance: float

    @property
    def std_error(self) -> float:
        return math.sqrt(max(0.0, self.variance))

    def confidence_bounds(self, level: float = 0.95) -> Tuple[float, float]:
        """Normal bounds ``value ± z(level)·std_error``."""
        return confidence_interval(self.value, self.variance, level)

    @property
    def lower_bound(self) -> float:
        return self.confidence_bounds()[0]

    @property
    def upper_bound(self) -> float:
        return self.confidence_bounds()[1]

    def relative_error(self, actual: float) -> float:
        """ARE against a known truth (inf when actual is 0 but value isn't)."""
        if actual == 0:
            return 0.0 if self.value == 0 else float("inf")
        return abs(self.value - actual) / abs(actual)


@dataclass(frozen=True)
class GraphEstimates:
    """Triangle / wedge / clustering estimates from one sample state.

    ``tri_wedge_covariance`` is the unbiased estimate of
    ``Cov(N̂(△), N̂(Λ))`` (paper Eq. 12), already folded into the
    clustering variance via the delta method (Eq. 11).
    """

    triangles: SubgraphEstimate
    wedges: SubgraphEstimate
    clustering: SubgraphEstimate
    tri_wedge_covariance: float
    stream_position: int
    sample_size: int
    threshold: float

    @staticmethod
    def from_raw(
        triangle_count: float,
        triangle_variance: float,
        wedge_count: float,
        wedge_variance: float,
        tri_wedge_covariance: float,
        stream_position: int,
        sample_size: int,
        threshold: float,
    ) -> "GraphEstimates":
        """Assemble the bundle, deriving α̂ = 3·N̂(△)/N̂(Λ) and its variance."""
        if wedge_count > 0:
            alpha = 3.0 * triangle_count / wedge_count
            alpha_var = clustering_variance(
                triangle_count,
                wedge_count,
                triangle_variance,
                wedge_variance,
                tri_wedge_covariance,
            )
        else:
            alpha = 0.0
            alpha_var = 0.0
        return GraphEstimates(
            triangles=SubgraphEstimate(triangle_count, triangle_variance),
            wedges=SubgraphEstimate(wedge_count, wedge_variance),
            clustering=SubgraphEstimate(alpha, alpha_var),
            tri_wedge_covariance=tri_wedge_covariance,
            stream_position=stream_position,
            sample_size=sample_size,
            threshold=threshold,
        )
