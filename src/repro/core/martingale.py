"""Explicit martingale / snapshot toolkit (paper Secs. 3.3–3.4, 5.1–5.2).

Algorithms 2 and 3 are hand-optimised specialisations of a small algebra:

* an **edge estimator** ``Ŝ_i = I(i ∈ K̂) / min{1, w_i/z*}`` (Theorem 1);
* a **subgraph product estimator** ``Ŝ_J = Π_{i∈J} Ŝ_i`` (Theorem 2);
* a **snapshot** freezes a subgraph estimator at a stopping time —
  retaining each constituent edge's inclusion probability at that instant
  (Theorem 4);
* the **covariance estimator** between two (snapshot) products,
  ``Ĉ = Ŝ_{J1∪J2}·(Ŝ_{J1∩J2} − 1)`` with the *later* stopping time used
  for shared edges (Theorem 5 / Eq. 17).

This module implements that algebra directly.  It is the reference
implementation used by the theory-level test-suite (which checks the
optimised algorithms against it) and by the generalised subgraph
estimators in :mod:`repro.core.subgraphs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

from repro.core.records import EdgeRecord
from repro.graph.edge import EdgeKey


def edge_inverse_probability(record: EdgeRecord, threshold: float) -> float:
    """``1/p`` of a sampled edge at ``threshold``: the HT edge estimator."""
    return 1.0 / record.inclusion_probability(threshold)


def subgraph_estimate(records: Iterable[EdgeRecord], threshold: float) -> float:
    """Product estimator ``Ŝ_J = Π 1/p_i`` for fully sampled ``J``."""
    value = 1.0
    for record in records:
        value *= edge_inverse_probability(record, threshold)
    return value


def variance_estimate(records: Iterable[EdgeRecord], threshold: float) -> float:
    """Unbiased variance estimator ``Ŝ_J (Ŝ_J − 1)`` (Theorem 3(iii))."""
    s = subgraph_estimate(records, threshold)
    return s * (s - 1.0)


@dataclass(frozen=True)
class Snapshot:
    """A subgraph estimator frozen at a stopping time (paper Eq. 16).

    ``probabilities`` maps each constituent edge key to ``(p, time)``: the
    edge's inclusion probability at the snapshot's stopping time, and that
    stopping time itself (needed to resolve shared edges between two
    snapshots at the *later* of their times, Eq. 17).
    """

    probabilities: Mapping[EdgeKey, Tuple[float, int]]

    @staticmethod
    def capture(
        records: Iterable[EdgeRecord], threshold: float, time: int
    ) -> "Snapshot":
        """Freeze the current estimator values of ``records`` at ``time``."""
        probs: Dict[EdgeKey, Tuple[float, int]] = {}
        for record in records:
            probs[record.key] = (record.inclusion_probability(threshold), time)
        return Snapshot(probabilities=probs)

    @property
    def value(self) -> float:
        """The frozen product estimate ``Π 1/p``."""
        out = 1.0
        for p, _time in self.probabilities.values():
            out *= 1.0 / p
        return out

    @property
    def edges(self) -> frozenset:
        return frozenset(self.probabilities)

    def variance(self) -> float:
        """``Ŝ(Ŝ − 1)``: unbiased variance of the snapshot (Thm 5(iii))."""
        s = self.value
        return s * (s - 1.0)


def snapshot_covariance(first: Snapshot, second: Snapshot) -> float:
    """Unbiased covariance estimate between two snapshots (Eq. 17).

    ``Ĉ = Ŝ^{T1}_{J1} Ŝ^{T2}_{J2} − Ŝ^{T1}_{J1\\J2} Ŝ^{T2}_{J2\\J1}
    Ŝ^{T1∨T2}_{J1∩J2}``, where shared edges use their probability at the
    *later* stopping time.  Zero whenever the snapshots share no edges
    (Theorem 5(iv)).
    """
    shared = first.edges & second.edges
    if not shared:
        return 0.0
    product_all = first.value * second.value
    disjoint = 1.0
    for key, (p, _t) in first.probabilities.items():
        if key not in shared:
            disjoint *= 1.0 / p
    for key, (p, _t) in second.probabilities.items():
        if key not in shared:
            disjoint *= 1.0 / p
    # Iterate the insertion-ordered mapping, not `shared`: set order is
    # hash order, and the float product must not depend on it.
    later_shared = 1.0
    for key, (p1, t1) in first.probabilities.items():
        if key not in shared:
            continue
        p2, t2 = second.probabilities[key]
        later_shared *= 1.0 / (p1 if t1 >= t2 else p2)
    return product_all - disjoint * later_shared


def post_stream_covariance(
    first: Iterable[EdgeRecord],
    second: Iterable[EdgeRecord],
    threshold: float,
) -> float:
    """Theorem 3 covariance for two post-stream products at one threshold.

    Special case of :func:`snapshot_covariance` with all stopping times
    equal: ``Ĉ = Ŝ_{J1∪J2}(Ŝ_{J1∩J2} − 1)``.
    """
    first_probs = {
        r.key: r.inclusion_probability(threshold) for r in first
    }
    second_probs = {
        r.key: r.inclusion_probability(threshold) for r in second
    }
    shared = first_probs.keys() & second_probs.keys()
    if not shared:
        return 0.0
    union = 1.0
    for key, p in first_probs.items():
        union *= 1.0 / p
    for key, p in second_probs.items():
        if key not in first_probs:
            union *= 1.0 / p
    # Iterate the insertion-ordered dict, not `shared`: set order is
    # hash order, and the float product must not depend on it.
    intersection = 1.0
    for key, p in first_probs.items():
        if key in second_probs:
            intersection *= 1.0 / p
    return union * (intersection - 1.0)
